"""QMDD-style decision diagrams: construction, arithmetic, NZRV, flat layout."""

from .algebra import (
    adjoint,
    expectation,
    hilbert_schmidt,
    matrix_kron,
    process_fidelity,
    trace,
    vector_inner,
)
from .build import (
    basis_vector_dd,
    circuit_matrix_dd,
    gate_matrix_dd,
    matrix_dd_from_dense,
    vector_dd_from_dense,
)
from .export import (
    count_edges,
    count_nodes,
    iter_matrix_entries,
    matrix_to_dense,
    reachable_nodes,
    vector_to_dense,
)
from .dot import matrix_to_dot, vector_to_dot
from .flat import FlatDD, flat_entry, flatten_matrix_dd
from .manager import DDManager
from .node import Edge, MNode, ONE_EDGE, VNode, ZERO_EDGE
from .simulate import simulate_circuit_dd, simulate_state_dd, state_dd_size
from .nzrv import (
    is_diagonal_dd,
    is_permutation_like,
    max_nzr,
    nzr_statistics,
    nzr_vector,
    vector_max,
    vector_moments,
)

__all__ = [
    "adjoint",
    "basis_vector_dd",
    "circuit_matrix_dd",
    "count_edges",
    "count_nodes",
    "DDManager",
    "Edge",
    "expectation",
    "flat_entry",
    "FlatDD",
    "flatten_matrix_dd",
    "gate_matrix_dd",
    "hilbert_schmidt",
    "is_diagonal_dd",
    "is_permutation_like",
    "iter_matrix_entries",
    "matrix_dd_from_dense",
    "matrix_kron",
    "matrix_to_dense",
    "matrix_to_dot",
    "max_nzr",
    "MNode",
    "nzr_statistics",
    "nzr_vector",
    "ONE_EDGE",
    "process_fidelity",
    "reachable_nodes",
    "simulate_circuit_dd",
    "simulate_state_dd",
    "state_dd_size",
    "trace",
    "vector_dd_from_dense",
    "vector_inner",
    "vector_max",
    "vector_moments",
    "vector_to_dense",
    "vector_to_dot",
    "VNode",
    "ZERO_EDGE",
]
