"""Tests for SLO telemetry: lifecycle log, SLOTracker, Prometheus export,
and the service wiring that feeds them."""

import json

import pytest

from repro.circuit.generators import make_circuit
from repro.errors import AdmissionError
from repro.obs import (
    JobLifecycleLog,
    LIFECYCLE_STAGES,
    SLOTracker,
    get_metrics,
    parse_prometheus_text,
    prometheus_text,
    write_prometheus,
)
from repro.service import BatchSimulationService


# ---------------------------------------------------------------------------
# lifecycle log
# ---------------------------------------------------------------------------

def test_lifecycle_log_records_and_filters():
    log = JobLifecycleLog(clock=lambda: 1.5)
    log.emit("submitted", "job-0-a", priority=1)
    log.emit("admitted", "job-0-a", queue_depth=1)
    log.emit("submitted", "job-1-b")
    log.emit("done", "job-0-a", latency_s=0.2)
    assert len(log) == 4
    assert [e["event"] for e in log.events("job-0-a")] == [
        "submitted", "admitted", "done",
    ]
    assert [e["job"] for e in log.events(stage="submitted")] == [
        "job-0-a", "job-1-b",
    ]
    assert log.events("job-0-a")[0]["t"] == 1.5


def test_lifecycle_log_rejects_unknown_stage():
    log = JobLifecycleLog()
    with pytest.raises(ValueError, match="unknown lifecycle stage"):
        log.emit("teleported", "job-0-a")


def test_lifecycle_unaccounted_tracks_lost_jobs():
    log = JobLifecycleLog()
    log.emit("submitted", "job-0-a")
    log.emit("submitted", "job-1-b")
    log.emit("submitted", "job-2-c")
    log.emit("done", "job-0-a")
    log.emit("rejected", "job-2-c")  # left at the edge: accounted for
    assert log.unaccounted() == ["job-1-b"]
    log.emit("failed", "job-1-b")
    assert log.unaccounted() == []


def test_lifecycle_listeners_and_jsonl(tmp_path):
    log = JobLifecycleLog()
    seen = []
    log.subscribe(seen.append)
    log.emit("submitted", "job-0-a", priority=2)
    log.emit("done", "job-0-a", latency_s=0.1)
    assert [e["event"] for e in seen] == ["submitted", "done"]
    path = tmp_path / "lifecycle.jsonl"
    assert log.write_jsonl(path) == 2
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert lines[0]["priority"] == 2 and lines[1]["latency_s"] == 0.1


# ---------------------------------------------------------------------------
# SLOTracker
# ---------------------------------------------------------------------------

def _terminal(log, jid, *, stage="done", priority=0, latency=0.1,
              queue_age=0.05, deadline=None, miss=False, solo=False):
    log.emit(stage, jid, priority=priority, latency_s=latency,
             queue_age_s=queue_age, deadline=deadline, deadline_miss=miss,
             solo_retry=solo)


def test_slo_tracker_folds_per_priority():
    log = JobLifecycleLog()
    slo = SLOTracker().attach(log)
    for i in range(10):
        jid = f"job-{i}-x"
        log.emit("submitted", jid, priority=i % 2)
        _terminal(log, jid, priority=i % 2, latency=0.01 * (i + 1))
    summary = slo.summary()
    assert summary["submitted"] == 10 and summary["done"] == 10
    assert set(summary["priorities"]) == {"0", "1"}
    assert summary["priorities"]["0"]["jobs"] == 5
    lat = summary["latency_s"]
    assert lat["count"] == 10
    assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]


def test_slo_tracker_deadline_and_degradation_rates():
    log = JobLifecycleLog()
    slo = SLOTracker().attach(log)
    _terminal(log, "a", deadline=1.0, miss=True)
    _terminal(log, "b", deadline=1.0, miss=False)
    _terminal(log, "c", solo=True)
    _terminal(log, "d", stage="failed")
    summary = slo.summary()
    assert summary["deadline_jobs"] == 2 and summary["deadline_misses"] == 1
    assert summary["deadline_miss_rate"] == pytest.approx(0.5)
    assert summary["solo_retries"] == 1
    assert summary["degraded_rate"] == pytest.approx(0.25)
    assert summary["done"] == 3 and summary["failed"] == 1


def test_slo_tracker_mirrors_labeled_metrics():
    log = JobLifecycleLog()
    SLOTracker(metric_prefix="t.job").attach(log)
    mark = get_metrics().mark()
    _terminal(log, "a", priority=3)
    delta = get_metrics().delta(mark)
    assert delta["counters"]['t.job.terminal{outcome="done",priority="3"}'] == 1
    assert 't.job.latency_s{priority="3"}' in delta["histograms"]


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------

def test_prometheus_roundtrip(tmp_path):
    from repro.obs import Metrics

    m = Metrics()
    m.inc("service.completed", 7)
    m.gauge("service.queue_depth", 3)
    for v in (0.01, 0.1, 1.0):
        m.observe("service.job.latency_s", v, priority="1")
    path = write_prometheus(tmp_path / "m.prom", m.snapshot())
    doc = parse_prometheus_text(path.read_text())
    assert doc["types"]["repro_service_completed"] == "counter"
    assert doc["samples"]["repro_service_completed"] == [({}, 7.0)]
    assert doc["types"]["repro_service_job_latency_s"] == "histogram"
    buckets = doc["samples"]["repro_service_job_latency_s_bucket"]
    inf = [v for labels, v in buckets if labels["le"] == "+Inf"]
    assert inf == [3.0]
    (labels, count) = doc["samples"]["repro_service_job_latency_s_count"][0]
    assert labels == {"priority": "1"} and count == 3.0


def test_prometheus_parser_rejects_malformed():
    with pytest.raises(ValueError, match="malformed"):
        parse_prometheus_text("# TYPE a counter\na 1.0 extra junk here\n")
    with pytest.raises(ValueError, match="precedes"):
        parse_prometheus_text("orphan_sample 1.0\n")
    with pytest.raises(ValueError, match="non-numeric"):
        parse_prometheus_text("# TYPE a counter\na banana\n")


def test_prometheus_histogram_buckets_are_cumulative():
    from repro.obs import Metrics

    m = Metrics()
    for v in (0.001, 0.01, 0.01, 10.0):
        m.observe("h", v)
    text = prometheus_text(m.snapshot())
    doc = parse_prometheus_text(text)  # raises if buckets ever decrease
    buckets = doc["samples"]["repro_h_bucket"]
    values = [v for _, v in buckets]
    assert values == sorted(values) and values[-1] == 4.0


# ---------------------------------------------------------------------------
# service integration
# ---------------------------------------------------------------------------

def test_service_stats_slo_block_coalesced_run():
    service = BatchSimulationService(num_workers=2)
    for i in range(12):
        service.submit(make_circuit("ghz", 4), num_inputs=4, priority=i % 3,
                       deadline=1e12 if i % 4 == 0 else None)
    service.drain()
    slo = service.stats()["slo"]
    assert slo["done"] == 12 and slo["failed"] == 0
    assert slo["unaccounted_jobs"] == 0
    assert sorted(slo["priorities"]) == ["0", "1", "2"]
    for block in (slo["latency_s"], slo["queue_age_s"]):
        assert block["count"] == 12
        assert block["p50"] <= block["p95"] <= block["p99"]
    assert slo["deadline_jobs"] == 3 and slo["deadline_misses"] == 0
    # stats mean coalescing happened, so jobs shared mega-batches
    assert service.stats()["coalesce_factor_max"] > 1


def test_service_lifecycle_full_chain_and_isolation():
    """Each job walks the full stage chain; two services never mix logs."""
    a = BatchSimulationService()
    b = BatchSimulationService()
    job = a.submit(make_circuit("ghz", 4), num_inputs=2)
    a.drain()
    stages = [e["event"] for e in a.lifecycle.events(job.job_id)]
    assert stages[0] == "submitted" and stages[-1] == "done"
    assert {"admitted", "scheduled", "coalesced", "executing"} <= set(stages)
    assert all(s in LIFECYCLE_STAGES for s in stages)
    done = a.lifecycle.events(job.job_id, stage="done")[0]
    assert done["latency_s"] > 0 and done["queue_age_s"] >= 0
    assert done["wall_s"] > 0 and done["modeled_s"] > 0
    assert b.lifecycle.events() == []  # isolation


def test_service_lifecycle_rejected_and_cancelled():
    service = BatchSimulationService(max_depth=1)
    kept = service.submit(make_circuit("ghz", 4), num_inputs=2)
    with pytest.raises(AdmissionError):
        service.submit(make_circuit("ghz", 4), num_inputs=3)
    service.cancel(kept.job_id)
    events = {e["event"] for e in service.lifecycle.events()}
    assert {"submitted", "admitted", "rejected", "cancelled"} <= events
    slo = service.stats()["slo"]
    assert slo["rejected"] == 1 and slo["cancelled"] == 1
    assert slo["unaccounted_jobs"] == 0


def test_service_degraded_jobs_emit_failed_and_solo(tmp_path):
    """A poisoned mega-batch degrades; the SLO block records the split."""
    import numpy as np

    from repro.circuit.inputs import InputBatch, random_batch

    service = BatchSimulationService(simulator_kwargs={"health": "fail"})
    circuit = make_circuit("qft", 5)
    good = service.submit(circuit, random_batch(5, 2, 1))
    poison = service.submit(
        circuit, InputBatch(np.full((32, 2), np.nan, dtype=np.complex128))
    )
    service.drain()
    slo = service.stats()["slo"]
    assert slo["done"] == 1 and slo["failed"] == 1
    assert slo["solo_retries"] == 1 and slo["degraded_rate"] == 0.5
    assert slo["unaccounted_jobs"] == 0
    done = service.lifecycle.events(good.job_id, stage="done")[0]
    failed = service.lifecycle.events(poison.job_id, stage="failed")[0]
    assert done["solo_retry"] is True
    assert "non-finite" in failed["error"]
    path = tmp_path / "lifecycle.jsonl"
    count = service.write_lifecycle(path)
    assert count == len(service.lifecycle.events()) > 0


def test_service_slo_in_prometheus_export(tmp_path):
    service = BatchSimulationService()
    for i in range(4):
        service.submit(make_circuit("ghz", 4), num_inputs=2, priority=i % 2)
    service.drain()
    path = write_prometheus(tmp_path / "svc.prom", get_metrics().snapshot())
    doc = parse_prometheus_text(path.read_text())
    terminal = doc["samples"]["repro_service_job_terminal"]
    done = sum(
        v for labels, v in terminal if labels.get("outcome") == "done"
    )
    assert done >= 4  # global registry: at least this service's jobs
    assert "repro_service_job_latency_s_bucket" in doc["samples"]
