"""Swappable array-backend engines (the ``xp`` namespace).

Every numeric hot path in the package — ELL spMM gathers, dense gate
applies, buffer rotation, statevector init/normalize — runs through an
:class:`ArrayEngine` instead of calling ``numpy`` directly, so the whole
execution layer can be retargeted at runtime (polyadicQML's *manyq*
simulator pioneered this shape for SIMD-batched parametric circuits):

* ``"numpy"`` — the default host engine.  Kernels perform exactly the
  same operations, in the same order, as the pre-engine direct-NumPy
  code, so results are **bit-identical** to the historical outputs.
* ``"fake-gpu"`` — a deterministic NumPy-backed stand-in for a real
  device, used in CI where no GPU exists.  It models the device
  boundary (every host<->device transfer makes a copy and is counted)
  and accumulates ELL slots in the reverse order — the kind of
  floating-point reassociation a real GPU's scheduling introduces — so
  results agree with the numpy engine only within tolerance, which is
  precisely what engine-parity tests must be robust to.
* ``"cupy"`` — the real-GPU engine.  Available only when CuPy is
  importable; selecting it without CuPy raises a typed error.

Selection order: an explicit ``engine=`` argument wins, then the process
default installed by :func:`set_default_engine` / :func:`use_engine`,
then the ``REPRO_ENGINE`` environment variable, then ``"numpy"``.
:func:`cpu` and :func:`gpu` mirror manyq's ``circuit.cpu()`` /
``circuit.gpu()`` runtime switch.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

import numpy

from ..errors import SimulationError

#: environment variable naming the process-default engine
ENGINE_ENV = "REPRO_ENGINE"

#: engine names accepted by :func:`get_engine`
ENGINE_NAMES = ("numpy", "fake-gpu", "cupy")


class EngineUnavailableError(SimulationError):
    """Requested engine's backing library is not importable."""


class ArrayEngine:
    """One array backend: a namespace plus the host/device boundary.

    Attributes:
        name: registry name (``numpy``, ``fake-gpu``, ``cupy``).
        xp: the array namespace kernels compute with.
        is_device: True when arrays live in a (modeled or real) device
            space and host<->engine transfers are meaningful copies.
    """

    name = "abstract"
    is_device = False
    #: True when engine arrays live in host memory (SciPy/NumPy can
    #: consume them directly); False for real device backends
    host_memory = True

    def __init__(self) -> None:
        self.xp = numpy

    # -- data movement ------------------------------------------------------

    def asarray(self, array):
        """View ``array`` in this engine's space (no copy when possible)."""
        return self.xp.asarray(array)

    def from_host(self, array):
        """Fresh engine-space copy of a host array (an H2D transfer)."""
        return self.xp.array(array, copy=True)

    def to_host(self, array) -> numpy.ndarray:
        """Host view of an engine array (no copy when already on host)."""
        return numpy.asarray(array)

    def to_host_copy(self, array) -> numpy.ndarray:
        """Fresh host copy of an engine array (a D2H transfer)."""
        return numpy.array(self.to_host(array), copy=True)

    def synchronize(self) -> None:
        """Block until queued device work is complete (no-op on host)."""

    # -- kernel-shaping knobs ------------------------------------------------

    def slot_order(self, width: int) -> range:
        """Order ELL slots are accumulated in by the gather kernels.

        The numpy engine accumulates slot 0 first — the exact order of the
        reference loop, preserving bit-identity.  Device-flavored engines
        may reassociate (see :class:`FakeGpuEngine`).
        """
        return range(width)

    def poison(self, array, flat_index: int) -> None:
        """Write a NaN at ``flat_index`` (fault-injection hook)."""
        array.flat[flat_index] = float("nan")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ArrayEngine {self.name}>"


class NumpyEngine(ArrayEngine):
    """The default host engine: plain NumPy, bit-identical to history."""

    name = "numpy"


class FakeGpuEngine(ArrayEngine):
    """Deterministic NumPy-backed device stand-in for CI.

    Behaves like a GPU engine at the API boundary — transfers copy, and
    kernels are free to reassociate floating point — while remaining
    fully deterministic, so tests can pin its outputs.  The reversed
    slot order makes its spMM results differ from the numpy engine in
    the last few ULPs, which keeps parity tests honest about tolerance.
    """

    name = "fake-gpu"
    is_device = True

    def asarray(self, array):
        # a "device" array is still host memory; no copy needed
        return self.xp.asarray(array)

    def slot_order(self, width: int) -> range:
        return range(width - 1, -1, -1)


class CupyEngine(ArrayEngine):
    """Real-GPU engine backed by CuPy (optional dependency)."""

    name = "cupy"
    is_device = True
    host_memory = False

    def __init__(self) -> None:
        try:
            import cupy
        except ImportError as exc:  # pragma: no cover - no cupy in CI
            raise EngineUnavailableError(
                "engine 'cupy' requires CuPy (pip install cupy-cuda12x); "
                "use 'numpy' or 'fake-gpu' instead"
            ) from exc
        self.xp = cupy

    def to_host(self, array) -> numpy.ndarray:  # pragma: no cover - no cupy
        if isinstance(array, numpy.ndarray):
            return array
        return self.xp.asnumpy(array)

    def synchronize(self) -> None:  # pragma: no cover - no cupy
        self.xp.cuda.get_current_stream().synchronize()

    def poison(self, array, flat_index: int) -> None:  # pragma: no cover
        array.reshape(-1)[flat_index] = float("nan")


_FACTORIES = {
    "numpy": NumpyEngine,
    "fake-gpu": FakeGpuEngine,
    "cupy": CupyEngine,
}

_lock = threading.Lock()
_instances: dict[str, ArrayEngine] = {}
_default_name: str | None = None


def available_engines() -> tuple[str, ...]:
    """All engine names this build knows about (cupy may still fail)."""
    return ENGINE_NAMES


def engine_available(name: str) -> bool:
    """True when ``name`` can actually be instantiated on this machine."""
    if name not in _FACTORIES:
        return False
    try:
        get_engine(name)
    except EngineUnavailableError:
        return False
    return True


def get_engine(engine: "str | ArrayEngine | None" = None) -> ArrayEngine:
    """Resolve an engine argument to a live :class:`ArrayEngine`.

    ``engine`` may be an engine instance (returned as-is), a registry
    name, or ``None`` — which picks the process default: whatever
    :func:`set_default_engine` installed, else ``$REPRO_ENGINE``, else
    ``"numpy"``.
    """
    if isinstance(engine, ArrayEngine):
        return engine
    name = engine
    if name is None:
        name = _default_name or os.environ.get(ENGINE_ENV) or "numpy"
    factory = _FACTORIES.get(name)
    if factory is None:
        raise SimulationError(
            f"unknown array engine {name!r}; expected one of {ENGINE_NAMES}"
        )
    with _lock:
        instance = _instances.get(name)
        if instance is None:
            instance = factory()  # may raise EngineUnavailableError
            _instances[name] = instance
    return instance


def set_default_engine(engine: "str | ArrayEngine | None") -> "str | None":
    """Install the process-default engine; returns the previous default.

    ``None`` restores environment/``numpy`` resolution.
    """
    global _default_name
    previous = _default_name
    _default_name = None if engine is None else get_engine(engine).name
    return previous


@contextmanager
def use_engine(engine: "str | ArrayEngine"):
    """Scope the process-default engine to a ``with`` block."""
    previous = set_default_engine(engine)
    try:
        yield get_engine(None)
    finally:
        set_default_engine(previous)


def cpu() -> ArrayEngine:
    """Switch the process default to the numpy engine (manyq's ``cpu()``)."""
    set_default_engine("numpy")
    return get_engine(None)


def gpu(allow_fake: bool = False) -> ArrayEngine:
    """Switch the process default to a GPU engine (manyq's ``gpu()``).

    Prefers the real CuPy engine; with ``allow_fake=True`` it falls back
    to the deterministic ``fake-gpu`` engine when CuPy is missing, which
    is the CI-friendly way to exercise the device-flavored code paths.
    """
    try:
        engine = get_engine("cupy")
    except EngineUnavailableError:
        if not allow_fake:
            raise
        engine = get_engine("fake-gpu")
    set_default_engine(engine)
    return engine
