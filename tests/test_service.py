"""Tests for the serving layer: jobs, queue, scheduler, coalescer, service.

The acceptance-critical property — coalesced execution is *bit-identical*
to running each job alone — is exercised property-style over random
circuit/job mixes across three circuit families, plus targeted tests for
admission backpressure, starvation-freedom under sustained high-priority
load, deadline ordering, and per-job-isolation degradation.
"""

import warnings

import numpy as np
import pytest

from repro import BQSimSimulator, BatchSpec, make_circuit
from repro.circuit.inputs import InputBatch, random_batch
from repro.errors import AdmissionError, ServiceError
from repro.gpu.spec import GpuSpec
from repro.service import (
    BatchSimulationService,
    Coalescer,
    FairScheduler,
    JobQueue,
    JobStatus,
    SchedulerPolicy,
    ServiceClient,
    column_budget,
    make_job,
)


class ManualClock:
    """Deterministic service clock the fairness tests advance by hand."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        self.t += dt
        return self.t


def make_service(**kwargs):
    kwargs.setdefault("clock", ManualClock())
    return BatchSimulationService(**kwargs)


# ---------------------------------------------------------------------------
# job model
# ---------------------------------------------------------------------------

def test_job_lifecycle_happy_path():
    job = make_job(0, make_circuit("ghz", 4), random_batch(4, 2, 0))
    assert job.status is JobStatus.PENDING and not job.is_terminal
    job.transition(JobStatus.QUEUED)
    job.transition(JobStatus.COALESCED)
    job.transition(JobStatus.RUNNING)
    job.finish(np.zeros((16, 2)), at=1.0)
    assert job.status is JobStatus.DONE and job.is_terminal
    assert job.history == ["queued", "coalesced", "running", "done"]


def test_job_illegal_transitions_raise():
    job = make_job(0, make_circuit("ghz", 4), random_batch(4, 2, 0))
    with pytest.raises(ServiceError):
        job.transition(JobStatus.RUNNING)  # PENDING cannot skip the queue
    job.transition(JobStatus.QUEUED)
    job.transition(JobStatus.CANCELLED)
    with pytest.raises(ServiceError):
        job.transition(JobStatus.RUNNING)  # terminal states are final


def test_job_ids_are_durable_and_content_addressed():
    circuit = make_circuit("qft", 5)
    batch = random_batch(5, 3, 7)
    a = make_job(4, circuit, batch)
    b = make_job(4, make_circuit("qft", 5), InputBatch(batch.states.copy()))
    assert a.job_id == b.job_id  # same sequence + same content => same id
    assert a.job_id.startswith("job-4-")
    c = make_job(4, circuit, random_batch(5, 3, 8))
    assert c.job_id != a.job_id  # different inputs => different id


def test_job_rejects_mismatched_batch():
    with pytest.raises(ServiceError):
        make_job(0, make_circuit("ghz", 4), random_batch(5, 2, 0))


# ---------------------------------------------------------------------------
# queue: admission control and backpressure
# ---------------------------------------------------------------------------

def test_queue_admits_until_depth_bound_then_rejects():
    clock = ManualClock()
    queue = JobQueue(max_depth=3, clock=clock)
    circuit = make_circuit("ghz", 4)
    for seq in range(3):
        queue.admit(make_job(seq, circuit, random_batch(4, 1, seq)))
    assert queue.depth() == 3
    overflow = make_job(3, circuit, random_batch(4, 1, 3))
    with pytest.raises(AdmissionError) as excinfo:
        queue.admit(overflow)
    assert excinfo.value.depth == 3 and excinfo.value.max_depth == 3
    assert overflow.status is JobStatus.PENDING  # client may retry later
    assert queue.rejected == 1 and queue.admitted == 3


def test_queue_cancel_queued_job():
    queue = JobQueue(max_depth=4, clock=ManualClock())
    job = queue.admit(make_job(0, make_circuit("ghz", 4), random_batch(4, 1, 0)))
    cancelled = queue.cancel(job.job_id)
    assert cancelled.status is JobStatus.CANCELLED
    assert queue.depth() == 0
    with pytest.raises(ServiceError):
        queue.cancel(job.job_id)  # no longer queued


def test_queue_requeue_preserves_aging_credit():
    clock = ManualClock()
    queue = JobQueue(max_depth=4, clock=clock)
    job = queue.admit(make_job(0, make_circuit("ghz", 4), random_batch(4, 1, 0)))
    submitted_at = job.submitted_at
    queue.take([job])
    job.transition(JobStatus.COALESCED)
    clock.advance(5.0)
    queue.requeue([job])
    assert job.status is JobStatus.QUEUED
    assert job.submitted_at == submitted_at  # seniority survives


# ---------------------------------------------------------------------------
# scheduler: fairness and deadlines
# ---------------------------------------------------------------------------

def test_policy_rejects_zero_aging():
    with pytest.raises(ServiceError):
        SchedulerPolicy(aging_rate=0.0)


def test_scheduler_orders_by_effective_priority_with_aging():
    scheduler = FairScheduler(SchedulerPolicy(aging_rate=1.0))
    circuit = make_circuit("ghz", 4)
    old_low = make_job(0, circuit, random_batch(4, 1, 0))
    old_low.priority, old_low.submitted_at = 0, 0.0
    old_low.transition(JobStatus.QUEUED)
    new_high = make_job(1, circuit, random_batch(4, 1, 1))
    new_high.priority, new_high.submitted_at = 3, 10.0
    new_high.transition(JobStatus.QUEUED)
    # at t=10: low has aged to 10 effective, beating static 3
    assert scheduler.select([new_high, old_low], now=10.0) is old_low
    # at t=1: the high static priority still wins
    new_high.submitted_at = 1.0
    assert scheduler.select([new_high, old_low], now=1.0) is new_high


def test_scheduler_deadline_urgent_lane_beats_priority():
    scheduler = FairScheduler(SchedulerPolicy(aging_rate=1.0, urgent_window=5.0))
    circuit = make_circuit("ghz", 4)
    high = make_job(0, circuit, random_batch(4, 1, 0))
    high.priority = 100
    high.transition(JobStatus.QUEUED)
    urgent = make_job(1, circuit, random_batch(4, 1, 1))
    urgent.priority, urgent.deadline = 0, 3.0
    urgent.transition(JobStatus.QUEUED)
    assert scheduler.select([high, urgent], now=0.0) is urgent
    # a distant deadline is not urgent: priority decides again
    urgent.deadline = 100.0
    assert scheduler.select([high, urgent], now=0.0) is high


def test_starvation_freedom_under_sustained_high_priority_load():
    """A priority-0 job completes despite a continuous priority-9 stream."""
    clock = ManualClock()
    service = make_service(
        clock=clock, max_depth=64,
        policy=SchedulerPolicy(aging_rate=1.0),
    )
    low_circuit = make_circuit("ghz", 4)
    high_circuit = make_circuit("qft", 4)
    low = service.submit(low_circuit, num_inputs=1, priority=0)
    rounds_until_done = None
    for round_no in range(30):
        service.submit(high_circuit, num_inputs=1, priority=9)
        clock.advance(1.0)
        service.step()
        if low.status is JobStatus.DONE:
            rounds_until_done = round_no + 1
            break
    # aging_rate=1: after ~9 seconds of wait the low job outranks fresh
    # priority-9 arrivals, so it must complete within a bounded number of
    # rounds — never starve
    assert rounds_until_done is not None and rounds_until_done <= 12


# ---------------------------------------------------------------------------
# coalescer: grouping, budget, packing
# ---------------------------------------------------------------------------

def test_column_budget_respects_device_memory():
    # n=6: one column needs 4 buffers x 64 amplitudes x 16 B = 4096 B
    gpu = GpuSpec(memory_bytes=8 * 4096)
    assert column_budget(gpu, 6) == 8
    assert column_budget(gpu, 6, cap=4) == 4  # explicit cap wins
    assert column_budget(GpuSpec(memory_bytes=1), 6) == 1  # never zero


def test_structurally_equal_circuits_coalesce():
    service = make_service()
    a = service.submit(make_circuit("qft", 5), num_inputs=2)
    b = service.submit(make_circuit("qft", 5), num_inputs=3)
    c = service.submit(make_circuit("ghz", 5), num_inputs=2)
    assert a.group_key == b.group_key  # separate objects, same structure
    assert c.group_key != a.group_key
    service.step()
    assert a.status is JobStatus.DONE and b.status is JobStatus.DONE
    assert c.status is JobStatus.QUEUED  # different plan: different batch
    stats = service.stats()
    assert stats["megabatches"] == 1 and stats["coalesce_factor_max"] == 2


def test_incompatible_options_do_not_coalesce():
    service = make_service()
    a = service.submit(make_circuit("qft", 5), num_inputs=2, options=("hi",))
    b = service.submit(make_circuit("qft", 5), num_inputs=2, options=("lo",))
    assert a.group_key != b.group_key


def test_mega_batch_packing_pads_and_slices_under_budget():
    gpu = GpuSpec(memory_bytes=8 * 4096)  # 8-column budget at n=6
    service = make_service(gpu=gpu, max_depth=32)
    # a 12-column job exceeds the budget alone: packed as 2 slices of 8
    # with 4 pad columns; the 3-column job cannot join (12 + 3 > budget)
    jobs = [
        service.submit(make_circuit("qft", 6), random_batch(6, k, k))
        for k in (12, 3)
    ]
    solo = BQSimSimulator()
    service.drain()
    assert all(job.status is JobStatus.DONE for job in jobs)
    mega = [e for e in service.events if e["event"] == "megabatch"]
    assert all(e["batch_size"] <= 8 for e in mega)
    assert sum(e["columns"] for e in mega) == 15
    padded = [e for e in mega if e["pad"] > 0]
    assert padded, "uneven totals must exercise the padding path"
    # slicing + padding must stay bit-identical to the solo run
    for job in jobs:
        reference = solo.run(
            job.circuit, BatchSpec(1, job.num_inputs), batches=[job.batch]
        ).outputs[0]
        assert np.array_equal(job.result, reference)


def test_scatter_requires_enough_columns():
    service = make_service()
    job = service.submit(make_circuit("ghz", 4), num_inputs=3)
    ranked = service.scheduler.rank(service.queue.jobs(), 0.0)
    group = service.coalescer.build_group(job, ranked)
    with pytest.raises(ServiceError):
        Coalescer.scatter(group, [np.zeros((16, 2))])


# ---------------------------------------------------------------------------
# the acceptance property: coalesced == solo, bit for bit
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 2])
def test_coalesced_outputs_bit_identical_to_solo(seed):
    """Random job mixes across three circuit families: every coalesced
    result must equal the solo run of the same job exactly (no tolerance).
    """
    rng = np.random.default_rng(seed)
    families = ["qft", "ghz", "vqe"]
    service = make_service(num_workers=2, max_depth=64)
    jobs = []
    for i in range(9):
        family = families[int(rng.integers(len(families)))]
        batch = random_batch(5, int(rng.integers(1, 6)), int(rng.integers(1000)))
        jobs.append(
            service.submit(
                make_circuit(family, 5),
                batch,
                priority=int(rng.integers(0, 3)),
            )
        )
    service.drain()
    solo = BQSimSimulator()
    coalesced = 0
    for job in jobs:
        assert job.status is JobStatus.DONE
        reference = solo.run(
            job.circuit,
            BatchSpec(num_batches=1, batch_size=job.num_inputs),
            batches=[job.batch],
        ).outputs[0]
        assert np.array_equal(job.result, reference), (
            f"{job.job_id} ({job.circuit.name}) diverged from solo execution"
        )
        coalesced += job.attempts
    stats = service.stats()
    assert stats["coalesce_factor_max"] >= 2  # the mix must actually coalesce
    assert stats["completed"] == len(jobs)


def test_bit_identical_even_when_budget_forces_padding():
    gpu = GpuSpec(memory_bytes=8 * 4096)  # 8-column budget at n=6
    service = make_service(gpu=gpu)
    batches = [random_batch(6, k, 10 + k) for k in (3, 3, 1)]  # 7 of 8 cols
    jobs = [
        service.submit(make_circuit("qaoa", 6), batch) for batch in batches
    ]
    service.drain()
    solo = BQSimSimulator()
    for job in jobs:
        reference = solo.run(
            job.circuit, BatchSpec(1, job.num_inputs), batches=[job.batch]
        ).outputs[0]
        assert np.array_equal(job.result, reference)


# ---------------------------------------------------------------------------
# degradation: one poisoned job cannot fail its cohort
# ---------------------------------------------------------------------------

def test_poisoned_job_fails_alone_after_degradation():
    service = make_service(simulator_kwargs={"health": "fail"})
    circuit = make_circuit("qft", 5)
    good_a = service.submit(circuit, random_batch(5, 2, 1))
    poison = service.submit(
        circuit, InputBatch(np.full((32, 2), np.nan, dtype=np.complex128))
    )
    good_b = service.submit(circuit, random_batch(5, 3, 2))
    service.drain()
    assert good_a.status is JobStatus.DONE and good_a.solo_retry
    assert good_b.status is JobStatus.DONE and good_b.solo_retry
    assert poison.status is JobStatus.FAILED
    assert "non-finite" in poison.error
    stats = service.stats()
    assert stats["degraded_groups"] == 1
    assert stats["completed"] == 2 and stats["failed"] == 1
    # solo outputs are still bit-identical to a standalone run
    solo = BQSimSimulator(health="fail")
    reference = solo.run(
        circuit, BatchSpec(1, 2), batches=[good_a.batch]
    ).outputs[0]
    assert np.array_equal(good_a.result, reference)


def test_injected_oom_degrades_but_everyone_completes():
    """A one-shot injected OOM fails the mega-batch (no splitting allowed);
    the per-job fallback then completes every member.

    The plan is installed process-wide (not per simulator) so its
    one-fire budget persists across the fallback runs — a
    simulator-scoped plan would re-arm per ``run()`` and fail the solo
    retries too.
    """
    from repro.resilience import set_fault_plan

    set_fault_plan("seed=5,oom=1:1")
    try:
        service = make_service(simulator_kwargs={"max_splits": 0})
        circuit = make_circuit("ghz", 5)
        jobs = [
            service.submit(circuit, random_batch(5, 2, i)) for i in range(3)
        ]
        service.drain()
    finally:
        set_fault_plan(None)
    assert all(job.status is JobStatus.DONE for job in jobs)
    assert all(job.solo_retry for job in jobs)
    assert service.stats()["degraded_groups"] == 1


# ---------------------------------------------------------------------------
# client API and service stats
# ---------------------------------------------------------------------------

def test_client_submit_result_roundtrip():
    client = ServiceClient(clock=ManualClock())
    circuit = make_circuit("qft", 5)
    batch = random_batch(5, 3, 0)
    job_id = client.submit(circuit, batch)
    assert client.status(job_id) is JobStatus.QUEUED
    amplitudes = client.result(job_id)
    reference = BQSimSimulator().run(
        circuit, BatchSpec(1, 3), batches=[batch]
    ).outputs[0]
    assert np.array_equal(amplitudes, reference)
    assert client.status(job_id) is JobStatus.DONE


def test_client_result_raises_for_failed_job():
    client = ServiceClient(
        clock=ManualClock(), simulator_kwargs={"health": "fail"}
    )
    job_id = client.submit(
        make_circuit("ghz", 4),
        InputBatch(np.full((16, 1), np.nan, dtype=np.complex128)),
    )
    with pytest.raises(ServiceError, match="failed"):
        client.result(job_id)


def test_client_unknown_job_raises():
    client = ServiceClient(clock=ManualClock())
    with pytest.raises(ServiceError, match="unknown job"):
        client.status("job-0-deadbeef0000")


def test_service_stats_and_queue_metrics_jsonl(tmp_path):
    service = make_service(num_workers=2)
    circuit = make_circuit("qft", 5)
    for i in range(4):
        service.submit(circuit, random_batch(5, 2, i))
    stats = service.drain()
    assert stats["submitted"] == 4 and stats["completed"] == 4
    assert stats["coalesce_factor_mean"] >= 2  # shared structure coalesced
    assert stats["megabatches"] >= 1
    assert stats["plan_cache"]["misses"] >= 1
    assert 0 < stats["occupancy_mean"] <= 1.0
    path = tmp_path / "queue_metrics.jsonl"
    count = service.write_queue_metrics(path)
    import json

    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == count >= 1
    mega = [line for line in lines if line["event"] == "megabatch"]
    assert mega and all(
        {"coalesce_factor", "occupancy", "queue_depth", "wait_max_s"}
        <= set(line) for line in mega
    )


def test_service_metrics_registry_counters():
    from repro.obs import get_metrics

    metrics = get_metrics()
    mark = metrics.mark()
    service = make_service()
    service.submit(make_circuit("ghz", 4), num_inputs=2)
    service.submit(make_circuit("ghz", 4), num_inputs=1)
    service.drain()
    delta = metrics.delta(mark)
    assert delta["counters"]["service.submitted"] == 2
    assert delta["counters"]["service.completed"] == 2
    assert delta["counters"]["service.megabatches"] == 1
    # delta histograms diff count/sum (min/max are whole-process)
    factor = delta["histograms"]["service.coalesce_factor"]
    assert factor["count"] == 1 and factor["sum"] == 2


def test_service_tracer_spans(tmp_path):
    from repro.obs import tracing, write_chrome_trace, validate_chrome_trace
    import json

    with tracing() as tracer:
        mark = tracer.mark()
        service = make_service()
        service.submit(make_circuit("qft", 4), num_inputs=2)
        service.drain()
        spans = tracer.spans_since(mark)
    names = {span.name for span in spans}
    assert "service.submit" in names and "service.megabatch" in names
    path = tmp_path / "service_trace.json"
    write_chrome_trace(path, spans)
    doc = json.loads(path.read_text())
    assert not validate_chrome_trace(doc)


def test_cancel_through_service():
    service = make_service()
    job = service.submit(make_circuit("ghz", 4), num_inputs=1)
    service.cancel(job.job_id)
    assert job.status is JobStatus.CANCELLED
    assert service.step() == 0  # nothing left to dispatch
    assert service.stats()["cancelled"] == 1
