"""Structured span tracing for the simulation pipelines.

A :class:`Tracer` records *nested spans* — named intervals of host wall
time with arbitrary key/value attributes — from every pipeline layer
(fusion, conversion, execution, caching).  Spans nest per thread: the span
opened innermost becomes the parent of spans opened inside it, which is
what lets a trace viewer render the pipeline as a call tree.

Design constraints, in order of importance:

* **near-zero cost when disabled** — the default process-global tracer
  starts disabled (unless ``$REPRO_TRACE`` is set); ``span()`` then returns
  a shared no-op context manager without allocating a span, so hot paths
  can stay instrumented permanently;
* **thread-safe** — finished spans append under a lock, the active-span
  stack is thread-local, and each span records its thread name so exported
  traces keep one track per thread;
* **composable** — :class:`~repro.profile.StageTimer` is a thin view over
  the global tracer: every timed stage is also a span, so the per-stage
  wall totals and the trace always agree.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: set ``REPRO_TRACE=1`` to enable the default tracer from process start
TRACE_ENV = "REPRO_TRACE"


@dataclass
class Span:
    """One finished (or still-open) traced interval."""

    name: str
    span_id: int
    parent_id: int | None
    thread: str
    start: float  # perf_counter seconds, relative to the tracer epoch
    end: float = -1.0
    attrs: dict = field(default_factory=dict)

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        return max(self.end - self.start, 0.0)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "start_s": self.start,
            "end_s": self.end,
            "duration_s": self.duration,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """Shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _NullContext:
    """Reusable no-op context manager (no generator allocation per call)."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class Tracer:
    """Thread-safe recorder of nested spans.

    ``with tracer.span("convert", dd_edges=40) as sp: sp.set(width=3)``
    records one span; spans opened inside the block become its children.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        self.epoch = time.perf_counter()

    # -- recording ----------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def _record(self, name: str, attrs: dict):
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent,
            thread=threading.current_thread().name,
            start=time.perf_counter() - self.epoch,
            attrs=attrs,
        )
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()
            span.end = time.perf_counter() - self.epoch
            with self._lock:
                self._spans.append(span)

    def span(self, name: str, **attrs):
        """Context manager recording one nested span (no-op when disabled)."""
        if not self.enabled:
            return _NULL_CONTEXT
        return self._record(name, attrs)

    # -- retrieval ----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def mark(self) -> int:
        """Position marker; pass to :meth:`spans_since` to scope one run."""
        with self._lock:
            return len(self._spans)

    def spans_since(self, mark: int = 0) -> list[Span]:
        """Spans finished since ``mark`` (completion order)."""
        with self._lock:
            return list(self._spans[mark:])

    def spans(self) -> list[Span]:
        return self.spans_since(0)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    # -- cross-process merge -------------------------------------------------

    def absorb(
        self,
        span_dicts: list[dict],
        thread: str | None = None,
        offset: float = 0.0,
    ) -> list[Span]:
        """Re-record spans serialized in another process (no-op when
        disabled).

        The service's process worker pool traces each task inside the
        worker, ships the spans back as :meth:`Span.to_dict` records, and
        the parent absorbs them here so one exported trace shows every
        worker.  Span ids are remapped into this tracer's id space
        (parent/child links preserved), ``thread`` relabels the track
        (e.g. ``pool-worker-3`` — one Perfetto track per worker), and
        ``offset`` shifts the foreign epoch onto this tracer's timeline
        (pass the dispatch timestamp relative to this tracer's epoch).
        """
        if not self.enabled or not span_dicts:
            return []
        remap = {d["span_id"]: next(self._ids) for d in span_dicts}
        absorbed = [
            Span(
                name=d["name"],
                span_id=remap[d["span_id"]],
                parent_id=remap.get(d["parent_id"]),
                thread=thread or d["thread"],
                start=d["start_s"] + offset,
                end=d["end_s"] + offset,
                attrs=dict(d["attrs"]),
            )
            for d in span_dicts
        ]
        with self._lock:
            self._spans.extend(absorbed)
        return absorbed


# ---------------------------------------------------------------------------
# process-global default tracer
# ---------------------------------------------------------------------------

_global_tracer = Tracer(enabled=bool(os.environ.get(TRACE_ENV)))


def get_tracer() -> Tracer:
    """The process-global default tracer (disabled unless ``$REPRO_TRACE``)."""
    return _global_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the global tracer (returns the previous one)."""
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer
    return previous


@contextmanager
def tracing(tracer: Tracer | None = None):
    """Enable tracing for a block: ``with tracing() as tracer: ...``.

    Installs ``tracer`` (or a fresh enabled one) as the global default and
    restores the previous tracer afterwards.
    """
    active = tracer or Tracer(enabled=True)
    active.enabled = True
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)
