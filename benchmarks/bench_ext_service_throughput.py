"""Extension bench — batch-service coalescing vs one-job-per-run.

The serving-layer acceptance check: on a shared-structure workload (many
small jobs over the same circuit families), the coalescer packs compatible
jobs into BQCS mega-batches and beats a baseline service that is forced to
run every job alone (``max_jobs_per_batch=1``).  Larger effective batches
amortize plan transfer and fill the modeled copy/compute pipeline, which
is the core BQSim batching claim applied at the serving layer.

Asserts:

* coalescing actually happened (mean coalesce factor > 1, reported);
* coalesced modeled time beats solo modeled time (speedup > 1);
* both modes produce bit-identical amplitudes for every job.
"""

import numpy as np
from conftest import run_once

from repro.circuit.generators import make_circuit
from repro.service import BatchSimulationService

FAMILIES = ("qft", "ghz", "vqe")
NUM_QUBITS = 6
JOBS_PER_FAMILY = 6
INPUTS_PER_JOB = 4


def submit_workload(service: BatchSimulationService) -> list[str]:
    """The shared-structure workload: many small jobs, few distinct plans."""
    job_ids = []
    for _ in range(JOBS_PER_FAMILY):
        for family in FAMILIES:
            circuit = make_circuit(family, NUM_QUBITS)
            job = service.submit(circuit, num_inputs=INPUTS_PER_JOB)
            job_ids.append(job.job_id)
    service.drain()
    return job_ids


def service_throughput() -> dict:
    coalesced = BatchSimulationService(max_depth=64)
    solo = BatchSimulationService(max_depth=64, max_jobs_per_batch=1)
    ids_c = submit_workload(coalesced)
    ids_s = submit_workload(solo)
    for jid_c, jid_s in zip(ids_c, ids_s):
        a = coalesced.job(jid_c).result
        b = solo.job(jid_s).result
        assert a is not None and np.array_equal(a, b)
    stats_c = coalesced.stats()
    stats_s = solo.stats()
    return {
        "jobs": len(ids_c),
        "coalesce_factor_mean": stats_c["coalesce_factor_mean"],
        "coalesce_factor_max": stats_c["coalesce_factor_max"],
        "megabatches_coalesced": stats_c["megabatches"],
        "megabatches_solo": stats_s["megabatches"],
        "coalesced_modeled_s": stats_c["modeled_time_s"],
        "solo_modeled_s": stats_s["modeled_time_s"],
        "coalesced_inputs_per_s": stats_c["modeled_throughput_inputs_per_s"],
        "solo_inputs_per_s": stats_s["modeled_throughput_inputs_per_s"],
        "speedup": stats_s["modeled_time_s"] / stats_c["modeled_time_s"],
    }


def test_service_coalescing_beats_solo(benchmark, scale):
    row = run_once(benchmark, service_throughput)
    assert row["coalesce_factor_mean"] > 1
    assert row["megabatches_coalesced"] < row["megabatches_solo"]
    assert row["speedup"] > 1.0, row
