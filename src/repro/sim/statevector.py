"""Dense reference state-vector simulation.

This is the ground truth every other simulator in the package is validated
against, and also the numeric core reused by the baseline models.  It applies
gates by amplitude-index manipulation (Equations 2 and 3 of the paper)
without ever building a ``2^n x 2^n`` matrix.

States are stored column-wise: ``states[amplitude, input]``, so one call
updates a whole batch at once.  The numerics run through the kernel engine
(:mod:`repro.kernels`): gather-table construction stays on the host, the
gather + ``einsum`` apply executes on whatever :class:`ArrayEngine` the
caller selects (numpy by default — bit-identical to the historical code).
"""

from __future__ import annotations

import numpy as np

from ..circuit import Circuit, InputBatch
from ..circuit.gates import Gate
from ..errors import SimulationError
from ..kernels import ops as _kernels
from ..kernels.engine import ArrayEngine, get_engine

# host-side gather-table builder shared with the kernel layer
_gather_axes = _kernels.gather_axes


def apply_gate(
    states: np.ndarray,
    gate: Gate,
    num_qubits: int,
    engine: "str | ArrayEngine | None" = None,
) -> np.ndarray:
    """Apply one gate in place to a ``(2^n, batch)`` array; returns it."""
    if states.shape[0] != (1 << num_qubits):
        raise SimulationError(
            f"state dim {states.shape[0]} does not match n={num_qubits}"
        )
    eng = get_engine(engine)
    matrix = gate.matrix()
    idx = _gather_axes(num_qubits, gate.all_qubits)
    if gate.controls:
        # keep only rows where every control bit is 1: those are the local
        # indices whose control bits (high local bits) are all set
        k_t = len(gate.qubits)
        ctrl_mask = ((1 << len(gate.controls)) - 1) << k_t
        idx = idx[:, ctrl_mask : ctrl_mask + (1 << k_t)]
    return _kernels.dense_gate_apply(
        eng, eng.asarray(matrix), states, eng.asarray(idx)
    )


def simulate_batch(
    circuit: Circuit,
    batch: InputBatch,
    copy: bool = True,
    engine: "str | ArrayEngine | None" = None,
) -> np.ndarray:
    """Run the whole circuit over a batch; returns the output amplitudes."""
    if batch.num_qubits != circuit.num_qubits:
        raise SimulationError(
            f"batch has {batch.num_qubits} qubits, circuit {circuit.num_qubits}"
        )
    eng = get_engine(engine)
    states = batch.states.copy() if copy else batch.states
    if eng.is_device:
        states = eng.from_host(states)
    for gate in circuit.gates:
        apply_gate(states, gate, circuit.num_qubits, engine=eng)
    return eng.to_host(states)


def simulate_state(
    circuit: Circuit,
    state: np.ndarray | None = None,
    engine: "str | ArrayEngine | None" = None,
) -> np.ndarray:
    """Single-input convenience wrapper; defaults to ``|0...0>``."""
    eng = get_engine(engine)
    dim = 1 << circuit.num_qubits
    if state is None:
        col = eng.to_host(_kernels.statevector_init(eng, circuit.num_qubits, 1))
    else:
        col = np.ascontiguousarray(state, dtype=np.complex128).reshape(dim, 1)
    return simulate_batch(circuit, InputBatch(col), engine=eng)[:, 0]
