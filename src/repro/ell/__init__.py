"""ELL sparse format, DD-to-ELL converters, and the spMM kernel math."""

from .alternatives import (
    COOMatrix,
    CSRMatrix,
    coo_from_ell,
    coo_spmm,
    csr_from_ell,
    csr_spmm,
)
from .convert import (
    ConversionResult,
    DEFAULT_TAU,
    ell_from_dd,
    ell_from_dd_cpu,
    ell_from_flat_gpu,
)
from .format import ELLMatrix, ell_from_dense
from .persist import EllBundle, bundle_from_plan, load_bundle, save_bundle
from .spmm import ell_spmm, spmm_bytes, spmm_macs

__all__ = [
    "bundle_from_plan",
    "ConversionResult",
    "coo_from_ell",
    "coo_spmm",
    "COOMatrix",
    "csr_from_ell",
    "csr_spmm",
    "CSRMatrix",
    "DEFAULT_TAU",
    "ell_from_dd",
    "ell_from_dd_cpu",
    "ell_from_dense",
    "ell_from_flat_gpu",
    "ell_spmm",
    "EllBundle",
    "ELLMatrix",
    "load_bundle",
    "save_bundle",
    "spmm_bytes",
    "spmm_macs",
]
