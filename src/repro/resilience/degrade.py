"""Graceful degradation: the spMM backend fallback ladder.

The three spMM backends implement identical math at different speeds
(``csr`` → ``numpy`` → ``loop``, fastest first).  A :class:`BackendLadder`
starts at the fastest available backend and *demotes permanently* (for the
run that owns it) whenever the current backend fails, recording a
``demotion`` event per step — so a broken SciPy build, an injected backend
fault, or a runtime error in the fast path degrades throughput instead of
killing the batch.

The companion degradation mechanism — OOM-aware adaptive batch splitting —
lives in the simulators themselves (see ``BQSimSimulator._execute_resilient``),
because splitting must recompute buffer assignments.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..kernels.engine import get_engine
from .events import get_resilience_log
from .faults import get_fault_injector

#: the demotion order, fastest first
BACKEND_CHAIN = ("csr", "numpy", "loop")

#: exception types that demote the current backend (anything else propagates)
_DEMOTABLE = (ReproError, RuntimeError, FloatingPointError, MemoryError)


class BackendLadder:
    """Per-run spMM backend state with demote-on-failure semantics."""

    def __init__(self, start: str | None = None):
        if start is None:
            # lazy import: repro.ell.spmm imports this package's fault hooks
            from ..ell.spmm import default_backend

            start = default_backend()
        if start not in BACKEND_CHAIN:
            start = BACKEND_CHAIN[-1]
        self._chain = list(BACKEND_CHAIN[BACKEND_CHAIN.index(start):])

    @property
    def backend(self) -> str:
        """The currently active backend."""
        return self._chain[0]

    @property
    def demoted(self) -> bool:
        return self._chain[0] != BACKEND_CHAIN[0] and len(self._chain) < len(
            BACKEND_CHAIN
        )

    def apply(
        self,
        ell,
        states: np.ndarray,
        out: np.ndarray | None = None,
        engine=None,
    ):
        """``ell_spmm`` through the ladder, demoting until a backend works.

        When even the reference loop fails, the last error propagates — by
        then it is a genuine input problem, not a backend one.
        """
        from ..ell.spmm import ell_spmm

        while True:
            try:
                return ell_spmm(
                    ell, states, out=out, backend=self._chain[0], engine=engine
                )
            except _DEMOTABLE as exc:
                if len(self._chain) == 1:
                    raise
                failed = self._chain.pop(0)
                get_resilience_log().record(
                    "demotion",
                    site=f"spmm.{failed}",
                    to=self._chain[0],
                    reason=str(exc),
                )


def apply_with_recovery(
    ladder: BackendLadder,
    ell,
    states: np.ndarray,
    session=None,
    out: np.ndarray | None = None,
    engine=None,
) -> np.ndarray:
    """Ladder apply plus bit-flip (non-finite) detection and re-apply.

    Host-side simulators have no device-kernel wrapper to retry for them, so
    this helper re-runs the pure apply when the result carries injected
    non-finite values, bounded by the optional
    :class:`~repro.resilience.retry.RetrySession`.  When retries are
    exhausted the corrupted block is returned as-is for the health guard to
    report.  The non-finite scan only runs while an injector is active.
    """
    injector = get_fault_injector()
    xp = get_engine(engine).xp
    attempt = 0
    while True:
        attempt += 1
        result = ladder.apply(ell, states, out=out, engine=engine)
        if injector is None or bool(xp.all(xp.isfinite(result))):
            return result
        if session is None or session.next_backoff("bitflip", attempt) is None:
            return result
