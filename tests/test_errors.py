"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CircuitError,
    ConversionError,
    DDError,
    DeviceError,
    FusionError,
    QasmError,
    ReproError,
    SimulationError,
)

ALL_ERRORS = [
    CircuitError,
    ConversionError,
    DDError,
    DeviceError,
    FusionError,
    QasmError,
    SimulationError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_errors_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    assert issubclass(exc, Exception)


def test_qasm_error_carries_line_number():
    err = QasmError("bad token", line=17)
    assert err.line == 17
    assert "line 17" in str(err)
    plain = QasmError("no line info")
    assert plain.line is None
    assert "no line info" in str(plain)


def test_catching_base_catches_everything():
    for exc in ALL_ERRORS:
        with pytest.raises(ReproError):
            raise exc("boom")
