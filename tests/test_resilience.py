"""Tests for the resilience subsystem: deterministic fault injection,
retries, degradation, checkpoint/resume, and the numerical health guard."""

import numpy as np
import pytest
from dataclasses import replace

from repro.circuit import generate_batches
from repro.circuit.generators import random_circuit
from repro.ell.format import ELLMatrix
from repro.ell.persist import load_compiled_plan
from repro.errors import (
    CheckpointError,
    ConversionError,
    MemoryFault,
    NumericalError,
    SimulationError,
    TransientFault,
)
from repro.gpu.device import VirtualGPU
from repro.gpu.memory import MemoryPool
from repro.gpu.spec import GpuSpec
from repro.resilience import (
    BackendLadder,
    FaultInjector,
    FaultPlan,
    HealthPolicy,
    RetryPolicy,
    RetrySession,
    apply_with_recovery,
    check_state_block,
    fault_injection,
    get_resilience_log,
    load_checkpoint,
)
from repro.sim import BQSimSimulator, BatchSpec


N = 4


@pytest.fixture
def circuit():
    return random_circuit(N, 14, seed=3)


@pytest.fixture
def spec():
    return BatchSpec(num_batches=4, batch_size=4, seed=2)


@pytest.fixture
def batches(spec):
    return list(
        generate_batches(N, spec.num_batches, spec.batch_size, spec.seed)
    )


@pytest.fixture
def reference(circuit, spec, batches):
    """A fault-free run everything else is compared against."""
    return BQSimSimulator().run(circuit, spec, batches=batches)


# -- fault plans and injectors -------------------------------------------------


def test_fault_plan_parse_and_describe_round_trip():
    plan = FaultPlan.parse("seed=5, kernel=0.05:3:2, oom=1:1, copy=0.01")
    assert plan.seed == 5
    kernel = plan.specs[0]
    assert (kernel.site, kernel.rate, kernel.max_fires, kernel.skip) == (
        "kernel", 0.05, 3, 2,
    )
    assert FaultPlan.parse(plan.describe()) == plan


@pytest.mark.parametrize(
    "text,match",
    [
        ("bogus=0.1", "unknown fault site"),
        ("kernel=2", "outside"),
        ("kernel", "expected key=value"),
        ("kernel=x", "bad fault entry"),
    ],
)
def test_fault_plan_rejects_malformed_entries(text, match):
    with pytest.raises(SimulationError, match=match):
        FaultPlan.parse(text)


def test_injection_streams_are_independent_per_site():
    """Site decisions depend only on that site's query order, never on how
    other sites were interleaved — the core determinism property."""
    plan = FaultPlan.parse("seed=9,kernel=0.5,copy=0.5")
    a = FaultInjector(plan)
    seq_a = [a.check("kernel") for _ in range(30)]
    b = FaultInjector(plan)
    seq_b = []
    for _ in range(30):
        b.check("copy")
        seq_b.append(b.check("kernel"))
        b.check("copy")
    assert seq_a == seq_b
    assert any(seq_a) and not all(seq_a)


def test_injector_honours_skip_and_max_fires():
    injector = FaultInjector(FaultPlan.parse("kernel=1:2:3"))
    decisions = [injector.check("kernel") for _ in range(8)]
    assert decisions == [False] * 3 + [True, True] + [False] * 3


# -- retry policy --------------------------------------------------------------


def test_retry_backoff_grows_and_exhausts():
    session = RetrySession(RetryPolicy(max_attempts=3), seed=1)
    first = session.next_backoff("kernel", 1)
    second = session.next_backoff("kernel", 2)
    assert 0 < first < second
    assert session.next_backoff("kernel", 3) is None


def test_retry_run_budget_caps_total_retries():
    session = RetrySession(RetryPolicy(max_attempts=10, run_budget=2))
    assert session.next_backoff("copy", 1) is not None
    assert session.next_backoff("copy", 1) is not None
    assert session.next_backoff("copy", 1) is None


# -- virtual device fault handling ---------------------------------------------


def test_kernel_fault_is_retried_once_and_body_runs_once():
    with fault_injection("seed=1,kernel=1:1"):
        device = VirtualGPU(GpuSpec())
        calls = []
        device.kernel("k0", lambda: calls.append(1), macs=1e6, bytes_moved=1e6)
        timeline = device.run()
    assert calls == [1]  # injected fault fires *before* the body
    assert timeline.total_retries() == 1


def test_copy_fault_is_retried_and_data_survives(rng):
    data = rng.standard_normal((4, 4))
    with fault_injection("seed=1,copy=1:1"):
        device = VirtualGPU(GpuSpec())
        buffer = device.alloc("x", data.nbytes)
        device.h2d(buffer, data)
        timeline = device.run()
    assert np.array_equal(buffer.array, data)
    assert timeline.total_retries() == 1


def test_persistent_kernel_fault_exhausts_retries():
    with fault_injection("seed=1,kernel=1"):
        device = VirtualGPU(GpuSpec())
        with pytest.raises(TransientFault):
            device.kernel("k0", lambda: None, macs=1.0, bytes_moved=1.0)


def test_injected_oom_raises_memory_fault_on_device_and_pool():
    with fault_injection("oom=1"):
        device = VirtualGPU(GpuSpec())
        with pytest.raises(MemoryFault, match="injected"):
            device.alloc("x", 1024)
        pool = MemoryPool(1 << 20)
        with pytest.raises(MemoryFault, match="injected"):
            pool.allocate(64, tag="y")


# -- degradation ladder --------------------------------------------------------


def _hadamard_ell() -> ELLMatrix:
    s = 1 / np.sqrt(2)
    values = np.array([[s, s], [s, -s]], dtype=np.complex128)
    cols = np.array([[0, 1], [0, 1]], dtype=np.int64)
    return ELLMatrix(1, values, cols)


def test_ladder_demotes_on_backend_fault_and_sticks():
    ell = _hadamard_ell()
    states = np.eye(2, dtype=np.complex128)
    expected = np.array([[1, 1], [1, -1]], dtype=np.complex128) / np.sqrt(2)
    with fault_injection("spmm=1:1"):
        ladder = BackendLadder()
        start = ladder.backend
        out = ladder.apply(ell, states)
    assert np.allclose(out, expected)
    assert ladder.demoted and ladder.backend != start


def test_apply_with_recovery_heals_injected_bitflip():
    ell = _hadamard_ell()
    states = np.eye(2, dtype=np.complex128)
    with fault_injection("seed=2,bitflip=1:1"):
        ladder = BackendLadder()
        out = apply_with_recovery(ladder, ell, states, RetrySession())
    assert np.all(np.isfinite(out))
    expected = np.array([[1, 1], [1, -1]], dtype=np.complex128) / np.sqrt(2)
    assert np.allclose(out, expected)


# -- end-to-end healing through the BQSim pipeline -----------------------------


def test_transient_kernel_faults_heal_bit_identically(
    circuit, spec, batches, reference
):
    sim = BQSimSimulator(faults="seed=7,kernel=0.2,copy=0.1")
    result = sim.run(circuit, spec, batches=batches)
    for out, ref in zip(result.outputs, reference.outputs):
        assert np.array_equal(out, ref)
    resilience = result.stats["resilience"]
    assert resilience["faults"] >= 1
    assert resilience["retries"] >= 1
    assert resilience["task_retries"] >= 1
    # retries extend the modeled makespan, they are never free
    assert result.modeled_time > reference.modeled_time


def test_injected_bitflip_is_detected_and_healed(
    circuit, spec, batches, reference
):
    sim = BQSimSimulator(faults="seed=2,bitflip=1:1")
    result = sim.run(circuit, spec, batches=batches)
    for out, ref in zip(result.outputs, reference.outputs):
        assert np.array_equal(out, ref)
    assert result.stats["resilience"]["retries"] >= 1


def test_spmm_backend_fault_demotes_ladder(circuit, spec, batches, reference):
    sim = BQSimSimulator(faults="spmm=1:1")
    result = sim.run(circuit, spec, batches=batches)
    for out, ref in zip(result.outputs, reference.outputs):
        assert np.allclose(out, ref, atol=1e-10)
    resilience = result.stats["resilience"]
    assert resilience["demotions"] == 1
    assert resilience["demoted"]
    assert resilience["backend"] != reference.stats["resilience"]["backend"]


def test_injected_oom_triggers_batch_split(circuit, spec, batches, reference):
    sim = BQSimSimulator(faults="seed=4,oom=1:1", max_splits=2)
    result = sim.run(circuit, spec, batches=batches)
    assert result.stats["resilience"]["batch_split"] == 2
    for out, ref in zip(result.outputs, reference.outputs):
        assert np.allclose(out, ref, atol=1e-10)


def test_capacity_overflow_splits_batches(circuit, spec, batches, reference):
    # 4 buffers of 16x8 amplitudes need 8192 B; 6000 B forces one split
    tiny = replace(GpuSpec(), memory_bytes=6000)
    wide = BatchSpec(num_batches=2, batch_size=8, seed=2)
    wide_batches = list(generate_batches(N, 2, 8, 2))
    ref = BQSimSimulator().run(circuit, wide, batches=wide_batches)
    sim = BQSimSimulator(gpu=tiny, max_splits=3)
    result = sim.run(circuit, wide, batches=wide_batches)
    assert result.stats["resilience"]["batch_split"] == 2
    for out, expected in zip(result.outputs, ref.outputs):
        assert np.allclose(out, expected, atol=1e-10)


def test_capacity_overflow_without_splits_still_raises(circuit, spec, batches):
    sim = BQSimSimulator(gpu=replace(GpuSpec(), memory_bytes=6000))
    wide = BatchSpec(num_batches=2, batch_size=8, seed=2)
    with pytest.raises(MemoryFault, match="exceed device memory"):
        sim.run(circuit, wide, batches=list(generate_batches(N, 2, 8, 2)))


def test_clean_run_reports_empty_resilience_summary(reference):
    resilience = reference.stats["resilience"]
    assert resilience["counts"] == {}
    assert resilience["events"] == []
    assert resilience["batch_split"] == 1
    assert resilience["task_retries"] == 0


# -- determinism ---------------------------------------------------------------


def test_faulted_runs_are_bit_identical_and_log_identically(
    circuit, spec, batches
):
    plan = "seed=3,kernel=0.15,bitflip=0.1:2,copy=0.05"
    results = [
        BQSimSimulator(faults=plan).run(circuit, spec, batches=batches)
        for _ in range(2)
    ]
    a, b = results
    for out_a, out_b in zip(a.outputs, b.outputs):
        assert np.array_equal(out_a, out_b)
    assert a.stats["resilience"]["events"] == b.stats["resilience"]["events"]
    assert a.stats["resilience"]["events"], "the plan should actually fire"
    assert a.modeled_time == b.modeled_time


# -- plan-cache corruption and transient I/O -----------------------------------


def test_injected_cache_corruption_quarantines_and_rebuilds(
    tmp_path, circuit, spec, batches
):
    cache = tmp_path / "plans"
    BQSimSimulator(cache_dir=cache).run(circuit, spec, batches=batches)
    sim = BQSimSimulator(cache_dir=cache, faults="cache=1:1")
    with pytest.warns(UserWarning, match="quarantined corrupt plan archive"):
        result = sim.run(circuit, spec, batches=batches)
    assert result.stats["plan_source"] == "built"
    assert result.stats["plan_cache"]["quarantined"] == 1
    assert result.stats["resilience"]["quarantines"] == 1
    assert len(list((cache / "corrupt").iterdir())) == 1
    # the rebuild re-saved a healthy archive alongside the quarantined one
    assert len(sim._plans.disk_entries()) == 1


def test_transient_cache_io_fault_degrades_to_a_miss(
    tmp_path, circuit, spec, batches
):
    cache = tmp_path / "plans"
    BQSimSimulator(cache_dir=cache).run(circuit, spec, batches=batches)
    sim = BQSimSimulator(cache_dir=cache, faults="cache_io=1")
    result = sim.run(circuit, spec, batches=batches)
    assert result.stats["plan_source"] == "built"
    resilience = result.stats["resilience"]
    assert resilience["retries"] == 2  # attempts 1 and 2 of max_attempts=3
    assert resilience["counts"]["retry_exhausted"] == 1
    assert result.stats["plan_cache"]["quarantined"] == 0


# -- typed persistence errors --------------------------------------------------


def test_truncated_plan_archive_raises_typed_error(tmp_path):
    path = tmp_path / "plan.npz"
    path.write_bytes(b"PK\x03\x04 this is not a real zip archive")
    with pytest.raises(ConversionError, match="unreadable"):
        load_compiled_plan(path)


def test_missing_plan_entry_names_the_key(tmp_path):
    path = tmp_path / "plan.npz"
    np.savez(path, format_version=np.array(2))
    with pytest.raises(ConversionError) as excinfo:
        load_compiled_plan(path)
    assert excinfo.value.key == "num_qubits"


def test_newer_plan_version_asks_for_an_upgrade(tmp_path):
    path = tmp_path / "plan.npz"
    np.savez(path, format_version=np.array(99))
    with pytest.raises(ConversionError, match="newer than supported") as excinfo:
        load_compiled_plan(path)
    assert excinfo.value.version == 99


def test_older_plan_version_is_rejected_with_version(tmp_path):
    path = tmp_path / "plan.npz"
    np.savez(path, format_version=np.array(1))
    with pytest.raises(ConversionError, match="not supported") as excinfo:
        load_compiled_plan(path)
    assert excinfo.value.version == 1


# -- checkpoint / resume -------------------------------------------------------


def test_killed_run_resumes_from_checkpoint_identically(
    tmp_path, circuit, spec, batches, reference
):
    kernels = reference.stats["fused_gates"]
    ckpt_dir = tmp_path / "ckpt"
    # arm the kernel site after exactly two batches' worth of launches, with
    # unlimited fires: every retry fails too, so the run dies in batch 2
    killer = BQSimSimulator(
        checkpoint_dir=ckpt_dir,
        faults=f"seed=5,kernel=1::{2 * kernels}",
    )
    with pytest.raises(TransientFault):
        killer.run(circuit, spec, batches=batches)
    paths = list(ckpt_dir.glob("*.ckpt.npz"))
    assert len(paths) == 1
    assert load_checkpoint(paths[0]).completed == 2

    result = BQSimSimulator().run(
        circuit, spec, batches=batches, resume=paths[0]
    )
    assert result.stats["resilience"]["resumed_batches"] == 2
    assert len(result.outputs) == spec.num_batches
    for out, ref in zip(result.outputs, reference.outputs):
        assert np.array_equal(out, ref)


def test_resume_rejects_mismatched_spec(tmp_path, circuit, spec, batches):
    ckpt_dir = tmp_path / "ckpt"
    BQSimSimulator(checkpoint_dir=ckpt_dir).run(
        circuit, spec, batches=batches
    )
    path = next(ckpt_dir.glob("*.ckpt.npz"))
    other = BatchSpec(num_batches=spec.num_batches, batch_size=8, seed=2)
    with pytest.raises(CheckpointError, match="batch spec"):
        BQSimSimulator().run(circuit, other, resume=path)


def test_resume_rejects_mismatched_plan(tmp_path, circuit, spec, batches):
    ckpt_dir = tmp_path / "ckpt"
    BQSimSimulator(checkpoint_dir=ckpt_dir).run(
        circuit, spec, batches=batches
    )
    path = next(ckpt_dir.glob("*.ckpt.npz"))
    other = random_circuit(N, 14, seed=99)
    with pytest.raises(CheckpointError, match="does not match"):
        BQSimSimulator().run(other, spec, resume=path)


def test_resume_requires_execution(tmp_path, circuit, spec, batches):
    ckpt_dir = tmp_path / "ckpt"
    BQSimSimulator(checkpoint_dir=ckpt_dir).run(
        circuit, spec, batches=batches
    )
    path = next(ckpt_dir.glob("*.ckpt.npz"))
    with pytest.raises(CheckpointError, match="execute"):
        BQSimSimulator().run(circuit, spec, execute=False, resume=path)


def test_unreadable_checkpoint_raises_typed_error(tmp_path):
    path = tmp_path / "bad.ckpt.npz"
    path.write_bytes(b"not a checkpoint")
    with pytest.raises(CheckpointError, match="unreadable"):
        load_checkpoint(path)


# -- numerical health guard ----------------------------------------------------


def _drifting_states() -> np.ndarray:
    states = np.zeros((4, 2), dtype=np.complex128)
    states[0, 0] = 1.5  # column norms 1.5 and 1.0
    states[1, 1] = 1.0
    return states


def test_health_warn_reports_norm_drift():
    with pytest.warns(RuntimeWarning, match="norm drift"):
        out = check_state_block(
            _drifting_states(), HealthPolicy(mode="warn"), label="b0"
        )
    assert np.array_equal(out, _drifting_states())  # untouched


def test_health_renormalize_restores_unit_norms():
    log = get_resilience_log()
    mark = log.mark()
    out = check_state_block(
        _drifting_states(), HealthPolicy(mode="renormalize"), label="b0"
    )
    assert np.allclose(np.linalg.norm(out, axis=0), 1.0)
    kinds = [e["kind"] for e in log.events_since(mark)]
    assert "renormalize" in kinds


def test_health_fail_raises_numerical_error():
    with pytest.raises(NumericalError, match="norm drift"):
        check_state_block(_drifting_states(), HealthPolicy(mode="fail"))
    bad = _drifting_states()
    bad[2, 0] = np.nan
    with pytest.raises(NumericalError, match="non-finite"):
        check_state_block(bad, HealthPolicy(mode="fail"))


def test_health_off_and_none_do_nothing():
    states = _drifting_states()
    assert check_state_block(states, HealthPolicy(mode="off")) is states
    assert check_state_block(states, None) is states
    assert HealthPolicy.coerce(None).mode == "off"
    assert HealthPolicy.coerce("fail").mode == "fail"
    with pytest.raises(SimulationError, match="unknown health mode"):
        HealthPolicy(mode="loud")
