"""Fusion plan data types shared by all fusion algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..dd.node import Edge


@dataclass(frozen=True)
class FusedGate:
    """One fused gate: a DD matrix plus its provenance and BQCS cost.

    ``cost`` is the max NZR of the matrix (#MAC per state amplitude when the
    gate runs as an ELL spMM); ``nnz`` is the total non-zero count (the
    CPU-oriented metric FlatDD's fusion optimizes).
    """

    dd: Edge
    cost: int
    gate_indices: tuple[int, ...]
    nnz: float = 0.0

    @property
    def num_source_gates(self) -> int:
        return len(self.gate_indices)


@dataclass(frozen=True)
class FusionPlan:
    """Ordered fused gates for one circuit (applied left to right)."""

    num_qubits: int
    gates: tuple[FusedGate, ...]
    algorithm: str
    source_gate_count: int

    def __len__(self) -> int:
        return len(self.gates)

    @property
    def total_cost(self) -> int:
        """Sum of per-gate BQCS costs (#MAC per amplitude for the circuit)."""
        return sum(g.cost for g in self.gates)

    def macs_per_input(self) -> int:
        """#MAC to push one state vector through the fused circuit — the
        Table 3 quantity (per input)."""
        return self.total_cost * (1 << self.num_qubits)

    def macs(self, num_inputs: int) -> int:
        return self.macs_per_input() * num_inputs

    def summary(self) -> str:
        costs = ",".join(str(g.cost) for g in self.gates)
        return (
            f"<FusionPlan {self.algorithm}: {self.source_gate_count} gates -> "
            f"{len(self.gates)} fused (costs {costs})>"
        )
