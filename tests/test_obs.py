"""Tests for the observability layer: tracer, metrics, exporters, wiring."""

import json

import pytest

from repro.circuit.generators import make_circuit
from repro.gpu.engine import Task, Timeline
from repro.obs import (
    CANONICAL_STAGES,
    Histogram,
    Metrics,
    Tracer,
    canonical_breakdown,
    chrome_trace,
    get_metrics,
    get_tracer,
    labeled,
    split_labels,
    trace_track_names,
    tracing,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.obs.export import metrics_record
from repro.profile import StageTimer
from repro.sim import (
    BQSimSimulator,
    BatchSpec,
    CuQuantumSimulator,
    FlatDDSimulator,
    MultiGpuBQSimSimulator,
    QiskitAerSimulator,
)


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------

def test_span_nesting_and_attributes():
    tracer = Tracer()
    with tracer.span("outer", kind="root") as outer:
        with tracer.span("inner", gate=3) as inner:
            inner.set(dd_edges=17)
        outer.set(total=2)
    spans = tracer.spans()
    assert [s.name for s in spans] == ["inner", "outer"]  # completion order
    inner, outer = spans
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert inner.attrs == {"gate": 3, "dd_edges": 17}
    assert outer.attrs == {"kind": "root", "total": 2}
    assert inner.duration >= 0 and outer.duration >= inner.duration
    # round-trip through the dict form used for stats["trace"]
    d = inner.to_dict()
    assert d["name"] == "inner" and d["attrs"]["dd_edges"] == 17
    assert d["parent_id"] == outer.span_id


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    with tracer.span("hot", n=1) as span:
        span.set(more=2)  # must be a harmless no-op
    assert len(tracer) == 0
    # the disabled path hands back one shared context object (no allocation)
    assert tracer.span("a") is tracer.span("b")


def test_tracing_context_installs_and_restores():
    before = get_tracer()
    with tracing() as tracer:
        assert get_tracer() is tracer and tracer.enabled
        with tracer.span("x"):
            pass
    assert get_tracer() is before
    assert [s.name for s in tracer.spans()] == ["x"]


def test_stage_timer_is_a_tracer_view():
    tracer = Tracer()
    timer = StageTimer(stages=CANONICAL_STAGES, tracer=tracer)
    with timer.time("fusion", gates=5) as span:
        span.set(fused=2)
    snapshot = timer.snapshot()
    assert tuple(snapshot) == CANONICAL_STAGES
    assert snapshot["fusion"] > 0 and snapshot["convert"] == 0.0
    (span,) = tracer.spans()
    assert span.name == "fusion"
    assert span.attrs["category"] == "stage"
    assert span.attrs["gates"] == 5 and span.attrs["fused"] == 2


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

def test_metrics_counters_gauges_histograms():
    m = Metrics()
    m.inc("hits")
    m.inc("hits", 2)
    m.gauge("width", 4)
    for v in (1.0, 3.0, 2.0):
        m.observe("edges", v)
    snap = m.snapshot()
    assert snap["counters"]["hits"] == 3
    assert snap["gauges"]["width"] == 4
    hist = snap["histograms"]["edges"]
    assert hist["count"] == 3 and hist["min"] == 1.0 and hist["max"] == 3.0
    assert hist["mean"] == pytest.approx(2.0)


def test_metrics_delta_scopes_one_run():
    m = Metrics()
    m.inc("a")
    m.observe("h", 10.0)
    mark = m.mark()
    m.inc("a", 4)
    m.observe("h", 2.0)
    delta = m.delta(mark)
    assert delta["counters"] == {"a": 4}
    assert delta["histograms"]["h"]["count"] == 1
    assert delta["histograms"]["h"]["sum"] == pytest.approx(2.0)
    # nothing happened since: delta is empty
    assert m.delta(m.mark())["counters"] == {}


def test_histogram_quantiles_are_monotone_and_accurate():
    hist = Histogram()
    for i in range(1, 101):  # uniform 0.01 .. 1.00
        hist.observe(i / 100.0)
    assert hist.p50 == pytest.approx(0.5, rel=0.15)
    assert hist.p95 == pytest.approx(0.95, rel=0.15)
    assert hist.p99 == pytest.approx(0.99, rel=0.15)
    assert hist.p50 <= hist.p95 <= hist.p99  # monotone by construction
    assert hist.quantile(0.0) == pytest.approx(hist.min)
    assert hist.quantile(1.0) == pytest.approx(hist.max)


def test_labeled_metric_families():
    m = Metrics()
    m.inc("jobs", priority="2", tenant="a")
    m.inc("jobs", tenant="a", priority="2")  # key order is canonical
    m.inc("jobs", priority="0")
    m.observe("lat", 0.5, stage="execute")
    snap = m.snapshot()
    assert snap["counters"][labeled("jobs", priority="2", tenant="a")] == 2
    assert snap["counters"][labeled("jobs", priority="0")] == 1
    family, labels = split_labels('jobs{priority="2",tenant="a"}')
    assert family == "jobs" and labels == {"priority": "2", "tenant": "a"}
    assert labeled("lat", stage="execute") in snap["histograms"]


def test_snapshot_returns_deep_copies():
    """Mutating a returned snapshot must not corrupt the live registry."""
    m = Metrics()
    m.inc("c", 5)
    m.gauge("g", 1.0)
    m.observe("h", 2.0)
    snap = m.snapshot()
    snap["counters"]["c"] = 999
    snap["gauges"]["g"] = 999
    snap["histograms"]["h"]["count"] = 999
    snap["histograms"]["h"]["buckets"]["tampered"] = 7
    fresh = m.snapshot()
    assert fresh["counters"]["c"] == 5
    assert fresh["gauges"]["g"] == 1.0
    assert fresh["histograms"]["h"]["count"] == 1
    assert "tampered" not in fresh["histograms"]["h"]["buckets"]


def test_delta_histogram_min_max_are_window_scoped():
    """Regression: delta min/max must reflect the window, not the whole
    run — a pre-mark extreme (100.0) must not leak into the delta."""
    m = Metrics()
    m.observe("h", 100.0)
    mark = m.mark()
    for v in (1.0, 5.0, 3.0):
        m.observe("h", v)
    win = m.delta(mark)["histograms"]["h"]
    assert win["count"] == 3
    assert win["sum"] == pytest.approx(9.0)
    # bounds are bucket-resolution accurate: max must exclude 100.0
    assert win["max"] < 10.0
    assert 0.0 < win["min"] <= 1.0 + 1e-9
    # the whole-run min moved during the window -> delta min is exact
    assert win["min"] == pytest.approx(1.0)


def test_metrics_thread_hammer_exact_totals():
    """Concurrent inc/observe from many threads lose no updates."""
    import threading

    m = Metrics()
    threads_n, per_thread = 8, 500

    def work(tid: int) -> None:
        for i in range(per_thread):
            m.inc("total")
            m.inc("byid", tid=str(tid))
            m.observe("vals", float(i % 10 + 1))

    threads = [
        threading.Thread(target=work, args=(t,)) for t in range(threads_n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = m.snapshot()
    expect = threads_n * per_thread
    assert snap["counters"]["total"] == expect
    for tid in range(threads_n):
        assert snap["counters"][labeled("byid", tid=str(tid))] == per_thread
    hist = snap["histograms"]["vals"]
    assert hist["count"] == expect
    assert hist["sum"] == pytest.approx(threads_n * per_thread * 5.5)


# ---------------------------------------------------------------------------
# Chrome-trace export
# ---------------------------------------------------------------------------

def _traced_run(tmp_path=None, **sim_kwargs):
    sim = BQSimSimulator(**sim_kwargs)
    circuit = make_circuit("qft", 6)
    spec = BatchSpec(num_batches=2, batch_size=8, seed=3)
    with tracing() as tracer:
        result = sim.run(circuit, spec, execute=True)
    return tracer, result


def test_chrome_trace_schema_and_tracks(tmp_path):
    tracer, result = _traced_run()
    path = tmp_path / "trace.json"
    write_chrome_trace(path, tracer.spans(), timeline=result.timeline)
    doc = json.loads(path.read_text())
    assert validate_chrome_trace(doc) == []
    tracks = trace_track_names(doc)
    # >= 3 tracks: host pipeline + the modeled GPU engine lanes
    assert any(t.startswith("host pipeline/") for t in tracks)
    assert "gpu (modeled)/engine:compute" in tracks
    assert "gpu (modeled)/engine:h2d" in tracks
    assert len(tracks) >= 3
    # nested pipeline spans with the paper's attribution attributes
    by_name = {}
    for event in doc["traceEvents"]:
        if event.get("ph") == "X":
            by_name.setdefault(event["name"], event)
    for stage in ("fusion", "convert", "execute"):
        assert stage in by_name, sorted(by_name)
    assert by_name["convert.dd_to_ell"]["args"]["dd_edges"] > 0
    assert by_name["convert.dd_to_ell"]["args"]["ell_width"] >= 1
    assert by_name["execute"]["args"]["backend"]
    # stages are children of the root simulator span
    root = by_name["bqsim.run"]
    assert by_name["fusion"]["args"]["parent_id"] == root["args"]["span_id"]


def test_timeline_tasks_become_engine_tracks():
    timeline = Timeline(
        tasks=[
            Task(0, "h2d:0", "h2d", duration=1.0, start=0.0, end=1.0),
            Task(1, "k0", "compute", duration=1.5, deps=(0,), start=0.5,
                 end=2.0),
            Task(2, "d2h:0", "d2h", duration=0.5, deps=(1,), start=2.0,
                 end=2.5),
        ]
    )
    doc = chrome_trace([], timeline=timeline)
    assert validate_chrome_trace(doc) == []
    assert trace_track_names(doc) == [
        "gpu (modeled)/engine:h2d",
        "gpu (modeled)/engine:compute",
        "gpu (modeled)/engine:d2h",
    ]
    complete = {e["name"]: e for e in doc["traceEvents"] if e.get("ph") == "X"}
    # each modeled task keeps its engine lane, timing, and dependencies
    assert complete["k0"]["ts"] == pytest.approx(0.5e6)
    assert complete["k0"]["dur"] == pytest.approx(1.5e6)
    assert complete["k0"]["args"]["deps"] == [0]
    tids = {complete[n]["tid"] for n in ("h2d:0", "k0", "d2h:0")}
    assert len(tids) == 3  # one lane per engine — overlap stays visible


def test_metrics_jsonl_roundtrip(tmp_path):
    m = Metrics()
    m.inc("convert.route.gpu", 2)
    path = write_metrics_jsonl(
        tmp_path / "m.jsonl",
        [metrics_record("run-1", m.snapshot(), scale="small")],
    )
    (line,) = path.read_text().splitlines()
    record = json.loads(line)
    assert record["label"] == "run-1" and record["scale"] == "small"
    assert record["metrics"]["counters"]["convert.route.gpu"] == 2


# ---------------------------------------------------------------------------
# Pipeline wiring
# ---------------------------------------------------------------------------

def test_bqsim_run_increments_metrics_and_stats():
    metrics = get_metrics()
    mark = metrics.mark()
    sim = BQSimSimulator()
    circuit = make_circuit("qft", 6)
    result = sim.run(circuit, BatchSpec(2, 8, seed=3), execute=True)
    delta = metrics.delta(mark)
    counters = delta["counters"]
    assert counters["fusion.plans.bqcs"] == 1
    assert counters["plan_cache.misses"] == 1
    assert counters["graph.launches"] >= 1
    assert any(k.startswith("convert.route.") for k in counters)
    assert any(k.startswith("spmm.backend.") for k in counters)
    assert delta["histograms"]["nzrv.max_nzr"]["count"] > 0
    assert delta["histograms"]["ell.width"]["min"] >= 1
    # the same delta is surfaced on the result
    stats_counters = result.stats["metrics"]["counters"]
    assert stats_counters["fusion.plans.bqcs"] == 1


def test_plan_cache_accounting_memory_and_disk(tmp_path):
    circuit = make_circuit("vqe", 6)
    spec = BatchSpec(2, 8, seed=1)
    sim = BQSimSimulator(cache_dir=tmp_path / "plans")
    cold = sim.run(circuit, spec)
    assert cold.stats["plan_cache"] == {
        "hits": 0,
        "disk_hits": 0,
        "misses": 1,
        "quarantined": 0,
    }
    warm_memory = sim.run(circuit, spec)
    assert warm_memory.stats["plan_cache"]["hits"] == 1
    # a fresh simulator sharing the cache dir hits the on-disk archive
    warm_disk = BQSimSimulator(cache_dir=tmp_path / "plans").run(circuit, spec)
    assert warm_disk.stats["plan_cache"]["disk_hits"] == 1
    assert warm_disk.stats["plan_cache"]["misses"] == 0


def test_run_without_tracing_records_no_spans():
    tracer = get_tracer()
    if tracer.enabled:
        pytest.skip("REPRO_TRACE is set in the environment")
    mark = tracer.mark()
    result = BQSimSimulator().run(
        make_circuit("qft", 5), BatchSpec(1, 4, seed=0), execute=True
    )
    assert tracer.spans_since(mark) == []
    assert result.stats["trace"] == []
    assert result.outputs is not None  # the run itself still works


@pytest.mark.parametrize(
    "factory",
    [
        BQSimSimulator,
        FlatDDSimulator,
        CuQuantumSimulator,
        QiskitAerSimulator,
        lambda: MultiGpuBQSimSimulator(num_devices=2),
    ],
)
def test_canonical_wall_breakdown_all_simulators(factory):
    sim = factory()
    result = sim.run(make_circuit("qft", 6), BatchSpec(2, 8, seed=3))
    assert tuple(result.stats["wall_breakdown"]) == CANONICAL_STAGES
    assert "plan_cache" in result.stats
    assert "metrics" in result.stats


def test_canonical_breakdown_folds_modeled_keys():
    modeled = {"fusion": 1.0, "conversion": 2.0, "simulation": 3.0}
    folded = canonical_breakdown(modeled)
    assert tuple(folded) == CANONICAL_STAGES
    assert folded == {"fusion": 1.0, "convert": 2.0, "io": 0.0, "execute": 3.0}
    aer = canonical_breakdown({"host": 1.0, "kernels": 0.5})
    assert aer["execute"] == pytest.approx(1.5)
    assert canonical_breakdown({"mystery": 1.0})["execute"] == 1.0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_simulate_trace_out(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "trace.json"
    rc = main(["simulate", "--family", "qft", "-n", "10", "--batches", "2",
               "--batch-size", "8", "--trace-out", str(out)])
    assert rc == 0
    assert "trace" in capsys.readouterr().out
    doc = json.loads(out.read_text())
    assert validate_chrome_trace(doc) == []
    assert len(trace_track_names(doc)) >= 3


def test_cli_trace_subcommand(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "trace.json"
    metrics_out = tmp_path / "metrics.jsonl"
    rc = main(["trace", "--family", "qft", "-n", "6", "--batches", "2",
               "--batch-size", "8", "--execute", "--out", str(out),
               "--metrics-out", str(metrics_out)])
    printed = capsys.readouterr().out
    assert rc == 0
    assert "spans" in printed and "perfetto" in printed.lower()
    assert validate_chrome_trace(json.loads(out.read_text())) == []
    record = json.loads(metrics_out.read_text().splitlines()[0])
    assert record["metrics"]["counters"]
