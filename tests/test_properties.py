"""Property-based tests (hypothesis) on the core data structures."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Circuit, parse_qasm, to_qasm
from repro.circuit.gates import Gate
from repro.dd import (
    DDManager,
    matrix_dd_from_dense,
    matrix_to_dense,
    max_nzr,
    nzr_vector,
    vector_dd_from_dense,
    vector_to_dense,
)
from repro.ell import ell_from_dd_cpu, ell_from_flat_gpu, ell_spmm
from repro.dd.flat import flatten_matrix_dd
from repro.gpu.engine import Task, schedule
from repro.sim.bqsim import buffer_indices
from repro.sim.statevector import simulate_batch
from repro.circuit.inputs import InputBatch

# -- strategies --------------------------------------------------------------

finite = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)


@st.composite
def complex_matrices(draw, num_qubits: int):
    """Sparse-ish random complex matrices of size 2^n."""
    dim = 1 << num_qubits
    values = draw(
        st.lists(finite, min_size=2 * dim * dim, max_size=2 * dim * dim)
    )
    m = np.array(values[: dim * dim]) + 1j * np.array(values[dim * dim :])
    m = m.reshape(dim, dim)
    mask = draw(
        st.lists(st.booleans(), min_size=dim * dim, max_size=dim * dim)
    )
    m = m * np.array(mask).reshape(dim, dim)
    return m


@st.composite
def random_gates(draw):
    kind = draw(st.sampled_from(["h", "x", "t", "rz", "ry", "cx", "cz", "rzz"]))
    qubits = draw(st.permutations(range(3)))
    if kind in ("rz", "ry"):
        return Gate.make(kind, [qubits[0]], [draw(finite)])
    if kind == "rzz":
        return Gate.make(kind, [qubits[0], qubits[1]], [draw(finite)])
    if kind in ("cx", "cz"):
        return Gate.make(kind, [qubits[0], qubits[1]])
    return Gate.make(kind, [qubits[0]])


@st.composite
def random_circuits_strategy(draw, max_gates=12):
    gates = draw(st.lists(random_gates(), min_size=1, max_size=max_gates))
    return Circuit(3, gates)


# -- DD properties ------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(complex_matrices(2))
def test_dd_dense_roundtrip(m):
    mgr = DDManager(2)
    edge = matrix_dd_from_dense(mgr, m)
    assert np.allclose(matrix_to_dense(edge, 2), m, atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(complex_matrices(2), complex_matrices(2))
def test_dd_multiply_matches_numpy(a, b):
    mgr = DDManager(2)
    ea, eb = matrix_dd_from_dense(mgr, a), matrix_dd_from_dense(mgr, b)
    got = matrix_to_dense(mgr.mm_multiply(ea, eb), 2)
    assert np.allclose(got, a @ b, atol=1e-7)


@settings(max_examples=30, deadline=None)
@given(complex_matrices(2), complex_matrices(2))
def test_dd_add_commutes(a, b):
    mgr = DDManager(2)
    ea, eb = matrix_dd_from_dense(mgr, a), matrix_dd_from_dense(mgr, b)
    left = matrix_to_dense(mgr.m_add(ea, eb), 2)
    right = matrix_to_dense(mgr.m_add(eb, ea), 2)
    assert np.allclose(left, right, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(st.lists(finite, min_size=16, max_size=16))
def test_vector_dd_roundtrip(values):
    v = np.array(values[:8]) + 1j * np.array(values[8:])
    mgr = DDManager(3)
    edge = vector_dd_from_dense(mgr, v)
    assert np.allclose(vector_to_dense(edge, 3), v, atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(complex_matrices(2))
def test_nzrv_matches_dense_row_counts(m):
    mgr = DDManager(2)
    edge = matrix_dd_from_dense(mgr, m)
    if edge.weight == 0:
        return
    counts = vector_to_dense(nzr_vector(mgr, edge), 2).real
    dense_counts = (np.abs(matrix_to_dense(edge, 2)) > 1e-12).sum(axis=1)
    assert np.allclose(counts, dense_counts)


# -- ELL properties ------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(complex_matrices(2))
def test_ell_conversions_agree(m):
    mgr = DDManager(2)
    edge = matrix_dd_from_dense(mgr, m)
    if edge.weight == 0:
        return
    width = max_nzr(mgr, edge)
    cpu = ell_from_dd_cpu(edge, 2)
    gpu = ell_from_flat_gpu(flatten_matrix_dd(edge, 2), width, execute="faithful")
    assert np.array_equal(cpu.cols, gpu.cols)
    assert np.allclose(cpu.values, gpu.values, atol=1e-10)
    assert np.allclose(cpu.to_dense(), matrix_to_dense(edge, 2), atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(complex_matrices(2), st.lists(finite, min_size=8, max_size=8))
def test_ell_spmm_matches_numpy(m, vec):
    mgr = DDManager(2)
    edge = matrix_dd_from_dense(mgr, m)
    if edge.weight == 0:
        return
    ell = ell_from_dd_cpu(edge, 2)
    states = (np.array(vec[:4]) + 1j * np.array(vec[4:])).reshape(4, 1)
    got = ell_spmm(ell, states)
    want = matrix_to_dense(edge, 2) @ states
    assert np.allclose(got, want, atol=1e-8)


# -- fusion / simulation properties ---------------------------------------------

@settings(max_examples=15, deadline=None)
@given(random_circuits_strategy())
def test_bqsim_matches_reference_on_random_circuits(circuit):
    from repro.sim import BQSimSimulator, BatchSpec

    rng = np.random.default_rng(0)
    states = rng.standard_normal((8, 2)) + 1j * rng.standard_normal((8, 2))
    states /= np.linalg.norm(states, axis=0, keepdims=True)
    batch = InputBatch(states)
    spec = BatchSpec(num_batches=1, batch_size=2)
    result = BQSimSimulator().run(circuit, spec, batches=[batch])
    want = simulate_batch(circuit, batch)
    assert np.allclose(result.outputs[0], want, atol=1e-8)


@settings(max_examples=15, deadline=None)
@given(random_circuits_strategy())
def test_fusion_cost_never_exceeds_unfused(circuit):
    from repro.fusion import bqcs_fusion, no_fusion_plan
    from repro.fusion.cost import bqcs_cost

    mgr = DDManager(3)
    fused = bqcs_fusion(mgr, circuit)
    # compare against the sum of true per-gate DD costs (not dense padding)
    unfused = sum(bqcs_cost(mgr, fg.dd) for fg in no_fusion_plan(mgr, circuit).gates)
    assert fused.total_cost <= unfused


# -- QASM round trip -------------------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(random_circuits_strategy(max_gates=8))
def test_qasm_roundtrip_preserves_unitary(circuit):
    parsed = parse_qasm(to_qasm(circuit))
    assert np.allclose(parsed.to_matrix(), circuit.to_matrix(), atol=1e-8)


# -- scheduler / buffer properties ------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["compute", "h2d", "d2h"]),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            st.integers(min_value=0, max_value=4),
        ),
        min_size=1,
        max_size=25,
    ),
    st.booleans(),
)
def test_schedule_always_valid(specs, serialize):
    tasks = []
    for i, (engine, duration, back) in enumerate(specs):
        deps = tuple({max(0, i - 1 - back)} - {i}) if i else ()
        tasks.append(Task(tid=i, name=f"t{i}", engine=engine, duration=duration, deps=deps))
    timeline = schedule(tasks, serialize=serialize)
    timeline.validate()
    assert timeline.makespan >= max(t.duration for t in tasks)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=1, max_value=12),
)
def test_buffer_rotation_invariants(batch, kernels):
    parity_buffers = {0, 1} if batch % 2 == 0 else {2, 3}
    previous_dst = None
    for k in range(kernels):
        src, dst = buffer_indices(batch, k, kernels)
        assert src != dst
        assert {src, dst} == parity_buffers
        if previous_dst is not None:
            assert src == previous_dst
        previous_dst = dst
