"""Structured observability: span tracing, pipeline metrics, exporters.

The subsystem every perf experiment reports through:

* :mod:`repro.obs.tracer` — nested spans with attributes, a process-global
  default tracer (disabled by default; near-zero cost), and the
  ``tracing()`` context manager that turns it on for a block;
* :mod:`repro.obs.metrics` — an always-on registry of counters, gauges,
  and quantile histograms (log-spaced buckets, p50/p95/p99, labeled
  families) fed from the fusion/conversion/spMM/caching hot paths;
* :mod:`repro.obs.lifecycle` — the structured per-job lifecycle event log
  the serving layer emits (submitted → … → done/failed), with an
  unaccounted-jobs audit;
* :mod:`repro.obs.slo` — :class:`SLOTracker`, folding lifecycle events
  into per-priority latency/queue-age percentiles, deadline-miss and
  degradation rates (the ``stats["slo"]`` block);
* :mod:`repro.obs.prom` — Prometheus text-format export of any metrics
  snapshot plus the minimal parser the CI scrape job validates with;
* :mod:`repro.obs.export` — Chrome-trace JSON (Perfetto-loadable; host
  spans and modeled GPU engines as separate tracks) and metrics JSONL.

Canonical pipeline stage names (`CANONICAL_STAGES`) make wall-clock
breakdowns comparable across simulators:

* ``fusion``  — stage-1 planning: cache lookup + gate fusion + conversion
  analysis (``prepare`` in pre-observability releases);
* ``convert`` — stage-2 DD-to-ELL materialization;
* ``io``      — input-batch generation/validation on the host;
* ``execute`` — stage-3 task-graph construction, kernels, and scheduling.
"""

from .metrics import (
    BUCKET_BOUNDS,
    Histogram,
    Metrics,
    get_metrics,
    labeled,
    set_metrics,
    split_labels,
)
from .lifecycle import (
    JobLifecycleLog,
    LIFECYCLE_STAGES,
    TERMINAL_EVENTS,
    get_lifecycle_log,
    set_lifecycle_log,
)
from .prom import parse_prometheus_text, prometheus_text, write_prometheus
from .slo import SLOTracker
from .tracer import Span, Tracer, get_tracer, set_tracer, tracing
from .export import (
    chrome_trace,
    metrics_record,
    simulation_stats_record,
    spans_to_events,
    timeline_to_events,
    trace_track_names,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)

#: canonical wall-breakdown stage names, in pipeline order
CANONICAL_STAGES = ("fusion", "convert", "io", "execute")

#: legacy / simulator-specific stage names folded into the canonical set
_STAGE_ALIASES = {
    "fusion": "fusion",
    "prepare": "fusion",
    "conversion": "convert",
    "convert": "convert",
    "io": "io",
    "execute": "execute",
    "simulation": "execute",
    "host": "execute",
    "kernels": "execute",
}


def canonical_breakdown(breakdown: dict) -> dict:
    """Fold a per-stage time dict onto :data:`CANONICAL_STAGES`.

    Works for both modeled breakdowns (``fusion``/``conversion``/
    ``simulation``, Aer's ``host``/``kernels``) and wall breakdowns;
    unknown stages count as ``execute``.  Always returns all four
    canonical keys, in order, so breakdowns from different simulators are
    directly comparable.
    """
    out = {stage: 0.0 for stage in CANONICAL_STAGES}
    for stage, seconds in breakdown.items():
        out[_STAGE_ALIASES.get(stage, "execute")] += seconds
    return out


__all__ = [
    "BUCKET_BOUNDS",
    "canonical_breakdown",
    "CANONICAL_STAGES",
    "chrome_trace",
    "get_lifecycle_log",
    "get_metrics",
    "get_tracer",
    "Histogram",
    "JobLifecycleLog",
    "labeled",
    "LIFECYCLE_STAGES",
    "Metrics",
    "metrics_record",
    "parse_prometheus_text",
    "prometheus_text",
    "set_lifecycle_log",
    "set_metrics",
    "set_tracer",
    "simulation_stats_record",
    "SLOTracker",
    "Span",
    "spans_to_events",
    "split_labels",
    "TERMINAL_EVENTS",
    "timeline_to_events",
    "trace_track_names",
    "Tracer",
    "tracing",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics_jsonl",
    "write_prometheus",
]
