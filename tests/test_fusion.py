"""Tests for the four fusion planners."""

import numpy as np
import pytest

from repro.circuit import Circuit, random_batch
from repro.circuit.generators import graphstate, make_circuit, random_circuit
from repro.dd import DDManager, matrix_to_dense
from repro.ell import ell_from_dd_cpu, ell_spmm
from repro.errors import FusionError
from repro.fusion import (
    aer_fusion,
    bqcs_fusion,
    cuquantum_plan,
    dense_gate_cost,
    flatdd_fusion,
    no_fusion_plan,
)
from repro.fusion.bqcs import _fuse_cost_one_runs, _fuse_cost_two_pairs, _lift
from repro.sim.statevector import simulate_batch

ALL_PLANNERS = [cuquantum_plan, aer_fusion, flatdd_fusion, bqcs_fusion, no_fusion_plan]


def apply_plan(plan, batch):
    states = batch.states
    for fused in plan.gates:
        states = ell_spmm(ell_from_dd_cpu(fused.dd, plan.num_qubits), states)
    return states


@pytest.mark.parametrize("planner", ALL_PLANNERS)
def test_plans_preserve_semantics(planner, random_circuits):
    for circuit in random_circuits:
        mgr = DDManager(4)
        plan = planner(mgr, circuit)
        batch = random_batch(4, 3, rng=5)
        got = apply_plan(plan, batch)
        want = simulate_batch(circuit, batch)
        assert np.allclose(got, want, atol=1e-8), planner.__name__


@pytest.mark.parametrize("planner", ALL_PLANNERS)
def test_plans_cover_every_gate_once(planner, small_circuit):
    mgr = DDManager(4)
    plan = planner(mgr, small_circuit)
    indices = sorted(i for fg in plan.gates for i in fg.gate_indices)
    assert indices == list(range(len(small_circuit)))


def test_width_mismatch_raises(small_circuit):
    with pytest.raises(FusionError, match="width|qubits"):
        bqcs_fusion(DDManager(5), small_circuit)
    with pytest.raises(FusionError, match="width|qubits"):
        flatdd_fusion(DDManager(5), small_circuit)
    with pytest.raises(FusionError, match="width|qubits"):
        aer_fusion(DDManager(5), small_circuit)


def test_step1_fuses_diagonal_runs():
    c = Circuit(3)
    c.rz(0.1, 0).cz(0, 1).cx(1, 2).rz(0.2, 2)  # all cost-1
    mgr = DDManager(3)
    items = _fuse_cost_one_runs(mgr, _lift(mgr, c))
    assert len(items) == 1
    assert items[0].cost == 1


def test_step2_fuses_cost_two_pairs():
    c = Circuit(3)
    c.h(0).h(1).h(2)
    mgr = DDManager(3)
    items = _fuse_cost_two_pairs(mgr, _lift(mgr, c))
    # three cost-2 gates -> one fused pair (cost 4) + one leftover
    assert [i.cost for i in items] == [4, 2]


def test_greedy_fuses_at_equal_cost():
    """The paper's Figure 4: everything collapses into one fused gate."""
    c = Circuit(3)
    c.ry(0.9, 0).ry(0.8, 1).cx(1, 2).cx(0, 1)
    c.ry(0.7, 2).ry(0.6, 0).cx(1, 2).cx(0, 1)
    mgr = DDManager(3)
    plan = bqcs_fusion(mgr, c)
    assert len(plan) == 1
    assert plan.gates[0].cost <= 8


def test_max_cost_caps_fusion():
    c = make_circuit("vqe", 6)
    mgr = DDManager(6)
    capped = bqcs_fusion(mgr, c, max_cost=2)
    assert all(fg.cost <= 2 for fg in capped.gates)


def test_bqcs_beats_or_matches_everyone(random_circuits):
    for circuit in random_circuits:
        mgr = DDManager(4)
        bq = bqcs_fusion(mgr, circuit).total_cost
        assert bq <= cuquantum_plan(mgr, circuit).total_cost
        assert bq <= aer_fusion(mgr, circuit).total_cost
        assert bq <= flatdd_fusion(mgr, circuit).total_cost


def test_table3_exact_values():
    """Circuits where our plans hit the paper's Table 3 numbers exactly."""
    expectations = {
        ("graphstate", 16): {"cuquantum": 128, "aer": 64, "bqsim": 32},
        ("tsp", 16): {"cuquantum": 684, "bqsim": 192},
        ("routing", 12): {"cuquantum": 324, "bqsim": 96},
        ("portfolio", 16): {"cuquantum": 1696, "bqsim": 128},
    }
    for (family, n), expected in expectations.items():
        circuit = make_circuit(family, n)
        mgr = DDManager(n)
        if "cuquantum" in expected:
            assert cuquantum_plan(mgr, circuit).total_cost == expected["cuquantum"]
        if "aer" in expected:
            assert aer_fusion(mgr, circuit).total_cost == expected["aer"]
        if "bqsim" in expected:
            assert bqcs_fusion(mgr, circuit).total_cost == expected["bqsim"]


def test_flatdd_never_below_bqsim_on_suite():
    for family, n in [("vqe", 10), ("routing", 8), ("graphstate", 10)]:
        circuit = make_circuit(family, n)
        mgr = DDManager(n)
        assert (
            flatdd_fusion(mgr, circuit).total_cost
            >= bqcs_fusion(mgr, circuit).total_cost
        )


def test_cuquantum_plan_counts_dense_macs(small_circuit):
    mgr = DDManager(4)
    plan = cuquantum_plan(mgr, small_circuit)
    assert plan.total_cost == sum(dense_gate_cost(g) for g in small_circuit.gates)
    assert len(plan) == len(small_circuit)


def test_aer_fusion_respects_qubit_cap():
    circuit = make_circuit("portfolio", 8)
    mgr = DDManager(8)
    for cap in (2, 3, 4):
        plan = aer_fusion(mgr, circuit, max_fused_qubits=cap)
        for fused in plan.gates:
            support = set()
            for i in fused.gate_indices:
                support.update(circuit.gates[i].all_qubits)
            # single gates may exceed the cap; fused groups must not
            if len(fused.gate_indices) > 1:
                assert len(support) <= cap


def test_aer_fusion_rejects_bad_cap(small_circuit):
    with pytest.raises(FusionError, match="positive"):
        aer_fusion(DDManager(4), small_circuit, max_fused_qubits=0)


def test_plan_macs_accounting(small_circuit):
    mgr = DDManager(4)
    plan = bqcs_fusion(mgr, small_circuit)
    assert plan.macs_per_input() == plan.total_cost * 16
    assert plan.macs(10) == plan.macs_per_input() * 10
    assert "bqcs" in plan.summary()


def test_graphstate_plan_structure():
    """16 H + 16 CZ fuse into few gates with total cost 32 (paper value)."""
    mgr = DDManager(16)
    plan = bqcs_fusion(mgr, graphstate(16))
    assert plan.total_cost == 32
    assert len(plan) < 32
