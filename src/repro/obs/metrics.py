"""Pipeline metrics: counters, gauges, and quantile histograms.

A :class:`Metrics` registry accumulates named measurements from the hot
paths of every pipeline layer:

* **counters** (monotonic) — fusion accept/reject decisions, conversion
  routes, spMM backend choices, plan-cache hits/misses, task submissions;
* **gauges** (last value wins) — sizes and configuration of the most
  recent run;
* **histograms** (:class:`Histogram`) — per-gate and per-job
  distributions such as DD edges, ELL width, padding ratio, and service
  job latency.  Every histogram keeps count/sum/min/max *and* fixed
  log-spaced buckets, so :meth:`Histogram.quantile` can report p50/p95/p99
  without retaining samples.

Metric names may carry **labels** in the canonical Prometheus-like form
``name{key="value",...}`` (keys sorted); :func:`labeled` builds such a
name and :func:`split_labels` parses it back.  All three instruments also
accept labels as keyword arguments::

    metrics.observe("service.job.latency_s", 0.012, priority="2")

records into the family member ``service.job.latency_s{priority="2"}``.

The registry is thread-safe and cheap (one dict update under a lock per
event), so instrumentation stays on permanently; per-run attribution uses
:meth:`Metrics.mark` / :meth:`Metrics.delta` to diff the monotonic state
around a run, which is how ``SimulationResult.stats["metrics"]`` scopes
the process-global registry to a single simulation.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left

# ---------------------------------------------------------------------------
# fixed log-spaced histogram buckets
# ---------------------------------------------------------------------------

#: upper bounds of the fixed histogram buckets: four buckets per decade
#: from 1e-9 to 1e9 (covers sub-ns latencies up to giga-scale counts);
#: one implicit +Inf overflow bucket follows the last bound
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** (k / 4.0) for k in range(-36, 37)
)

#: canonical string form of each bucket's upper bound, "+Inf" last —
#: the keys of ``Histogram.to_dict()["buckets"]`` and of the Prometheus
#: ``le=`` label
BUCKET_LABELS: tuple[str, ...] = tuple(
    f"{bound:.6g}" for bound in BUCKET_BOUNDS
) + ("+Inf",)

_LABEL_OF_BOUND = dict(zip(BUCKET_LABELS, BUCKET_BOUNDS))


def bucket_index(value: float) -> int:
    """Index of the bucket whose upper bound first covers ``value``.

    Values at or below the smallest bound land in bucket 0; values above
    the largest bound land in the +Inf overflow bucket (the last index).
    Example::

        assert bucket_index(0.0) == 0
        assert BUCKET_BOUNDS[bucket_index(0.5)] >= 0.5
    """
    return bisect_left(BUCKET_BOUNDS, value)


class Histogram:
    """Count/sum/min/max plus fixed log-spaced quantile buckets.

    One instance summarizes an unbounded sample stream in O(buckets)
    memory.  Quantiles interpolate linearly inside the covering bucket
    and are clamped to the observed min/max, so they are exact at the
    extremes and bucket-accurate (within ~78%, one quarter-decade) in
    between.  Example::

        hist = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        assert hist.quantile(0.0) == 1.0 and hist.quantile(1.0) == 4.0
        assert hist.quantile(0.5) <= hist.quantile(0.99)
    """

    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: per-bucket sample counts; index ``len(BUCKET_BOUNDS)`` is +Inf
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[bucket_index(value)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q <= 1``) of the observed samples.

        Monotone in ``q`` by construction (so p50 <= p95 <= p99 always
        holds), exact at q=0/q=1, bucket-interpolated in between.
        Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, weight in enumerate(self.buckets):
            if weight == 0:
                continue
            cumulative += weight
            if cumulative >= target:
                lower = BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                upper = (
                    BUCKET_BOUNDS[index]
                    if index < len(BUCKET_BOUNDS)
                    else self.max
                )
                fraction = (target - (cumulative - weight)) / weight
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - count>0 always hits a bucket

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s samples into this histogram (exact: the fixed
        bucket grid is shared, so merging is element-wise addition).

        This is how per-shard SLO distributions aggregate into one
        gateway-wide view without approximating percentiles-of-percentiles.
        Returns ``self`` for chaining.
        """
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for index, weight in enumerate(other.buckets):
            if weight:
                self.buckets[index] += weight
        return self

    def copy(self) -> "Histogram":
        other = Histogram()
        other.count = self.count
        other.sum = self.sum
        other.min = self.min
        other.max = self.max
        other.buckets = list(self.buckets)
        return other

    def to_dict(self) -> dict:
        """JSON-safe summary (deep copy — mutating it cannot touch the
        histogram): count/sum/min/max/mean, p50/p95/p99, and the non-empty
        buckets keyed by their canonical upper-bound label."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": {
                BUCKET_LABELS[i]: n
                for i, n in enumerate(self.buckets)
                if n
            },
        }


# ---------------------------------------------------------------------------
# labeled metric families
# ---------------------------------------------------------------------------

def labeled(name: str, **labels) -> str:
    """Canonical labeled metric name: ``name{key="value",...}``.

    Keys are sorted so the same label set always produces the same
    member name.  With no labels the bare name is returned.  Example::

        assert labeled("jobs", priority=2) == 'jobs{priority="2"}'
        assert labeled("jobs") == "jobs"
    """
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def split_labels(name: str) -> tuple[str, dict[str, str]]:
    """Parse a canonical labeled name back into ``(family, labels)``.

    The inverse of :func:`labeled`::

        assert split_labels('jobs{priority="2"}') == ("jobs", {"priority": "2"})
        assert split_labels("jobs") == ("jobs", {})
    """
    if not name.endswith("}") or "{" not in name:
        return name, {}
    family, _, inner = name.partition("{")
    labels: dict[str, str] = {}
    for part in inner[:-1].split(","):
        if not part:
            continue
        key, _, value = part.partition("=")
        labels[key] = value.strip('"')
    return family, labels


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------

class Metrics:
    """Thread-safe registry of counters, gauges, and quantile histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, Histogram] = {}

    # -- instruments --------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` to the counter ``name`` (creating it at 0)."""
        if labels:
            name = labeled(name, **labels)
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set the gauge ``name`` to ``value``."""
        if labels:
            name = labeled(name, **labels)
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one sample into the histogram ``name``."""
        if labels:
            name = labeled(name, **labels)
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = Histogram()
            hist.observe(value)

    # -- retrieval ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Full deep copy of the registry state (JSON-safe).

        Callers may freely mutate the returned dict — including the
        nested histogram bucket maps — without affecting the live
        registry.
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: hist.to_dict()
                    for name, hist in self._hists.items()
                },
            }

    def counter(self, name: str, **labels) -> float:
        if labels:
            name = labeled(name, **labels)
        with self._lock:
            return self._counters.get(name, 0)

    def quantile(self, name: str, q: float, **labels) -> float:
        """The ``q``-quantile of the histogram ``name`` (0.0 if absent)."""
        if labels:
            name = labeled(name, **labels)
        with self._lock:
            hist = self._hists.get(name)
            return hist.quantile(q) if hist is not None else 0.0

    def histogram(self, name: str, **labels) -> Histogram | None:
        """A deep copy of the named histogram (None if never observed)."""
        if labels:
            name = labeled(name, **labels)
        with self._lock:
            hist = self._hists.get(name)
            return hist.copy() if hist is not None else None

    def mark(self) -> dict:
        """Opaque marker for :meth:`delta` (a snapshot of monotonic state)."""
        return self.snapshot()

    def delta(self, mark: dict) -> dict:
        """Changes since ``mark``: counter diffs (non-zero only), current
        gauges, and histogram diffs scoped to the marked window.

        Histogram ``count``/``sum``/``mean``/``buckets`` are exact window
        diffs.  ``min``/``max`` are **window-accurate to bucket
        resolution**: when the whole-run extreme moved during the window
        the exact value is reported, otherwise the bounds of the lowest
        and highest buckets that grew — samples from before the mark can
        never leak into a delta's min/max (regression-tested).
        """
        now = self.snapshot()
        before_c = mark.get("counters", {})
        counters = {
            name: value - before_c.get(name, 0)
            for name, value in now["counters"].items()
            if value != before_c.get(name, 0)
        }
        before_h = mark.get("histograms", {})
        histograms = {}
        for name, hist in now["histograms"].items():
            prior = before_h.get(name)
            dbuckets = {
                label: count - (prior or {}).get("buckets", {}).get(label, 0)
                for label, count in hist["buckets"].items()
                if count != (prior or {}).get("buckets", {}).get(label, 0)
            }
            dcount = hist["count"] - (prior or {"count": 0})["count"]
            if dcount <= 0:
                continue
            dsum = hist["sum"] - (prior or {"sum": 0.0})["sum"]
            histograms[name] = {
                "count": dcount,
                "sum": dsum,
                "mean": dsum / dcount,
                "min": self._window_min(hist, prior, dbuckets),
                "max": self._window_max(hist, prior, dbuckets),
                "buckets": dbuckets,
            }
        return {
            "counters": counters,
            "gauges": now["gauges"],
            "histograms": histograms,
        }

    @staticmethod
    def _window_min(hist: dict, prior: dict | None, dbuckets: dict) -> float:
        """Lower bound on the smallest sample in the delta window."""
        if prior is None or hist["min"] < prior["min"]:
            return hist["min"]  # the window itself set the whole-run min
        bounds = sorted(
            _LABEL_OF_BOUND.get(label, math.inf) for label in dbuckets
        )
        if not bounds:
            return hist["min"]
        lowest = bounds[0]
        index = bisect_left(BUCKET_BOUNDS, lowest)
        return BUCKET_BOUNDS[index - 1] if index > 0 else 0.0

    @staticmethod
    def _window_max(hist: dict, prior: dict | None, dbuckets: dict) -> float:
        """Upper bound on the largest sample in the delta window."""
        if prior is None or hist["max"] > prior["max"]:
            return hist["max"]  # the window itself set the whole-run max
        bounds = [
            _LABEL_OF_BOUND.get(label, math.inf) for label in dbuckets
        ]
        if not bounds:
            return hist["max"]
        highest = max(bounds)
        return min(highest, hist["max"])

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


# ---------------------------------------------------------------------------
# process-global default registry
# ---------------------------------------------------------------------------

_global_metrics = Metrics()


def get_metrics() -> Metrics:
    """The process-global metrics registry (always on; events are cheap)."""
    return _global_metrics


def set_metrics(metrics: Metrics) -> Metrics:
    """Swap the global registry (returns the previous one)."""
    global _global_metrics
    previous = _global_metrics
    _global_metrics = metrics
    return previous
