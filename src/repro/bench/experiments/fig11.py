"""Figure 11 — average power of the four simulators (10 batches).

Uses the utilization-based power model: BQSim draws less GPU power than
cuQuantum (fewer redundant MACs, better overlap) and far less CPU power
than Aer/FlatDD (whose 8 busy processes saturate the host); FlatDD draws
the least total power but runs orders of magnitude longer, so its energy is
far higher.
"""

from __future__ import annotations

from ...circuit.generators import make_circuit
from ...sim import BatchSpec
from ..runner import SIMULATOR_ORDER, make_simulators
from ..tables import print_table

CIRCUITS = {
    "small": (("qnn", 7), ("vqe", 8), ("tsp", 8)),
    "medium": (("qnn", 12), ("vqe", 16), ("tsp", 16)),
    "paper": (("qnn", 17), ("vqe", 16), ("tsp", 16)),
}


def run(scale: str = "small") -> list[dict]:
    execute = scale == "small"
    spec = BatchSpec(num_batches=10, batch_size=16 if execute else 256)
    simulators = make_simulators()
    rows = []
    for family, n in CIRCUITS.get(scale, CIRCUITS["small"]):
        circuit = make_circuit(family, n)
        for name in SIMULATOR_ORDER:
            result = simulators[name].run(circuit, spec, execute=execute)
            rows.append(
                {
                    "family": family,
                    "num_qubits": n,
                    "simulator": name,
                    "gpu_watts": result.power.gpu_watts,
                    "cpu_watts": result.power.cpu_watts,
                    "total_watts": result.power.total_watts,
                    "energy_j": result.power.total_watts * result.modeled_time,
                    "runtime_s": result.modeled_time,
                }
            )
    return rows


def main(scale: str = "small") -> list[dict]:
    rows = run(scale)
    print_table(
        f"Figure 11: average power in W, 10 batches (scale={scale})",
        ["circuit", "n", "simulator", "GPU W", "CPU W", "total W", "energy J"],
        [
            [
                r["family"],
                r["num_qubits"],
                r["simulator"],
                f"{r['gpu_watts']:.1f}",
                f"{r['cpu_watts']:.1f}",
                f"{r['total_watts']:.1f}",
                f"{r['energy_j']:.1f}",
            ]
            for r in rows
        ],
    )
    return rows


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
