"""Figure 13 — ablation study of BQSim's three stages (10 batches).

Runs BQSim with each stage disabled in turn and reports runtimes normalized
to the full pipeline.  Paper ranges: dropping gate fusion costs 1.39-6.73x,
dropping DD-to-ELL conversion 5.55-35.08x, dropping the task graph
1.46-1.73x.
"""

from __future__ import annotations

from ...circuit.generators import make_circuit
from ...sim import BQSimSimulator, BatchSpec
from ..tables import print_table

CIRCUITS = {
    "small": (("qnn", 7), ("vqe", 8), ("portfolio", 8), ("tsp", 8)),
    # medium swaps QNN n=17 for graph state n=16: at n<=12 the one-time
    # fusion stage dominates a 10-batch run and masks the ablation effect
    "medium": (("graphstate", 16), ("vqe", 16), ("portfolio", 16), ("tsp", 16)),
    "paper": (("qnn", 17), ("vqe", 16), ("portfolio", 16), ("tsp", 16)),
}

CONFIGS = (
    ("original", {}),
    ("no-fusion", {"fusion": False}),
    ("no-ell", {"use_ell": False}),
    ("no-task-graph", {"task_graph": False}),
)


def run(scale: str = "small") -> list[dict]:
    execute = scale == "small"
    spec = BatchSpec(num_batches=10, batch_size=16 if execute else 256)
    rows = []
    for family, n in CIRCUITS.get(scale, CIRCUITS["small"]):
        circuit = make_circuit(family, n)
        times = {}
        for label, kwargs in CONFIGS:
            result = BQSimSimulator(**kwargs).run(circuit, spec, execute=execute)
            times[label] = result.modeled_time
        base = times["original"]
        rows.append(
            {
                "family": family,
                "num_qubits": n,
                **{f"{label}_s": t for label, t in times.items()},
                **{
                    f"norm_{label}": t / base
                    for label, t in times.items()
                },
            }
        )
    return rows


def main(scale: str = "small") -> list[dict]:
    rows = run(scale)
    print_table(
        f"Figure 13: normalized runtime without each stage (scale={scale})",
        ["circuit", "n", "original", "no fusion", "no DD-to-ELL", "no task graph"],
        [
            [
                r["family"],
                r["num_qubits"],
                "1.00",
                f"{r['norm_no-fusion']:.2f}",
                f"{r['norm_no-ell']:.2f}",
                f"{r['norm_no-task-graph']:.2f}",
            ]
            for r in rows
        ],
    )
    return rows


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
