"""Tests for the device memory pool."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DeviceError
from repro.gpu import MemoryPool


def test_basic_alloc_release_cycle():
    pool = MemoryPool(4096, alignment=256)
    a = pool.allocate(100, tag="a")
    assert a.nbytes == 256  # rounded to alignment
    assert pool.allocated_bytes == 256
    b = pool.allocate(512, tag="b")
    assert b.offset == 256
    pool.release(a)
    pool.release(b)
    assert pool.free_bytes == 4096
    assert pool.fragmentation() == 0.0


def test_alignment_of_offsets():
    pool = MemoryPool(4096, alignment=512)
    blocks = [pool.allocate(1) for _ in range(4)]
    for block in blocks:
        assert block.offset % 512 == 0


def test_exhaustion_vs_fragmentation_messages():
    pool = MemoryPool(1024, alignment=256)
    blocks = [pool.allocate(256) for _ in range(4)]
    with pytest.raises(DeviceError, match="exhausted"):
        pool.allocate(256)
    # free two non-adjacent blocks: 512 free but largest block 256
    pool.release(blocks[0])
    pool.release(blocks[2])
    with pytest.raises(DeviceError, match="fragmented"):
        pool.allocate(512)
    assert pool.fragmentation() == pytest.approx(0.5)


def test_coalescing_merges_neighbours():
    pool = MemoryPool(1024, alignment=256)
    blocks = [pool.allocate(256) for _ in range(4)]
    for block in blocks:
        pool.release(block)
    assert pool.largest_free_block == 1024


def test_release_validation():
    pool = MemoryPool(1024)
    block = pool.allocate(100)
    pool.release(block)
    with pytest.raises(DeviceError, match="does not own"):
        pool.release(block)


def test_constructor_validation():
    with pytest.raises(DeviceError, match="capacity"):
        MemoryPool(0)
    with pytest.raises(DeviceError, match="power of two"):
        MemoryPool(1024, alignment=3)


def test_reset():
    pool = MemoryPool(1024)
    pool.allocate(100)
    pool.reset()
    assert pool.free_bytes == 1024 and not pool.live_blocks()


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=600)),
            st.tuples(st.just("free"), st.integers(min_value=0, max_value=10)),
        ),
        max_size=40,
    )
)
def test_pool_invariants_under_random_workload(ops):
    pool = MemoryPool(8192, alignment=64)
    live = []
    for op, value in ops:
        if op == "alloc":
            try:
                live.append(pool.allocate(value))
            except DeviceError:
                pass
        elif live:
            pool.release(live.pop(value % len(live)))
        # invariants: accounting adds up; live blocks never overlap
        assert pool.allocated_bytes + pool.free_bytes == 8192
        blocks = pool.live_blocks()
        for a, b in zip(blocks, blocks[1:]):
            assert a.offset + a.nbytes <= b.offset
    for block in list(live):
        pool.release(block)
    assert pool.free_bytes == 8192
    assert pool.largest_free_block == 8192
