"""Tests for single-input DD simulation."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.circuit.generators import ghz, graphstate, random_circuit
from repro.dd import DDManager, simulate_circuit_dd, simulate_state_dd, state_dd_size
from repro.errors import SimulationError
from repro.sim.statevector import simulate_state


def test_matches_dense_reference_on_random_circuits():
    for seed in range(4):
        circuit = random_circuit(5, 20, seed=seed)
        got = simulate_state_dd(circuit)
        want = simulate_state(circuit)
        assert np.allclose(got, want, atol=1e-9), seed


def test_custom_initial_states():
    circuit = Circuit(3)
    circuit.x(0)
    # basis index
    out = simulate_state_dd(circuit, initial=6)
    assert out[7] == pytest.approx(1.0)
    # dense vector
    rng = np.random.default_rng(1)
    v = rng.standard_normal(8) + 1j * rng.standard_normal(8)
    v /= np.linalg.norm(v)
    out = simulate_state_dd(circuit, initial=v)
    want = simulate_state(circuit, v)
    assert np.allclose(out, want, atol=1e-10)


def test_structured_states_stay_compact():
    """The whole point of DD simulation: GHZ/graph states have tiny DDs."""
    assert state_dd_size(ghz(14)) <= 2 * 14
    assert state_dd_size(graphstate(12)) <= 4 * 12


def test_generic_states_are_incompressible():
    """A Haar-like random vector needs the full 2^n - 1 node chain."""
    from repro.dd import DDManager, count_nodes, vector_dd_from_dense

    rng = np.random.default_rng(0)
    v = rng.standard_normal(64) + 1j * rng.standard_normal(64)
    mgr = DDManager(6)
    assert count_nodes(vector_dd_from_dense(mgr, v)) == 63


def test_manager_width_mismatch():
    circuit = Circuit(3)
    circuit.h(0)
    with pytest.raises(SimulationError, match="width"):
        simulate_circuit_dd(circuit, mgr=DDManager(4))


def test_norm_preserved():
    circuit = random_circuit(4, 25, seed=3)
    out = simulate_state_dd(circuit)
    assert np.linalg.norm(out) == pytest.approx(1.0, abs=1e-9)
