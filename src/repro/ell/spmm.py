"""ELL-based sparse-matrix multiplication — the BQCS kernel's math.

``out[r, b] = sum_k values[r, k] * states[cols[r, k], b]``: a gather plus a
multiply-accumulate per ELL slot, applied to the whole batch at once.  The
loop runs over the (small) ELL width so NumPy vectorizes across rows and
batch inputs; padded slots contribute ``0 * states[0, b]`` and are harmless,
exactly like the idle lanes of the real kernel.
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from .format import ELLMatrix


def ell_spmm(ell: ELLMatrix, states: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Multiply an ELL gate matrix by a ``(2^n, batch)`` state block."""
    if states.shape[0] != ell.num_rows:
        raise SimulationError(
            f"state dim {states.shape[0]} != ELL rows {ell.num_rows}"
        )
    if out is None:
        out = np.zeros_like(states)
    elif out.shape != states.shape:
        raise SimulationError("output buffer shape mismatch")
    else:
        if out is states:
            raise SimulationError("ell_spmm cannot run in place")
        out[:] = 0
    for k in range(ell.width):
        out += ell.values[:, k : k + 1] * states[ell.cols[:, k], :]
    return out


def spmm_macs(ell: ELLMatrix, batch_size: int) -> int:
    """#MAC for one kernel call: rows x width x batch."""
    return ell.macs_per_input * batch_size


def spmm_bytes(ell: ELLMatrix, batch_size: int, complex_bytes: int = 16) -> int:
    """Device memory traffic of one kernel call (reads + writes).

    Gate data is read once; the state block is gathered ``width`` times and
    written once.
    """
    state_block = ell.num_rows * batch_size * complex_bytes
    gathers = ell.width * state_block
    return ell.nbytes + gathers + state_block
