"""Qiskit-Aer-like baseline: array-based fusion, one simulation per input.

Aer has no BQCS support, so a batch of ``B`` inputs means ``B`` independent
runs farmed over 8 processes (the paper's setup).  Its runtime is dominated
by per-run host cost, which the paper's Table 2 fits almost perfectly as
``6.9 ms + 0.195 us * 2^n`` per input (see :mod:`repro.gpu.spec`); the GPU
kernels of the fused dense blocks add a comparatively small serialized term.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..circuit import Circuit, InputBatch
from ..dd.manager import DDManager
from ..ell.convert import ell_from_dd_cpu
from ..ell.spmm import build_apply_plans
from ..fusion.array_fusion import aer_fusion
from ..gpu.power import PowerReport, cpu_power_from_utilization, gpu_power_from_work
from ..gpu.spec import COMPLEX_BYTES, CpuSpec, GpuSpec
from ..kernels.engine import ArrayEngine, get_engine
from ..obs import CANONICAL_STAGES
from ..profile import StageTimer
from ..resilience import (
    BackendLadder,
    FaultPlan,
    HealthPolicy,
    RetryPolicy,
    RetrySession,
    apply_with_recovery,
    check_state_block,
    fault_injection,
)
from .base import (
    BatchSimulator,
    BatchSpec,
    PlanCache,
    RunObservation,
    SimulationResult,
)


class QiskitAerSimulator(BatchSimulator):
    """Per-input GPU state-vector simulation with array-based fusion.

    The Qiskit Aer baseline: Aer-style greedy array fusion compiles the
    circuit once, but each input state is then simulated in its own
    pass — so runtime scales linearly with batch size, which is the
    overhead BQSim's shared mega-batch removes.  Example::

        result = QiskitAerSimulator().run(make_circuit("ghz", 4), BatchSpec(1, 8))
        assert result.outputs[0].shape == (16, 8)
    """

    name = "qiskit-aer"

    def __init__(
        self,
        gpu: GpuSpec | None = None,
        cpu: CpuSpec | None = None,
        max_fused_qubits: int = 5,
        retry: RetryPolicy | None = None,
        faults: FaultPlan | str | None = None,
        health: HealthPolicy | str | None = "warn",
        engine: "str | ArrayEngine | None" = None,
    ):
        self.gpu = gpu or GpuSpec()
        self.cpu = cpu or CpuSpec()
        self.max_fused_qubits = max_fused_qubits
        self._plans = PlanCache()
        self.retry = retry
        self.faults = faults
        self.health = HealthPolicy.coerce(health)
        self.engine = engine

    def run(
        self,
        circuit: Circuit,
        spec: BatchSpec,
        batches: Sequence[InputBatch] | None = None,
        execute: bool = True,
    ) -> SimulationResult:
        with fault_injection(self.faults):
            return self._run(circuit, spec, batches, execute)

    def _run(
        self,
        circuit: Circuit,
        spec: BatchSpec,
        batches: Sequence[InputBatch] | None,
        execute: bool,
    ) -> SimulationResult:
        wall_start = time.perf_counter()
        n = circuit.num_qubits
        rows = 1 << n
        eng = get_engine(self.engine)
        obs = RunObservation()
        timer = StageTimer(stages=CANONICAL_STAGES)

        def build():
            mgr = DDManager(n)
            built = aer_fusion(mgr, circuit, max_fused_qubits=self.max_fused_qubits)
            return {"mgr": mgr, "plan": built, "ells": None}

        with obs.tracer.span(
            f"{self.name}.run",
            simulator=self.name,
            circuit=circuit.name,
            num_qubits=n,
            num_batches=spec.num_batches,
            batch_size=spec.batch_size,
            execute=execute,
        ):
            with timer.time("fusion") as span:
                prepared = self._plans.get(
                    circuit, build, extra=("aer-v1", self.max_fused_qubits)
                )
                span.set(fused_gates=len(prepared["plan"].gates))
            plan = prepared["plan"]

            # host cost per input run (already folded over 8 worker processes)
            host_per_input = (
                self.cpu.aer_run_overhead
                + self.cpu.aer_amp_time * rows
                + self.cpu.aer_gate_time * len(circuit.gates)
            )
            # GPU kernels: one dense block apply per fused gate per input,
            # single-input state (no batching), serialized on the shared device
            kernel_per_input = 0.0
            macs_per_input = 0.0
            bytes_per_input = 0.0
            for fused in plan.gates:
                macs = fused.cost * rows  # cost is the dense 2^k per-amplitude MACs
                traffic = 2 * rows * COMPLEX_BYTES
                macs_per_input += macs
                bytes_per_input += traffic
                kernel_per_input += (
                    self.gpu.kernel_launch_overhead
                    + self.gpu.kernel_time(macs, traffic)
                )
            num_inputs = spec.num_inputs
            t_host = host_per_input * num_inputs
            t_kernels = kernel_per_input * num_inputs
            # kernels of the 8 processes interleave under the host overhead;
            # only the excess beyond the host time extends the run
            total = t_host + max(0.0, t_kernels - t_host)

            with timer.time("io"):
                batches = self._resolve_batches(circuit, spec, batches, execute)
            outputs: list[np.ndarray] | None = None
            if execute:
                with timer.time("convert"):
                    if prepared["ells"] is None:
                        prepared["ells"] = [
                            ell_from_dd_cpu(fg.dd, n) for fg in plan.gates
                        ]
                    apply_plans = build_apply_plans(prepared["ells"])
                with timer.time("execute") as span:
                    ladder = BackendLadder()
                    session = RetrySession(self.retry, seed=spec.seed)
                    outputs = []
                    for ib, batch in enumerate(batches):
                        states = (
                            eng.from_host(batch.states)
                            if eng.is_device
                            else batch.states
                        )
                        for apply_plan in apply_plans:
                            states = apply_with_recovery(
                                ladder, apply_plan, states, session, engine=eng
                            )
                        states = check_state_block(
                            eng.to_host(states), self.health,
                            label=f"{circuit.name} batch {ib}",
                        )
                        outputs.append(states)
                    span.set(
                        num_kernels=len(apply_plans), backend=ladder.backend
                    )

        power = PowerReport(
            gpu_watts=gpu_power_from_work(
                macs_per_input * num_inputs,
                bytes_per_input * num_inputs,
                total,
                self.gpu,
            ),
            cpu_watts=cpu_power_from_utilization(1.0, self.cpu),
        )
        return SimulationResult(
            simulator=self.name,
            circuit_name=circuit.name,
            num_qubits=n,
            spec=spec,
            modeled_time=total,
            breakdown={"host": t_host, "kernels": t_kernels},
            power=power,
            outputs=outputs,
            wall_time=time.perf_counter() - wall_start,
            stats=obs.finalize(
                {
                    "engine": eng.name,
                    "plan": plan,
                    "macs": plan.macs(num_inputs),
                    "host_per_input": host_per_input,
                },
                timer,
                self._plans,
            ),
        )
