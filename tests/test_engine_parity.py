"""Engine-parity contracts.

Three guarantees the kernel-engine refactor must keep:

1. The numpy engine is **bit-identical** to the pre-refactor direct-NumPy
   code (the historical implementations are embedded here as references).
2. The ``fake-gpu`` engine — which reassociates floating point like a real
   device — agrees with the numpy engine within tolerance, across every
   simulator.
3. The hot paths contain no direct ``np.`` calls (AST lint): all numerics
   go through ``engine.xp``.
"""

from __future__ import annotations

import ast
import pathlib

import numpy as np
import pytest

from repro.circuit import Circuit, random_batch
from repro.circuit.generators import make_circuit
from repro.circuit.gates import Gate
from repro.ell.spmm import GatherPlan, ell_spmm, ell_spmm_loop
from repro.kernels import ENGINE_ENV, use_engine
from repro.sim.base import BatchSpec
from repro.sim.bqsim import BQSimSimulator
from repro.sim.cuquantum import CuQuantumSimulator
from repro.sim.flatdd import FlatDDSimulator
from repro.sim.multigpu import MultiGpuBQSimSimulator
from repro.sim.qiskit_aer import QiskitAerSimulator
from repro.sim.statevector import apply_gate, simulate_batch

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

SIMULATORS = {
    "bqsim": BQSimSimulator,
    "bqsim-multigpu": MultiGpuBQSimSimulator,
    "cuquantum": CuQuantumSimulator,
    "qiskit-aer": QiskitAerSimulator,
    "flatdd": FlatDDSimulator,
}


# ---------------------------------------------------------------------------
# 1. numpy engine == the pre-refactor direct-NumPy code, bit for bit
# ---------------------------------------------------------------------------

def _reference_blocked_spmm(values, cols, states):
    """The pre-engine ``GatherPlan._apply_blocked`` body, verbatim."""
    num_rows, width = values.shape
    batch = states.shape[1] if states.ndim == 2 else 1
    block = max(16, min(num_rows, (1 << 16) // max(batch, 1)))
    out = np.empty_like(states)
    for r0 in range(0, num_rows, block):
        r1 = min(r0 + block, num_rows)
        acc = np.zeros((r1 - r0,) + states.shape[1:], dtype=states.dtype)
        for k in range(width):
            acc += values[r0:r1, k : k + 1] * states[cols[r0:r1, k], :]
        out[r0:r1] = acc
    return out


def _reference_gather_axes(num_qubits, operands):
    """The pre-engine ``repro.sim.statevector._gather_axes``, verbatim."""
    rest = [q for q in range(num_qubits) if q not in operands]
    k = len(operands)
    rest_values = np.zeros(1 << len(rest), dtype=np.int64)
    for i, q in enumerate(rest):
        bit = (np.arange(1 << len(rest)) >> i) & 1
        rest_values |= bit << q
    local_values = np.zeros(1 << k, dtype=np.int64)
    for i, q in enumerate(operands):
        bit = (np.arange(1 << k) >> i) & 1
        local_values |= bit << q
    return rest_values[:, None] + local_values[None, :]


def _reference_apply_gate(states, gate, num_qubits):
    """The pre-engine ``apply_gate`` body, verbatim (direct NumPy)."""
    matrix = gate.matrix()
    idx = _reference_gather_axes(num_qubits, gate.all_qubits)
    if gate.controls:
        k_t = len(gate.qubits)
        ctrl_mask = ((1 << len(gate.controls)) - 1) << k_t
        idx = idx[:, ctrl_mask : ctrl_mask + (1 << k_t)]
    gathered = states[idx, :]
    states[idx, :] = np.einsum("ij,gjb->gib", matrix, gathered)
    return states


@pytest.fixture
def random_plan(rng):
    rows, width = 64, 3
    values = rng.standard_normal((rows, width)) + 1j * rng.standard_normal(
        (rows, width)
    )
    cols = rng.integers(0, rows, size=(rows, width)).astype(np.int64)
    return GatherPlan(6, values, cols)


def test_numpy_spmm_bit_identical_to_prerefactor(rng, random_plan):
    states = rng.standard_normal((64, 7)) + 1j * rng.standard_normal((64, 7))
    expected = _reference_blocked_spmm(
        random_plan.values, random_plan.cols, states
    )
    result = ell_spmm(random_plan, states, backend="numpy", engine="numpy")
    np.testing.assert_array_equal(result, expected)


def test_numpy_spmm_loop_bit_identical_to_prerefactor(rng, random_plan):
    states = rng.standard_normal((64, 4)) + 1j * rng.standard_normal((64, 4))
    expected = np.zeros_like(states)
    for k in range(random_plan.width):
        expected += (
            random_plan.values[:, k : k + 1]
            * states[random_plan.cols[:, k], :]
        )
    result = random_plan.apply(states, backend="loop", engine="numpy")
    np.testing.assert_array_equal(result, expected)


def test_numpy_apply_gate_bit_identical_to_prerefactor(small_circuit, batch4):
    ours = batch4.states.copy()
    reference = batch4.states.copy()
    for gate in small_circuit.gates:
        apply_gate(ours, gate, 4, engine="numpy")
        _reference_apply_gate(reference, gate, 4)
    np.testing.assert_array_equal(ours, reference)


def test_numpy_simulate_batch_bit_identical_to_prerefactor(batch4):
    circuit = make_circuit("qft", 4)
    reference = batch4.states.copy()
    for gate in circuit.gates:
        _reference_apply_gate(reference, gate, 4)
    np.testing.assert_array_equal(
        simulate_batch(circuit, batch4, engine="numpy"), reference
    )


# ---------------------------------------------------------------------------
# 2. fake-gpu engine == numpy engine, within tolerance, all simulators
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(SIMULATORS))
def test_simulator_engine_parity(name):
    circuit = make_circuit("qft", 5)
    spec = BatchSpec(num_batches=2, batch_size=4, seed=3)
    host = SIMULATORS[name](engine="numpy").run(circuit, spec)
    device = SIMULATORS[name](engine="fake-gpu").run(circuit, spec)
    assert host.stats["engine"] == "numpy"
    assert device.stats["engine"] == "fake-gpu"
    assert len(host.outputs) == len(device.outputs) == 2
    for h, d in zip(host.outputs, device.outputs):
        np.testing.assert_allclose(d, h, atol=1e-10)
    # the device model itself is engine-independent
    assert device.modeled_time == pytest.approx(host.modeled_time)


@pytest.mark.parametrize("name", sorted(SIMULATORS))
def test_simulator_numpy_engine_matches_unset_engine(name, monkeypatch):
    """engine=None resolves to numpy and stays bit-identical to history."""
    monkeypatch.delenv(ENGINE_ENV, raising=False)
    circuit = make_circuit("ghz", 4)
    spec = BatchSpec(num_batches=1, batch_size=3, seed=1)
    default = SIMULATORS[name]().run(circuit, spec)
    explicit = SIMULATORS[name](engine="numpy").run(circuit, spec)
    assert default.stats["engine"] == "numpy"
    for a, b in zip(default.outputs, explicit.outputs):
        np.testing.assert_array_equal(a, b)


def test_env_var_reaches_simulator_stats(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV, "fake-gpu")
    result = BQSimSimulator().run(
        make_circuit("ghz", 3), BatchSpec(num_batches=1, batch_size=2)
    )
    assert result.stats["engine"] == "fake-gpu"


def test_use_engine_scopes_a_whole_run():
    with use_engine("fake-gpu"):
        result = FlatDDSimulator().run(
            make_circuit("qft", 3), BatchSpec(num_batches=1, batch_size=2)
        )
    assert result.stats["engine"] == "fake-gpu"


def test_fake_gpu_statevector_matches_numpy(small_circuit, batch4):
    host = simulate_batch(small_circuit, batch4, engine="numpy")
    device = simulate_batch(small_circuit, batch4, engine="fake-gpu")
    np.testing.assert_allclose(device, host, atol=1e-12)
    # fake-gpu must not have mutated the input batch (device copy)
    assert batch4.states.flags.writeable


def test_controlled_gates_parity():
    circuit = Circuit(3).h(0).ccx(0, 1, 2).cp(0.7, 1, 0).cx(2, 1)
    batch = random_batch(3, 4, rng=5)
    host = simulate_batch(circuit, batch, engine="numpy")
    device = simulate_batch(circuit, batch, engine="fake-gpu")
    np.testing.assert_allclose(device, host, atol=1e-12)


def test_spmm_loop_engine_kwarg_parity(rng, random_plan):
    states = rng.standard_normal((64, 3)) + 1j * rng.standard_normal((64, 3))
    host = random_plan.apply(states, backend="loop", engine="numpy")
    device = random_plan.apply(states, backend="loop", engine="fake-gpu")
    np.testing.assert_allclose(device, host, atol=1e-12)
    host = ell_spmm_loop(random_plan, states, engine="numpy")
    device = ell_spmm_loop(random_plan, states, engine="fake-gpu")
    np.testing.assert_allclose(device, host, atol=1e-12)


# ---------------------------------------------------------------------------
# 3. lint: no direct numpy in the hot paths
# ---------------------------------------------------------------------------

#: (file, function qualname) pairs whose bodies must compute via engine.xp
#: only; host numpy may appear solely in (skipped) type annotations
HOT_FUNCTIONS = {
    "repro/ell/spmm.py": {
        "GatherPlan.apply",
        "ell_spmm",
        "ell_spmm_loop",
    },
    "repro/sim/statevector.py": {
        "apply_gate",
        "simulate_batch",
    },
    "repro/sim/bqsim.py": {
        "BQSimSimulator._simulate",
    },
    "repro/kernels/ops.py": {
        "ell_gather_width1",
        "ell_gather_spmm",
        "ell_gather_slots",
        "ell_gather_stacked",
        "dense_gate_apply",
        "dense_gate_apply_stacked",
        "copy_into",
        "statevector_init",
        "normalize_states",
    },
}

#: names a hot function must never dereference (host numpy aliases)
_FORBIDDEN = {"np", "numpy", "_host_np"}


def _function_index(tree):
    """qualname -> FunctionDef for every (possibly nested) function."""
    index = {}

    def visit(node, prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                index[qual] = child
                visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return index


def _annotation_nodes(fn):
    """Every AST node inside an annotation subtree of ``fn``."""
    roots = []
    args = fn.args
    for arg in (
        args.posonlyargs + args.args + args.kwonlyargs
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        if arg.annotation is not None:
            roots.append(arg.annotation)
    if fn.returns is not None:
        roots.append(fn.returns)
    for node in ast.walk(fn):
        if isinstance(node, ast.AnnAssign) and node.annotation is not None:
            roots.append(node.annotation)
    skip = set()
    for root in roots:
        for node in ast.walk(root):
            skip.add(id(node))
    return skip


def _numpy_violations(fn):
    skip = _annotation_nodes(fn)
    violations = []
    for node in ast.walk(fn):
        if id(node) in skip:
            continue
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id in _FORBIDDEN:
                violations.append(f"line {node.lineno}: "
                                  f"{node.value.id}.{node.attr}")
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in _FORBIDDEN:
                violations.append(f"line {node.lineno}: {node.func.id}(...)")
    return violations


@pytest.mark.parametrize("rel_path", sorted(HOT_FUNCTIONS))
def test_hot_paths_have_no_direct_numpy(rel_path):
    source = (SRC / rel_path).read_text(encoding="utf-8")
    index = _function_index(ast.parse(source))
    missing = HOT_FUNCTIONS[rel_path] - set(index)
    assert not missing, f"{rel_path}: lint targets not found: {missing}"
    problems = []
    for qual in sorted(HOT_FUNCTIONS[rel_path]):
        for violation in _numpy_violations(index[qual]):
            problems.append(f"{rel_path}:{qual} {violation}")
    assert not problems, (
        "direct numpy in engine-routed hot paths:\n" + "\n".join(problems)
    )
