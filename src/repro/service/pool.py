"""Process-parallel execution pool for the batch simulation service.

The serving layer's coalescer removes per-gate overhead by merging jobs
into mega-batches, but PR 4 still executed every mega-batch serially on
one Python interpreter — the GIL caps throughput at one core no matter
how many :class:`~repro.service.workers.Worker` objects exist.  This
module adds the missing axis: a :class:`ProcessWorkerPool` of **N OS
processes** (stdlib :mod:`multiprocessing`, spawn-safe) that each own a
full :class:`~repro.sim.bqsim.BQSimSimulator` and execute whole
mega-batches concurrently.

Three properties carry over from the serial path by construction:

* **bit-identical results** — a worker runs the exact padded mega-block
  the serial path would have run, through the same simulator code; spMM
  computes each output column from its input column alone, so process
  placement cannot change a single bit (property-tested in
  ``tests/test_service_pool.py``);
* **degradation stays local** — when a mega-batch raises
  :class:`~repro.errors.ReproError` inside a worker, that worker re-runs
  every member job alone (per-job isolation) before reporting, exactly
  like the serial service's ``_degrade``;
* **compile-once plans** — every worker points at one shared on-disk
  :class:`~repro.sim.base.PlanCache` tier; first-build races are settled
  by the cache's ``flock``-based :meth:`~repro.sim.base.PlanCache.build_lock`,
  so each plan fingerprint is fused and converted exactly once fleet-wide
  and the losers load the winner's archive.

State vectors cross the process boundary via
:mod:`multiprocessing.shared_memory` once they exceed
:data:`DEFAULT_SHM_THRESHOLD` bytes (below it, pickling through the task
queue is cheaper than two segment syscalls).  The parent creates *both*
the input and the output segment, tracks every created name in a live
set, and unlinks when the result (or the crash evidence) lands, so
segment lifetime never depends on worker exit order and
:meth:`ProcessWorkerPool.leaked_segments` can prove the set is empty.

**Supervision.**  Worker processes die — the OOM killer SIGKILLs them,
a wedged native kernel hangs them.  The pool supervises on every
:meth:`poll` (blocking *and* non-blocking): a dead worker's task is
reaped as a crash result carrying evidence (``exitcode``, member job
ids), an overdue task's worker is killed and reaped as a timeout, and
the dead slot is respawned with a fresh task queue under a pool-wide
restart budget (:class:`~repro.resilience.retry.RetryPolicy` — backoff
is *modeled*, not slept, like every other backoff in this codebase).
When the budget runs out the slot is marked lost; once every slot is
lost, :meth:`submit` raises so the service can fail queued work instead
of waiting forever.  Crash results carry ``result["crash"]`` — the
service turns that into redelivery or quarantine; the pool itself stays
policy-free.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import shutil
import tempfile
import time
from contextlib import nullcontext
from multiprocessing import shared_memory

import numpy as np

from ..circuit import InputBatch
from ..errors import CheckpointError, ReproError, ServiceError
from ..obs import get_metrics, get_tracer
from ..obs.tracer import Tracer, set_tracer
from ..resilience.events import get_resilience_log
from ..resilience.retry import RetryPolicy, RetrySession
from ..sim.base import PLAN_CACHE_ENV, BatchSpec

#: arrays at or above this many bytes ship via ``shared_memory``; smaller
#: ones are pickled inline through the task queue (two segment syscalls
#: plus a mmap cost more than copying a few KiB through a pipe)
DEFAULT_SHM_THRESHOLD = 1 << 16

#: default pool-wide worker-restart budget: total respawns across all
#: slots before further deaths mark their slot lost
DEFAULT_MAX_RESTARTS = 8

#: seconds a blocking :meth:`ProcessWorkerPool.poll` waits between
#: worker-liveness checks
_POLL_TICK_S = 0.25

#: seconds :meth:`ProcessWorkerPool.close` waits for a worker to exit
#: before terminating it
_JOIN_TIMEOUT_S = 5.0

#: plan-cache snapshot reported for a worker that died before its first
#: result
_EMPTY_PLAN_CACHE = {"hits": 0, "disk_hits": 0, "misses": 0, "quarantined": 0}


def _receive_array(desc) -> np.ndarray:
    """Materialize an array descriptor produced by ``_ship_array``.

    Workers only ever *attach* (``create=False``), which registers
    nothing with the resource tracker — segment lifetime and tracker
    bookkeeping belong solely to the creating parent, which unlinks
    after collecting the result.
    """
    kind = desc[0]
    if kind == "inline":
        return desc[1]
    _, name, shape, dtype = desc
    seg = shared_memory.SharedMemory(name=name)
    try:
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf).copy()
    finally:
        seg.close()


def _span(tracer, name: str, **attrs):
    """A tracer span when tracing is on, a no-op context otherwise."""
    return tracer.span(name, **attrs) if tracer is not None else nullcontext()


def _group_run(sim, task: dict, spec: BatchSpec, batches: list):
    """The mega-batch group run, resuming a crash checkpoint when one fits.

    On a redelivered task (``task["resume"]``) whose simulator checkpoints
    to disk, the previous delivery may have left a batch-boundary archive
    before its worker died.  Candidates are matched on the batch spec and
    validated (plan fingerprint included) by ``run(resume=...)`` itself;
    a mismatched archive is skipped, never trusted.
    """
    if task.get("resume") and sim.checkpoint_dir is not None:
        from ..resilience.checkpoint import find_checkpoints

        for candidate in find_checkpoints(
            sim.checkpoint_dir, spec.num_batches, spec.batch_size, spec.seed
        ):
            try:
                return sim.run(
                    task["circuit"], spec, batches=batches, execute=True,
                    resume=candidate,
                )
            except CheckpointError:
                continue
    return sim.run(task["circuit"], spec, batches=batches, execute=True)


def _run_task(sim, wid: int, task: dict) -> dict:
    """Execute one dispatched mega-batch inside a worker process.

    Returns a picklable result record.  Mirrors the serial service's
    execute-then-degrade contract: a :class:`ReproError` from the group
    run triggers per-job solo re-runs *inside this worker*; any other
    exception fails every member (the worker itself must survive to take
    the next task).
    """
    chaos = task.get("chaos")
    if chaos:
        from ..testing.chaos_pool import apply_chaos_action

        apply_chaos_action(chaos, "before_run")
    wall0 = time.perf_counter()
    tracer = Tracer(enabled=True) if task["trace"] else None
    previous = set_tracer(tracer) if tracer is not None else None
    # the worker simulator is long-lived and serves every fidelity class;
    # point it at this task's budget before running (the plan-cache key
    # includes the budget, so classes never share compiled plans)
    sim.fidelity = task.get("fidelity", 1.0)
    mega = _receive_array(task["inputs"])
    spec = BatchSpec(*task["spec"])
    total = task["total_columns"]
    job_columns = task["job_columns"]
    job_ids = task.get("job_ids") or []
    width = spec.batch_size
    batches = [
        InputBatch(mega[:, i * width : (i + 1) * width])
        for i in range(spec.num_batches)
    ]
    merged = None
    per_job: list[dict] = []
    degraded = False
    cause = None
    modeled = 0.0
    plan_source = ""
    solo_runs = 0
    resumed_batches = 0
    approx = None
    try:
        try:
            with _span(
                tracer, "pool.megabatch",
                worker=wid,
                jobs=len(job_columns),
                job_ids=list(job_ids),
                columns=total,
            ):
                result = _group_run(sim, task, spec, batches)
        except ReproError as exc:
            degraded = True
            cause = str(exc)
            merged = np.zeros((mega.shape[0], total), dtype=np.complex128)
            offset = 0
            for idx, cols in enumerate(job_columns):
                solo_batch = InputBatch(mega[:, offset : offset + cols])
                jid = job_ids[idx] if idx < len(job_ids) else ""
                try:
                    with _span(
                        tracer, "pool.solo",
                        worker=wid, job=jid, columns=cols,
                    ):
                        solo = sim.run(
                            task["circuit"],
                            BatchSpec(num_batches=1, batch_size=cols, seed=0),
                            batches=[solo_batch],
                            execute=True,
                        )
                except ReproError as solo_exc:
                    per_job.append({"ok": False, "error": str(solo_exc)})
                else:
                    merged[:, offset : offset + cols] = solo.outputs[0]
                    modeled += solo.modeled_time
                    solo_runs += 1
                    # the group is fidelity-homogeneous, so any solo run's
                    # ledger stands in for the mega-batch's (keeps
                    # achieved_fidelity alive through degradation)
                    approx = solo.stats.get("approx") or approx
                    per_job.append({"ok": True, "error": None})
                offset += cols
        else:
            out = (
                result.outputs[0]
                if len(result.outputs) == 1
                else np.hstack(result.outputs)
            )
            merged = np.ascontiguousarray(out[:, :total])
            modeled = result.modeled_time
            plan_source = result.stats.get("plan_source", "")
            resumed_batches = result.stats.get("resumed_batches", 0)
            approx = result.stats.get("approx")
            per_job = [{"ok": True, "error": None} for _ in job_columns]
    except BaseException as exc:  # noqa: BLE001 - worker must not die
        degraded = True
        cause = f"{type(exc).__name__}: {exc}"
        merged = None
        per_job = [{"ok": False, "error": cause} for _ in job_columns]
    finally:
        if previous is not None:
            set_tracer(previous)

    outputs = None
    if merged is not None:
        if task["out_shm"] is not None:
            name, shape = task["out_shm"]
            seg = shared_memory.SharedMemory(name=name)
            try:
                view = np.ndarray(
                    shape, dtype=np.complex128, buffer=seg.buf
                )
                view[:] = merged
            finally:
                seg.close()
            outputs = ("shm",)
        else:
            outputs = ("inline", merged)
    if chaos:
        # "after_run": the work is done but the report never leaves the
        # process — the redelivery must be able to recompute (or resume)
        apply_chaos_action(chaos, "after_run")
    return {
        "task_id": task["task_id"],
        "wid": wid,
        "degraded": degraded,
        "cause": cause,
        "per_job": per_job,
        "outputs": outputs,
        "modeled_s": modeled,
        "plan_source": plan_source,
        "solo_runs": solo_runs,
        "resumed_batches": resumed_batches,
        "approx": approx,
        "plan_cache": sim._plans.stats_dict(),
        "spans": (
            [span.to_dict() for span in tracer.spans()] if tracer else []
        ),
        "wall_s": time.perf_counter() - wall0,
        "crash": None,
    }


def _worker_main(wid: int, task_q, result_q, simulator_kwargs: dict) -> None:
    """Entry point of one pool worker process (module-level: spawn pickles
    it by qualified name)."""
    from ..sim.bqsim import BQSimSimulator

    sim = BQSimSimulator(**simulator_kwargs)
    while True:
        task = task_q.get()
        if task is None:
            break
        result_q.put(_run_task(sim, wid, task))


class ProcessWorkerPool:
    """N spawn-safe, supervised worker processes executing mega-batches.

    The pool is deliberately dumb: it knows nothing about jobs, queues,
    or scheduling — :meth:`submit` takes one packed mega-block and hands
    it to an idle worker, :meth:`poll` collects finished results and
    supervises the fleet (reap crashed workers, kill overdue ones,
    respawn under the restart budget).  The
    :class:`~repro.service.workers.BatchSimulationService` drives it in
    ``parallelism="process"`` mode and keeps all policy (fairness,
    coalescing, redelivery, quarantine) in the parent: a crashed or
    timed-out task surfaces as a result whose ``crash`` key holds the
    evidence, never as a lost job.

    Example — two workers sharing one on-disk plan cache::

        pool = ProcessWorkerPool(num_workers=2, cache_dir="/tmp/plans")
        tid, wid = pool.submit(circuit, spec, mega, total, [total])
        (result,) = pool.poll(block=True)
        pool.close()
    """

    def __init__(
        self,
        num_workers: int,
        simulator_kwargs: dict | None = None,
        cache_dir: str | None = None,
        shm_threshold: int = DEFAULT_SHM_THRESHOLD,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
        restart_policy: RetryPolicy | None = None,
        chaos=None,
    ) -> None:
        if num_workers < 1:
            raise ServiceError("process pool needs at least one worker")
        if max_restarts < 0:
            raise ServiceError("max_restarts must be >= 0")
        self.num_workers = num_workers
        self.shm_threshold = shm_threshold
        self.max_restarts = max_restarts
        #: attempts bounds restarts per slot, run_budget bounds the fleet;
        #: backoff is modeled (reported, not slept) so supervision never
        #: stalls the poll loop
        self.restart_policy = restart_policy or RetryPolicy(
            max_attempts=max_restarts + 1,
            base_backoff=0.05,
            run_budget=max_restarts,
        )
        self._restart_session = RetrySession(self.restart_policy, seed=0)
        #: a :class:`~repro.testing.chaos_pool.ChaosSchedule` (or None);
        #: its encoded action ships inside the task payload
        self.chaos = chaos
        kwargs = dict(simulator_kwargs or {})
        #: the shared disk tier every worker compiles into; precedence:
        #: explicit argument > simulator kwargs > $REPRO_PLAN_CACHE > a
        #: pool-owned temp dir removed at close()
        self._owns_cache_dir = False
        resolved = (
            cache_dir
            or kwargs.get("cache_dir")
            or os.environ.get(PLAN_CACHE_ENV)
        )
        if not resolved:
            resolved = tempfile.mkdtemp(prefix="repro-pool-plans-")
            self._owns_cache_dir = True
        kwargs["cache_dir"] = str(resolved)
        self.cache_dir = str(resolved)
        self.simulator_kwargs = kwargs
        self._ctx = mp.get_context("spawn")
        self._procs: dict[int, mp.process.BaseProcess] = {}
        self._task_qs: dict[int, object] = {}
        self._result_q = None
        self._idle: set[int] = set()
        self._lost: set[int] = set()
        self._pending: dict[int, dict] = {}
        self._task_ids = itertools.count(1)
        self._started = False
        self._closed = False
        #: names of every parent-created shm segment not yet unlinked —
        #: the live set :meth:`leaked_segments` audits
        self._segment_names: set[str] = set()
        #: transport + throughput counters (also mirrored to metrics)
        self.dispatched = 0
        self.completed = 0
        self.shm_tasks = 0
        self.pickle_tasks = 0
        self.shm_bytes = 0
        #: supervision counters
        self.crashes = 0
        self.timeouts = 0
        self.restarts = 0
        self.resumed_batches = 0
        #: last plan-cache snapshot and per-worker tallies, by wid
        self._plan_cache: dict[int, dict] = {}
        self._worker_restarts: dict[int, int] = {
            wid: 0 for wid in range(num_workers)
        }
        self._worker_stats: dict[int, dict] = {
            wid: {
                "wid": wid,
                "megabatches": 0,
                "solo_runs": 0,
                "jobs_done": 0,
                "crashes": 0,
                "restarts": 0,
            }
            for wid in range(num_workers)
        }

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, wid: int) -> None:
        """Start (or replace) the worker process for slot ``wid`` with a
        fresh task queue — a SIGKILLed worker may leave its old queue's
        feeder thread in an undefined state, so queues are never reused
        across process generations."""
        task_q = self._ctx.Queue()
        generation = self._worker_restarts[wid]
        proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, task_q, self._result_q, self.simulator_kwargs),
            name=f"repro-pool-{wid}"
            + (f"-r{generation}" if generation else ""),
            daemon=True,
        )
        proc.start()
        old_q = self._task_qs.get(wid)
        if old_q is not None:
            try:
                old_q.close()
            except Exception:  # pragma: no cover - feeder already dead
                pass
        self._task_qs[wid] = task_q
        self._procs[wid] = proc
        self._idle.add(wid)

    def start(self) -> None:
        """Spawn the worker processes (idempotent; ``submit`` calls it)."""
        if self._started:
            return
        if self._closed:
            raise ServiceError("pool is closed")
        self._result_q = self._ctx.Queue()
        for wid in range(self.num_workers):
            self._spawn(wid)
        self._started = True
        get_metrics().gauge("service.pool.workers", self.num_workers)

    def close(self) -> None:
        """Stop every worker and release all pool-owned resources.

        Idempotent: a second (or concurrent-with-crash) close is a no-op.
        Workers that ignore the poison pill are terminated, then killed;
        every pending task's segments are released and the live-segment
        set is swept so :meth:`leaked_segments` is empty afterwards.
        """
        if self._closed:
            return
        self._closed = True
        for wid, task_q in self._task_qs.items():
            if wid in self._lost:
                continue
            try:
                task_q.put(None)
            except Exception:  # pragma: no cover - feeder already dead
                pass
        for proc in self._procs.values():
            proc.join(timeout=_JOIN_TIMEOUT_S)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - ignores SIGTERM
                proc.kill()
                proc.join(timeout=1.0)
        for pending in self._pending.values():
            self._release_segments(pending)
        self._pending.clear()
        # sweep stragglers (there should be none: release is tied to
        # result/crash collection) so a crashed run cannot leak segments
        for name in sorted(self._segment_names):
            try:
                seg = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                pass
            else:  # pragma: no cover - indicates an accounting bug
                seg.close()
                seg.unlink()
            self._segment_names.discard(name)
        if self._result_q is not None:
            self._result_q.close()
        for task_q in self._task_qs.values():
            try:
                task_q.close()
            except Exception:  # pragma: no cover - already closed
                pass
        if self._owns_cache_dir:
            shutil.rmtree(self.cache_dir, ignore_errors=True)

    def __enter__(self) -> "ProcessWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def idle_workers(self) -> int:
        """Workers currently without a dispatched task."""
        if not self._started:
            return self.num_workers
        return len(self._idle)

    @property
    def alive_workers(self) -> int:
        """Workers whose process is currently running (lost slots excluded)."""
        if not self._started:
            return self.num_workers
        return sum(
            1
            for wid, proc in self._procs.items()
            if wid not in self._lost and proc.is_alive()
        )

    @property
    def lost_workers(self) -> list[int]:
        """Slots whose restart budget is exhausted (never respawned)."""
        return sorted(self._lost)

    @property
    def inflight(self) -> int:
        """Tasks dispatched but not yet collected by :meth:`poll`."""
        return len(self._pending)

    # -- dispatch ------------------------------------------------------------

    def _ship_array(self, array: np.ndarray, handles: list):
        """Descriptor for ``array``: a parent-owned shm segment when it
        clears the threshold, the pickled array itself otherwise."""
        if array.nbytes >= self.shm_threshold:
            seg = shared_memory.SharedMemory(create=True, size=array.nbytes)
            np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf)[:] = (
                array
            )
            handles.append(seg)
            self._segment_names.add(seg.name)
            self.shm_tasks += 1
            self.shm_bytes += array.nbytes
            get_metrics().inc("service.pool.shm_tasks")
            get_metrics().inc("service.pool.shm_bytes", array.nbytes)
            return ("shm", seg.name, array.shape, array.dtype.str)
        self.pickle_tasks += 1
        get_metrics().inc("service.pool.pickle_tasks")
        return ("inline", array)

    def submit(
        self,
        circuit,
        spec: BatchSpec,
        mega: np.ndarray,
        total_columns: int,
        job_columns: list[int],
        trace: bool | None = None,
        job_ids: list[str] | None = None,
        timeout_s: float | None = None,
        resume: bool = False,
        delivery: int | None = None,
        fidelity: float = 1.0,
    ) -> tuple[int, int]:
        """Dispatch one packed mega-block to an idle worker.

        ``mega`` is the padded ``(2**n, spec.num_inputs)`` block the serial
        path would execute; ``job_columns`` are the unpadded per-job column
        counts (summing to ``total_columns``); ``job_ids`` (optional, same
        order) are stamped onto the worker's ``pool.megabatch``/``pool.solo``
        spans so a merged trace correlates one job across processes.
        ``timeout_s`` arms the supervisor's execution deadline (the
        strictest member deadline); ``resume`` marks a redelivered task
        whose worker may resume a crash checkpoint; ``delivery`` is echoed
        into crash evidence; ``fidelity`` is the group's (homogeneous)
        fidelity budget, applied to the worker simulator before the run.
        Returns ``(task_id, wid)``.  Raises
        :class:`ServiceError` when no worker is idle — callers poll first
        — or when every slot's restart budget is exhausted.
        """
        self.start()
        if not self._idle:
            if self.alive_workers == 0:
                raise ServiceError(
                    "no live pool workers (restart budget exhausted: "
                    f"{self.restarts}/{self.max_restarts} restarts used, "
                    f"lost slots {self.lost_workers})"
                )
            raise ServiceError("no idle pool worker (poll for results first)")
        if trace is None:
            trace = get_tracer().enabled
        wid = min(self._idle)
        self._idle.discard(wid)
        task_id = next(self._task_ids)
        handles: list[shared_memory.SharedMemory] = []
        inputs = self._ship_array(mega, handles)
        out_bytes = mega.shape[0] * total_columns * 16
        out_shm = None
        out_seg = None
        if out_bytes >= self.shm_threshold:
            out_seg = shared_memory.SharedMemory(create=True, size=out_bytes)
            handles.append(out_seg)
            self._segment_names.add(out_seg.name)
            out_shm = (out_seg.name, (mega.shape[0], total_columns))
            self.shm_bytes += out_bytes
            get_metrics().inc("service.pool.shm_bytes", out_bytes)
        task = {
            "task_id": task_id,
            "circuit": circuit,
            "spec": (spec.num_batches, spec.batch_size, spec.seed),
            "inputs": inputs,
            "out_shm": out_shm,
            "total_columns": total_columns,
            "job_columns": list(job_columns),
            "job_ids": list(job_ids or []),
            "trace": bool(trace),
            "resume": bool(resume),
            "fidelity": float(fidelity),
            "chaos": (
                self.chaos.action_for(task_id)
                if self.chaos is not None
                else None
            ),
        }
        self._pending[task_id] = {
            "wid": wid,
            "handles": handles,
            "out_seg": out_seg,
            "out_shape": (mega.shape[0], total_columns),
            "dispatched_at": time.perf_counter() - get_tracer().epoch,
            "job_ids": list(job_ids or []),
            "timeout_s": timeout_s,
            "deadline": (
                time.monotonic() + timeout_s if timeout_s is not None else None
            ),
            "delivery": delivery,
        }
        self._task_qs[wid].put(task)
        self.dispatched += 1
        get_metrics().inc("service.pool.dispatched")
        get_metrics().gauge("service.pool.inflight", self.inflight)
        return task_id, wid

    # -- collection ----------------------------------------------------------

    def _release_segments(self, pending: dict) -> None:
        for seg in pending["handles"]:
            self._segment_names.discard(seg.name)
            try:
                seg.close()
                seg.unlink()
            except Exception:  # pragma: no cover - already gone
                pass

    def leaked_segments(self) -> list[str]:
        """Names of shm segments that outlived their task (should be ``[]``).

        A segment is leaked when the pool created it, no pending task
        references it anymore, and it still exists in the OS — the
        invariant the chaos tests assert after every crash/redeliver
        cycle and after :meth:`close`.
        """
        live = {
            seg.name
            for pending in self._pending.values()
            for seg in pending["handles"]
        }
        leaked = []
        for name in sorted(self._segment_names - live):
            try:
                seg = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                self._segment_names.discard(name)
            else:
                seg.close()
                leaked.append(name)
        return leaked

    def _finalize(self, raw: dict) -> dict | None:
        """Account one worker-produced result (None = stale duplicate).

        A result can race the supervisor: the worker finishes in the gap
        between deadline expiry and the kill, so its report arrives after
        the task was already reaped as a timeout.  Such a result's task
        id is no longer pending — drop it; the synthesized crash result
        is the one the service already acted on.
        """
        pending = self._pending.pop(raw["task_id"], None)
        if pending is None:
            return None
        wid = pending["wid"]
        self._idle.add(wid)
        outputs = None
        if raw["outputs"] is not None:
            if raw["outputs"][0] == "shm":
                seg = pending["out_seg"]
                outputs = np.ndarray(
                    pending["out_shape"], dtype=np.complex128, buffer=seg.buf
                ).copy()
            else:
                outputs = raw["outputs"][1]
        self._release_segments(pending)
        self.completed += 1
        self.resumed_batches += raw.get("resumed_batches", 0)
        stats = self._worker_stats[wid]
        stats["megabatches"] += 1
        stats["solo_runs"] += raw["solo_runs"]
        stats["jobs_done"] += sum(
            1 for pj in raw["per_job"] or [] if pj["ok"]
        )
        self._plan_cache[wid] = raw["plan_cache"]
        metrics = get_metrics()
        metrics.inc("service.pool.completed")
        metrics.observe("service.pool.task_wall_s", raw["wall_s"])
        metrics.gauge("service.pool.inflight", self.inflight)
        if raw["spans"]:
            get_tracer().absorb(
                raw["spans"],
                thread=f"pool-worker-{wid}",
                offset=pending["dispatched_at"],
            )
        raw["outputs"] = outputs
        raw.setdefault("crash", None)
        return raw

    def _crash_result(
        self, task_id: int, kind: str, detail: str, exitcode
    ) -> dict:
        """Reap one pending task whose worker died or blew its deadline.

        Releases the task's segments immediately (the worker is gone;
        nothing will write the output block) and synthesizes a result
        whose ``crash`` key carries the evidence the service attaches to
        the member jobs.  Deliberately does **not** mark the slot idle or
        bump completion tallies — the slot re-enters service only through
        :meth:`_respawn`.
        """
        pending = self._pending.pop(task_id)
        wid = pending["wid"]
        self._release_segments(pending)
        self._idle.discard(wid)
        self.crashes += 1
        self._worker_stats[wid]["crashes"] += 1
        metrics = get_metrics()
        metrics.inc("service.pool.worker_deaths")
        metrics.gauge("service.pool.inflight", self.inflight)
        return {
            "task_id": task_id,
            "wid": wid,
            "degraded": True,
            "cause": detail,
            "per_job": None,  # no per-member verdict: the worker is gone
            "outputs": None,
            "modeled_s": 0.0,
            "plan_source": "",
            "solo_runs": 0,
            "resumed_batches": 0,
            "plan_cache": self._plan_cache.get(wid, dict(_EMPTY_PLAN_CACHE)),
            "spans": [],
            "wall_s": 0.0,
            "crash": {
                "kind": kind,
                "wid": wid,
                "exitcode": exitcode,
                "task_id": task_id,
                "job_ids": pending["job_ids"],
                "timeout_s": pending["timeout_s"],
                "delivery": pending["delivery"],
                "detail": detail,
            },
        }

    def _respawn(self, wid: int) -> bool:
        """Replace a dead worker under the restart budget (False = slot lost).

        Restart pacing reuses :class:`~repro.resilience.retry.RetrySession`:
        per-slot attempts bound one flapping worker, the session's run
        budget bounds the fleet, and the exponential backoff is *modeled*
        — accumulated into ``restart_backoff_s`` for operators rather
        than slept, so supervision never blocks the poll loop.
        """
        attempt = self._worker_restarts[wid] + 1
        backoff = self._restart_session.next_backoff(
            f"pool.worker{wid}", attempt
        )
        if backoff is None:
            self._lost.add(wid)
            self._idle.discard(wid)
            get_metrics().gauge("service.pool.workers", self.alive_workers)
            get_resilience_log().record(
                "worker_lost",
                site="pool",
                wid=wid,
                restarts=self._worker_restarts[wid],
                budget=self.max_restarts,
            )
            return False
        self._worker_restarts[wid] = attempt
        self._worker_stats[wid]["restarts"] += 1
        self.restarts += 1
        self._spawn(wid)
        metrics = get_metrics()
        metrics.inc("service.pool.restarts")
        metrics.gauge("service.pool.workers", self.alive_workers)
        get_resilience_log().record(
            "worker_restart",
            site="pool",
            wid=wid,
            restart=attempt,
            backoff_s=round(backoff, 9),
        )
        return True

    def _supervise(self) -> list[dict]:
        """One supervision pass: reap the dead, kill the overdue, respawn.

        Runs on *every* poll (blocking or not), so crash detection never
        depends on a caller choosing ``block=True``.
        """
        if not self._started or self._closed:
            return []
        now = time.monotonic()
        reaped: list[dict] = []
        for task_id in list(self._pending):
            pending = self._pending[task_id]
            wid = pending["wid"]
            proc = self._procs[wid]
            if not proc.is_alive():
                reaped.append(
                    self._crash_result(
                        task_id,
                        kind="worker_crash",
                        detail=(
                            f"pool worker {wid} died (exitcode "
                            f"{proc.exitcode}) while running task {task_id}"
                        ),
                        exitcode=proc.exitcode,
                    )
                )
            elif pending["deadline"] is not None and now > pending["deadline"]:
                # a hung worker holds its slot forever; only a kill frees it
                proc.kill()
                proc.join(timeout=_JOIN_TIMEOUT_S)
                self.timeouts += 1
                get_metrics().inc("service.pool.task_timeouts")
                reaped.append(
                    self._crash_result(
                        task_id,
                        kind="timeout",
                        detail=(
                            f"task {task_id} exceeded its "
                            f"{pending['timeout_s']}s deadline on worker "
                            f"{wid} (killed)"
                        ),
                        exitcode=proc.exitcode,
                    )
                )
        for wid, proc in list(self._procs.items()):
            if wid in self._lost or proc.is_alive():
                continue
            self._respawn(wid)
        return reaped

    def _timeout_error(self, timeout: float) -> ServiceError:
        """Poll-timeout diagnostics: which tasks are stuck on which workers,
        and whether those workers are even alive."""
        stuck = ", ".join(
            f"task {tid} (worker {p['wid']}, jobs {p['job_ids'] or '?'})"
            for tid, p in sorted(self._pending.items())
        )
        liveness = ", ".join(
            f"w{wid}="
            + (
                "lost"
                if wid in self._lost
                else "alive" if proc.is_alive() else "dead"
            )
            for wid, proc in sorted(self._procs.items())
        )
        return ServiceError(
            f"pool poll timed out after {timeout}s with {self.inflight} "
            f"task(s) in flight: {stuck}; workers: {liveness}"
        )

    def poll(self, block: bool = False, timeout: float = 60.0) -> list[dict]:
        """Collect finished results and supervise (empty list when idle).

        Every call — blocking or not — drains ready results, reaps tasks
        whose worker died or blew its deadline (synthesizing crash
        results), and respawns dead workers under the restart budget.
        ``block=True`` additionally waits up to ``timeout`` seconds for
        at least one result while anything is in flight.
        """
        import queue as _queue

        results: list[dict] = []
        if self._result_q is None:
            return results
        while True:
            try:
                raw = self._result_q.get_nowait()
            except _queue.Empty:
                break
            done = self._finalize(raw)
            if done is not None:
                results.append(done)
        results.extend(self._supervise())
        if results or not block or not self._pending:
            return results
        deadline = time.monotonic() + timeout
        while not results:
            try:
                raw = self._result_q.get(timeout=_POLL_TICK_S)
            except _queue.Empty:
                pass
            else:
                done = self._finalize(raw)
                if done is not None:
                    results.append(done)
            results.extend(self._supervise())
            if results or not self._pending:
                break
            if time.monotonic() > deadline:
                raise self._timeout_error(timeout)
        return results

    # -- reporting -----------------------------------------------------------

    def worker_summaries(self) -> list[dict]:
        """Per-worker tallies shaped like the serial service's entries."""
        return [self._worker_stats[wid] for wid in sorted(self._worker_stats)]

    def plan_cache_totals(self) -> dict[str, int]:
        """Fleet-wide plan-cache counters (sum of last per-worker
        snapshots)."""
        keys = ("hits", "disk_hits", "misses", "quarantined")
        return {
            key: sum(snap.get(key, 0) for snap in self._plan_cache.values())
            for key in keys
        }

    def stats(self) -> dict:
        """JSON-safe pool summary for ``service.stats()["pool"]``."""
        return {
            "workers": self.num_workers,
            "alive": self.alive_workers,
            "idle": self.idle_workers,
            "inflight": self.inflight,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "shm_tasks": self.shm_tasks,
            "pickle_tasks": self.pickle_tasks,
            "shm_bytes": self.shm_bytes,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "restarts": self.restarts,
            "max_restarts": self.max_restarts,
            "lost_workers": self.lost_workers,
            "restart_backoff_s": round(
                self._restart_session.backoff_total, 9
            ),
            "resumed_batches": self.resumed_batches,
            "leaked_segments": len(self.leaked_segments()),
            "cache_dir": self.cache_dir,
        }
