"""Extension bench — speed vs fidelity ablation of the approximate tier.

Sweeps fidelity budgets {1.0, 0.999, 0.99, 0.9} across circuit families
and measures what budgeted DD pruning (:mod:`repro.approx`) buys: fewer
DD nodes, narrower ELL matrices (fewer MACs per input column), and lower
modeled simulation time — against what it costs, the measured end-to-end
plan fidelity.

The headline family is ``vqe_finetune``: a near-converged variational
ansatz whose rotation angles are tiny, so the fused-gate DDs carry many
near-zero branches a small fidelity budget can drop.  Structured
circuits (QFT, GHZ) sit at the other extreme — every edge weight has
unit magnitude, nothing is prunable at any budget, and the bench shows
the tier degrading to exact instead of silently losing fidelity.

Asserts:

* ``achieved >= budget`` for every (family, budget) run — the ledger's
  end-to-end guarantee, measured not assumed;
* budget 1.0 is bit-identical to an unconfigured simulator run;
* at budget 0.99 at least one family reaches a >= 2x MAC reduction.

Results are written to ``BENCH_approx_ablation.json`` next to this
module, so the accuracy/speed frontier is machine-readable across PRs
(the README's "accuracy tiers" table quotes it).
"""

import json
from pathlib import Path

import numpy as np
from conftest import run_once

from repro.approx import prune_plan
from repro.circuit.generators import make_circuit
from repro.dd.manager import DDManager
from repro.fusion.bqcs import bqcs_fusion
from repro.fusion.cost import total_nonzeros
from repro.sim.base import BatchSpec
from repro.sim.bqsim import BQSimSimulator

RESULT_JSON = Path(__file__).parent / "BENCH_approx_ablation.json"

BUDGETS = (1.0, 0.999, 0.99, 0.9)

FAMILIES = {
    "small": (
        ("vqe_finetune", 6),
        ("vqe", 6),
        ("supremacy", 6),
        ("qft", 6),
    ),
    "medium": (
        ("vqe_finetune", 10),
        ("vqe", 10),
        ("supremacy", 10),
        ("qft", 10),
    ),
    "paper": (
        ("vqe_finetune", 14),
        ("vqe", 14),
        ("supremacy", 12),
        ("qft", 14),
    ),
}


def plan_macs(mgr, plan) -> float:
    """Nonzero multiply-accumulates one input column costs under ``plan``."""
    return sum(total_nonzeros(mgr, fused.dd) for fused in plan.gates)


def approx_ablation(scale: str = "small") -> list[dict]:
    rows: list[dict] = []
    for family, n in FAMILIES.get(scale, FAMILIES["small"]):
        circuit = make_circuit(family, n)
        spec = BatchSpec(num_batches=1, batch_size=8, seed=0)
        exact_sim = BQSimSimulator()
        exact_run = exact_sim.run(circuit, spec, execute=True)

        mgr = DDManager(n)
        exact_plan = bqcs_fusion(mgr, circuit)
        exact_macs = plan_macs(mgr, exact_plan)

        for budget in BUDGETS:
            pruned_plan, ledger = prune_plan(mgr, exact_plan, budget)
            macs = plan_macs(mgr, pruned_plan)
            sim = BQSimSimulator(fidelity=budget)
            run = sim.run(circuit, spec, execute=True)
            approx = run.stats["approx"]
            bit_identical = all(
                np.array_equal(a, b)
                for a, b in zip(run.outputs, exact_run.outputs)
            )
            rows.append({
                "family": family,
                "num_qubits": n,
                "budget": budget,
                "achieved": approx["achieved"],
                "pruned_gates": approx["pruned_gates"],
                "dropped_branches": approx["dropped_branches"],
                "nodes_removed": approx["nodes_removed"],
                "macs": macs,
                "macs_exact": exact_macs,
                "mac_reduction": exact_macs / macs if macs else float("inf"),
                "cost": pruned_plan.total_cost,
                "cost_exact": exact_plan.total_cost,
                "modeled_s": run.modeled_time,
                "modeled_s_exact": exact_run.modeled_time,
                "modeled_speedup": (
                    exact_run.modeled_time / run.modeled_time
                    if run.modeled_time else 1.0
                ),
                "bit_identical_to_exact": bit_identical,
            })
    return rows


def _write_artifact(rows: list[dict], scale: str) -> None:
    best = max(
        (r for r in rows if r["budget"] == 0.99),
        key=lambda r: r["mac_reduction"],
    )
    RESULT_JSON.write_text(json.dumps(
        {
            "bench": "approx_ablation",
            "scale": scale,
            "budgets": list(BUDGETS),
            "headline": {
                "family": best["family"],
                "num_qubits": best["num_qubits"],
                "budget": best["budget"],
                "achieved": best["achieved"],
                "mac_reduction": best["mac_reduction"],
                "modeled_speedup": best["modeled_speedup"],
            },
            "rows": rows,
        },
        indent=2,
    ) + "\n")


def test_approx_ablation(benchmark, scale):
    rows = run_once(benchmark, approx_ablation, scale)
    for row in rows:
        # the ledger guarantee, measured per run
        assert row["achieved"] >= row["budget"] - 1e-12, row
        if row["budget"] == 1.0:
            assert row["bit_identical_to_exact"], row
            assert row["macs"] == row["macs_exact"], row
            assert row["pruned_gates"] == 0, row
    best = max(
        (r for r in rows if r["budget"] == 0.99),
        key=lambda r: r["mac_reduction"],
    )
    assert best["mac_reduction"] >= 2.0, best
    _write_artifact(rows, scale)


if __name__ == "__main__":
    import sys

    out = approx_ablation(sys.argv[1] if len(sys.argv) > 1 else "small")
    _write_artifact(out, sys.argv[1] if len(sys.argv) > 1 else "small")
    for r in out:
        print(f"{r['family']:>14} n={r['num_qubits']:<3} "
              f"budget={r['budget']:<6g} achieved={r['achieved']:.6f} "
              f"macs {r['macs_exact']:.0f}->{r['macs']:.0f} "
              f"({r['mac_reduction']:.2f}x) "
              f"modeled {r['modeled_speedup']:.2f}x")
