"""Swappable array-backend kernel engine.

Public surface of the engine layer (ROADMAP item 1):

* engines — :func:`get_engine`, :func:`set_default_engine`,
  :func:`use_engine`, :func:`cpu`, :func:`gpu`, the ``REPRO_ENGINE``
  environment variable, and the :class:`ArrayEngine` hierarchy;
* the named-kernel registry — :func:`kernel_names`, :func:`get_kernel`,
  :func:`call`, with per-backend call counters in ``repro.obs`` metrics;
* the kernels themselves (:mod:`repro.kernels.ops`);
* :class:`ParamBatch` — parameter-batched SIMD execution of K
  same-structure circuits.
"""

from .engine import (
    ENGINE_ENV,
    ENGINE_NAMES,
    ArrayEngine,
    CupyEngine,
    EngineUnavailableError,
    FakeGpuEngine,
    NumpyEngine,
    available_engines,
    cpu,
    engine_available,
    get_engine,
    gpu,
    set_default_engine,
    use_engine,
)
from .registry import call, get_kernel, kernel, kernel_names
from . import ops
from .param_batch import ParamBatch, structural_fingerprint

__all__ = [
    "ENGINE_ENV",
    "ENGINE_NAMES",
    "ArrayEngine",
    "CupyEngine",
    "EngineUnavailableError",
    "FakeGpuEngine",
    "NumpyEngine",
    "ParamBatch",
    "available_engines",
    "call",
    "cpu",
    "engine_available",
    "get_engine",
    "get_kernel",
    "gpu",
    "kernel",
    "kernel_names",
    "ops",
    "set_default_engine",
    "structural_fingerprint",
    "use_engine",
]
