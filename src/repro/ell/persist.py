"""Persisting compiled simulation artifacts.

The paper highlights that "the circuit is optimized once into a reusable
simulation task graph"; this module makes the expensive one-time artifacts
— the fused-gate ELL matrices — reusable *across processes* by saving them
to a single ``.npz`` archive.  A saved bundle can be loaded and fed
straight to the spMM kernels without re-running fusion or conversion.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import ConversionError
from .format import ELLMatrix

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class EllBundle:
    """An ordered list of fused-gate ELL matrices for one circuit."""

    circuit_name: str
    num_qubits: int
    matrices: tuple[ELLMatrix, ...]

    def __len__(self) -> int:
        return len(self.matrices)

    @property
    def total_cost(self) -> int:
        """#MAC per amplitude across the bundle."""
        return sum(m.width for m in self.matrices)

    def apply(self, states: np.ndarray) -> np.ndarray:
        """Push a state block through every matrix in order."""
        from .spmm import ell_spmm

        for matrix in self.matrices:
            states = ell_spmm(matrix, states)
        return states


def save_bundle(bundle: EllBundle, path: str | Path) -> Path:
    """Write a bundle as a compressed ``.npz`` archive."""
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "format_version": np.array(_FORMAT_VERSION),
        "num_qubits": np.array(bundle.num_qubits),
        "num_gates": np.array(len(bundle.matrices)),
        "circuit_name": np.array(bundle.circuit_name),
    }
    for i, matrix in enumerate(bundle.matrices):
        payload[f"values_{i}"] = matrix.values
        payload[f"cols_{i}"] = matrix.cols
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_bundle(path: str | Path) -> EllBundle:
    """Load a bundle previously written by :func:`save_bundle`."""
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ConversionError(
                f"bundle format {version} not supported (expected {_FORMAT_VERSION})"
            )
        num_qubits = int(data["num_qubits"])
        num_gates = int(data["num_gates"])
        matrices = []
        for i in range(num_gates):
            try:
                values = data[f"values_{i}"]
                cols = data[f"cols_{i}"]
            except KeyError:
                raise ConversionError(f"bundle is missing arrays for gate {i}") from None
            matrices.append(ELLMatrix(num_qubits, values, cols))
        return EllBundle(
            circuit_name=str(data["circuit_name"]),
            num_qubits=num_qubits,
            matrices=tuple(matrices),
        )


def bundle_from_plan(circuit_name: str, num_qubits: int, ells) -> EllBundle:
    """Wrap a list of converted ELL matrices as a bundle."""
    return EllBundle(
        circuit_name=circuit_name,
        num_qubits=num_qubits,
        matrices=tuple(ells),
    )
