"""Tests for parameter-batched SIMD execution (ParamBatch)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import Circuit, random_batch
from repro.errors import SimulationError
from repro.kernels import ParamBatch, structural_fingerprint
from repro.sim.statevector import simulate_batch
from repro.vqa import Ansatz


def _bound_circuits(num_qubits=3, reps=2, K=5, seed=0):
    ansatz = Ansatz(num_qubits=num_qubits, reps=reps)
    rng = np.random.default_rng(seed)
    rows = [ansatz.random_parameters(rng) for _ in range(K)]
    return ansatz, rows, [ansatz.bind(row) for row in rows]


# ---------------------------------------------------------------------------
# structural fingerprint
# ---------------------------------------------------------------------------

def test_structural_fingerprint_ignores_parameter_values():
    _, _, circuits = _bound_circuits(K=3)
    keys = {structural_fingerprint(c) for c in circuits}
    assert len(keys) == 1
    # but the full fingerprint (which hashes values) differs
    assert len({c.fingerprint() for c in circuits}) == 3


def test_structural_fingerprint_sees_structure():
    a = Circuit(2).h(0).cx(0, 1)
    b = Circuit(2).h(1).cx(0, 1)
    c = Circuit(2).h(0).cx(1, 0)
    keys = {structural_fingerprint(x) for x in (a, b, c)}
    assert len(keys) == 3


def test_mixed_structures_rejected():
    a = Circuit(2).h(0)
    b = Circuit(2).x(0)
    with pytest.raises(SimulationError, match="structural"):
        ParamBatch([a, b])


def test_empty_batch_rejected():
    with pytest.raises(SimulationError, match="at least one"):
        ParamBatch([])


# ---------------------------------------------------------------------------
# execution: batched == serial == reference
# ---------------------------------------------------------------------------

def test_run_bit_identical_to_run_serial_on_numpy():
    _, _, circuits = _bound_circuits(K=5)
    pb = ParamBatch(circuits, engine="numpy")
    batched = pb.run()
    serial = pb.run_serial()
    assert batched.shape == (5, 8, 1)
    np.testing.assert_array_equal(batched, serial)


def test_run_matches_statevector_reference():
    _, _, circuits = _bound_circuits(K=4)
    batch = random_batch(3, 6, rng=11)
    pb = ParamBatch(circuits, engine="numpy")
    out = pb.run(batch)
    assert out.shape == (4, 8, 6)
    for k, circuit in enumerate(circuits):
        reference = simulate_batch(circuit, batch, engine="numpy")
        np.testing.assert_array_equal(out[k], reference)


def test_run_handles_controlled_and_default_state():
    circuits = [
        Circuit(2).h(0).cp(theta, 0, 1).cx(1, 0) for theta in (0.3, 1.1, 2.7)
    ]
    pb = ParamBatch(circuits)
    out = pb.run()
    for k, circuit in enumerate(circuits):
        reference = circuit.to_matrix()[:, 0].reshape(4, 1)
        np.testing.assert_allclose(out[k], reference, atol=1e-12)


def test_run_accepts_raw_state_array():
    _, _, circuits = _bound_circuits(num_qubits=2, K=2)
    state = np.zeros(4, dtype=np.complex128)
    state[3] = 1.0
    out = ParamBatch(circuits).run(state)
    assert out.shape == (2, 4, 1)
    for k, circuit in enumerate(circuits):
        expected = circuit.to_matrix() @ state.reshape(4, 1)
        np.testing.assert_allclose(out[k], expected, atol=1e-12)


def test_run_rejects_wrong_dimension():
    _, _, circuits = _bound_circuits(num_qubits=3, K=2)
    with pytest.raises(SimulationError, match="dim"):
        ParamBatch(circuits).run(np.zeros((4, 1), dtype=np.complex128))


def test_fake_gpu_engine_matches_numpy_within_tolerance():
    _, _, circuits = _bound_circuits(K=4)
    batch = random_batch(3, 5, rng=3)
    pb = ParamBatch(circuits)
    host = pb.run(batch, engine="numpy")
    device = pb.run(batch, engine="fake-gpu")
    np.testing.assert_allclose(device, host, atol=1e-12)


def test_engine_argument_wins_over_constructor():
    _, _, circuits = _bound_circuits(K=2)
    pb = ParamBatch(circuits, engine="fake-gpu")
    out = pb.run(engine="numpy")
    np.testing.assert_array_equal(out, pb.run_serial(engine="numpy"))


def test_from_ansatz_convenience():
    ansatz, rows, circuits = _bound_circuits(K=3)
    pb = ParamBatch.from_ansatz(ansatz, rows)
    assert pb.num_sets == 3
    assert pb.num_gates == len(circuits[0].gates)
    np.testing.assert_array_equal(pb.run(), ParamBatch(circuits).run())


# ---------------------------------------------------------------------------
# the schedule model
# ---------------------------------------------------------------------------

def test_modeled_times_launch_counts_and_speedup():
    ansatz, rows, _ = _bound_circuits(K=64)
    pb = ParamBatch.from_ansatz(ansatz, rows)
    model = pb.modeled_times()
    assert model["num_sets"] == 64
    assert model["serial_kernels"] == 64 * pb.num_gates
    assert model["batched_kernels"] == pb.num_gates
    assert model["serial_s"] > model["batched_s"] > 0
    # the acceptance bar: K >= 64 parameter sets amortize launch
    # overhead at least 3x on the calibrated device model
    assert model["speedup"] >= 3.0


def test_modeled_speedup_grows_with_k():
    ansatz = Ansatz(num_qubits=4, reps=2)
    rng = np.random.default_rng(0)
    speedups = []
    for K in (2, 16, 128):
        rows = [ansatz.random_parameters(rng) for _ in range(K)]
        speedups.append(ParamBatch.from_ansatz(ansatz, rows).modeled_times()["speedup"])
    assert speedups[0] < speedups[1] < speedups[2]
