"""The worker pool and the in-process batch simulation service.

:class:`BatchSimulationService` wires the four other service parts
together: jobs are admitted through the bounded
:class:`~repro.service.queue.JobQueue`, ordered by the
:class:`~repro.service.scheduler.FairScheduler`, merged by the
:class:`~repro.service.coalesce.Coalescer`, and executed by a pool of
:class:`Worker` instances — each owning its own
:class:`~repro.sim.bqsim.BQSimSimulator` (and therefore its own plan
cache), assigned round-robin.

Resilience composes per mega-batch: the simulator's own fault injection,
retries, OOM splitting, health guard, and checkpoints all apply to the
coalesced run exactly as to a solo one.  When a mega-batch still fails
(retries exhausted, health ``fail``, memory fault past the split limit),
the service **degrades to per-job isolation**: every member is re-run
alone on the same worker, so one poisoned job fails alone instead of
failing its cohort.

In ``parallelism="process"`` mode the failure domain widens from
exceptions to *dying processes*, and the service owns the policy side of
the pool's supervision: each dispatch increments the member jobs'
``delivery_count``; a crash result (worker SIGKILLed) **redelivers** the
members — requeued with their aging credit intact — until a job has been
delivered ``max_deliveries`` times, at which point it is **quarantined**
(terminal, carrying per-crash evidence) instead of crashing workers
forever; a timeout result fails the deadline-carrying members with
``TimeoutError`` evidence and redelivers the innocent cohort members;
and an in-flight cancel is honoured cooperatively when the result (or
crash) lands.  ``close(drain=True)`` stops admission, finishes in-flight
work, and accounts every job — the lifecycle log's ``unaccounted()`` is
empty after any shutdown, crashy or clean.

Every dispatch round appends one JSON-safe record to
:attr:`BatchSimulationService.events` (the queue-metrics stream ``repro
serve --queue-metrics`` writes as JSONL) and emits metrics — queue depth,
wait time, coalesce factor, batch occupancy — plus ``service.*`` tracer
spans, so Perfetto traces show request-level lanes above the modeled GPU
engine lanes.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..circuit import Circuit, InputBatch
from ..circuit.inputs import random_batch
from ..ell.persist import plan_fingerprint
from ..errors import (
    AdmissionError,
    JobNotCancellable,
    ReproError,
    ServiceError,
)
from ..gpu.spec import GpuSpec
from ..obs import get_metrics, get_tracer
from ..obs.lifecycle import JobLifecycleLog
from ..obs.slo import SLOTracker
from ..resilience import get_resilience_log
from ..sim.base import BatchSpec
from ..sim.bqsim import BQSimSimulator
from .coalesce import DEFAULT_MAX_COLUMNS, CoalescedGroup, Coalescer
from .jobs import Job, JobStatus, make_job
from .pool import (
    DEFAULT_MAX_RESTARTS,
    DEFAULT_SHM_THRESHOLD,
    ProcessWorkerPool,
)
from .queue import DEFAULT_MAX_DEPTH, JobQueue
from .scheduler import FairScheduler, SchedulerPolicy

#: default at-least-once delivery budget: a job whose worker died is
#: redelivered until it has been handed to a worker this many times, then
#: quarantined as poison
DEFAULT_MAX_DELIVERIES = 3


class Worker:
    """One executor: a dedicated simulator plus its plan cache.

    The serial (``parallelism="none"``) execution unit: it runs
    mega-batches inline through its own :class:`BQSimSimulator` and
    tallies per-worker accounting (mega-batches run, solo-isolation
    retries, jobs finished) that ``service.stats()["workers"]``
    surfaces.  Example::

        worker = Worker(0, BQSimSimulator())
        assert worker.megabatches == 0 and worker.jobs_done == 0
    """

    def __init__(self, wid: int, simulator: BQSimSimulator) -> None:
        self.wid = wid
        self.simulator = simulator
        self.megabatches = 0
        self.solo_runs = 0
        self.jobs_done = 0

    def run_group(self, group: CoalescedGroup, spec, batches):
        """One coalesced simulator call for the whole cohort."""
        self.megabatches += 1
        return self.simulator.run(
            group.circuit, spec, batches=batches, execute=True
        )

    def run_solo(self, job: Job):
        """Isolated fallback run for one member of a failed cohort."""
        self.solo_runs += 1
        spec = BatchSpec(num_batches=1, batch_size=job.num_inputs, seed=0)
        return self.simulator.run(
            job.circuit, spec, batches=[job.batch], execute=True
        )


class BatchSimulationService:
    """In-process serving layer over :class:`BQSimSimulator`.

    Synchronous by design: :meth:`submit` admits jobs, :meth:`step` runs
    one dispatch round (schedule, coalesce, execute, scatter), and
    :meth:`drain` steps until the queue is empty.  Determinism: with an
    injected ``clock`` the whole schedule is a pure function of the
    submission sequence, which is what the fairness tests rely on.

    ``parallelism`` selects the execution backend:

    * ``"none"`` (default) — mega-batches run serially on in-process
      :class:`Worker` simulators, round-robin;
    * ``"process"`` — mega-batches are dispatched to an N-process
      :class:`~repro.service.pool.ProcessWorkerPool` whose workers share
      one on-disk plan cache; :meth:`step` fills every idle worker, then
      blocks for at least one completion.  Results are bit-identical to
      serial mode for any worker count.

    ``max_deliveries``, ``default_timeout_s``, ``max_restarts``, and
    ``chaos`` configure the crash-safety policy of process mode (see the
    module docstring).  Serial mode runs in this very interpreter: there
    is no process to kill, so execution deadlines and redelivery cannot
    be enforced there — a ``timeout_s`` on a serial job is recorded but
    inert, exactly like a chaos schedule.

    Example::

        service = BatchSimulationService(num_workers=2)
        job = service.submit(make_circuit("ghz", 4), num_inputs=8)
        service.drain()
        amplitudes = job.result  # (16, 8) complex matrix
    """

    def __init__(
        self,
        num_workers: int = 1,
        max_depth: int = DEFAULT_MAX_DEPTH,
        max_columns: int = DEFAULT_MAX_COLUMNS,
        max_jobs_per_batch: int | None = None,
        policy: SchedulerPolicy | None = None,
        clock=time.monotonic,
        gpu: GpuSpec | None = None,
        simulator_kwargs: dict | None = None,
        parallelism: str = "none",
        shm_threshold: int = DEFAULT_SHM_THRESHOLD,
        max_deliveries: int = DEFAULT_MAX_DELIVERIES,
        default_timeout_s: float | None = None,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
        chaos=None,
        shard: str | None = None,
    ) -> None:
        if num_workers < 1:
            raise ServiceError("service needs at least one worker")
        if parallelism not in ("none", "process"):
            raise ServiceError(
                f"unknown parallelism {parallelism!r}"
                " (expected 'none' or 'process')"
            )
        if max_deliveries < 1:
            raise ServiceError("max_deliveries must be >= 1")
        if default_timeout_s is not None and default_timeout_s <= 0:
            raise ServiceError("default_timeout_s must be > 0 when given")
        self.max_deliveries = max_deliveries
        self.default_timeout_s = default_timeout_s
        #: when this service is one shard of a gateway fleet: the shard
        #: name prefixes job ids (``s1/job-0-…``) and labels the mirrored
        #: SLO metric families (``{shard="s1"}``)
        self.shard = shard
        self.max_restarts = max_restarts
        #: a :class:`~repro.testing.chaos_pool.ChaosSchedule` handed to the
        #: pool (process mode only; inert in serial mode)
        self.chaos = chaos
        self.clock = clock
        self.gpu = gpu or GpuSpec()
        self.parallelism = parallelism
        self.num_workers = num_workers
        kwargs = dict(simulator_kwargs or {})
        kwargs.setdefault("gpu", self.gpu)
        self._simulator_kwargs = kwargs
        self._shm_threshold = shm_threshold
        self._pool: ProcessWorkerPool | None = None
        #: pool tasks dispatched but not yet collected:
        #: task_id -> (group, event record, dispatch perf_counter)
        self._inflight: dict[int, tuple] = {}
        if parallelism == "process":
            self.workers: list[Worker] = []
            self._template = BQSimSimulator(**kwargs)
        else:
            self.workers = [
                Worker(i, BQSimSimulator(**kwargs)) for i in range(num_workers)
            ]
            self._template = self.workers[0].simulator
        #: private per-service lifecycle log + SLO fold (concurrent services
        #: never mix their jobs); shared with queue/scheduler/coalescer
        self.lifecycle = JobLifecycleLog(clock=clock)
        self.slo = SLOTracker(
            labels={"shard": shard} if shard is not None else None
        ).attach(self.lifecycle)
        self.queue = JobQueue(
            max_depth=max_depth, clock=clock, lifecycle=self.lifecycle
        )
        self.scheduler = FairScheduler(policy, lifecycle=self.lifecycle)
        self.coalescer = Coalescer(
            self.gpu, max_columns=max_columns, max_jobs=max_jobs_per_batch,
            lifecycle=self.lifecycle,
        )
        #: every job ever admitted, by id (terminal jobs stay addressable)
        self.jobs: dict[str, Job] = {}
        #: JSON-safe queue-metrics records, one per dispatch round/rejection
        self.events: list[dict] = []
        self._seq = 0
        self._rr = 0
        self._completed = 0
        self._failed = 0
        self._degraded_groups = 0
        self._modeled_s = 0.0
        self._wall_s = 0.0
        self._inputs_done = 0
        #: crash-safety accounting
        self._quarantined = 0
        self._cancelled_inflight = 0
        #: approximation-tier accounting (fed from run stats["approx"])
        self._approx_runs = 0
        self._pruned_gates = 0
        self._pruned_nodes = 0
        self._pruned_edges = 0
        self._draining = False
        self._closed = False
        #: per-slot pool restart counts already mirrored into lifecycle
        #: ``worker_restart`` events
        self._seen_restarts: dict[int, int] = {}

    # -- submission ----------------------------------------------------------

    def _group_key(
        self, circuit: Circuit, options: tuple, fidelity: float = 1.0
    ) -> str:
        """Coalescing compatibility key: the worker simulators' plan
        fingerprint (identical across the pool) plus per-job options.

        The fingerprint covers the circuit structure, the simulator's
        compilation settings, the job's ``options`` tuple, and — below
        1.0 — the job's fidelity budget, so jobs of different fidelity
        classes never share a key (an exact job never coalesces into an
        approximate mega-batch).  Thread-safe: the per-job budget is
        passed through to ``_cache_extra`` rather than written onto the
        shared template simulator (the gateway fingerprints concurrently
        from executor threads)."""
        extra = self._template._cache_extra(fidelity) + tuple(options)
        return plan_fingerprint(circuit, extra)

    def group_key_for(
        self, circuit: Circuit, options: tuple = (), fidelity: float = 1.0
    ) -> str:
        """Public view of the coalescing key :meth:`submit` would assign.

        The shard router hashes this fingerprint to pick a home shard, so
        jobs that would coalesce also co-locate (and hit the same plan
        cache).  Pure: computes the key without submitting anything.
        """
        return self._group_key(circuit, tuple(options), fidelity)

    def submit(
        self,
        circuit: Circuit,
        batch: InputBatch | None = None,
        *,
        num_inputs: int = 1,
        priority: int = 0,
        deadline: float | None = None,
        timeout_s: float | None = None,
        max_deliveries: int | None = None,
        options: tuple = (),
        fidelity: float = 1.0,
    ) -> Job:
        """Admit one job; raises :class:`AdmissionError` on backpressure.

        ``batch`` defaults to ``num_inputs`` seeded random states (seeded
        by the submission sequence, so a replayed script submits identical
        jobs).  ``deadline`` is absolute service-clock time; ``timeout_s``
        is the *execution* deadline once dispatched to a pool worker (the
        service default applies when None); ``max_deliveries`` overrides
        the service-wide delivery budget for this job.  ``fidelity`` is
        the job's end-to-end fidelity budget in (0, 1]: 1.0 (default)
        runs exact, lower budgets run through the approximation tier and
        coalesce only with jobs of the same fidelity class.  A draining
        or closed service admits nothing.
        """
        if self._draining or self._closed:
            depth = self.queue.depth()
            self.events.append(
                {
                    "event": "reject",
                    "t": self.clock(),
                    "job": None,
                    "reason": "closed" if self._closed else "draining",
                    "queue_depth": depth,
                }
            )
            raise AdmissionError(
                "service is "
                + ("closed" if self._closed else "draining")
                + "; not accepting new jobs",
                depth=depth,
                max_depth=self.queue.max_depth,
            )
        if batch is None:
            batch = random_batch(circuit.num_qubits, num_inputs, self._seq)
        job = make_job(
            self._seq, circuit, batch,
            priority=priority, deadline=deadline,
            timeout_s=(
                timeout_s if timeout_s is not None else self.default_timeout_s
            ),
            max_deliveries=max_deliveries,
            options=options,
            fidelity=fidelity,
            id_prefix=f"{self.shard}/" if self.shard is not None else "",
        )
        job.group_key = self._group_key(circuit, job.options, job.fidelity)
        self.lifecycle.emit(
            "submitted", job.job_id, t=self.clock(),
            priority=priority, circuit=circuit.name,
            inputs=job.num_inputs, deadline=deadline,
        )
        with get_tracer().span(
            "service.submit",
            job=job.job_id,
            circuit=circuit.name,
            inputs=job.num_inputs,
            priority=priority,
        ):
            try:
                self.queue.admit(job)
            except Exception:
                self.events.append(
                    {
                        "event": "reject",
                        "t": self.clock(),
                        "job": job.job_id,
                        "queue_depth": self.queue.depth(),
                    }
                )
                raise
        self._seq += 1
        self.jobs[job.job_id] = job
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: synchronously while queued, cooperatively in flight.

        A queued job is removed and returned CANCELLED.  A job already
        taken into a mega-batch cannot be yanked out of a worker process
        mid-run; instead ``cancel_requested`` is set and the returned job
        is still RUNNING — it transitions to CANCELLED (result discarded)
        when its mega-batch lands or crashes.  Unknown or terminal ids
        raise :class:`ServiceError`.
        """
        try:
            return self.queue.cancel(job_id)
        except JobNotCancellable:
            job = self.job(job_id)
            if job.is_terminal:  # raced to terminal: nothing to cancel
                raise
            job.cancel_requested = True
            self.lifecycle.emit(
                "cancel_requested", job.job_id, t=self.clock(),
                priority=job.priority, status=job.status.value,
            )
            return job

    def _cancel_inflight(self, job: Job, at: float) -> None:
        """Honour a cooperative cancel when the job's mega-batch lands."""
        job.transition(JobStatus.CANCELLED)
        job.finished_at = at
        self._cancelled_inflight += 1
        get_metrics().inc("service.cancelled")
        self.lifecycle.emit(
            "cancelled", job.job_id, t=at, priority=job.priority,
            queue_age_s=job.wait_time(at), inflight=True,
        )
        self.queue.settle([job.job_id])

    def job(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job id {job_id!r}") from None

    # -- dispatch ------------------------------------------------------------

    def step(self) -> int:
        """One dispatch round; returns the number of jobs finished (0 when
        idle).

        Serial mode executes one coalesced group inline.  Process mode
        collects any finished pool results, fills every idle worker with
        a freshly coalesced group, and — when nothing had finished but
        work is in flight — blocks for at least one completion so
        callers polling ``step() == 0`` still mean "service idle".
        """
        if self.parallelism == "process":
            return self._step_pool()
        now = self.clock()
        queued = self.queue.jobs()
        head = self.scheduler.select(queued, now)
        if head is None:
            return 0
        ranked = self.scheduler.rank(queued, now)
        group = self.coalescer.build_group(head, ranked)
        self.queue.take(list(group.jobs))
        worker = self.workers[self._rr % len(self.workers)]
        self._rr += 1
        return self._execute(worker, group)

    def drain(self, max_rounds: int | None = None) -> dict:
        """Step until the queue (and any in-flight pool work) is empty;
        returns :meth:`stats`."""
        rounds = 0
        while self.queue.depth() > 0 or self._inflight:
            if max_rounds is not None and rounds >= max_rounds:
                break
            self.step()
            rounds += 1
        return self.stats()

    def close(self, drain: bool = False) -> None:
        """Shut down, leaving every job in exactly one terminal state.

        ``drain=True`` first stops admission and finishes all queued and
        in-flight work (graceful drain); ``drain=False`` stops admission
        and *cancels* whatever has not finished.  Either way the
        lifecycle log accounts every submitted job —
        ``lifecycle.unaccounted()`` is empty after close — and the
        process pool (if any) is stopped with its shared-memory segments
        released.  Idempotent: a second close is a no-op.
        """
        if self._closed:
            return
        self._draining = True
        if drain:
            self.drain()
        self._shutdown_pending()
        self._closed = True
        if self._pool is not None:
            self._pool.close()

    def _shutdown_pending(self) -> None:
        """Cancel every non-terminal job so shutdown never loses track.

        Queued jobs cancel through the queue (normal path); jobs caught
        in flight — possible when ``drain=False`` or a drain gave up —
        are cancelled cooperatively, exactly as an honoured in-flight
        cancel would have been.
        """
        for job in self.queue.jobs():
            self.queue.cancel(job.job_id)
        now = self.clock()
        for group, _record, _wall0 in self._inflight.values():
            for job in group.jobs:
                if not job.is_terminal:
                    self._cancel_inflight(job, now)
        self._inflight.clear()
        # jobs admitted but parked in a non-terminal state outside queue
        # and inflight maps (defensive: should be unreachable)
        for job in self.jobs.values():
            if not job.is_terminal:  # pragma: no cover - belt and braces
                job.transition(JobStatus.CANCELLED)
                job.finished_at = now
                self.lifecycle.emit(
                    "cancelled", job.job_id, t=now, priority=job.priority,
                    inflight=False, shutdown=True,
                )
                self.queue.settle([job.job_id])

    def __enter__(self) -> "BatchSimulationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution -----------------------------------------------------------

    def _emit_terminal(
        self,
        job: Job,
        *,
        worker: int | None = None,
        wall_s: float | None = None,
        modeled_s: float | None = None,
    ) -> None:
        """One ``done``/``failed`` lifecycle event carrying everything the
        :class:`~repro.obs.slo.SLOTracker` folds: latency, queue age,
        deadline verdict, degradation flag, and run durations."""
        stage = "done" if job.status is JobStatus.DONE else "failed"
        latency = (
            job.finished_at - job.submitted_at
            if job.finished_at is not None else None
        )
        missed = (
            job.deadline is not None
            and job.finished_at is not None
            and job.finished_at > job.deadline
        )
        self.lifecycle.emit(
            stage, job.job_id, t=job.finished_at,
            priority=job.priority,
            latency_s=latency,
            queue_age_s=job.wait_time(),
            deadline=job.deadline,
            deadline_miss=missed,
            solo_retry=job.solo_retry,
            attempts=job.attempts,
            worker=worker,
            wall_s=wall_s,
            modeled_s=modeled_s,
            fidelity=job.fidelity,
            achieved_fidelity=job.achieved_fidelity,
            error=job.error,
        )
        self.queue.settle([job.job_id])

    def _quarantine(self, job: Job, worker: int | None, at: float) -> None:
        """Poison exit: the delivery budget is spent; stop redelivering.

        Emits the ``quarantined`` lifecycle event (the SLO tracker counts
        it in a dedicated failure bucket — it never feeds the latency
        histograms) and records a resilience ``quarantine`` event with the
        evidence depth for operators.
        """
        job.quarantine(
            f"quarantined after {job.delivery_count} failed deliveries"
            + (f": {job.evidence[-1]['detail']}" if job.evidence else ""),
            at,
        )
        self._quarantined += 1
        self.lifecycle.emit(
            "quarantined", job.job_id, t=at,
            priority=job.priority,
            delivery=job.delivery_count,
            attempts=job.attempts,
            worker=worker,
            error=job.error,
            evidence=list(job.evidence),
        )
        get_resilience_log().record(
            "quarantine",
            site="service",
            job=job.job_id,
            deliveries=job.delivery_count,
            evidence=len(job.evidence),
        )
        self.queue.settle([job.job_id])

    def _note_approx(self, block: dict | None) -> float | None:
        """Fold one run's ``stats["approx"]`` ledger summary into the
        service counters; returns the run's achieved fidelity (``None``
        when the run carried no ledger)."""
        if not block:
            return None
        if block.get("pruned_gates"):
            self._approx_runs += 1
            self._pruned_gates += block.get("pruned_gates", 0)
            self._pruned_nodes += block.get("nodes_removed", 0)
            self._pruned_edges += block.get("edges_removed", 0)
        return block.get("achieved")

    def _emit_executing(
        self, group: CoalescedGroup, now: float, worker: int
    ) -> None:
        for job in group.jobs:
            self.lifecycle.emit(
                "executing", job.job_id, t=now,
                priority=job.priority,
                worker=worker,
                queue_age_s=job.wait_time(),
                coalesce_factor=group.coalesce_factor,
            )

    def _execute(self, worker: Worker, group: CoalescedGroup) -> int:
        now = self.clock()
        metrics = get_metrics()
        # a group is fidelity-homogeneous by construction (the budget is
        # part of the group key); point the worker's simulator at the
        # group's class before running so plan lookup and pruning match
        fidelity = group.jobs[0].fidelity
        worker.simulator.fidelity = fidelity
        waits = [job.wait_time(now) for job in group.jobs]
        for job in group.jobs:
            job.transition(JobStatus.RUNNING)
            job.started_at = now
            job.attempts += 1
            metrics.observe("service.wait_s", job.wait_time())
        self._emit_executing(group, now, worker.wid)
        spec, batches, pad = self.coalescer.mega_batches(group)
        record = {
            "event": "megabatch",
            "t": now,
            "worker": worker.wid,
            "group": group.key[:12],
            "circuit": group.circuit.name,
            "jobs": group.coalesce_factor,
            "columns": group.total_columns,
            "batches": spec.num_batches,
            "batch_size": spec.batch_size,
            "pad": pad,
            "coalesce_factor": group.coalesce_factor,
            "occupancy": group.total_columns / spec.num_inputs,
            "wait_mean_s": float(np.mean(waits)),
            "wait_max_s": float(np.max(waits)),
            "fidelity": fidelity,
        }
        wall0 = time.perf_counter()
        finished = 0
        try:
            with get_tracer().span(
                "service.megabatch",
                group=group.key[:12],
                circuit=group.circuit.name,
                jobs=group.coalesce_factor,
                job_ids=[job.job_id for job in group.jobs],
                columns=group.total_columns,
                worker=worker.wid,
            ):
                result = worker.run_group(group, spec, batches)
        except ReproError as exc:
            record["degraded"] = True
            record["error"] = str(exc)
            finished = self._degrade(worker, group, exc)
        else:
            per_job = Coalescer.scatter(group, result.outputs)
            done_at = self.clock()
            wall_s = time.perf_counter() - wall0
            achieved = self._note_approx(result.stats.get("approx"))
            for job in group.jobs:
                job.achieved_fidelity = achieved
                job.finish(per_job[job.job_id], done_at)
                self._emit_terminal(
                    job, worker=worker.wid, wall_s=wall_s,
                    modeled_s=result.modeled_time,
                )
            finished = len(group.jobs)
            worker.jobs_done += finished
            self._completed += finished
            self._inputs_done += group.total_columns
            self._modeled_s += result.modeled_time
            record["degraded"] = False
            record["modeled_s"] = result.modeled_time
            metrics.inc("service.completed", finished)
        record["wall_s"] = time.perf_counter() - wall0
        record["queue_depth"] = self.queue.depth()
        self._wall_s += record["wall_s"]
        metrics.inc("service.megabatches")
        metrics.gauge("service.queue_depth", self.queue.depth())
        self.events.append(record)
        return finished

    def _degrade(
        self, worker: Worker, group: CoalescedGroup, cause: ReproError
    ) -> int:
        """Per-job isolation fallback after a failed mega-batch.

        Each member re-runs alone; members that fail even solo go FAILED
        with their own error, the rest complete normally — the poisoned
        job cannot take its cohort down.
        """
        self._degraded_groups += 1
        metrics = get_metrics()
        metrics.inc("service.degraded_groups")
        get_resilience_log().record(
            "degrade",
            site="service",
            group=group.key[:12],
            jobs=group.coalesce_factor,
            reason=str(cause),
        )
        finished = 0
        for job in group.jobs:
            solo0 = time.perf_counter()
            try:
                with get_tracer().span(
                    "service.solo_retry", job=job.job_id, worker=worker.wid
                ):
                    result = worker.run_solo(job)
            except ReproError as exc:
                job.fail(str(exc), self.clock())
                self._failed += 1
                metrics.inc("service.failed")
                self._emit_terminal(
                    job, worker=worker.wid,
                    wall_s=time.perf_counter() - solo0,
                )
            else:
                job.solo_retry = True
                job.achieved_fidelity = self._note_approx(
                    result.stats.get("approx")
                )
                job.finish(result.outputs[0], self.clock())
                worker.jobs_done += 1
                self._completed += 1
                self._inputs_done += job.num_inputs
                self._modeled_s += result.modeled_time
                metrics.inc("service.completed")
                self._emit_terminal(
                    job, worker=worker.wid,
                    wall_s=time.perf_counter() - solo0,
                    modeled_s=result.modeled_time,
                )
            finished += 1
        return finished

    # -- process-pool execution ----------------------------------------------

    def _ensure_pool(self) -> ProcessWorkerPool:
        if self._pool is None:
            self._pool = ProcessWorkerPool(
                self.num_workers,
                simulator_kwargs=self._simulator_kwargs,
                shm_threshold=self._shm_threshold,
                max_restarts=self.max_restarts,
                chaos=self.chaos,
            )
        return self._pool

    def _step_pool(self) -> int:
        pool = self._ensure_pool()
        finished = sum(self._finalize_pool(r) for r in pool.poll())
        self._note_restarts(pool)
        if pool.alive_workers == 0 and not self._inflight:
            # the restart budget is spent and nothing can ever run again:
            # fail the queued backlog so drain/close terminate with every
            # job accounted instead of waiting on a dead fleet
            return finished + self._fail_queued(
                "no live pool workers (restart budget exhausted)"
            )
        while pool.idle_workers > 0:
            now = self.clock()
            queued = self.queue.jobs()
            head = self.scheduler.select(queued, now)
            if head is None:
                break
            ranked = self.scheduler.rank(queued, now)
            group = self.coalescer.build_group(head, ranked)
            self.queue.take(list(group.jobs))
            self._dispatch_pool(pool, group)
        if finished == 0 and self._inflight:
            finished = sum(
                self._finalize_pool(r) for r in pool.poll(block=True)
            )
            self._note_restarts(pool)
        return finished

    def _note_restarts(self, pool: ProcessWorkerPool) -> None:
        """Mirror pool worker respawns into the lifecycle stream.

        One ``worker_restart`` event per respawn, stamped with the pseudo
        id ``worker-<wid>`` — fleet events ride the same JSONL stream as
        jobs without touching the unaccounted-jobs bookkeeping (only
        ``submitted`` populates that set)."""
        for summary in pool.worker_summaries():
            wid, restarts = summary["wid"], summary["restarts"]
            seen = self._seen_restarts.get(wid, 0)
            for nth in range(seen + 1, restarts + 1):
                self.lifecycle.emit(
                    "worker_restart", f"worker-{wid}", t=self.clock(),
                    wid=wid, restart=nth, crashes=summary["crashes"],
                )
            self._seen_restarts[wid] = restarts

    def _fail_queued(self, reason: str) -> int:
        """Terminal-fail every queued job (the fleet cannot serve them)."""
        jobs = self.queue.jobs()
        if not jobs:
            return 0
        self.queue.take(jobs)
        metrics = get_metrics()
        now = self.clock()
        for job in jobs:
            job.fail(reason, now)
            self._failed += 1
            metrics.inc("service.failed")
            self._emit_terminal(job)
        metrics.gauge("service.queue_depth", self.queue.depth())
        return len(jobs)

    def _dispatch_pool(
        self, pool: ProcessWorkerPool, group: CoalescedGroup
    ) -> int:
        """Hand one coalesced group to an idle pool worker (non-blocking)."""
        now = self.clock()
        metrics = get_metrics()
        waits = [job.wait_time(now) for job in group.jobs]
        for job in group.jobs:
            job.transition(JobStatus.RUNNING)
            job.started_at = now
            job.attempts += 1
            job.delivery_count += 1
            metrics.observe("service.wait_s", job.wait_time())
        #: the task deadline is the strictest member deadline; a task with
        #: no deadline-carrying member runs unsupervised (crash-only)
        timeouts = [
            job.timeout_s for job in group.jobs if job.timeout_s is not None
        ]
        timeout_s = min(timeouts) if timeouts else None
        #: redelivered cohorts may resume a crash checkpoint on the worker
        resume = any(job.delivery_count > 1 for job in group.jobs)
        spec, mega, pad = self.coalescer.mega_block(group)
        with get_tracer().span(
            "service.dispatch",
            group=group.key[:12],
            circuit=group.circuit.name,
            jobs=group.coalesce_factor,
            job_ids=[job.job_id for job in group.jobs],
            columns=group.total_columns,
        ):
            task_id, wid = pool.submit(
                group.circuit,
                spec,
                mega,
                group.total_columns,
                [job.num_inputs for job in group.jobs],
                job_ids=[job.job_id for job in group.jobs],
                timeout_s=timeout_s,
                resume=resume,
                delivery=max(job.delivery_count for job in group.jobs),
                fidelity=group.jobs[0].fidelity,
            )
        self._emit_executing(group, now, wid)
        record = {
            "event": "megabatch",
            "t": now,
            "worker": wid,
            "group": group.key[:12],
            "circuit": group.circuit.name,
            "jobs": group.coalesce_factor,
            "columns": group.total_columns,
            "batches": spec.num_batches,
            "batch_size": spec.batch_size,
            "pad": pad,
            "coalesce_factor": group.coalesce_factor,
            "occupancy": group.total_columns / spec.num_inputs,
            "wait_mean_s": float(np.mean(waits)),
            "wait_max_s": float(np.max(waits)),
            "fidelity": group.jobs[0].fidelity,
        }
        self._inflight[task_id] = (group, record, time.perf_counter())
        return task_id

    def _finalize_pool(self, raw: dict) -> int:
        """Scatter one collected pool result back to its member jobs.

        The happy path mirrors serial ``_execute``; a degraded result
        carries per-job outcomes from the worker's own isolation retries.
        A *crash* result (``raw["crash"]`` set: the worker died or blew
        the task deadline) carries no outcomes at all and is routed to
        :meth:`_handle_crash` — redelivery, quarantine, or deadline
        failure per member.  An in-flight cancel is honoured here in
        every branch: the member goes CANCELLED and its output (if any)
        is discarded.
        """
        group, record, wall0 = self._inflight.pop(raw["task_id"])
        if raw.get("crash") is not None:
            return self._handle_crash(group, record, wall0, raw)
        metrics = get_metrics()
        done_at = self.clock()
        merged = raw["outputs"]
        finished = 0
        wall_s = time.perf_counter() - wall0
        achieved = self._note_approx(raw.get("approx"))
        if not raw["degraded"]:
            for job, start, stop in group.offsets():
                if job.cancel_requested:
                    self._cancel_inflight(job, done_at)
                    continue
                job.achieved_fidelity = achieved
                job.finish(merged[:, start:stop], done_at)
                self._emit_terminal(
                    job, worker=raw["wid"], wall_s=wall_s,
                    modeled_s=raw["modeled_s"],
                )
            finished = len(group.jobs)
            done = sum(
                1 for job in group.jobs if job.status is JobStatus.DONE
            )
            self._completed += done
            self._inputs_done += sum(
                job.num_inputs
                for job in group.jobs
                if job.status is JobStatus.DONE
            )
            self._modeled_s += raw["modeled_s"]
            record["degraded"] = False
            record["modeled_s"] = raw["modeled_s"]
            if done:
                metrics.inc("service.completed", done)
        else:
            self._degraded_groups += 1
            metrics.inc("service.degraded_groups")
            get_resilience_log().record(
                "degrade",
                site="service",
                group=group.key[:12],
                jobs=group.coalesce_factor,
                reason=raw["cause"] or "",
            )
            record["degraded"] = True
            record["error"] = raw["cause"]
            outcomes = raw["per_job"]
            for idx, (job, start, stop) in enumerate(group.offsets()):
                outcome = (
                    outcomes[idx]
                    if outcomes and idx < len(outcomes)
                    else {"ok": False, "error": raw["cause"]}
                )
                if job.cancel_requested:
                    self._cancel_inflight(job, done_at)
                    finished += 1
                    continue
                if outcome["ok"] and merged is not None:
                    job.solo_retry = True
                    job.achieved_fidelity = achieved
                    job.finish(merged[:, start:stop], done_at)
                    self._completed += 1
                    self._inputs_done += job.num_inputs
                    metrics.inc("service.completed")
                else:
                    job.fail(
                        outcome["error"] or raw["cause"] or "megabatch failed",
                        done_at,
                    )
                    self._failed += 1
                    metrics.inc("service.failed")
                self._emit_terminal(job, worker=raw["wid"], wall_s=wall_s)
                finished += 1
            self._modeled_s += raw["modeled_s"]
        record["wall_s"] = time.perf_counter() - wall0
        record["queue_depth"] = self.queue.depth()
        self._wall_s += record["wall_s"]
        metrics.inc("service.megabatches")
        metrics.gauge("service.queue_depth", self.queue.depth())
        self.events.append(record)
        return finished

    def _handle_crash(
        self, group: CoalescedGroup, record: dict, wall0: float, raw: dict
    ) -> int:
        """Route one crash/timeout result to its members; returns how many
        reached a terminal state (redelivered members do not count).

        Per member, in precedence order:

        1. ``cancel_requested`` → CANCELLED (the crash obliged early);
        2. a *timeout* crash and the member carries ``timeout_s`` →
           FAILED with ``TimeoutError`` evidence (its own deadline was
           the one the supervisor enforced);
        3. delivery budget spent → QUARANTINED with the accumulated
           evidence (poison: it has now killed ``max_deliveries``
           deliveries' worth of workers);
        4. otherwise → requeued for redelivery, aging credit intact.

        Members caught in a cohort-mate's timeout (no ``timeout_s`` of
        their own) fall through to 3/4: innocent work is redelivered,
        never failed for someone else's deadline.
        """
        crash = raw["crash"]
        metrics = get_metrics()
        done_at = self.clock()
        wall_s = time.perf_counter() - wall0
        record["degraded"] = True
        record["error"] = raw["cause"]
        record["crash"] = {
            "kind": crash["kind"],
            "wid": crash["wid"],
            "exitcode": crash["exitcode"],
        }
        finished = 0
        redeliver: list[Job] = []
        for job in group.jobs:
            job.evidence.append(
                {
                    "kind": crash["kind"],
                    "task_id": crash["task_id"],
                    "wid": crash["wid"],
                    "exitcode": crash["exitcode"],
                    "delivery": job.delivery_count,
                    "detail": crash["detail"],
                }
            )
            if job.cancel_requested:
                self._cancel_inflight(job, done_at)
                finished += 1
            elif crash["kind"] == "timeout" and job.timeout_s is not None:
                job.fail(f"TimeoutError: {crash['detail']}", done_at)
                self._failed += 1
                metrics.inc("service.failed")
                self._emit_terminal(
                    job, worker=crash["wid"], wall_s=wall_s
                )
                finished += 1
            elif job.delivery_count >= (
                job.max_deliveries or self.max_deliveries
            ):
                self._quarantine(job, crash["wid"], done_at)
                finished += 1
            else:
                redeliver.append(job)
        if redeliver:
            self.queue.requeue(redeliver)
            for job in redeliver:
                get_resilience_log().record(
                    "redelivery",
                    site="service",
                    job=job.job_id,
                    delivery=job.delivery_count,
                    reason=crash["kind"],
                )
        record["redelivered"] = len(redeliver)
        record["wall_s"] = time.perf_counter() - wall0
        record["queue_depth"] = self.queue.depth()
        self._wall_s += record["wall_s"]
        metrics.inc("service.megabatches")
        metrics.gauge("service.queue_depth", self.queue.depth())
        self.events.append(record)
        return finished

    # -- reporting -----------------------------------------------------------

    def stats(self) -> dict:
        """JSON-safe service-level summary (the serve CLI prints this)."""
        mega = [e for e in self.events if e["event"] == "megabatch"]
        factors = [e["coalesce_factor"] for e in mega]
        occupancy = [e["occupancy"] for e in mega]
        waits = [e["wait_max_s"] for e in mega]
        if self._pool is not None:
            worker_summaries = self._pool.worker_summaries()
            plan_cache = self._pool.plan_cache_totals()
        else:
            worker_summaries = [
                {
                    "wid": w.wid,
                    "megabatches": w.megabatches,
                    "solo_runs": w.solo_runs,
                    "jobs_done": w.jobs_done,
                }
                for w in self.workers
            ]
            plan_caches = [
                w.simulator._plans.stats_dict() for w in self.workers
            ]
            plan_cache = {
                key: sum(pc[key] for pc in plan_caches)
                for key in ("hits", "disk_hits", "misses", "quarantined")
            }
        stats = {
            "submitted": self.queue.admitted,
            "rejected": self.queue.rejected,
            "completed": self._completed,
            "failed": self._failed,
            "cancelled": sum(
                1 for j in self.jobs.values()
                if j.status is JobStatus.CANCELLED
            ),
            "quarantined": self._quarantined,
            "requeued": self.queue.requeued_total,
            "cancelled_inflight": self._cancelled_inflight,
            "queue_depth": self.queue.depth(),
            "megabatches": len(mega),
            "degraded_groups": self._degraded_groups,
            "scheduler_rounds": self.scheduler.rounds,
            "coalesce_factor_mean": float(np.mean(factors)) if factors else 0.0,
            "coalesce_factor_max": max(factors, default=0),
            "occupancy_mean": float(np.mean(occupancy)) if occupancy else 0.0,
            "wait_max_s": max(waits, default=0.0),
            "inputs_done": self._inputs_done,
            "modeled_time_s": self._modeled_s,
            "wall_time_s": self._wall_s,
            "modeled_throughput_inputs_per_s": (
                self._inputs_done / self._modeled_s if self._modeled_s else 0.0
            ),
            "parallelism": self.parallelism,
            "workers": worker_summaries,
            "plan_cache": plan_cache,
        }
        approx_jobs = [
            j for j in self.jobs.values() if j.fidelity < 1.0
        ]
        done_approx = [
            j for j in approx_jobs
            if j.status is JobStatus.DONE and j.achieved_fidelity is not None
        ]
        attained = [
            j for j in done_approx if j.achieved_fidelity >= j.fidelity
        ]
        stats["approx"] = {
            "approx_jobs": len(approx_jobs),
            "exact_jobs": len(self.jobs) - len(approx_jobs),
            "approx_done": len(done_approx),
            "attained": len(attained),
            "attainment_rate": (
                len(attained) / len(done_approx) if done_approx else 1.0
            ),
            "min_achieved_fidelity": (
                min(j.achieved_fidelity for j in done_approx)
                if done_approx else None
            ),
            "approx_megabatches": self._approx_runs,
            "pruned_gates": self._pruned_gates,
            "pruned_nodes": self._pruned_nodes,
            "pruned_edges": self._pruned_edges,
        }
        slo = self.slo.summary()
        slo["unaccounted_jobs"] = len(self.lifecycle.unaccounted())
        stats["slo"] = slo
        if self._pool is not None:
            stats["pool"] = self._pool.stats()
        return stats

    def write_queue_metrics(self, path) -> int:
        """Write the per-round event stream as JSONL; returns the count."""
        import json

        with open(path, "w", encoding="utf-8") as fh:
            for event in self.events:
                fh.write(json.dumps(event) + "\n")
        return len(self.events)

    def write_lifecycle(self, path) -> int:
        """Write the per-job lifecycle event log as JSONL; returns count."""
        return self.lifecycle.write_jsonl(path)
