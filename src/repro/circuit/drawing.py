"""ASCII circuit rendering.

``draw(circuit)`` produces a fixed-width text diagram — one wire per qubit,
one column per scheduling layer — for READMEs, logs, and debugging::

    q0: --H---*-------
              |
    q1: ------X---*---
                  |
    q2: ----------X---
"""

from __future__ import annotations

from ..errors import CircuitError
from .circuit import Circuit
from .gates import Gate


def _gate_label(gate: Gate) -> str:
    name = gate.name.upper()
    if gate.name == "x" and gate.controls:
        name = "X"
    if gate.params:
        name += f"({gate.params[0]:.2g})" if len(gate.params) == 1 else "(..)"
    return name


def _layers(circuit: Circuit) -> list[list[Gate]]:
    """Frontier layering: a gate lands in the first layer after every prior
    gate on any wire of its *span* (lowest to highest operand), so drawn
    order always respects circuit order."""
    layers: list[list[Gate]] = []
    frontier = [0] * circuit.num_qubits
    for gate in circuit.gates:
        span = range(min(gate.all_qubits), max(gate.all_qubits) + 1)
        layer_index = max(frontier[q] for q in span)
        while len(layers) <= layer_index:
            layers.append([])
        layers[layer_index].append(gate)
        for q in span:
            frontier[q] = layer_index + 1
    return layers


def _center(text: str, width: int, fill: str) -> str:
    pad = max(width - len(text), 0)
    return fill * (pad // 2) + text + fill * (pad - pad // 2)


def draw(circuit: Circuit, max_width: int = 120) -> str:
    """Render the circuit as ASCII art (wraps into blocks when too wide)."""
    n = circuit.num_qubits
    columns: list[list[str]] = []  # per layer: n wire cells then n-1 gap cells
    for layer in _layers(circuit):
        width = max(len(_gate_label(g)) for g in layer)
        wires = ["-" * width] * n
        gaps = [" " * width] * max(n - 1, 0)
        for gate in layer:
            label = _gate_label(gate)
            for q in gate.qubits:
                wires[q] = _center(label, width, "-")
            for q in gate.controls:
                wires[q] = _center("*", width, "-")
            for q in range(min(gate.all_qubits), max(gate.all_qubits)):
                gaps[q] = _center("|", width, " ")
        columns.append(wires + gaps)

    lines: list[str] = []
    for q in range(n):
        prefix = f"q{q}: "
        lines.append(prefix + "-" + "--".join(col[q] for col in columns) + "-")
        if q < n - 1:
            gap = " " * len(prefix) + " " + "  ".join(col[n + q] for col in columns)
            lines.append(gap.rstrip())
    return _wrap([line for line in lines if line], max_width)


def _wrap(lines: list[str], max_width: int) -> str:
    if all(len(line) <= max_width for line in lines):
        return "\n".join(lines)
    prefix_len = max((line.index(":") + 2 for line in lines if ":" in line), default=0)
    chunk = max_width - prefix_len
    if chunk <= 0:
        raise CircuitError("max_width too small to draw the circuit")
    body = [(line[:prefix_len], line[prefix_len:]) for line in lines]
    length = max(len(segment) for _, segment in body)
    blocks = []
    for start in range(0, length, chunk):
        block_lines = []
        for prefix, segment in body:
            head = prefix if start == 0 else " " * prefix_len
            block_lines.append((head + segment[start : start + chunk]).rstrip())
        blocks.append("\n".join(line for line in block_lines if line.strip()))
    return ("\n" + "." * 8 + "\n").join(blocks)
