"""Verification applications built on BQCS: equivalence checking."""

from .equivalence import EquivalenceResult, check, check_exact, check_simulative

__all__ = [
    "check",
    "check_exact",
    "check_simulative",
    "EquivalenceResult",
]
