"""Incremental batch resimulation (qTask-style, the paper's reference [26]).

Interactive workflows (debuggers, parameter tuners) repeatedly edit a gate
and want fresh outputs without re-running the whole circuit.  An
:class:`IncrementalSession` keeps the per-fused-gate snapshots of an
initial BQSim run; editing gate ``k`` only resimulates from the snapshot
*before* the fused gate containing ``k`` — everything upstream is reused.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuit.circuit import Circuit
from ..circuit.gates import Gate
from ..circuit.inputs import InputBatch
from ..errors import SimulationError
from .base import BatchSpec
from .bqsim import BQSimSimulator


@dataclass
class IncrementalUpdate:
    """Outcome of one edit: new outputs plus the work actually redone."""

    outputs: list[np.ndarray]
    resimulated_fused_gates: int
    total_fused_gates: int
    reused_fraction: float


class IncrementalSession:
    """One circuit + one input batch stream, open for gate edits."""

    def __init__(
        self,
        circuit: Circuit,
        batches: list[InputBatch],
        simulator: BQSimSimulator | None = None,
    ):
        if not batches:
            raise SimulationError("incremental session needs at least one batch")
        base = simulator or BQSimSimulator()
        # snapshots are the whole point here; force them on
        self._sim = BQSimSimulator(
            gpu=base.gpu, cpu=base.cpu, tau=base.tau, fusion=base.fusion,
            use_ell=base.use_ell, task_graph=base.task_graph,
            max_fused_cost=base.max_fused_cost, snapshots=True,
            engine=base.engine,
        )
        self.circuit = Circuit(circuit.num_qubits, list(circuit.gates),
                               name=circuit.name)
        self.batches = list(batches)
        self._spec = BatchSpec(
            num_batches=len(batches), batch_size=batches[0].batch_size
        )
        self._refresh()

    def _refresh(self) -> None:
        result = self._sim.run(self.circuit, self._spec, batches=self.batches)
        self._plan = result.stats["plan"]
        self._snapshots = result.stats["snapshots"]
        self.outputs = result.outputs

    def _fused_index_of(self, gate_index: int) -> int:
        for j, fused in enumerate(self._plan.gates):
            if gate_index in fused.gate_indices:
                return j
        raise SimulationError(f"gate index {gate_index} not in the plan")

    def update_gate(self, gate_index: int, new_gate: Gate) -> IncrementalUpdate:
        """Replace one gate and resimulate only the affected suffix."""
        if not 0 <= gate_index < len(self.circuit.gates):
            raise SimulationError(f"gate index {gate_index} out of range")
        self.circuit._check(new_gate)
        fused_index = self._fused_index_of(gate_index)
        total = len(self._plan.gates)

        self.circuit.gates[gate_index] = new_gate
        # suffix circuit: every source gate from the affected fused gate on
        suffix_sources = [
            i
            for fused in self._plan.gates[fused_index:]
            for i in fused.gate_indices
        ]
        suffix = Circuit(
            self.circuit.num_qubits,
            [self.circuit.gates[i] for i in sorted(suffix_sources)],
            name=f"{self.circuit.name}_suffix",
        )
        # inputs for the suffix: the snapshot right before the fused gate
        if fused_index == 0:
            suffix_inputs = self.batches
        else:
            suffix_inputs = [
                InputBatch(snaps[fused_index - 1]) for snaps in self._snapshots
            ]
        suffix_sim = BQSimSimulator(
            gpu=self._sim.gpu, cpu=self._sim.cpu, tau=self._sim.tau,
            fusion=self._sim.fusion, use_ell=self._sim.use_ell,
            task_graph=self._sim.task_graph,
            max_fused_cost=self._sim.max_fused_cost, snapshots=True,
            engine=self._sim.engine,
        )
        spec = BatchSpec(len(suffix_inputs), suffix_inputs[0].batch_size)
        result = suffix_sim.run(suffix, spec, batches=suffix_inputs)

        # splice the suffix snapshots over the stale tail
        new_plan_len = len(result.stats["plan"].gates)
        for batch_index, snaps in enumerate(self._snapshots):
            snaps[fused_index:] = result.stats["snapshots"][batch_index]
        self.outputs = result.outputs
        # the prefix plan is unchanged; remember the stitched plan length
        self._plan = _splice_plans(self._plan, fused_index, result.stats["plan"])
        return IncrementalUpdate(
            outputs=self.outputs,
            resimulated_fused_gates=new_plan_len,
            total_fused_gates=total,
            reused_fraction=fused_index / total if total else 0.0,
        )


def _splice_plans(old_plan, fused_index, suffix_plan):
    """Combine the untouched prefix of ``old_plan`` with ``suffix_plan``.

    Suffix gate indices are renumbered into the original circuit's index
    space (the suffix circuit was built from the sorted source indices).
    """
    from ..fusion.plan import FusedGate, FusionPlan

    prefix = old_plan.gates[:fused_index]
    source_indices = sorted(
        i for fused in old_plan.gates[fused_index:] for i in fused.gate_indices
    )
    remapped = []
    for fused in suffix_plan.gates:
        remapped.append(
            FusedGate(
                dd=fused.dd,
                cost=fused.cost,
                gate_indices=tuple(source_indices[i] for i in fused.gate_indices),
                nnz=fused.nnz,
            )
        )
    return FusionPlan(
        num_qubits=old_plan.num_qubits,
        gates=prefix + tuple(remapped),
        algorithm=old_plan.algorithm,
        source_gate_count=old_plan.source_gate_count,
    )
