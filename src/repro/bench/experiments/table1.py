"""Table 1 — uniformity of NZR across rows (average CV per circuit).

Computes the coefficient of variation of the per-row non-zero counts for
every fused gate matrix produced by BQCS-aware fusion, averaged per circuit.
The paper reports 0 for VQE/QNN/TSP and 0.0328 for the supremacy circuit —
near-uniform NZR is what justifies the padded ELL layout.
"""

from __future__ import annotations

from ...circuit.generators import make_circuit
from ...dd.manager import DDManager
from ...dd.nzrv import nzr_statistics
from ...fusion.bqcs import bqcs_fusion
from ..tables import print_table
from ..workloads import PAPER_TABLE1_CV

#: (family, paper n, small-scale n)
CIRCUITS = (
    ("supremacy", 12, 10),
    ("vqe", 16, 10),
    ("qnn", 12, 8),
    ("tsp", 16, 10),
)


def average_nzr_cv(family: str, num_qubits: int) -> float:
    """Average CV of NZR over the circuit's BQCS-fused gate matrices."""
    circuit = make_circuit(family, num_qubits)
    mgr = DDManager(num_qubits)
    plan = bqcs_fusion(mgr, circuit)
    cvs = [nzr_statistics(mgr, fused.dd)["cv"] for fused in plan.gates]
    return sum(cvs) / len(cvs) if cvs else 0.0


def run(scale: str = "small") -> list[dict]:
    rows = []
    for family, paper_n, small_n in CIRCUITS:
        n = paper_n if scale in ("paper", "medium") else small_n
        rows.append(
            {
                "family": family,
                "num_qubits": n,
                "cv": average_nzr_cv(family, n),
                "paper_cv": PAPER_TABLE1_CV[family],
            }
        )
    return rows


def main(scale: str = "small") -> list[dict]:
    rows = run(scale)
    print_table(
        f"Table 1: average CV of NZR (scale={scale})",
        ["circuit", "n", "CV of NZR", "paper"],
        [
            [r["family"], r["num_qubits"], f"{r['cv']:.4f}", f"{r['paper_cv']:.4f}"]
            for r in rows
        ],
    )
    return rows


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
