"""Figure 9 — GPU-based vs CPU-based vs hybrid conversion."""

from conftest import run_once
from repro.bench.experiments import fig9


def test_fig9_hybrid_conversion(benchmark, scale):
    rows = run_once(benchmark, fig9.run, scale)
    for row in rows:
        # normalized by hybrid: the hybrid never loses to either pure policy
        assert row["norm_gpu"] >= 1.0 - 1e-9
        assert row["norm_cpu"] >= 1.0 - 1e-9
