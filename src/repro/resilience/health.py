"""Numerical health guard: NaN/Inf and norm-drift detection per batch.

Unitary circuits over normalized inputs must keep every output column at
norm 1; drift beyond tolerance (or any non-finite amplitude) signals a
numerical fault — an undetected bit-flip, a broken kernel, accumulated
round-off.  The guard runs on every completed output batch and applies one
of four policies, in the spirit of "as accurate as needed, as efficient as
possible" (Hillmich et al.):

* ``off``         — no checks;
* ``warn``        — record the event and ``warnings.warn`` (default);
* ``renormalize`` — divide drifting columns back to unit norm (non-finite
  values cannot be repaired and escalate to a warning);
* ``fail``        — raise :class:`~repro.errors.NumericalError`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..errors import NumericalError, SimulationError
from .events import get_resilience_log

HEALTH_MODES = ("off", "warn", "renormalize", "fail")


@dataclass(frozen=True)
class HealthPolicy:
    """What to check and what to do when a check trips."""

    mode: str = "warn"
    norm_tol: float = 1e-6

    def __post_init__(self) -> None:
        if self.mode not in HEALTH_MODES:
            raise SimulationError(
                f"unknown health mode {self.mode!r}; expected one of {HEALTH_MODES}"
            )

    @classmethod
    def coerce(cls, value: "HealthPolicy | str | None") -> "HealthPolicy":
        """Accept a policy, a mode string, or ``None`` (= ``off``)."""
        if value is None:
            return cls(mode="off")
        if isinstance(value, str):
            return cls(mode=value)
        return value


def check_state_block(
    states: np.ndarray, policy: HealthPolicy | None, label: str = ""
) -> np.ndarray:
    """Health-check one ``(2^n, batch)`` output block.

    Returns the (possibly renormalized) block; raises
    :class:`~repro.errors.NumericalError` under the ``fail`` policy.
    """
    if policy is None or policy.mode == "off":
        return states
    log = get_resilience_log()
    if not np.all(np.isfinite(states)):
        log.record("health_nonfinite", site="health", label=label)
        message = f"non-finite amplitudes in {label or 'output block'}"
        if policy.mode == "fail":
            raise NumericalError(message)
        warnings.warn(message, RuntimeWarning, stacklevel=2)
        return states
    norms = np.linalg.norm(states, axis=0)
    drift = float(np.max(np.abs(norms - 1.0))) if norms.size else 0.0
    if drift <= policy.norm_tol:
        return states
    log.record("health_drift", site="health", label=label, drift=drift)
    message = (
        f"norm drift {drift:.3e} in {label or 'output block'} exceeds "
        f"tolerance {policy.norm_tol:.1e}"
    )
    if policy.mode == "fail":
        raise NumericalError(message)
    if policy.mode == "renormalize":
        safe = np.where(norms > 0.0, norms, 1.0)
        log.record("renormalize", site="health", label=label, drift=drift)
        return states / safe
    warnings.warn(message, RuntimeWarning, stacklevel=2)
    return states
