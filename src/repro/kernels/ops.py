"""The named kernels every numeric hot path routes through.

Each function here is one registry kernel (see
:mod:`repro.kernels.registry`): it receives a resolved
:class:`~repro.kernels.engine.ArrayEngine` and computes exclusively with
``engine.xp``, so the same body runs on NumPy, the deterministic CI
``fake-gpu`` engine, or CuPy.  The numpy engine performs the identical
operation sequence, in the identical order, as the pre-engine direct
NumPy code — bit-identical outputs are a contract the engine-parity
tests enforce.

Kernels:

* ``ell.gather.width1`` — permutation/diagonal gates: one gather-multiply.
* ``ell.gather.spmm`` — the cache-blocked ELL gather + multiply-accumulate.
* ``ell.gather.slots`` — the reference per-slot loop.
* ``ell.gather.stacked`` — the ParamBatch SIMD variant: one call applies
  K parameter sets' values over a shared column structure.
* ``dense.apply`` / ``dense.apply.stacked`` — dense gate application by
  amplitude-index gather + ``einsum`` (the statevector ground truth and
  its K-way parameter-batched form).
* ``batch.rotate.merge`` / ``batch.rotate.copy`` — buffer-rotation data
  movement: merging split sub-batches and writing an output buffer.
* ``state.init`` / ``state.normalize`` — statevector initialization and
  column normalization.
"""

from __future__ import annotations

import numpy as _host_np

from ..errors import SimulationError
from .engine import ArrayEngine
from .registry import kernel

#: target element count of one row-block's scratch in the blocked spMM
#: (64k complex128 ~= 1 MiB, small enough to stay cache-resident)
BLOCK_ELEMS = 1 << 16


# ---------------------------------------------------------------------------
# ELL spMM gather kernels
# ---------------------------------------------------------------------------

@kernel("ell.gather.width1")
def ell_gather_width1(engine: ArrayEngine, values, flat_cols, states):
    """Width-1 ELL apply: ``out[r, b] = values[r] * states[cols[r], b]``."""
    return values * states[flat_cols, :]


@kernel("ell.gather.spmm")
def ell_gather_spmm(engine: ArrayEngine, values, cols, states):
    """Cache-blocked gather + multiply-accumulate over ELL slots.

    Processes row blocks small enough that per-block temporaries stay
    cache-resident.  On the numpy engine the slot order matches the
    reference loop exactly (bit-identical results); device-flavored
    engines may reassociate via :meth:`ArrayEngine.slot_order`.
    """
    xp = engine.xp
    num_rows, width = values.shape
    batch = states.shape[1] if states.ndim == 2 else 1
    block = max(16, min(num_rows, BLOCK_ELEMS // max(batch, 1)))
    out = xp.empty_like(states)
    for r0 in range(0, num_rows, block):
        r1 = min(r0 + block, num_rows)
        acc = xp.zeros((r1 - r0,) + states.shape[1:], dtype=states.dtype)
        for k in engine.slot_order(width):
            acc += values[r0:r1, k : k + 1] * states[cols[r0:r1, k], :]
        out[r0:r1] = acc
    return out


@kernel("ell.gather.slots")
def ell_gather_slots(engine: ArrayEngine, values, cols, states, out):
    """Reference per-slot loop: one whole-array gather-MAC per ELL slot."""
    out[:] = 0
    for k in engine.slot_order(values.shape[1]):
        out += values[:, k : k + 1] * states[cols[:, k], :]
    return out


@kernel("ell.gather.stacked")
def ell_gather_stacked(engine: ArrayEngine, values, cols, states):
    """Parameter-batched ELL spMM: K value sets over one column structure.

    ``values`` has shape ``(K, rows, width)`` — one ELL value matrix per
    parameter set, all sharing ``cols`` ``(rows, width)`` — and
    ``states`` has shape ``(K, rows, batch)``.  One call computes
    ``out[p, r, b] = sum_k values[p, r, k] * states[p, cols[r, k], b]``
    for every parameter set at once.
    """
    xp = engine.xp
    if values.ndim != 3 or states.ndim != 3:
        raise SimulationError("stacked spMM expects (K, rows, ...) operands")
    if values.shape[0] != states.shape[0]:
        raise SimulationError(
            f"stacked spMM set-count mismatch: {values.shape[0]} value sets "
            f"vs {states.shape[0]} state blocks"
        )
    acc = xp.zeros_like(states)
    for k in engine.slot_order(values.shape[2]):
        acc += values[:, :, k : k + 1] * states[:, cols[:, k], :]
    return acc


# ---------------------------------------------------------------------------
# dense gate application
# ---------------------------------------------------------------------------

def gather_axes(num_qubits: int, operands: tuple[int, ...]) -> _host_np.ndarray:
    """Amplitude-index table for a dense gate application (host-side plan).

    Rows enumerate assignments of non-operand qubits, columns the local
    index over ``operands`` (``operands[i]`` is local bit ``i``).  This
    is plan construction, not a kernel: the table is built once per gate
    shape and shipped to whatever engine executes the apply.
    """
    rest = [q for q in range(num_qubits) if q not in operands]
    k = len(operands)
    rest_values = _host_np.zeros(1 << len(rest), dtype=_host_np.int64)
    for i, q in enumerate(rest):
        bit = (_host_np.arange(1 << len(rest)) >> i) & 1
        rest_values |= bit << q
    local_values = _host_np.zeros(1 << k, dtype=_host_np.int64)
    for i, q in enumerate(operands):
        bit = (_host_np.arange(1 << k) >> i) & 1
        local_values |= bit << q
    return rest_values[:, None] + local_values[None, :]


@kernel("dense.apply")
def dense_gate_apply(engine: ArrayEngine, matrix, states, idx):
    """Apply one dense gate in place via gather + ``einsum`` + scatter.

    ``states`` is ``(2^n, batch)``, ``idx`` the (possibly control-sliced)
    gather table from :func:`gather_axes`, ``matrix`` the base unitary.
    """
    xp = engine.xp
    gathered = states[idx, :]
    states[idx, :] = xp.einsum("ij,gjb->gib", matrix, gathered)
    return states


@kernel("dense.apply.stacked")
def dense_gate_apply_stacked(engine: ArrayEngine, matrices, states, idx):
    """Parameter-batched dense apply: K matrices, K state blocks, one op.

    ``states`` is ``(K, 2^n, batch)`` and ``matrices`` ``(K, d, d)`` —
    the SIMD shape of manyq: all K parametric circuits sharing one
    structure advance one gate with a single tensor contraction.
    """
    xp = engine.xp
    if matrices.shape[0] != states.shape[0]:
        raise SimulationError(
            f"stacked apply set-count mismatch: {matrices.shape[0]} matrices "
            f"vs {states.shape[0]} state blocks"
        )
    gathered = states[:, idx, :]
    states[:, idx, :] = xp.einsum("kij,kgjb->kgib", matrices, gathered)
    return states


# ---------------------------------------------------------------------------
# batch buffer rotation
# ---------------------------------------------------------------------------

@kernel("batch.rotate.merge")
def batch_merge(engine: ArrayEngine, parts):
    """Merge split sub-batch columns back into one block (host-side).

    Sub-batches produced by OOM-driven batch splitting come back from
    D2H as host blocks; a single part passes through untouched — the
    same object identity the pre-engine ``np.hstack`` fast path had.
    """
    parts = list(parts)
    if not parts:
        raise SimulationError("cannot merge an empty sub-batch list")
    if len(parts) == 1:
        return parts[0]
    return _host_np.hstack(parts)


@kernel("batch.rotate.copy")
def copy_into(engine: ArrayEngine, out, result):
    """Write a kernel result into a caller-provided rotation buffer."""
    engine.xp.copyto(out, result)
    return out


# ---------------------------------------------------------------------------
# statevector init / normalize
# ---------------------------------------------------------------------------

@kernel("state.init")
def statevector_init(engine: ArrayEngine, num_qubits: int, batch_size: int = 1):
    """Batch of ``|0...0>`` states in engine space: ``(2^n, batch)``."""
    xp = engine.xp
    states = xp.zeros((1 << num_qubits, batch_size), dtype=xp.complex128)
    states[0, :] = 1.0
    return states


@kernel("state.normalize")
def normalize_states(engine: ArrayEngine, states):
    """Normalize every column to unit 2-norm, in place."""
    xp = engine.xp
    states /= xp.linalg.norm(states, axis=0, keepdims=True)
    return states
