"""Parameter-batched SIMD execution over one circuit structure.

The dominant workload of the paper's VQE/QNN studies (Table 3) is *many
parameter sets of one parametric circuit*: every candidate shares the
gate structure and differs only in rotation angles.  Evaluating them one
by one launches ``K x G`` tiny kernels; stacking the K parameter sets
into a leading tensor axis evaluates each gate position for **all K
circuits in a single contraction** — manyq's SIMD mode, rebuilt on the
engine/kernel registry so it runs identically on numpy, fake-gpu, and
CuPy backends.

:class:`ParamBatch` compiles the shared structure once (gather tables
and ``(K, d, d)`` matrix stacks per gate position), then:

* :meth:`ParamBatch.run` — one ``dense.apply.stacked`` kernel call per
  gate position (``G`` launches total);
* :meth:`ParamBatch.run_serial` — the per-slot baseline: the same
  stacked kernel invoked with ``K=1`` slices (``K x G`` launches), which
  guarantees numpy-engine results are bit-identical to the batched run;
* :meth:`ParamBatch.modeled_times` — launch-aware roofline estimates of
  both schedules on a :class:`~repro.gpu.spec.GpuSpec`.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

from ..circuit.circuit import Circuit
from ..errors import SimulationError
from ..gpu.spec import COMPLEX_BYTES, DEFAULT_GPU, GpuSpec
from . import ops
from .engine import ArrayEngine, get_engine


def structural_fingerprint(circuit: Circuit) -> str:
    """Structure-only circuit hash: gate names, wiring, parameter *arity*.

    Unlike :meth:`~repro.circuit.circuit.Circuit.fingerprint` this
    ignores the parameter values, so two bindings of the same ansatz
    hash equally — the grouping key for parameter batching (and the
    same key the service coalescer needs to batch by structure).
    """
    hasher = hashlib.sha256()
    hasher.update(f"repro-structure-v1:{circuit.num_qubits}\n".encode())
    for gate in circuit.gates:
        hasher.update(
            f"{gate.name}|{gate.qubits}|{gate.controls}|{len(gate.params)}\n".encode()
        )
    return hasher.hexdigest()


class ParamBatch:
    """K same-structure circuits compiled for single-call-per-gate execution."""

    def __init__(
        self,
        circuits: Sequence[Circuit],
        engine: "str | ArrayEngine | None" = None,
    ) -> None:
        circuits = list(circuits)
        if not circuits:
            raise SimulationError("ParamBatch needs at least one circuit")
        key = structural_fingerprint(circuits[0])
        for circuit in circuits[1:]:
            if structural_fingerprint(circuit) != key:
                raise SimulationError(
                    "ParamBatch circuits must share one structural "
                    "fingerprint (same gates/wiring, parameters free)"
                )
        self.circuits = circuits
        self.engine = engine
        self.num_qubits = circuits[0].num_qubits
        self.num_sets = len(circuits)
        self.structure = key
        # one step per gate position: (gather table, (K, d, d) matrix stack)
        self._steps: list[tuple[np.ndarray, np.ndarray]] = []
        template = circuits[0]
        for position, gate in enumerate(template.gates):
            idx = ops.gather_axes(self.num_qubits, gate.all_qubits)
            if gate.controls:
                k_t = len(gate.qubits)
                ctrl_mask = ((1 << len(gate.controls)) - 1) << k_t
                idx = idx[:, ctrl_mask : ctrl_mask + (1 << k_t)]
            matrices = np.stack(
                [circuit.gates[position].matrix() for circuit in circuits]
            )
            self._steps.append((idx, np.ascontiguousarray(matrices)))
        # per-engine-name cache of engine-space (idx, matrices) pairs
        self._engine_steps: dict[str, list[tuple]] = {}

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_ansatz(
        cls,
        ansatz,
        parameter_sets: Sequence[Sequence[float]],
        engine: "str | ArrayEngine | None" = None,
    ) -> "ParamBatch":
        """Bind each row of ``parameter_sets`` and batch the results."""
        return cls([ansatz.bind(row) for row in parameter_sets], engine=engine)

    @property
    def num_gates(self) -> int:
        return len(self._steps)

    # -- execution ------------------------------------------------------------

    def _resolve(self, engine) -> ArrayEngine:
        return get_engine(engine if engine is not None else self.engine)

    def _steps_for(self, eng: ArrayEngine) -> list[tuple]:
        steps = self._engine_steps.get(eng.name)
        if steps is None:
            steps = [
                (eng.asarray(idx), eng.asarray(mats)) for idx, mats in self._steps
            ]
            self._engine_steps[eng.name] = steps
        return steps

    def _initial_states(self, batch) -> np.ndarray:
        """Host ``(2^n, B)`` block shared by every parameter set."""
        dim = 1 << self.num_qubits
        if batch is None:
            states = np.zeros((dim, 1), dtype=np.complex128)
            states[0, :] = 1.0
            return states
        # duck-typed InputBatch (kernels cannot import circuit.inputs —
        # that module routes its normalization through this package)
        states = getattr(batch, "states", batch)
        states = np.asarray(states, dtype=np.complex128)
        if states.ndim == 1:
            states = states.reshape(dim, 1)
        if states.shape[0] != dim:
            raise SimulationError(
                f"input block has dim {states.shape[0]}, circuit needs {dim}"
            )
        return np.ascontiguousarray(states, dtype=np.complex128)

    def run(self, batch=None, engine=None) -> np.ndarray:
        """Evaluate all K circuits at once; returns host ``(K, 2^n, B)``.

        One stacked-apply kernel call per gate position — the SIMD
        schedule the benchmark measures against :meth:`run_serial`.
        """
        eng = self._resolve(engine)
        host0 = self._initial_states(batch)
        stacked = eng.from_host(
            np.broadcast_to(host0, (self.num_sets,) + host0.shape)
        )
        for idx, matrices in self._steps_for(eng):
            ops.dense_gate_apply_stacked(eng, matrices, stacked, idx)
        eng.synchronize()
        return eng.to_host(stacked)

    def run_serial(self, batch=None, engine=None) -> np.ndarray:
        """Per-slot baseline: each parameter set advanced on its own.

        Launches ``K x num_gates`` kernels instead of ``num_gates``, but
        runs each through the *same* stacked kernel with ``K=1`` slices,
        so on the numpy engine the outputs are bit-identical to
        :meth:`run`.
        """
        eng = self._resolve(engine)
        host0 = self._initial_states(batch)
        steps = self._steps_for(eng)
        outputs = []
        for k in range(self.num_sets):
            state = eng.from_host(host0[None, :, :])
            for idx, matrices in steps:
                ops.dense_gate_apply_stacked(eng, matrices[k : k + 1], state, idx)
            outputs.append(eng.to_host_copy(state)[0])
        eng.synchronize()
        return np.stack(outputs)

    # -- analytic schedule model ----------------------------------------------

    def modeled_times(
        self, gpu: GpuSpec = DEFAULT_GPU, batch_size: int = 1
    ) -> dict:
        """Roofline + launch-overhead model of both schedules.

        Small parametric-ansatz gates are launch-bound on a real device:
        the serial schedule pays ``K x G`` launch overheads for the same
        arithmetic the batched schedule covers in ``G``.
        """
        serial_s = 0.0
        batched_s = 0.0
        for idx, matrices in self._steps:
            groups, d = idx.shape
            macs = groups * d * d * batch_size
            bytes_moved = 2 * groups * d * batch_size * COMPLEX_BYTES
            bytes_moved += d * d * COMPLEX_BYTES
            serial_s += self.num_sets * (
                gpu.kernel_launch_overhead + gpu.kernel_time(macs, bytes_moved)
            )
            batched_s += gpu.kernel_launch_overhead + gpu.kernel_time(
                self.num_sets * macs, self.num_sets * bytes_moved
            )
        return {
            "num_sets": self.num_sets,
            "num_gates": self.num_gates,
            "serial_kernels": self.num_sets * self.num_gates,
            "batched_kernels": self.num_gates,
            "serial_s": serial_s,
            "batched_s": batched_s,
            "speedup": serial_s / batched_s if batched_s > 0 else float("inf"),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ParamBatch K={self.num_sets} n={self.num_qubits} "
            f"gates={self.num_gates}>"
        )
