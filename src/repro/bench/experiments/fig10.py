"""Figure 10 — scalability: BQSim speed-up over cuQuantum vs batch size.

Sweeps the batch size (32..1024 at paper scale) with the batch count fixed
and reports the runtime ratio.  The speed-up grows with batch size until
the data movement saturates memory bandwidth, then flattens — the paper's
saturation at B = 1024.
"""

from __future__ import annotations

from ...circuit.generators import make_circuit
from ...sim import BQSimSimulator, BatchSpec, CuQuantumSimulator
from ..tables import print_table

SETTINGS = {
    "small": ((("qnn", 7), ("vqe", 8)), (4, 8, 16, 32), 4, True),
    "medium": ((("qnn", 12), ("vqe", 16)), (32, 64, 128, 256, 512, 1024), 200, False),
    "paper": ((("qnn", 17), ("vqe", 16)), (32, 64, 128, 256, 512, 1024), 200, False),
}


def run(scale: str = "small") -> list[dict]:
    circuits, batch_sizes, num_batches, execute = SETTINGS.get(
        scale, SETTINGS["small"]
    )
    bqsim, cuq = BQSimSimulator(), CuQuantumSimulator()
    rows = []
    for family, n in circuits:
        circuit = make_circuit(family, n)
        for batch_size in batch_sizes:
            spec = BatchSpec(num_batches=num_batches, batch_size=batch_size)
            rb = bqsim.run(circuit, spec, execute=execute)
            rc = cuq.run(circuit, spec, execute=execute)
            rows.append(
                {
                    "family": family,
                    "num_qubits": n,
                    "batch_size": batch_size,
                    "bqsim_s": rb.modeled_time,
                    "cuquantum_s": rc.modeled_time,
                    "speedup": rc.modeled_time / rb.modeled_time,
                }
            )
    return rows


def main(scale: str = "small") -> list[dict]:
    rows = run(scale)
    print_table(
        f"Figure 10: speed-up over cuQuantum vs batch size (scale={scale})",
        ["circuit", "n", "batch size", "BQSim ms", "cuQuantum ms", "speed-up"],
        [
            [
                r["family"],
                r["num_qubits"],
                r["batch_size"],
                f"{r['bqsim_s'] * 1e3:.1f}",
                f"{r['cuquantum_s'] * 1e3:.1f}",
                f"{r['speedup']:.2f}x",
            ]
            for r in rows
        ],
    )
    return rows


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
