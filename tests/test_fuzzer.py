"""Tests for the mutation operators and the differential fuzzer."""

import warnings

import numpy as np
import pytest

from repro.circuit import Circuit, generate_batches
from repro.circuit.generators import random_circuit, vqe
from repro.errors import ReproError, SimulationError
from repro.sim import BQSimSimulator, BatchSpec
from repro.testing import (
    BREAKING,
    DifferentialFuzzer,
    PRESERVING,
    commute_disjoint_pair,
    drop_gate,
    insert_identity_pair,
    perturb_angle,
    rewrite_gate,
    swap_operands,
)
from repro.transpile import circuits_equivalent


@pytest.fixture
def seed_circuit():
    return random_circuit(4, 20, seed=9)


@pytest.mark.parametrize("name,mutate", sorted(PRESERVING.items()))
def test_preserving_mutations_keep_semantics(name, mutate, seed_circuit):
    rng = np.random.default_rng(0)
    for _ in range(5):
        mutant = mutate(seed_circuit, rng)
        assert circuits_equivalent(seed_circuit, mutant), name


@pytest.mark.parametrize("name,mutate", sorted(BREAKING.items()))
def test_breaking_mutations_usually_change_semantics(name, mutate, seed_circuit):
    rng = np.random.default_rng(1)
    changed = sum(
        not circuits_equivalent(seed_circuit, mutate(seed_circuit, rng))
        for _ in range(5)
    )
    assert changed >= 4, name  # breaking mutations rarely no-op


def test_insert_identity_grows_by_two(seed_circuit):
    rng = np.random.default_rng(2)
    assert len(insert_identity_pair(seed_circuit, rng)) == len(seed_circuit) + 2


def test_drop_gate_shrinks(seed_circuit):
    rng = np.random.default_rng(2)
    assert len(drop_gate(seed_circuit, rng)) == len(seed_circuit) - 1


def test_mutations_do_not_touch_the_seed(seed_circuit):
    rng = np.random.default_rng(3)
    before = list(seed_circuit.gates)
    for mutate in (*PRESERVING.values(), *BREAKING.values()):
        mutate(seed_circuit, rng)
    assert seed_circuit.gates == before


def test_commute_on_fully_entangled_is_identity():
    c = Circuit(2)
    c.cx(0, 1).cx(1, 0).cx(0, 1)  # every adjacent pair overlaps
    rng = np.random.default_rng(0)
    assert [g.all_qubits for g in commute_disjoint_pair(c, rng)] == [
        g.all_qubits for g in c
    ]


def test_perturb_angle_injects_when_no_rotations():
    c = Circuit(2)
    c.h(0).cx(0, 1)
    rng = np.random.default_rng(0)
    mutant = perturb_angle(c, rng)
    assert len(mutant) == len(c) + 1


def test_swap_operands_flips_cx():
    c = Circuit(2)
    c.cx(0, 1)
    rng = np.random.default_rng(0)
    mutant = swap_operands(c, rng)
    assert mutant[0].controls == (1,) and mutant[0].qubits == (0,)


def test_fuzzer_clean_on_healthy_simulator(seed_circuit):
    report = DifferentialFuzzer(batch_size=16).run(seed_circuit, iterations=16, seed=4)
    assert report.ok
    assert report.detection_rate == 1.0
    assert report.preserving_checked + report.breaking_checked == 16


def test_fuzzer_catches_an_unsound_rewrite(seed_circuit):
    """A deliberately wrong 'preserving' mutation must be flagged."""

    def bogus_rewrite(circuit, rng):
        out = Circuit(circuit.num_qubits, list(circuit.gates))
        out.rz(0.3, 0)  # not semantics-preserving at all
        return out

    report = DifferentialFuzzer(batch_size=16).run(
        seed_circuit,
        iterations=6,
        seed=5,
        preserving={"bogus": bogus_rewrite},
        breaking={},
    )
    assert not report.ok
    assert all(f.mutation == "bogus" for f in report.findings)
    assert all(f.kind == "preserving-deviation" for f in report.findings)


def test_fuzzer_reports_oracle_blind_spot(seed_circuit):
    """A 'breaking' mutation that changes nothing must be reported as
    undetected."""

    def noop(circuit, rng):
        return Circuit(circuit.num_qubits, list(circuit.gates))

    report = DifferentialFuzzer(batch_size=16).run(
        seed_circuit, iterations=4, seed=6, preserving={}, breaking={"noop": noop}
    )
    assert report.breaking_detected == 0
    assert all(f.kind == "breaking-undetected" for f in report.findings)
    assert report.detection_rate == 0.0


def test_fuzzer_validates_iterations(seed_circuit):
    with pytest.raises(SimulationError, match="at least one"):
        DifferentialFuzzer().run(seed_circuit, iterations=0)


def test_chaos_mode_surfaces_only_typed_errors():
    """Random low-rate fault plans over the full pipeline: a run either
    completes with unit-norm outputs or fails with a :class:`ReproError`
    subclass — never a bare ``KeyError``/``IndexError``/``ValueError``."""
    circuit = random_circuit(4, 16, seed=11)
    spec = BatchSpec(num_batches=2, batch_size=4, seed=3)
    batches = list(generate_batches(4, 2, 4, 3))
    rng = np.random.default_rng(7)
    sites = ["kernel", "copy", "bitflip", "oom", "spmm"]
    completed = 0
    for trial in range(8):
        chosen = rng.choice(sites, size=2, replace=False)
        plan = ",".join(
            [f"seed={trial}"]
            + [f"{site}={rng.uniform(0.0, 0.15):.3f}" for site in chosen]
        )
        sim = BQSimSimulator(faults=plan, max_splits=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            try:
                result = sim.run(circuit, spec, batches=batches)
            except Exception as exc:  # noqa: BLE001 - the assertion is the point
                assert isinstance(exc, ReproError), (
                    f"plan {plan!r} leaked {type(exc).__name__}: {exc}"
                )
                continue
        completed += 1
        for out in result.outputs:
            assert np.allclose(np.linalg.norm(out, axis=0), 1.0, atol=1e-6)
    assert completed >= 1, "every chaos trial failed; rates are too hot"
