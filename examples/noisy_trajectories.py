"""Noisy simulation via Pauli trajectories — batches as noise realizations.

The related work the paper builds on ([23, 40, 58]) batches *noise
conditions*: a noisy channel is a probabilistic mixture of unitary
circuits, and estimating its output means simulating many sampled
trajectories.  Each trajectory here runs over a whole input batch with
BQSim, and the Monte-Carlo average is validated against the exact
density-matrix reference.

Run:  python examples/noisy_trajectories.py
"""

from __future__ import annotations

import numpy as np

from repro.circuit import zero_state_batch
from repro.circuit.generators import ghz
from repro.noise import (
    NoiseModel,
    density_probabilities,
    depolarizing,
    purity,
    simulate_density,
    simulate_noisy_batch,
    state_fidelity_with_density,
)
from repro.sim.statevector import simulate_state


def main() -> None:
    num_qubits = 5
    circuit = ghz(num_qubits)
    ideal = simulate_state(circuit)

    print(f"{circuit.name}: GHZ fidelity under depolarizing gate noise\n")
    print(f"{'p':>6}  {'purity':>7}  {'fidelity':>8}  {'P(000..)+P(111..)':>18}  "
          f"{'trajectory est.':>15}")
    batch = zero_state_batch(num_qubits, 1)
    last_fidelity = 1.1
    for p in (0.0, 0.01, 0.03, 0.08):
        noise = NoiseModel(depolarizing(p))
        rho = simulate_density(circuit, noise)
        exact = density_probabilities(rho)
        fidelity = state_fidelity_with_density(ideal, rho)
        ghz_weight = exact[0] + exact[-1]

        estimate = simulate_noisy_batch(
            circuit, noise, batch, num_trajectories=200, seed=7
        )
        est_weight = float(
            estimate.probabilities[0, 0] + estimate.probabilities[-1, 0]
        )
        print(f"{p:6.2f}  {purity(rho):7.3f}  {fidelity:8.3f}  "
              f"{ghz_weight:18.3f}  {est_weight:15.3f}")

        assert abs(est_weight - ghz_weight) < 0.08, "trajectories must track the exact channel"
        assert fidelity < last_fidelity + 1e-9, "fidelity decreases with noise"
        last_fidelity = fidelity

    print("\ntrajectory averages track the exact density matrix; GHZ "
          "coherence decays with the gate error rate")


if __name__ == "__main__":
    main()
