"""Tests for DD construction from gates, circuits, and dense arrays."""

import numpy as np
import pytest

from repro.circuit import Circuit, gate_unitary
from repro.circuit.gates import Gate
from repro.dd import (
    DDManager,
    basis_vector_dd,
    circuit_matrix_dd,
    count_nodes,
    gate_matrix_dd,
    matrix_to_dense,
    vector_dd_from_dense,
    vector_to_dense,
)
from repro.errors import DDError

GATES = [
    Gate.make("h", [0]),
    Gate.make("h", [3]),
    Gate.make("x", [2]),
    Gate.make("rz", [1], [0.9]),
    Gate.make("cx", [0, 3]),
    Gate.make("cx", [3, 0]),
    Gate.make("cz", [1, 2]),
    Gate.make("ccx", [0, 1, 2]),
    Gate.make("ccx", [3, 2, 0]),
    Gate.make("swap", [0, 2]),
    Gate.make("rzz", [1, 3], [0.4]),
    Gate.make("cp", [2, 0], [1.3]),
    Gate.make("u3", [1], [0.3, 0.8, -0.2]),
]


@pytest.mark.parametrize("gate", GATES, ids=str)
def test_gate_dd_matches_dense_unitary(gate, mgr4):
    edge = gate_matrix_dd(mgr4, gate)
    assert np.allclose(matrix_to_dense(edge, 4), gate_unitary(gate, 4), atol=1e-12)


def test_gate_dd_rejects_out_of_range(mgr4):
    with pytest.raises(DDError, match="fit"):
        gate_matrix_dd(mgr4, Gate.make("h", [5]))


def test_identity_gate_compresses_to_chain(mgr4):
    edge = gate_matrix_dd(mgr4, Gate.make("id", [0]))
    assert count_nodes(edge) == 4  # one node per level


def test_circuit_dd_equals_matrix_product(small_circuit, mgr4):
    edge = circuit_matrix_dd(mgr4, small_circuit.gates)
    assert np.allclose(
        matrix_to_dense(edge, 4), small_circuit.to_matrix(), atol=1e-9
    )


def test_circuit_dd_respects_order(mgr4):
    c = Circuit(4)
    c.h(0).cx(0, 1)
    edge = circuit_matrix_dd(mgr4, c.gates)
    expected = gate_unitary(c.gates[1], 4) @ gate_unitary(c.gates[0], 4)
    assert np.allclose(matrix_to_dense(edge, 4), expected, atol=1e-12)


def test_vector_roundtrip(rng, mgr4):
    v = rng.standard_normal(16) + 1j * rng.standard_normal(16)
    edge = vector_dd_from_dense(mgr4, v)
    assert np.allclose(vector_to_dense(edge, 4), v, atol=1e-12)


def test_vector_wrong_length_rejected(mgr4):
    with pytest.raises(DDError, match="length"):
        vector_dd_from_dense(mgr4, np.ones(8))


def test_basis_vector(mgr4):
    for index in (0, 5, 15):
        v = vector_to_dense(basis_vector_dd(mgr4, index), 4)
        expected = np.zeros(16)
        expected[index] = 1
        assert np.allclose(v, expected)


def test_basis_vector_rejects_out_of_range(mgr4):
    with pytest.raises(DDError, match="out of range"):
        basis_vector_dd(mgr4, 16)


def test_structured_state_compresses(mgr4):
    # uniform superposition: one node per level
    v = np.full(16, 0.25)
    edge = vector_dd_from_dense(mgr4, v)
    assert count_nodes(edge) == 4


def test_gate_dd_node_sharing(mgr4):
    # H on one qubit of four: identity structure above/below the target is
    # shared, so the DD stays linear in n
    edge = gate_matrix_dd(mgr4, Gate.make("h", [2]))
    assert count_nodes(edge) <= 8
