"""ELL sparse format, DD-to-ELL converters, and the spMM kernel math."""

from .alternatives import (
    COOMatrix,
    CSRMatrix,
    coo_from_ell,
    coo_spmm,
    csr_from_ell,
    csr_spmm,
)
from .convert import (
    ConversionResult,
    DEFAULT_TAU,
    ell_from_dd,
    ell_from_dd_cpu,
    ell_from_flat_gpu,
)
from .format import ELLMatrix, ell_from_dense
from .persist import (
    CompiledPlan,
    EllBundle,
    bundle_from_plan,
    load_bundle,
    load_compiled_plan,
    plan_fingerprint,
    save_bundle,
    save_compiled_plan,
)
from .spmm import (
    GatherPlan,
    build_apply_plans,
    ell_spmm,
    ell_spmm_loop,
    gather_plan,
    spmm_bytes,
    spmm_macs,
)

__all__ = [
    "build_apply_plans",
    "bundle_from_plan",
    "CompiledPlan",
    "ConversionResult",
    "coo_from_ell",
    "coo_spmm",
    "COOMatrix",
    "csr_from_ell",
    "csr_spmm",
    "CSRMatrix",
    "DEFAULT_TAU",
    "ell_from_dd",
    "ell_from_dd_cpu",
    "ell_from_dense",
    "ell_from_flat_gpu",
    "ell_spmm",
    "ell_spmm_loop",
    "EllBundle",
    "ELLMatrix",
    "gather_plan",
    "GatherPlan",
    "load_bundle",
    "load_compiled_plan",
    "plan_fingerprint",
    "save_bundle",
    "save_compiled_plan",
    "spmm_bytes",
    "spmm_macs",
]
