"""Quantum-program testing on BQCS: mutations and a differential fuzzer."""

from .fuzzer import DifferentialFuzzer, FuzzFinding, FuzzReport
from .mutations import (
    BREAKING,
    PRESERVING,
    commute_disjoint_pair,
    drop_gate,
    insert_identity_pair,
    perturb_angle,
    rewrite_gate,
    swap_operands,
)

__all__ = [
    "BREAKING",
    "commute_disjoint_pair",
    "DifferentialFuzzer",
    "drop_gate",
    "FuzzFinding",
    "FuzzReport",
    "insert_identity_pair",
    "perturb_angle",
    "PRESERVING",
    "rewrite_gate",
    "swap_operands",
]
