"""Textbook-algorithm circuit generators (Grover, Deutsch-Jozsa, W state,
quantum phase estimation) — additional MQT-Bench-style workloads that
exercise multi-controlled gates and oracle structure beyond the paper's six
evaluation families.
"""

from __future__ import annotations

import math

import numpy as np

from ...errors import CircuitError
from ..circuit import Circuit
from ..gates import Gate


def grover(num_qubits: int, marked: int | None = None, iterations: int | None = None,
           seed: int = 0) -> Circuit:
    """Grover search over ``num_qubits`` with a phase oracle for ``marked``.

    Defaults to a random marked element and the optimal iteration count
    ``round(pi/4 * sqrt(2^n))`` capped at 8 (simulation workload, not a
    search record).
    """
    if num_qubits < 2:
        raise CircuitError("grover needs at least two qubits")
    rng = np.random.default_rng(seed)
    if marked is None:
        marked = int(rng.integers(1 << num_qubits))
    if iterations is None:
        iterations = min(round(math.pi / 4 * math.sqrt(1 << num_qubits)), 8)
    circuit = Circuit(num_qubits, name=f"grover_n{num_qubits}")
    for q in range(num_qubits):
        circuit.h(q)
    for _ in range(iterations):
        _phase_oracle(circuit, marked)
        _diffuser(circuit)
    return circuit


def _phase_oracle(circuit: Circuit, marked: int) -> None:
    """Flip the phase of |marked> with X-conjugated multi-controlled Z."""
    n = circuit.num_qubits
    zeros = [q for q in range(n) if not (marked >> q) & 1]
    for q in zeros:
        circuit.x(q)
    circuit.append(Gate("z", (n - 1,), (), tuple(range(n - 1))))
    for q in zeros:
        circuit.x(q)


def _diffuser(circuit: Circuit) -> None:
    n = circuit.num_qubits
    for q in range(n):
        circuit.h(q)
        circuit.x(q)
    circuit.append(Gate("z", (n - 1,), (), tuple(range(n - 1))))
    for q in range(n):
        circuit.x(q)
        circuit.h(q)


def deutsch_jozsa(num_qubits: int, balanced: bool = True, seed: int = 0) -> Circuit:
    """Deutsch-Jozsa on ``num_qubits - 1`` input qubits plus one ancilla.

    The oracle is constant (identity) or a random balanced inner-product
    function; measuring the input register gives all-zeros iff constant.
    """
    if num_qubits < 2:
        raise CircuitError("deutsch-jozsa needs an input qubit and an ancilla")
    rng = np.random.default_rng(seed)
    ancilla = num_qubits - 1
    circuit = Circuit(num_qubits, name=f"dj_n{num_qubits}")
    circuit.x(ancilla)
    for q in range(num_qubits):
        circuit.h(q)
    if balanced:
        pattern = int(rng.integers(1, 1 << (num_qubits - 1)))
        for q in range(num_qubits - 1):
            if (pattern >> q) & 1:
                circuit.cx(q, ancilla)
    for q in range(num_qubits - 1):
        circuit.h(q)
    return circuit


def wstate(num_qubits: int, seed: int = 0) -> Circuit:
    """W-state preparation via cascaded controlled rotations."""
    if num_qubits < 2:
        raise CircuitError("wstate needs at least two qubits")
    circuit = Circuit(num_qubits, name=f"wstate_n{num_qubits}")
    circuit.x(num_qubits - 1)
    for k in range(num_qubits - 1, 0, -1):
        theta = 2 * math.acos(math.sqrt(1.0 / (k + 1)))
        # controlled-ry from qubit k to qubit k-1 followed by cx back
        circuit.add("ry", k - 1, (theta,), controls=(k,))
        circuit.cx(k - 1, k)
    return circuit


def qaoa_maxcut(
    num_qubits: int,
    edges: list[tuple[int, int]] | None = None,
    p: int = 2,
    seed: int = 0,
) -> Circuit:
    """QAOA ansatz for MaxCut: p layers of cost (RZZ per edge) + mixer (RX).

    Defaults to a ring graph; angles are seeded-random (as MQT-Bench's
    pre-trained instances are for simulation purposes).
    """
    if num_qubits < 2:
        raise CircuitError("qaoa needs at least two qubits")
    rng = np.random.default_rng(seed)
    if edges is None:
        edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    circuit = Circuit(num_qubits, name=f"qaoa_n{num_qubits}")
    for q in range(num_qubits):
        circuit.h(q)
    for _ in range(p):
        gamma = float(rng.uniform(0, math.pi))
        beta = float(rng.uniform(0, math.pi))
        for a, b in edges:
            circuit.rzz(2 * gamma, a, b)
        for q in range(num_qubits):
            circuit.rx(2 * beta, q)
    return circuit


def qpe(num_qubits: int, phase: float | None = None, seed: int = 0) -> Circuit:
    """Quantum phase estimation of ``p(2*pi*phase)`` with an exact-phase
    default, using ``num_qubits - 1`` counting qubits."""
    if num_qubits < 2:
        raise CircuitError("qpe needs counting qubits and a target")
    counting = num_qubits - 1
    rng = np.random.default_rng(seed)
    if phase is None:
        phase = int(rng.integers(1, 1 << counting)) / (1 << counting)
    target = num_qubits - 1
    circuit = Circuit(num_qubits, name=f"qpe_n{num_qubits}")
    circuit.x(target)
    for q in range(counting):
        circuit.h(q)
    for q in range(counting):
        circuit.cp(2 * math.pi * phase * (1 << q), q, target)
    # inverse QFT on the counting register
    for q in range(counting // 2):
        circuit.swap(q, counting - 1 - q)
    for q in range(counting):
        for k in range(q):
            circuit.cp(-math.pi / (1 << (q - k)), k, q)
        circuit.h(q)
    return circuit
