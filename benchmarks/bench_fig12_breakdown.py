"""Figure 12 — runtime breakdown of the three stages vs batch count."""

from conftest import run_once
from repro.bench.experiments import fig12
from repro.obs import CANONICAL_STAGES


def test_fig12_breakdown(benchmark, scale):
    rows = run_once(benchmark, fig12.run, scale)
    by_circuit = {}
    for r in rows:
        # modeled and wall-clock attributions use the same canonical stages
        assert tuple(r["modeled_breakdown"]) == CANONICAL_STAGES
        assert tuple(r["wall_breakdown"]) == CANONICAL_STAGES
        by_circuit.setdefault((r["family"], r["num_qubits"]), []).append(r)
    for series in by_circuit.values():
        series.sort(key=lambda r: r["num_batches"])
        # one-time fusion/conversion amortize as N grows
        overhead = [r["fusion_pct"] + r["conversion_pct"] for r in series]
        assert all(a >= b for a, b in zip(overhead, overhead[1:]))
