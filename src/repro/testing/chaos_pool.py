"""Process-level chaos for the serving stack: kill and hang real workers.

PR 3's :mod:`repro.resilience.faults` injects *numeric* faults inside one
interpreter; this module injects *process* faults into the
:class:`~repro.service.pool.ProcessWorkerPool` — the failure mode that
actually loses jobs in production: a worker OS process SIGKILLed (OOM
killer, node preemption) or wedged (deadlocked driver) in the middle of a
mega-batch.

A :class:`ChaosSchedule` is a deterministic script keyed on the pool's
**task ids** (1-based dispatch order, which is itself a pure function of
the submission sequence under an injected clock), so a chaos run is
exactly reproducible: the same schedule kills the same worker at the same
point in the same mega-batch every time.  Two action kinds:

* ``sigkill`` — the worker delivers ``SIGKILL`` to itself mid-task
  (*before* or *after* the simulator ran, so both "work lost before
  compute" and "work computed but never reported" are testable);
* ``hang`` — the worker sleeps far past any plausible deadline, modeling
  a wedged process that only a supervisor's kill can clear.

The schedule travels to the worker inside the task payload as a plain
dict (spawn-safe, no imports needed at unpickle time) and is applied by
:func:`apply_chaos_action` from the worker's own process.  The pool's
supervisor then has to do the real work: detect the death, synthesize
crash evidence, respawn the worker, and let the service redeliver or
quarantine the member jobs — the invariants ``tests/test_chaos_pool.py``
locks down.

Example::

    schedule = ChaosSchedule.parse("kill=2,hang=3")
    assert schedule.action_for(2)["kind"] == "sigkill"
    assert schedule.action_for(1) is None
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from ..errors import ServiceError

#: seconds a ``hang`` action sleeps — far beyond any test deadline, so a
#: hung worker can only leave the pool through the supervisor's kill
HANG_SLEEP_S = 3600.0

#: the two task phases an action can fire in: before the simulator runs
#: (inputs received, nothing computed) or after (results computed but
#: never reported — the redelivery must recompute them)
PHASES = ("before_run", "after_run")

KINDS = ("sigkill", "hang")


@dataclass(frozen=True)
class ChaosEvent:
    """One scripted fault: what happens to which pool task, and when.

    ``task_id`` is the pool's 1-based dispatch counter; ``kind`` is
    ``"sigkill"`` or ``"hang"``; ``phase`` selects whether the action
    fires before or after the simulator call.  Example::

        event = ChaosEvent(task_id=2, kind="sigkill", phase="after_run")
        assert event.encode()["kind"] == "sigkill"
    """

    task_id: int
    kind: str
    phase: str = "before_run"

    def __post_init__(self) -> None:
        if self.task_id < 1:
            raise ServiceError("chaos task ids are 1-based (got "
                               f"{self.task_id})")
        if self.kind not in KINDS:
            raise ServiceError(
                f"unknown chaos kind {self.kind!r} (expected one of {KINDS})"
            )
        if self.phase not in PHASES:
            raise ServiceError(
                f"unknown chaos phase {self.phase!r} "
                f"(expected one of {PHASES})"
            )

    def encode(self) -> dict:
        """The picklable payload shipped inside the pool task."""
        return {"kind": self.kind, "phase": self.phase}


class ChaosSchedule:
    """A deterministic script of process faults keyed on pool task ids.

    Build one directly from :class:`ChaosEvent` records or from the CLI
    mini-language understood by :meth:`parse`::

        ChaosSchedule.parse("kill=2,kill@after=4,hang=5")

    kills task 2 before its simulator call, task 4 after it (computed
    results lost in flight), and hangs task 5.  Example::

        schedule = ChaosSchedule([ChaosEvent(1, "sigkill")])
        assert schedule.action_for(1) == {"kind": "sigkill",
                                          "phase": "before_run"}
    """

    def __init__(self, events: list[ChaosEvent] | tuple = ()) -> None:
        self._by_task: dict[int, ChaosEvent] = {}
        for event in events:
            if event.task_id in self._by_task:
                raise ServiceError(
                    f"duplicate chaos event for task {event.task_id}"
                )
            self._by_task[event.task_id] = event

    @classmethod
    def parse(cls, spec: str) -> "ChaosSchedule":
        """Parse the ``repro serve --chaos`` mini-language.

        Comma-separated ``action=task_id`` terms where action is ``kill``
        or ``hang``, optionally suffixed ``@after`` to fire after the
        simulator ran (default: before).
        """
        events = []
        for term in spec.split(","):
            term = term.strip()
            if not term:
                continue
            try:
                action, task_id = term.split("=", 1)
                task_id = int(task_id)
            except ValueError:
                raise ServiceError(
                    f"bad chaos term {term!r} (expected e.g. 'kill=2' "
                    "or 'hang@after=3')"
                ) from None
            phase = "before_run"
            if action.endswith("@after"):
                action, phase = action[: -len("@after")], "after_run"
            kind = {"kill": "sigkill", "hang": "hang"}.get(action)
            if kind is None:
                raise ServiceError(
                    f"unknown chaos action {action!r} in {term!r} "
                    "(expected 'kill' or 'hang')"
                )
            events.append(ChaosEvent(task_id=task_id, kind=kind, phase=phase))
        return cls(events)

    def __len__(self) -> int:
        return len(self._by_task)

    def events(self) -> list[ChaosEvent]:
        """The scripted events in task-id order."""
        return [self._by_task[tid] for tid in sorted(self._by_task)]

    def action_for(self, task_id: int) -> dict | None:
        """The encoded action for one pool task (None = run normally)."""
        event = self._by_task.get(task_id)
        return event.encode() if event is not None else None


def apply_chaos_action(action: dict | None, phase: str) -> None:
    """Execute one encoded chaos action inside a worker process.

    Called by the pool worker at both task phases; a ``sigkill`` action
    never returns (the process dies mid-syscall, exactly like the OOM
    killer), a ``hang`` action sleeps :data:`HANG_SLEEP_S` seconds so
    only the supervisor's deadline kill can clear it.
    """
    if not action or action.get("phase", "before_run") != phase:
        return
    if action["kind"] == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif action["kind"] == "hang":  # pragma: no cover - killed mid-sleep
        time.sleep(HANG_SLEEP_S)
