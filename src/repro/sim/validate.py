"""Cross-validation of simulators against the dense reference.

The paper validates BQSim by "comparing our simulation results with the
baselines, where we observe identical state amplitudes in the output";
:func:`cross_validate` does the same across all four simulators plus the
dense NumPy reference.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..circuit import Circuit, InputBatch, generate_batches
from ..errors import SimulationError
from .base import BatchSimulator, BatchSpec
from .statevector import simulate_batch


def cross_validate(
    circuit: Circuit,
    spec: BatchSpec,
    simulators: Sequence[BatchSimulator],
    batches: Sequence[InputBatch] | None = None,
    atol: float = 1e-8,
) -> dict[str, float]:
    """Run every simulator on the same inputs and compare amplitudes.

    Returns the max absolute deviation from the dense reference per
    simulator; raises :class:`SimulationError` if any exceeds ``atol``.
    This is the paper's "identical state amplitudes" check, applied to
    every simulator on every run of the test suite.  Example::

        deviations = cross_validate(
            make_circuit("qft", 4), BatchSpec(1, 8),
            [BQSimSimulator(), CuQuantumSimulator()],
        )
        assert all(dev < 1e-8 for dev in deviations.values())
    """
    if batches is None:
        batches = list(
            generate_batches(
                circuit.num_qubits, spec.num_batches, spec.batch_size, spec.seed
            )
        )
    references = [simulate_batch(circuit, batch) for batch in batches]
    deviations: dict[str, float] = {}
    for simulator in simulators:
        result = simulator.run(circuit, spec, batches=batches, execute=True)
        if result.outputs is None:
            raise SimulationError(f"{simulator.name} returned no amplitudes")
        worst = 0.0
        for got, ref in zip(result.outputs, references):
            worst = max(worst, float(np.abs(got - ref).max()))
        deviations[result.simulator] = worst
        if worst > atol:
            raise SimulationError(
                f"{result.simulator} deviates from the dense reference by "
                f"{worst:.2e} (> {atol:.0e}) on {circuit.name}"
            )
    return deviations
