"""Tests for the simulator base types (BatchSpec, results, plan cache)."""

import numpy as np
import pytest

from repro.circuit import Circuit, generate_batches, random_batch
from repro.circuit.generators import make_circuit
from repro.errors import SimulationError
from repro.sim import BQSimSimulator, BatchSpec
from repro.sim.base import PlanCache


def test_batch_spec_num_inputs():
    assert BatchSpec(num_batches=200, batch_size=256).num_inputs == 51200


def test_resolve_batches_generates_deterministically():
    circuit = make_circuit("vqe", 6)
    spec = BatchSpec(num_batches=3, batch_size=4, seed=5)
    sim = BQSimSimulator()
    a = sim._resolve_batches(circuit, spec, None, True)
    b = sim._resolve_batches(circuit, spec, None, True)
    for x, y in zip(a, b):
        assert np.array_equal(x.states, y.states)
    assert sim._resolve_batches(circuit, spec, None, False) is None


def test_resolve_batches_validates_width_and_size():
    circuit = make_circuit("vqe", 6)
    spec = BatchSpec(num_batches=1, batch_size=4)
    sim = BQSimSimulator()
    with pytest.raises(SimulationError, match="width"):
        sim._resolve_batches(circuit, spec, [random_batch(5, 4, rng=0)], True)
    with pytest.raises(SimulationError, match="size"):
        sim._resolve_batches(circuit, spec, [random_batch(6, 8, rng=0)], True)


def test_plan_cache_keyed_by_circuit_structure():
    cache = PlanCache()
    calls = []
    a = Circuit(2, name="a").h(0).cx(0, 1)
    first = cache.get(a, lambda: calls.append(1) or "plan-a")
    again = cache.get(a, lambda: calls.append(1) or "plan-a2")
    assert first == again == "plan-a"
    assert calls == [1]
    # a structurally identical circuit shares the plan, even though it is a
    # distinct object with a different display name
    twin = Circuit(2, name="twin").h(0).cx(0, 1)
    assert cache.get(twin, lambda: "plan-twin") == "plan-a"
    # a structurally different circuit gets its own entry
    b = Circuit(2, name="b").x(0)
    assert cache.get(b, lambda: "plan-b") == "plan-b"


def test_plan_cache_detects_in_place_mutation():
    # the old id(circuit) keying returned stale plans after an in-place edit
    # (as repro.sim.incremental performs); structural keying must not
    cache = PlanCache()
    circuit = Circuit(2, name="mut").h(0)
    assert cache.get(circuit, lambda: "before") == "before"
    circuit.add("rz", 0, (0.25,))
    assert cache.get(circuit, lambda: "after") == "after"


def test_plan_cache_extra_settings_partition_entries():
    cache = PlanCache()
    circuit = Circuit(2, name="c").h(0)
    assert cache.get(circuit, lambda: "loose", extra=("tau", 1)) == "loose"
    assert cache.get(circuit, lambda: "tight", extra=("tau", 2)) == "tight"
    assert cache.get(circuit, lambda: "again", extra=("tau", 1)) == "loose"


def test_plan_cache_disk_tier_paths(tmp_path):
    cache = PlanCache(cache_dir=tmp_path / "plans")
    circuit = Circuit(2, name="d").h(0)
    key = cache.key(circuit)
    path = cache.disk_path(key)
    assert path is not None and path.suffix == ".npz"
    assert cache.disk_entries() == []
    path.write_bytes(b"stub")
    assert cache.disk_entries() == [path]
    cache.clear(disk=True)
    assert cache.disk_entries() == []
    # memory-only caches have no disk tier
    assert PlanCache().disk_path(key) is None


def test_result_modeled_time_ms():
    circuit = make_circuit("routing", 6)
    result = BQSimSimulator().run(circuit, BatchSpec(1, 4), execute=False)
    assert result.modeled_time_ms == pytest.approx(result.modeled_time * 1e3)
    assert result.circuit_name == circuit.name
    assert result.num_qubits == 6
    assert result.wall_time > 0
