"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main
from repro.circuit import to_qasm
from repro.circuit.generators import ghz
from repro.transpile import decompose_to_basis


def test_simulate_model_only(capsys):
    rc = main(["simulate", "--family", "vqe", "-n", "6", "--batches", "2",
               "--batch-size", "8"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "vqe_n6" in out and "modeled" in out
    assert "amplitudes" not in out  # model-only by default


def test_simulate_execute(capsys):
    rc = main(["simulate", "--family", "routing", "-n", "6", "--batches", "2",
               "--batch-size", "8", "--execute", "--simulator", "cuquantum"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "cuquantum" in out
    assert "amplitudes: computed" in out


def test_fuse_command(capsys):
    rc = main(["fuse", "--family", "graphstate", "-n", "8"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "#MAC per amplitude" in out and "fused[0]" in out


def test_check_command_equivalent(tmp_path, capsys):
    a = tmp_path / "a.qasm"
    b = tmp_path / "b.qasm"
    a.write_text(to_qasm(ghz(4)))
    b.write_text(to_qasm(decompose_to_basis(ghz(4))))
    rc = main(["check", "--qasm", str(a), "--against", str(b)])
    assert rc == 0
    assert "EQUIVALENT" in capsys.readouterr().out


def test_check_command_rejects(tmp_path, capsys):
    a = tmp_path / "a.qasm"
    b = tmp_path / "b.qasm"
    circuit = ghz(4)
    a.write_text(to_qasm(circuit))
    tampered = decompose_to_basis(circuit)
    tampered.x(0)
    b.write_text(to_qasm(tampered))
    rc = main(["check", "--qasm", str(a), "--against", str(b)])
    assert rc == 1
    assert "NOT equivalent" in capsys.readouterr().out


def test_qasm_input_for_simulate(tmp_path, capsys):
    path = tmp_path / "c.qasm"
    path.write_text(to_qasm(ghz(5)))
    rc = main(["simulate", "--qasm", str(path), "--batches", "1",
               "--batch-size", "4"])
    assert rc == 0
    assert "5 qubits" in capsys.readouterr().out


def test_missing_circuit_spec():
    with pytest.raises(SystemExit):
        main(["fuse"])


def test_simulate_with_faults_and_event_log(tmp_path, capsys):
    events = tmp_path / "resilience.jsonl"
    rc = main(["simulate", "--family", "qft", "-n", "6", "--batches", "3",
               "--batch-size", "4", "--execute",
               "--faults", "seed=7,kernel=0.05,oom=1:1", "--max-splits", "1",
               "--resilience-out", str(events)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "resilience:" in out and "batch split x2" in out
    import json

    lines = [json.loads(line) for line in events.read_text().splitlines()]
    assert any(event["kind"] == "fault" for event in lines)
    assert any(event["kind"] == "batch_split" for event in lines)


def test_resume_flag_is_bqsim_only():
    with pytest.raises(SystemExit, match="only supported"):
        main(["simulate", "--family", "qft", "-n", "6", "--execute",
              "--simulator", "cuquantum", "--resume", "nowhere.npz"])


def test_simulate_stats_json(tmp_path, capsys):
    import json

    stats = tmp_path / "stats.json"
    rc = main(["simulate", "--family", "qft", "-n", "6", "--batches", "2",
               "--batch-size", "4", "--execute", "--stats-json", str(stats)])
    out = capsys.readouterr().out
    assert rc == 0
    assert f"stats     : wrote {stats}" in out
    doc = json.loads(stats.read_text())
    assert doc["circuit"] == "qft_n6"
    assert doc["simulator"] == "bqsim"
    assert doc["executed"] is True
    assert doc["num_output_batches"] == 2
    assert doc["spec"]["num_batches"] == 2
    assert doc["spec"]["batch_size"] == 4
    assert doc["spec"]["num_inputs"] == 8
    assert doc["modeled_time_s"] > 0 and doc["wall_time_s"] > 0
    assert "plan_cache" in doc["stats"] and "resilience" in doc["stats"]
    assert "plan" not in doc["stats"] and "snapshots" not in doc["stats"]


def test_serve_saturation(tmp_path, capsys):
    import json

    metrics = tmp_path / "queue.jsonl"
    stats = tmp_path / "serve.json"
    rc = main(["serve", "--families", "qft,ghz", "-n", "5", "--jobs", "10",
               "--max-depth", "8", "--seed", "3",
               "--queue-metrics", str(metrics), "--stats-json", str(stats)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "mega-batches" in out and "throughput" in out
    doc = json.loads(stats.read_text())
    assert doc["workload"]["jobs_done"] + doc["workload"]["jobs_failed"] \
        + doc["workload"]["jobs_shed"] == 10
    assert doc["megabatches"] >= 1
    assert doc["coalesce_factor_mean"] >= 1
    events = [json.loads(line) for line in metrics.read_text().splitlines()]
    assert events and all(e["event"] == "megabatch" for e in events)
    assert all({"jobs", "columns", "wait_max_s"} <= e.keys() for e in events)


def test_serve_with_injected_fault(capsys):
    rc = main(["serve", "--families", "qft", "-n", "5", "--jobs", "6",
               "--seed", "11", "--faults", "seed=2,oom=1:1",
               "--max-splits", "0"])
    out = capsys.readouterr().out
    assert rc == 0  # degradation absorbs the fault; no job is lost
    assert "degraded group" in out


def test_submit_one_job(capsys):
    rc = main(["submit", "--family", "ghz", "-n", "5", "--inputs", "3"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "submitted : job-" in out
    assert "status    : done" in out
    assert "3 output state(s)" in out


def test_submit_stats_json_matches_simulate_schema(tmp_path, capsys):
    """``submit --stats-json`` is schema-compatible with ``simulate``'s.

    Regression test: the record must carry the same top-level keys and the
    same ``stats.plan_cache`` shape, so one consumer script handles both.
    """
    import json

    sim_stats = tmp_path / "simulate.json"
    job_stats = tmp_path / "submit.json"
    assert main(["simulate", "--family", "ghz", "-n", "5", "--batches", "1",
                 "--batch-size", "3", "--execute",
                 "--stats-json", str(sim_stats)]) == 0
    assert main(["submit", "--family", "ghz", "-n", "5", "--inputs", "3",
                 "--stats-json", str(job_stats)]) == 0
    out = capsys.readouterr().out
    assert f"stats     : wrote {job_stats}" in out

    sim_doc = json.loads(sim_stats.read_text())
    job_doc = json.loads(job_stats.read_text())
    shared = {"simulator", "circuit", "num_qubits", "spec", "modeled_time_s",
              "wall_time_s", "breakdown", "executed", "num_output_batches",
              "stats"}
    assert shared <= sim_doc.keys() and shared <= job_doc.keys()
    assert job_doc["simulator"] == "service"
    assert job_doc["circuit"] == sim_doc["circuit"] == "ghz_n5"
    assert job_doc["spec"]["num_inputs"] == 3

    cache = job_doc["stats"]["plan_cache"]
    assert cache.keys() == sim_doc["stats"]["plan_cache"].keys()
    assert {"hits", "disk_hits", "misses", "quarantined"} <= cache.keys()
    assert cache["misses"] >= 1  # the submitted job compiled its plan

    job = job_doc["stats"]["job"]
    assert job["status"] == "done" and job["job_id"].startswith("job-")

    slo = job_doc["stats"]["slo"]
    assert slo["done"] == 1 and slo["unaccounted_jobs"] == 0
    assert slo["latency_s"]["p50"] <= slo["latency_s"]["p99"]
    assert "queue_age_s" in slo and "priorities" in slo


def test_submit_with_fidelity_budget(capsys):
    rc = main(["submit", "--family", "vqe_finetune", "-n", "5",
               "--inputs", "2", "--fidelity", "0.99"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "status    : done" in out
    assert "fidelity  : budget 0.99, achieved 0." in out


def test_submit_fidelity_achieved_unknown_prints_na(capsys, monkeypatch):
    """Regression: when achieved fidelity never made it back to the job
    (it is None), the CLI prints 'n/a' instead of raising TypeError on
    the ':.6f' format after an otherwise successful job."""
    from repro.service.workers import BatchSimulationService

    monkeypatch.setattr(
        BatchSimulationService, "_note_approx", lambda self, block: None
    )
    rc = main(["submit", "--family", "ghz", "-n", "4", "--inputs", "1",
               "--fidelity", "0.99"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "achieved n/a" in out


def test_submit_process_parallelism(capsys):
    rc = main(["submit", "--family", "ghz", "-n", "5", "--inputs", "3",
               "--workers", "2", "--parallelism", "process"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "status    : done" in out
    assert "3 output state(s)" in out


def test_serve_slo_prom_and_lifecycle_outputs(tmp_path, capsys):
    """``serve`` can scrape its registry to Prometheus text and dump the
    per-job lifecycle log; both artifacts parse and agree on job counts."""
    import json

    from repro.obs import parse_prometheus_text

    prom = tmp_path / "serve.prom"
    lifecycle = tmp_path / "lifecycle.jsonl"
    stats = tmp_path / "serve.json"
    rc = main(["serve", "--families", "ghz", "-n", "5", "--jobs", "6",
               "--seed", "5", "--prom-out", str(prom),
               "--lifecycle-out", str(lifecycle), "--stats-json", str(stats)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "slo       : latency p50" in out
    assert f"prom      : wrote {prom}" in out

    doc = parse_prometheus_text(prom.read_text())
    assert doc["types"]["repro_service_job_latency_s"] == "histogram"
    done = sum(
        v for labels, v in doc["samples"]["repro_service_job_terminal"]
        if labels.get("outcome") == "done"
    )
    slo = json.loads(stats.read_text())["slo"]
    assert done >= slo["done"] >= 1  # registry is global, file is this run
    assert slo["unaccounted_jobs"] == 0

    events = [json.loads(l) for l in lifecycle.read_text().splitlines()]
    submitted = {e["job"] for e in events if e["event"] == "submitted"}
    terminal = {e["job"] for e in events
                if e["event"] in ("done", "failed", "cancelled", "rejected")}
    assert len(submitted) == 6 and submitted == terminal


def test_status_command_renders_slo(tmp_path, capsys):
    stats = tmp_path / "serve.json"
    assert main(["serve", "--families", "qft", "-n", "5", "--jobs", "4",
                 "--seed", "9", "--stats-json", str(stats)]) == 0
    capsys.readouterr()
    rc = main(["status", "--stats", str(stats)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "jobs      :" in out and "4 submitted" in out
    assert "latency ms:" in out and "p50" in out and "p99" in out
    assert "deadlines :" in out and "degraded  :" in out
    assert "priority" in out  # per-priority breakdown rows


def test_status_command_rejects_file_without_slo(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    with pytest.raises(SystemExit, match="no 'slo' block"):
        main(["status", "--stats", str(bad)])


def test_metrics_command_converts_jsonl(tmp_path, capsys):
    """``metrics --in`` turns a ``--metrics-out`` JSONL file into
    Prometheus exposition text without needing the live registry."""
    from repro.obs import parse_prometheus_text

    jsonl = tmp_path / "metrics.jsonl"
    prom = tmp_path / "metrics.prom"
    assert main(["simulate", "--family", "ghz", "-n", "5", "--batches", "1",
                 "--batch-size", "4", "--execute",
                 "--metrics-out", str(jsonl)]) == 0
    capsys.readouterr()
    rc = main(["metrics", "--in", str(jsonl), "--out", str(prom)])
    assert rc == 0
    assert f"prom      : wrote {prom}" in capsys.readouterr().out
    doc = parse_prometheus_text(prom.read_text())
    assert doc["samples"]  # non-empty and well-formed
    with pytest.raises(SystemExit, match="out of range"):
        main(["metrics", "--in", str(jsonl), "--index", "99"])


def test_trace_serve_merged_timeline(tmp_path, capsys):
    import json

    trace = tmp_path / "serve-trace.json"
    rc = main(["trace", "--serve", "--families", "ghz", "-n", "5",
               "--jobs", "4", "--workers", "2", "--seed", "7",
               "--out", str(trace)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "job spans :" in out and "carry job-id attributes" in out
    doc = json.loads(trace.read_text())
    events = doc["traceEvents"]
    names = {e.get("name") for e in events}
    assert "service.megabatch" in names
    job_spans = [e for e in events
                 if e.get("args", {}).get("job_ids")]
    assert job_spans  # correlation attrs survive the chrome-trace export


def test_metrics_pipes_through_stdin_and_stdout(tmp_path, capsys,
                                                monkeypatch):
    """``metrics --in - --out -`` reads JSONL from stdin and writes the
    Prometheus text to stdout, so the command composes in a pipeline."""
    import io

    from repro.obs import parse_prometheus_text

    jsonl = tmp_path / "metrics.jsonl"
    assert main(["simulate", "--family", "ghz", "-n", "5", "--batches", "1",
                 "--batch-size", "4", "--execute",
                 "--metrics-out", str(jsonl)]) == 0
    capsys.readouterr()
    monkeypatch.setattr("sys.stdin", io.StringIO(jsonl.read_text()))
    rc = main(["metrics", "--in", "-", "--out", "-"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "wrote" not in out  # the text itself IS the output
    doc = parse_prometheus_text(out)
    assert doc["samples"]


def test_status_reads_stats_from_stdin(tmp_path, capsys, monkeypatch):
    import io

    stats = tmp_path / "serve.json"
    assert main(["serve", "--families", "qft", "-n", "5", "--jobs", "4",
                 "--seed", "9", "--stats-json", str(stats)]) == 0
    capsys.readouterr()
    monkeypatch.setattr("sys.stdin", io.StringIO(stats.read_text()))
    rc = main(["status", "--stats", "-"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "jobs      :" in out and "4 submitted" in out


def test_status_needs_a_source():
    with pytest.raises(SystemExit, match="--stats PATH"):
        main(["status"])


def test_submit_and_status_over_tcp(capsys):
    """``repro submit --connect`` against a live gateway matches the
    in-process ``repro submit`` output contract, and ``repro status
    --connect`` renders the fleet line."""
    from tests.test_gateway_server import ServerHarness

    harness = ServerHarness(num_shards=2)
    address = f"127.0.0.1:{harness.port}"
    try:
        rc = main(["submit", "--family", "ghz", "-n", "5", "--inputs", "3",
                   "--connect", address, "--tenant", "acme"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "submitted :" in out and "tenant acme" in out
        assert "status    : done" in out and "shard s" in out
        assert "result    : 3 output state(s)" in out
        rc = main(["status", "--connect", address])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fleet     : 2 shard(s)" in out
        assert "1 submitted, 1 done" in out
    finally:
        harness.stop()
