"""The named-kernel registry.

Every numeric hot-path primitive is registered here under a stable name;
calls resolve their engine and feed per-backend counters into the global
metrics registry as ``kernel.<name>.<backend>.calls`` — so a metrics
snapshot (``--metrics-out``, ``stats["metrics"]``) attributes every
gather, apply, and rotation to the array backend that executed it.
"""

from __future__ import annotations

import functools
from typing import Callable

from ..errors import SimulationError
from ..obs import get_metrics
from .engine import ArrayEngine, get_engine

#: kernel name -> wrapped callable taking (engine, *args, **kwargs)
_KERNELS: dict[str, Callable] = {}


def kernel(name: str) -> Callable:
    """Register a kernel under ``name``.

    The wrapped function's first argument is an engine designator (an
    :class:`~repro.kernels.engine.ArrayEngine`, a name, or ``None`` for
    the process default); resolution and call counting happen here so
    every kernel body receives a live engine and every invocation is
    attributed to a backend.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(engine, *args, **kwargs):
            resolved = (
                engine if isinstance(engine, ArrayEngine) else get_engine(engine)
            )
            get_metrics().inc(f"kernel.{name}.{resolved.name}.calls")
            return fn(resolved, *args, **kwargs)

        wrapper.kernel_name = name
        if name in _KERNELS:
            raise SimulationError(f"kernel {name!r} registered twice")
        _KERNELS[name] = wrapper
        return wrapper

    return decorate


def kernel_names() -> tuple[str, ...]:
    """All registered kernel names, sorted."""
    return tuple(sorted(_KERNELS))


def get_kernel(name: str) -> Callable:
    """Look up a registered kernel by name."""
    try:
        return _KERNELS[name]
    except KeyError:
        raise SimulationError(
            f"unknown kernel {name!r}; registered: {kernel_names()}"
        ) from None


def call(name: str, engine, *args, **kwargs):
    """Invoke kernel ``name`` on ``engine`` (dynamic dispatch helper)."""
    return get_kernel(name)(engine, *args, **kwargs)
