"""Tests for the ASCII circuit drawer."""

import pytest

from repro.circuit import Circuit, draw
from repro.circuit.drawing import _layers
from repro.circuit.generators import ghz, qft
from repro.errors import CircuitError


def test_ghz_drawing_structure():
    art = draw(ghz(3))
    lines = art.splitlines()
    wires = [line for line in lines if line.startswith("q")]
    assert len(wires) == 3
    assert wires[0].startswith("q0: ")
    assert "H" in wires[0]
    assert wires[0].count("*") == 1  # control on q0
    assert wires[1].count("X") == 1 and wires[1].count("*") == 1
    assert wires[2].count("X") == 1
    # connector between control and target rows
    assert any("|" in line for line in lines)


def test_layers_respect_order():
    c = Circuit(3)
    c.h(0).cx(0, 1).cx(1, 2)
    layers = _layers(c)
    assert [len(layer) for layer in layers] == [1, 1, 1]
    assert layers[1][0].controls == (0,)
    assert layers[2][0].controls == (1,)


def test_disjoint_gates_share_a_layer():
    c = Circuit(4)
    c.h(0).h(3).cx(1, 2)
    layers = _layers(c)
    assert len(layers) == 1
    assert len(layers[0]) == 3


def test_parameter_labels():
    c = Circuit(1)
    c.rz(0.5, 0)
    assert "RZ(0.5)" in draw(c)


def test_wide_circuit_wraps():
    c = Circuit(2)
    for _ in range(40):
        c.h(0).cx(0, 1)
    art = draw(c, max_width=60)
    assert "........" in art  # block separator
    for line in art.splitlines():
        assert len(line) <= 60


def test_wrap_width_validation():
    c = Circuit(2)
    for _ in range(40):
        c.h(0)
    with pytest.raises(CircuitError, match="max_width"):
        draw(c, max_width=3)


def test_every_wire_same_length():
    art = draw(qft(4))
    wires = [line for line in art.splitlines() if line.startswith("q")]
    assert len({len(w) for w in wires}) == 1
