"""Crash-safety of the supervised process pool under deterministic chaos.

The contract under test is the serving layer's failure model
(docs/operations.md): a worker SIGKILLed or hung mid-mega-batch is
detected, its shared-memory segments released, its slot respawned under
the restart budget, and every affected job ends in **exactly one**
terminal state — redelivered (at-least-once) until it completes,
quarantined when it crash-loops past ``max_deliveries``, or failed with
``TimeoutError`` evidence when it blew its own deadline.  Jobs that
survive chaos must be bit-identical to an undisturbed serial run, and
the lifecycle ledger must balance (``unaccounted() == []``) no matter
what died.

Chaos is injected by :mod:`repro.testing.chaos_pool`: a seeded,
task-id-keyed schedule that SIGKILLs or wedges whichever worker process
picks up the targeted pool task.
"""

import numpy as np
import pytest

from repro.circuit.generators import make_circuit
from repro.circuit.inputs import random_batch
from repro.errors import (
    AdmissionError,
    JobNotCancellable,
    ServiceError,
)
from repro.service import (
    BatchSimulationService,
    JobQueue,
    JobStatus,
    ProcessWorkerPool,
    make_job,
)
from repro.sim.base import BatchSpec
from repro.testing import ChaosEvent, ChaosSchedule


# ---------------------------------------------------------------------------
# the schedule mini-language (pure: no processes involved)
# ---------------------------------------------------------------------------

def test_schedule_parse_mini_language():
    schedule = ChaosSchedule.parse("kill=2,hang@after=5,kill@after=7")
    assert len(schedule) == 3
    assert schedule.action_for(2) == {"kind": "sigkill", "phase": "before_run"}
    assert schedule.action_for(5) == {"kind": "hang", "phase": "after_run"}
    assert schedule.action_for(7) == {"kind": "sigkill", "phase": "after_run"}
    assert schedule.action_for(1) is None  # untargeted tasks run clean


def test_schedule_parse_rejects_bad_specs():
    for spec in ("kill", "kill=0", "kill=x", "explode=3", "kill@sometime=3",
                 "kill=2,hang=2"):  # duplicate task id
        with pytest.raises(ServiceError):
            ChaosSchedule.parse(spec)


def test_chaos_event_validation():
    event = ChaosEvent(task_id=3, kind="hang")
    assert event.phase == "before_run"
    assert event.encode() == {"kind": "hang", "phase": "before_run"}
    with pytest.raises(ServiceError):
        ChaosEvent(task_id=0, kind="sigkill")
    with pytest.raises(ServiceError):
        ChaosEvent(task_id=1, kind="segfault")
    with pytest.raises(ServiceError):
        ChaosEvent(task_id=1, kind="sigkill", phase="during")


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _one_group_pairs(num_jobs=3, num_qubits=4, seed=0):
    """Jobs sharing one plan fingerprint: they coalesce into one task."""
    circuit = make_circuit("ghz", num_qubits, seed=seed)
    return [
        (circuit, random_batch(num_qubits, 2, seed + i))
        for i in range(num_jobs)
    ]


def _run(pairs, **service_kwargs):
    service = BatchSimulationService(**service_kwargs)
    try:
        jobs = [service.submit(c, b) for c, b in pairs]
        service.drain()
    finally:
        service.close()
    return jobs, service


def _assert_ledger_balances(service, jobs):
    """Every submitted job reached exactly one terminal lifecycle event."""
    assert service.lifecycle.unaccounted() == []
    for job in jobs:
        terminal = [
            e for e in service.lifecycle.events(job.job_id)
            if e["event"] in ("done", "failed", "cancelled", "quarantined")
        ]
        assert len(terminal) == 1, (job.job_id, terminal)
        assert terminal[0]["event"] == job.status.value


# ---------------------------------------------------------------------------
# SIGKILL: redelivery, bit-identical survivors, leak-free shm
# ---------------------------------------------------------------------------

def test_sigkill_redelivers_and_survivors_match_serial():
    pairs = _one_group_pairs()
    reference, _ = _run(pairs, num_workers=1)  # undisturbed serial run
    jobs, service = _run(
        pairs,
        num_workers=2,
        parallelism="process",
        chaos=ChaosSchedule.parse("kill=1"),
        shm_threshold=1,  # force shm so the leak audit has segments to audit
    )
    assert all(job.status is JobStatus.DONE for job in jobs)
    # the whole cohort rode the killed task: delivered twice, evidenced once
    for job, ref in zip(jobs, reference):
        assert job.delivery_count == 2
        assert len(job.evidence) == 1
        assert job.evidence[0]["kind"] == "worker_crash"
        assert np.array_equal(job.result, ref.result)  # bit-identical
    stats = service.stats()
    assert stats["pool"]["crashes"] == 1
    assert stats["pool"]["timeouts"] == 0
    assert stats["pool"]["restarts"] == 1
    assert stats["pool"]["restarts"] <= stats["pool"]["max_restarts"]
    assert stats["pool"]["leaked_segments"] == 0
    assert stats["requeued"] == len(pairs)
    assert stats["slo"]["requeued"] == len(pairs)
    _assert_ledger_balances(service, jobs)


def test_after_run_kill_loses_computed_but_unreported_work():
    """``@after`` chaos kills the worker *after* the simulator ran but
    before the result was reported — the work must be redone, and the
    redone answer must still be bit-identical."""
    pairs = _one_group_pairs(seed=2)
    reference, _ = _run(pairs, num_workers=1)
    jobs, service = _run(
        pairs,
        num_workers=1,
        parallelism="process",
        chaos=ChaosSchedule.parse("kill@after=1"),
    )
    assert all(job.status is JobStatus.DONE for job in jobs)
    for job, ref in zip(jobs, reference):
        assert job.delivery_count == 2
        assert np.array_equal(job.result, ref.result)
    assert service.stats()["pool"]["crashes"] == 1
    _assert_ledger_balances(service, jobs)


# ---------------------------------------------------------------------------
# hang + deadline: the job fails with timeout evidence
# ---------------------------------------------------------------------------

def test_hung_worker_killed_at_deadline_with_timeout_evidence():
    pairs = _one_group_pairs(num_jobs=2, seed=4)
    jobs, service = _run(
        pairs,
        num_workers=1,
        parallelism="process",
        chaos=ChaosSchedule.parse("hang=1"),
        default_timeout_s=1.5,
    )
    for job in jobs:
        assert job.status is JobStatus.FAILED
        assert "TimeoutError" in job.error
        assert job.evidence[-1]["kind"] == "timeout"
    stats = service.stats()
    assert stats["pool"]["timeouts"] == 1
    assert stats["pool"]["restarts"] == 1
    assert stats["pool"]["leaked_segments"] == 0
    _assert_ledger_balances(service, jobs)


# ---------------------------------------------------------------------------
# crash loop: quarantine with evidence, in its own SLO bucket
# ---------------------------------------------------------------------------

def test_crash_loop_quarantines_with_full_evidence():
    pairs = _one_group_pairs(num_jobs=1, seed=6)
    jobs, service = _run(
        pairs,
        num_workers=1,
        parallelism="process",
        chaos=ChaosSchedule.parse("kill=1,kill=2"),
        max_deliveries=2,
    )
    (job,) = jobs
    assert job.status is JobStatus.QUARANTINED
    assert job.delivery_count == 2
    assert len(job.evidence) == 2  # one record per failed delivery
    assert "quarantined after 2 failed deliveries" in job.error
    slo = service.stats()["slo"]
    assert slo["quarantined"] == 1
    assert slo["done"] == 0
    # the dedicated failure bucket: no latency observation, so one
    # crash-looping job cannot skew the fleet's percentiles
    assert slo["latency_s"]["count"] == 0
    _assert_ledger_balances(service, jobs)


def test_quarantine_lands_in_dedicated_bucket_beside_healthy_jobs():
    """A poison job and healthy traffic: percentiles reflect only the
    healthy jobs; the quarantined one is counted, not averaged in."""
    circuit_a = make_circuit("ghz", 4)
    circuit_b = make_circuit("qft", 4)
    service = BatchSimulationService(
        num_workers=2,
        parallelism="process",
        chaos=ChaosSchedule.parse("kill=1,kill=3"),
        max_deliveries=2,
    )
    try:
        poison = service.submit(circuit_a, random_batch(4, 2, 0))
        healthy = [
            service.submit(circuit_b, random_batch(4, 2, i)) for i in (1, 2)
        ]
        service.drain()
    finally:
        service.close()
    assert poison.status is JobStatus.QUARANTINED
    assert all(job.status is JobStatus.DONE for job in healthy)
    slo = service.stats()["slo"]
    assert slo["quarantined"] == 1 and slo["done"] == len(healthy)
    assert slo["latency_s"]["count"] == len(healthy)
    _assert_ledger_balances(service, [poison, *healthy])


# ---------------------------------------------------------------------------
# restart budget exhaustion: fail fast, never hang
# ---------------------------------------------------------------------------

def test_exhausted_restart_budget_fails_queued_jobs():
    pairs = _one_group_pairs(num_jobs=2, seed=8)
    jobs, service = _run(
        pairs,
        num_workers=1,
        parallelism="process",
        chaos=ChaosSchedule.parse("kill=1"),
        max_restarts=0,  # the one slot dies and cannot come back
    )
    for job in jobs:
        assert job.status is JobStatus.FAILED
        assert "no live pool workers" in job.error
    stats = service.stats()
    assert stats["pool"]["lost_workers"] == [0]
    assert stats["pool"]["alive"] == 0
    assert stats["pool"]["restarts"] == 0
    _assert_ledger_balances(service, jobs)


# ---------------------------------------------------------------------------
# drain, admission gate, close idempotence
# ---------------------------------------------------------------------------

def test_drain_finishes_inflight_then_gates_admission():
    pairs = _one_group_pairs(seed=10)
    service = BatchSimulationService(num_workers=2, parallelism="process")
    try:
        jobs = [service.submit(c, b) for c, b in pairs]
        service.close(drain=True)
        assert all(job.status is JobStatus.DONE for job in jobs)
        with pytest.raises(AdmissionError, match="draining|closed"):
            service.submit(pairs[0][0], pairs[0][1])
        service.close()  # idempotent no-op after drain-close
        _assert_ledger_balances(service, jobs)
    finally:
        service.close()


def test_close_without_drain_cancels_queued_jobs():
    pairs = _one_group_pairs(num_jobs=2, seed=12)
    service = BatchSimulationService(num_workers=1)
    jobs = [service.submit(c, b) for c, b in pairs]
    service.close()
    assert all(job.status is JobStatus.CANCELLED for job in jobs)
    _assert_ledger_balances(service, jobs)


# ---------------------------------------------------------------------------
# cancellation paths and the typed JobNotCancellable
# ---------------------------------------------------------------------------

def test_service_cancel_queued_and_terminal_jobs():
    pairs = _one_group_pairs(num_jobs=2, seed=14)
    service = BatchSimulationService(num_workers=1)
    try:
        queued = service.submit(*pairs[0])
        cancelled = service.cancel(queued.job_id)
        assert cancelled.status is JobStatus.CANCELLED
        done = service.submit(*pairs[1])
        service.drain()
        assert done.status is JobStatus.DONE
        # terminal jobs are "unknown or done", not "in flight"
        with pytest.raises(ServiceError, match="unknown or done"):
            service.cancel(done.job_id)
        with pytest.raises(ServiceError):
            service.cancel("job-99-nope")
    finally:
        service.close()


def test_queue_cancel_inflight_raises_typed_error():
    queue = JobQueue(max_depth=4)
    job = make_job(0, make_circuit("ghz", 3), random_batch(3, 2, 0))
    queue.admit(job)
    queue.take([job])
    with pytest.raises(JobNotCancellable) as excinfo:
        queue.cancel(job.job_id)
    assert excinfo.value.job_id == job.job_id
    assert "in flight" in str(excinfo.value)
    # settle() marks it terminal: now it reads as done, not in flight
    queue.settle([job.job_id])
    with pytest.raises(ServiceError, match="unknown or done"):
        queue.cancel(job.job_id)


# ---------------------------------------------------------------------------
# the ledger itself: unaccounted() under crash/requeue cycles
# ---------------------------------------------------------------------------

def test_unaccounted_balances_through_requeue_cycles():
    from repro.obs.lifecycle import JobLifecycleLog

    log = JobLifecycleLog()
    log.emit("submitted", "job-0-aaa")
    log.emit("executing", "job-0-aaa", worker=0)
    log.emit("requeued", "job-0-aaa", delivery=2)  # crash #1
    log.emit("executing", "job-0-aaa", worker=1)
    log.emit("requeued", "job-0-aaa", delivery=3)  # crash #2
    assert log.unaccounted() == ["job-0-aaa"]  # still in flight
    log.emit("done", "job-0-aaa")
    assert log.unaccounted() == []  # one terminal event settles it
    log.emit("submitted", "job-1-bbb")
    log.emit("quarantined", "job-1-bbb")
    assert log.unaccounted() == []  # quarantine is terminal too


# ---------------------------------------------------------------------------
# direct pool API: supervision details
# ---------------------------------------------------------------------------

def test_poll_timeout_names_pending_tasks_and_worker_liveness():
    circuit = make_circuit("ghz", 4)
    batch = random_batch(4, 2, 0)
    spec = BatchSpec(num_batches=1, batch_size=2, seed=0)
    pool = ProcessWorkerPool(
        num_workers=1, chaos=ChaosSchedule.parse("hang=1")
    )
    try:
        task_id, wid = pool.submit(circuit, spec, batch.states, 2, [2])
        with pytest.raises(ServiceError) as excinfo:
            pool.poll(block=True, timeout=1.0)
        message = str(excinfo.value)
        assert f"task {task_id}" in message
        assert f"worker {wid}" in message
        assert "w0=alive" in message  # hung, not dead: still a live process
    finally:
        pool.close()
    assert pool.leaked_segments() == []


def test_pool_close_is_idempotent_even_with_dead_workers():
    pool = ProcessWorkerPool(
        num_workers=1, chaos=ChaosSchedule.parse("kill=1"), max_restarts=0
    )
    circuit = make_circuit("ghz", 3)
    batch = random_batch(3, 2, 0)
    spec = BatchSpec(num_batches=1, batch_size=2, seed=0)
    pool.submit(circuit, spec, batch.states, 2, [2])
    (result,) = pool.poll(block=True)
    assert result["crash"]["kind"] == "worker_crash"
    assert pool.alive_workers == 0 and pool.lost_workers == [0]
    pool.close()
    pool.close()  # second close is a no-op, not an error
    assert pool.leaked_segments() == []
