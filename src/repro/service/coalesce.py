"""BQCS request coalescing: many jobs, one simulator run.

The paper's speedup comes from pushing *batches* of inputs through one
compiled circuit (amortizing fusion, conversion, and launch overhead);
the coalescer moves that opportunity up a layer, to independently
submitted jobs.  Queued jobs whose circuits compile to the same plan are
concatenated column-wise into one **mega-batch**, executed by a single
:meth:`BQSimSimulator.run` call, and scattered back to per-job results.

A mega-batch is partitioned by the job **group key** — the
:func:`~repro.ell.persist.plan_fingerprint` over *all* of:

* the circuit structure (gates, parameters, qubit count);
* the simulator's compilation settings (fusion algorithm, cost cap,
  sparsity threshold, ELL on/off — the ``_cache_extra()`` tuple);
* the per-job coalescing ``options``;
* the **fidelity class**: a job's requested fidelity budget joins the
  fingerprint whenever it is below 1.0, so exact jobs never share a
  mega-batch (or a compiled plan) with approximate jobs, and two
  different budgets never share either;
* in a gateway fleet, the **shard**: routing assigns each group key to
  one home shard, so a group never spans services.

Two jobs coalesce iff every one of these attributes matches.

Correctness invariant (tested property-style): every ELL spMM backend
computes each output column from its input column alone, so coalescing,
padding, and batch slicing are all *bit-identical* to running each job
solo.  The coalescer may therefore merge aggressively; the only limits
are the device memory budget (four rotating state buffers must fit, the
same bound stage 3 enforces) and a configurable column cap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuit import InputBatch
from ..errors import ServiceError
from ..gpu.spec import GpuSpec, state_block_bytes
from ..obs import get_metrics
from ..obs.lifecycle import JobLifecycleLog, get_lifecycle_log
from ..sim.base import BatchSpec
from ..sim.bqsim import NUM_BUFFERS
from .jobs import Job, JobStatus

#: hard cap on mega-batch columns, independent of device memory — keeps a
#: single run's numpy working set (and scatter latency) bounded
DEFAULT_MAX_COLUMNS = 4096


def column_budget(
    gpu: GpuSpec, num_qubits: int, cap: int = DEFAULT_MAX_COLUMNS
) -> int:
    """Widest state block stage 3 can rotate for ``num_qubits`` qubits.

    Mirrors the simulator's own guard: ``NUM_BUFFERS`` buffers of the
    block must fit device memory.  At least one column is always allowed;
    a single over-wide *job* is then the simulator's (splitting/OOM)
    problem, not the coalescer's.  Example::

        budget = column_budget(GpuSpec(), num_qubits=10)
        assert budget >= 1
    """
    per_column = NUM_BUFFERS * state_block_bytes(num_qubits, 1)
    return max(1, min(cap, int(gpu.memory_bytes // per_column)))


@dataclass(frozen=True)
class CoalescedGroup:
    """An ordered cohort of compatible jobs bound for one simulator run.

    Every member shares one plan fingerprint, so the group executes as a
    single mega-batch; :meth:`offsets` records each job's column span so
    results scatter back bit-identically.  Example::

        group = CoalescedGroup(key, jobs=(job_a, job_b))
        assert group.coalesce_factor == 2
        (job_a, 0, a_cols), (job_b, _, _) = group.offsets()
    """

    key: str
    jobs: tuple[Job, ...]

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ServiceError("a coalesced group needs at least one job")

    @property
    def circuit(self):
        """The structural representative (all members fingerprint equally)."""
        return self.jobs[0].circuit

    @property
    def num_qubits(self) -> int:
        return self.jobs[0].num_qubits

    @property
    def total_columns(self) -> int:
        return sum(job.num_inputs for job in self.jobs)

    @property
    def coalesce_factor(self) -> int:
        """Jobs sharing this run — the quantity the service exists to raise."""
        return len(self.jobs)

    def offsets(self) -> list[tuple[Job, int, int]]:
        """Per-job ``(job, start, stop)`` column spans in the mega-batch."""
        spans, cursor = [], 0
        for job in self.jobs:
            spans.append((job, cursor, cursor + job.num_inputs))
            cursor += job.num_inputs
        return spans


class Coalescer:
    """Groups compatible queued jobs and packs/unpacks mega-batches.

    :meth:`build_group` collects ranked jobs matching the head-of-line
    job's plan fingerprint (up to the device-memory column budget and
    ``max_jobs_per_batch``); :meth:`mega_batches` packs their inputs
    into uniform-width :class:`~repro.circuit.InputBatch` slices,
    padding the tail with norm-1 copies of the first column;
    :meth:`scatter` undoes the packing exactly.  Example::

        coalescer = Coalescer(GpuSpec())
        group = coalescer.build_group(head_job, ranked_jobs)
        spec, batches, pad = coalescer.mega_batches(group)
    """

    def __init__(
        self,
        gpu: GpuSpec,
        max_columns: int = DEFAULT_MAX_COLUMNS,
        max_jobs: int | None = None,
        lifecycle: JobLifecycleLog | None = None,
    ) -> None:
        if max_columns < 1:
            raise ServiceError("max_columns must be >= 1")
        self.gpu = gpu
        self.max_columns = max_columns
        #: optional cap on jobs per group (None = column budget decides)
        self.max_jobs = max_jobs
        # explicit None test: an empty log is falsy (it defines __len__)
        self.lifecycle = (
            lifecycle if lifecycle is not None else get_lifecycle_log()
        )

    # -- grouping ------------------------------------------------------------

    def build_group(self, head: Job, ranked: list[Job]) -> CoalescedGroup:
        """Coalesce ``head`` with every compatible job in ``ranked`` order.

        Compatibility is exactly "same group key", stamped at admission.
        The key is the plan fingerprint over circuit structure,
        compilation settings, per-job options, and — when below 1.0 —
        the fidelity budget (see the module docstring for the full
        attribute list; ``tests/test_approx.py`` regression-tests that
        this documented list matches
        :meth:`~repro.service.workers.BatchSimulationService.group_key_for`).
        The group grows until the column budget for its qubit count — or
        ``max_jobs`` — is exhausted.  Members are marked COALESCED.
        """
        budget = column_budget(self.gpu, head.num_qubits, self.max_columns)
        members = [head]
        columns = head.num_inputs
        for job in ranked:
            if job is head or job.group_key != head.group_key:
                continue
            if columns + job.num_inputs > budget:
                continue
            if self.max_jobs is not None and len(members) >= self.max_jobs:
                break
            members.append(job)
            columns += job.num_inputs
        for job in members:
            job.transition(JobStatus.COALESCED)
        group = CoalescedGroup(key=head.group_key, jobs=tuple(members))
        metrics = get_metrics()
        metrics.observe("service.coalesce_factor", group.coalesce_factor)
        metrics.observe("service.megabatch_columns", group.total_columns)
        for job in group.jobs:
            self.lifecycle.emit(
                "coalesced", job.job_id,
                priority=job.priority,
                group_key=group.key[:12],
                coalesce_factor=group.coalesce_factor,
                columns=group.total_columns,
            )
        return group

    # -- packing -------------------------------------------------------------

    def mega_block(
        self, group: CoalescedGroup
    ) -> tuple[BatchSpec, np.ndarray, int]:
        """Pack a group into one contiguous padded column block.

        Returns ``(spec, mega, pad)``: the concatenated columns of every
        member as a single ``(2**n, spec.num_inputs)`` array, padded with
        ``pad`` copies of the first column so it splits into
        ``spec.num_batches`` equal batches no wider than the column
        budget.  Padding is norm-1 (the health guard stays quiet) and
        provably inert — spMM columns are independent — and dropped at
        scatter.  This is also the exact block the process worker pool
        ships through shared memory.
        """
        budget = column_budget(self.gpu, group.num_qubits, self.max_columns)
        mega = np.hstack([job.batch.states for job in group.jobs])
        total = mega.shape[1]
        width = min(total, budget)
        num_batches = -(-total // width)  # ceil
        pad = num_batches * width - total
        if pad:
            mega = np.hstack([mega, np.repeat(mega[:, :1], pad, axis=1)])
        occupancy = total / (num_batches * width)
        get_metrics().observe("service.batch_occupancy", occupancy)
        spec = BatchSpec(num_batches=num_batches, batch_size=width, seed=0)
        return spec, mega, pad

    def mega_batches(
        self, group: CoalescedGroup
    ) -> tuple[BatchSpec, list[InputBatch], int]:
        """Pack a group into uniform device batches.

        :meth:`mega_block` sliced into per-batch views — the layout
        :meth:`BQSimSimulator.run` consumes directly.
        """
        spec, mega, pad = self.mega_block(group)
        width = spec.batch_size
        batches = [
            InputBatch(mega[:, i * width : (i + 1) * width])
            for i in range(spec.num_batches)
        ]
        return spec, batches, pad

    # -- unpacking -----------------------------------------------------------

    @staticmethod
    def scatter(
        group: CoalescedGroup, outputs: list[np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Slice a run's output batches back into per-job result blocks.

        Inverse of :meth:`mega_batches`: concatenate, drop padding, split
        at the group's column offsets.  Bit-identical to what each job
        would have produced alone.
        """
        merged = outputs[0] if len(outputs) == 1 else np.hstack(outputs)
        if merged.shape[1] < group.total_columns:
            raise ServiceError(
                f"scatter expected >= {group.total_columns} output columns, "
                f"got {merged.shape[1]}"
            )
        return {
            job.job_id: merged[:, start:stop]
            for job, start, stop in group.offsets()
        }
