"""Plain-text table rendering and small statistics helpers for the harness."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's average for exponentially spread data)."""
    values = [v for v in values if v > 0 and math.isfinite(v)]
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def fmt_ms(seconds: float) -> str:
    """Format seconds as whole milliseconds; non-finite values become '-'."""
    if not math.isfinite(seconds):
        return "-"
    return f"{seconds * 1e3:.0f}"


def fmt_speedup(value: float) -> str:
    """Format a ratio as 'N.NNx'; non-finite values become '-'."""
    if not math.isfinite(value):
        return "-"
    return f"{value:.2f}x"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width table with a header rule."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print a titled fixed-width table to stdout."""
    print(f"\n== {title} ==")
    print(render_table(headers, rows))
