"""Tests for compiled-plan persistence and the PlanCache disk tier.

Covers the v2 :class:`~repro.ell.persist.CompiledPlan` round-trip and the
end-to-end behavior the ISSUE demands: a warm (disk-cached) ``BQSimSimulator``
run skips fusion and conversion entirely and reproduces the cold run's
numerics and modeled breakdown bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.sim.bqsim as bqsim_mod
from repro.circuit import Circuit, generate_batches
from repro.circuit.generators import make_circuit
from repro.ell import (
    ELLMatrix,
    CompiledPlan,
    load_compiled_plan,
    plan_fingerprint,
    save_compiled_plan,
)
from repro.errors import ConversionError
from repro.sim import BQSimSimulator, BatchSpec


@pytest.fixture
def circuit() -> Circuit:
    return make_circuit("vqe", 4)


@pytest.fixture
def spec() -> BatchSpec:
    return BatchSpec(num_batches=2, batch_size=4, seed=3)


def sample_plan(with_matrices: bool, rng) -> CompiledPlan:
    matrices = None
    if with_matrices:
        matrices = tuple(
            ELLMatrix(
                2,
                rng.standard_normal((4, w)) + 1j * rng.standard_normal((4, w)),
                rng.integers(0, 4, size=(4, w), dtype=np.int64),
            )
            for w in (1, 2)
        )
    return CompiledPlan(
        fingerprint="abc123",
        circuit_name="sample",
        num_qubits=2,
        algorithm="bqcs",
        source_gate_count=5,
        fused_nodes=17,
        gate_costs=(1, 2),
        gate_indices=((0, 1, 2), (3, 4)),
        gate_nnz=(4.0, 10.0),
        conv_infos=(
            {"route": "cpu", "edges": 3, "width": 1, "time": 1.5e-6},
            {"route": "gpu", "edges": 9, "width": 2, "time": 2.5e-6},
        ),
        matrices=matrices,
    )


@pytest.mark.parametrize("with_matrices", [False, True])
def test_compiled_plan_roundtrip(tmp_path, rng, with_matrices):
    plan = sample_plan(with_matrices, rng)
    path = save_compiled_plan(plan, tmp_path / "plan.npz")
    loaded = load_compiled_plan(path)
    assert loaded.fingerprint == plan.fingerprint
    assert loaded.circuit_name == plan.circuit_name
    assert loaded.num_qubits == plan.num_qubits
    assert loaded.algorithm == plan.algorithm
    assert loaded.source_gate_count == plan.source_gate_count
    assert loaded.fused_nodes == plan.fused_nodes
    assert loaded.gate_costs == plan.gate_costs
    assert loaded.gate_indices == plan.gate_indices
    assert loaded.gate_nnz == plan.gate_nnz
    assert loaded.conv_infos == plan.conv_infos
    assert loaded.has_matrices == with_matrices
    if with_matrices:
        for got, want in zip(loaded.matrices, plan.matrices):
            assert np.array_equal(got.values, want.values)
            assert np.array_equal(got.cols, want.cols)
    fusion_plan = loaded.to_fusion_plan()
    assert len(fusion_plan) == 2
    assert fusion_plan.total_cost == 3
    assert all(g.dd is None for g in fusion_plan.gates)
    assert [g.gate_indices for g in fusion_plan.gates] == [(0, 1, 2), (3, 4)]


def test_compiled_plan_version_check(tmp_path):
    path = tmp_path / "old.npz"
    np.savez_compressed(path, format_version=np.array(99))
    with pytest.raises(ConversionError, match="format 99"):
        load_compiled_plan(path)


def test_warm_run_matches_cold_run(tmp_path, circuit, spec):
    cache = tmp_path / "plans"
    cold_sim = BQSimSimulator(cache_dir=cache)
    cold = cold_sim.run(circuit, spec)
    assert cold.stats["plan_source"] == "built"
    assert len(cold_sim._plans.disk_entries()) == 1

    # a *fresh* simulator (fresh process stand-in) must hit the disk tier
    warm_sim = BQSimSimulator(cache_dir=cache)
    warm = warm_sim.run(circuit, spec)
    assert warm.stats["plan_source"] == "disk"
    assert warm.stats["plan_key"] == cold.stats["plan_key"]
    for a, b in zip(cold.outputs, warm.outputs):
        assert np.array_equal(a, b)
    assert warm.breakdown == cold.breakdown
    assert warm.modeled_time == cold.modeled_time


def test_warm_run_skips_fusion_entirely(tmp_path, circuit, spec, monkeypatch):
    cache = tmp_path / "plans"
    BQSimSimulator(cache_dir=cache).run(circuit, spec)

    def boom(*args, **kwargs):
        raise AssertionError("stage 1 (fusion) ran on a warm start")

    monkeypatch.setattr(bqsim_mod, "bqcs_fusion", boom)
    warm = BQSimSimulator(cache_dir=cache).run(circuit, spec)
    assert warm.stats["plan_source"] == "disk"
    assert warm.outputs is not None


def test_plan_source_memory_on_repeat_run(tmp_path, circuit, spec):
    sim = BQSimSimulator(cache_dir=tmp_path / "plans")
    assert sim.run(circuit, spec).stats["plan_source"] == "built"
    assert sim.run(circuit, spec).stats["plan_source"] == "memory"


def test_model_only_archive_rebuilt_for_execution(tmp_path, circuit, spec):
    cache = tmp_path / "plans"
    model_only = BQSimSimulator(cache_dir=cache)
    result = model_only.run(circuit, spec, execute=False)
    assert result.stats["plan_source"] == "built"
    assert result.outputs is None

    # the archive has no matrices, so numeric execution must rebuild ...
    numeric = BQSimSimulator(cache_dir=cache).run(circuit, spec)
    assert numeric.stats["plan_source"] == "built"
    assert numeric.outputs is not None

    # ... which upgrades the archive: the next fresh simulator hits disk
    upgraded = BQSimSimulator(cache_dir=cache).run(circuit, spec)
    assert upgraded.stats["plan_source"] == "disk"
    for a, b in zip(numeric.outputs, upgraded.outputs):
        assert np.array_equal(a, b)


def test_model_only_warm_start_uses_metadata_archive(tmp_path, circuit, spec):
    cache = tmp_path / "plans"
    BQSimSimulator(cache_dir=cache).run(circuit, spec, execute=False)
    warm = BQSimSimulator(cache_dir=cache).run(circuit, spec, execute=False)
    assert warm.stats["plan_source"] == "disk"
    assert warm.modeled_time > 0


def test_corrupt_archive_is_quarantined_and_rebuilt(tmp_path, circuit, spec):
    cache = tmp_path / "plans"
    sim = BQSimSimulator(cache_dir=cache)
    sim.run(circuit, spec)
    [archive] = sim._plans.disk_entries()
    archive.write_bytes(b"not an npz archive")
    fresh_sim = BQSimSimulator(cache_dir=cache)
    with pytest.warns(UserWarning, match="quarantined corrupt plan archive"):
        fresh = fresh_sim.run(circuit, spec)
    assert fresh.stats["plan_source"] == "built"
    assert fresh.outputs is not None
    assert fresh.stats["plan_cache"]["quarantined"] == 1
    # the bad bytes are preserved out of the lookup path, not deleted
    quarantined = cache / "corrupt" / archive.name
    assert quarantined.read_bytes() == b"not an npz archive"
    # the rebuild rewrote a good archive under the original name
    assert archive in fresh_sim._plans.disk_entries()


def test_cache_settings_partition_disk_entries(tmp_path, circuit, spec):
    cache = tmp_path / "plans"
    BQSimSimulator(cache_dir=cache).run(circuit, spec)
    # different fusion settings must not alias the cached plan
    nofuse = BQSimSimulator(cache_dir=cache, fusion=False)
    result = nofuse.run(circuit, spec)
    assert result.stats["plan_source"] == "built"
    assert len(nofuse._plans.disk_entries()) == 2


def test_cache_dir_from_environment(tmp_path, circuit, spec, monkeypatch):
    monkeypatch.setenv("REPRO_PLAN_CACHE", str(tmp_path / "envcache"))
    sim = BQSimSimulator()
    sim.run(circuit, spec)
    assert len(sim._plans.disk_entries()) == 1
    warm = BQSimSimulator().run(circuit, spec)
    assert warm.stats["plan_source"] == "disk"


def test_disk_cache_matches_in_memory_numerics(tmp_path, circuit, spec):
    batches = list(
        generate_batches(circuit.num_qubits, spec.num_batches, spec.batch_size, 7)
    )
    plain = BQSimSimulator().run(circuit, spec, batches=batches)
    cache = tmp_path / "plans"
    BQSimSimulator(cache_dir=cache).run(circuit, spec, batches=batches)
    warm = BQSimSimulator(cache_dir=cache).run(circuit, spec, batches=batches)
    assert warm.stats["plan_source"] == "disk"
    for a, b in zip(plain.outputs, warm.outputs):
        assert np.array_equal(a, b)


# ---------------------------------------------------------------------------
# plan_fingerprint: the public, canonical plan-identity helper
# ---------------------------------------------------------------------------

class TestPlanFingerprint:
    def test_stable_across_calls_and_rebuilds(self):
        a = make_circuit("qft", 5)
        b = make_circuit("qft", 5)
        assert plan_fingerprint(a) == plan_fingerprint(b)
        assert plan_fingerprint(a) == plan_fingerprint(a)

    def test_shape_is_48_hex(self):
        digest = plan_fingerprint(make_circuit("ghz", 4))
        assert len(digest) == 48
        assert all(c in "0123456789abcdef" for c in digest)

    def test_extra_appends_salt_suffix(self):
        circuit = make_circuit("ghz", 4)
        bare = plan_fingerprint(circuit)
        salted = plan_fingerprint(circuit, ("bqsim-v1", True))
        prefix, _, salt = salted.partition("-")
        assert prefix == bare
        assert len(salt) == 16
        assert salted != bare

    def test_extra_partitions_identity(self):
        circuit = make_circuit("vqe", 4)
        assert plan_fingerprint(circuit, ("fuse", 8)) != plan_fingerprint(
            circuit, ("fuse", 9)
        )
        assert plan_fingerprint(circuit, ("fuse", 8)) == plan_fingerprint(
            circuit, ("fuse", 8)
        )

    def test_distinct_across_families_and_sizes(self):
        keys = {
            plan_fingerprint(make_circuit(family, n))
            for family in ("qft", "ghz", "vqe", "qaoa")
            for n in (4, 5, 6)
        }
        assert len(keys) == 12  # no collisions across families or widths

    def test_parameter_bits_matter(self):
        base = make_circuit("vqe", 4, seed=0)
        other = make_circuit("vqe", 4, seed=1)
        assert plan_fingerprint(base) != plan_fingerprint(other)

    def test_cache_key_delegates_to_helper(self):
        from repro.sim.base import PlanCache

        circuit = make_circuit("qft", 5)
        extra = ("bqsim-v1", True, 8, 1e-12, True)
        assert PlanCache().key(circuit, extra) == plan_fingerprint(circuit, extra)

    def test_simulator_exposes_public_fingerprint(self):
        circuit = make_circuit("qft", 5)
        sim = BQSimSimulator()
        key = sim.plan_fingerprint(circuit)
        assert key == plan_fingerprint(circuit, sim._cache_extra())
        # identical settings -> identical key; different settings -> different
        assert BQSimSimulator().plan_fingerprint(circuit) == key
        assert BQSimSimulator(fusion=False).plan_fingerprint(circuit) != key
