"""Shared configuration for the benchmark harness.

Each module benchmarks one table or figure of the paper at the requested
scale (``--repro-scale small|medium|paper``; default small so the whole
harness completes quickly under pytest-benchmark).  Scale "medium" runs the
paper's circuits up to 16 qubits with modeled timing; "paper" runs all 16
circuits, including the multi-minute QNN fusions.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="small",
        choices=["small", "medium", "paper"],
        help="workload scale for the reproduction benchmarks",
    )


@pytest.fixture(scope="session")
def scale(request):
    return request.config.getoption("--repro-scale")


def run_once(benchmark, fn, *args):
    """Run an experiment exactly once under pytest-benchmark's timer.

    The experiments are deterministic end-to-end pipelines (many seconds at
    larger scales), so one round is both meaningful and affordable.
    """
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
