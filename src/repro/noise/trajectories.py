"""Pauli-trajectory noisy simulation as a *batch* workload.

For a Pauli noise model, the noisy channel is a probabilistic mixture of
unitary circuits: after each gate, each touched qubit suffers I/X/Y/Z with
the channel's probabilities.  Sampling ``num_trajectories`` such circuits
and averaging their pure outputs converges to the exact density matrix —
and every sampled circuit is simulated over the *whole input batch* at
once, which is precisely the batch-of-noise-conditions workload the
paper's related work ([23, 40, 58]) targets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuit.circuit import Circuit
from ..circuit.gates import Gate
from ..circuit.inputs import InputBatch
from ..errors import SimulationError
from ..sim.base import BatchSpec
from ..sim.bqsim import BQSimSimulator
from .channels import NoiseModel

_PAULI_GATES = {"X": "x", "Y": "y", "Z": "z"}


def sample_trajectory(
    circuit: Circuit, noise: NoiseModel, rng: np.random.Generator
) -> Circuit:
    """One noisy unitary trajectory: inject sampled Pauli errors after gates."""
    probs = noise.gate_channel.pauli_probabilities()
    if probs is None:
        raise SimulationError(
            f"channel {noise.gate_channel.name!r} is not a Pauli channel; "
            "use the density-matrix reference instead"
        )
    labels = list(probs)
    weights = np.array([probs[label] for label in labels])
    out = Circuit(circuit.num_qubits, name=f"{circuit.name}_traj")
    for gate in circuit.gates:
        out.append(gate)
        for qubit in gate.all_qubits:
            pick = labels[int(rng.choice(len(labels), p=weights))]
            if pick != "I":
                out.append(Gate(_PAULI_GATES[pick], (qubit,)))
    return out


@dataclass
class TrajectoryResult:
    """Monte-Carlo estimate of the noisy output over one input batch."""

    probabilities: np.ndarray  # (2^n, batch): averaged measurement probs
    num_trajectories: int
    avg_injected_errors: float

    def marginal(self, qubit: int, value: int = 1) -> np.ndarray:
        mask = ((np.arange(self.probabilities.shape[0]) >> qubit) & 1) == value
        return self.probabilities[mask].sum(axis=0)


def simulate_noisy_batch(
    circuit: Circuit,
    noise: NoiseModel,
    batch: InputBatch,
    num_trajectories: int = 50,
    seed: int = 0,
    simulator: BQSimSimulator | None = None,
) -> TrajectoryResult:
    """Estimate noisy measurement probabilities by trajectory averaging.

    Each trajectory is one sampled unitary circuit run over the full batch
    with BQSim; probabilities (not amplitudes) are averaged, which is the
    observable-level quantity trajectory methods estimate.
    """
    if num_trajectories < 1:
        raise SimulationError("need at least one trajectory")
    rng = np.random.default_rng(seed)
    simulator = simulator or BQSimSimulator()
    spec = BatchSpec(num_batches=1, batch_size=batch.batch_size)
    accum = np.zeros_like(batch.states, dtype=np.float64)
    injected = 0
    for _ in range(num_trajectories):
        trajectory = sample_trajectory(circuit, noise, rng)
        injected += len(trajectory) - len(circuit)
        result = simulator.run(trajectory, spec, batches=[batch])
        accum += np.abs(result.outputs[0]) ** 2
    return TrajectoryResult(
        probabilities=accum / num_trajectories,
        num_trajectories=num_trajectories,
        avg_injected_errors=injected / num_trajectories,
    )
