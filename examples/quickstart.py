"""Quickstart: batch-simulate a circuit with BQSim and inspect the pipeline.

Builds a small VQE ansatz, runs 8 batches of 32 random input states through
the full BQSim pipeline (DD fusion -> ELL conversion -> task-graph
execution), validates the amplitudes against the dense reference, and prints
what each stage did.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.circuit import generate_batches
from repro.circuit.generators import vqe
from repro.sim import BQSimSimulator, BatchSpec
from repro.sim.statevector import simulate_batch


def main() -> None:
    circuit = vqe(10, seed=7)
    print(f"circuit: {circuit.name}, {circuit.num_qubits} qubits, "
          f"{len(circuit)} gates, depth {circuit.depth()}")

    spec = BatchSpec(num_batches=8, batch_size=32, seed=1)
    batches = list(
        generate_batches(circuit.num_qubits, spec.num_batches, spec.batch_size, spec.seed)
    )

    simulator = BQSimSimulator()
    result = simulator.run(circuit, spec, batches=batches)

    plan = result.stats["plan"]
    print(f"\nstage 1 - BQCS-aware gate fusion: {len(circuit)} gates -> "
          f"{len(plan)} fused gates "
          f"(#MAC per amplitude {plan.total_cost}, was "
          f"{4 * len(circuit)} for dense gate-by-gate)")
    routes = result.stats["conversion_routes"]
    print(f"stage 2 - DD-to-ELL conversion: {routes.count('gpu')} gates on the "
          f"GPU kernel, {routes.count('cpu')} on the CPU path")
    print(f"stage 3 - task graph: {len(result.timeline.tasks)} tasks, "
          f"copy/compute overlap {result.stats['overlap_fraction']:.0%}")

    print(f"\nmodeled device time: {result.modeled_time_ms:.2f} ms "
          f"(fusion {result.breakdown['fusion'] * 1e3:.2f} ms, "
          f"conversion {result.breakdown['conversion'] * 1e3:.2f} ms, "
          f"simulation {result.breakdown['simulation'] * 1e3:.2f} ms)")
    print(f"modeled average power: GPU {result.power.gpu_watts:.0f} W, "
          f"CPU {result.power.cpu_watts:.0f} W")

    worst = 0.0
    for out, batch in zip(result.outputs, batches):
        reference = simulate_batch(circuit, batch)
        worst = max(worst, float(np.abs(out - reference).max()))
    print(f"\nvalidation vs dense reference: max |delta amplitude| = {worst:.2e}")
    assert worst < 1e-8
    print("OK - identical state amplitudes, as in the paper's validation")


if __name__ == "__main__":
    main()
