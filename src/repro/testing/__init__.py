"""Quantum-program testing on BQCS: mutations, a differential fuzzer, and
process-level chaos for the serving stack."""

from .chaos_pool import ChaosEvent, ChaosSchedule, apply_chaos_action
from .fuzzer import DifferentialFuzzer, FuzzFinding, FuzzReport
from .mutations import (
    BREAKING,
    PRESERVING,
    commute_disjoint_pair,
    drop_gate,
    insert_identity_pair,
    perturb_angle,
    rewrite_gate,
    swap_operands,
)

__all__ = [
    "apply_chaos_action",
    "BREAKING",
    "ChaosEvent",
    "ChaosSchedule",
    "commute_disjoint_pair",
    "DifferentialFuzzer",
    "drop_gate",
    "FuzzFinding",
    "FuzzReport",
    "insert_identity_pair",
    "perturb_angle",
    "PRESERVING",
    "rewrite_gate",
    "swap_operands",
]
