"""Differential testing of quantum compiler passes with BQCS (QDiff-style).

One of the paper's motivating applications: testing frameworks feed *many*
input states through two supposedly equivalent circuits and compare outputs.
Single-input simulators make this slow; batch simulation makes it cheap.

This example "optimizes" a QFT circuit with a simple peephole pass (cancel
adjacent self-inverse pairs, merge rotations), checks equivalence over
random input batches with BQSim, then injects a subtle bug into the pass
(dropping small-angle rotations) and shows the batch diff catching it.

Run:  python examples/differential_testing.py
"""

from __future__ import annotations

import numpy as np

from repro.circuit import Circuit
from repro.circuit.gates import Gate
from repro.circuit.generators import qft
from repro.sim import BQSimSimulator, BatchSpec


def peephole_optimize(circuit: Circuit, drop_below: float = 0.0) -> Circuit:
    """Cancel adjacent inverse pairs and merge adjacent equal-qubit rotations.

    ``drop_below`` is the injected bug: silently deleting rotations with
    |angle| below the threshold (a classic "optimization" that is almost
    right but changes the unitary).
    """
    out: list[Gate] = []
    rotations = {"rz", "rx", "ry", "p"}
    self_inverse = {"h", "x", "y", "z", "swap"}
    for gate in circuit.gates:
        if gate.name in rotations and abs(gate.params[0]) <= drop_below:
            continue  # the bug (drop_below > 0 only)
        if out:
            prev = out[-1]
            same_operands = (
                prev.qubits == gate.qubits and prev.controls == gate.controls
            )
            if same_operands and gate.name == prev.name and gate.name in self_inverse:
                out.pop()
                continue
            if same_operands and gate.name == prev.name and gate.name in rotations:
                merged = prev.params[0] + gate.params[0]
                out.pop()
                if abs(merged) > 1e-12:
                    out.append(Gate(gate.name, gate.qubits, (merged,), gate.controls))
                continue
        out.append(gate)
    return Circuit(circuit.num_qubits, out, name=f"{circuit.name}_opt")


def batch_diff(a: Circuit, b: Circuit, spec: BatchSpec) -> float:
    """Max amplitude deviation between two circuits over random batches."""
    simulator = BQSimSimulator()
    ra = simulator.run(a, spec)
    rb = simulator.run(b, spec)
    return max(
        float(np.abs(x - y).max()) for x, y in zip(ra.outputs, rb.outputs)
    )


def main() -> None:
    original = qft(8)
    # pad with a few redundant pairs so the pass has something to remove
    noisy = Circuit(8, list(original.gates), name="qft_noisy")
    noisy.h(3).h(3).x(5).x(5).rz(0.2, 1).rz(-0.2, 1)
    print(f"original: {len(noisy)} gates")

    spec = BatchSpec(num_batches=6, batch_size=32, seed=3)

    good = peephole_optimize(noisy)
    delta = batch_diff(noisy, good, spec)
    print(f"correct pass:  {len(good)} gates, max batch deviation {delta:.2e}")
    assert delta < 1e-8, "correct pass must be equivalence-preserving"

    buggy = peephole_optimize(noisy, drop_below=0.05)
    delta = batch_diff(noisy, buggy, spec)
    print(f"buggy pass:    {len(buggy)} gates, max batch deviation {delta:.2e}")
    assert delta > 1e-4, "the batch diff should expose the dropped rotations"
    print("bug detected: dropping 'small' rotations changed the unitary")


if __name__ == "__main__":
    main()
