"""Single-input DD-based simulation (the classic DD simulator loop).

This is the CPU algorithm FlatDD builds on: keep the state as a *vector DD*
and apply each gate with DDMultiply.  For highly structured circuits (GHZ,
graph states, stabilizer-like) the state DD stays tiny while a dense vector
would be exponential — the reason DD simulators exist at all, and a useful
exact oracle for tests.
"""

from __future__ import annotations

import numpy as np

from ..circuit.circuit import Circuit
from ..errors import SimulationError
from .build import basis_vector_dd, gate_matrix_dd, vector_dd_from_dense
from .export import count_nodes, vector_to_dense
from .manager import DDManager
from .node import Edge


def simulate_circuit_dd(
    circuit: Circuit,
    initial: np.ndarray | int | None = None,
    mgr: DDManager | None = None,
) -> tuple[DDManager, Edge]:
    """Run a circuit on one input, entirely in DD form.

    ``initial`` may be a dense state vector, a basis-state index, or ``None``
    for ``|0...0>``.  Returns the manager and the final state's vector DD.
    """
    mgr = mgr or DDManager(circuit.num_qubits)
    if mgr.num_qubits != circuit.num_qubits:
        raise SimulationError("manager width does not match circuit")
    if initial is None:
        state = basis_vector_dd(mgr, 0)
    elif isinstance(initial, (int, np.integer)):
        state = basis_vector_dd(mgr, int(initial))
    else:
        state = vector_dd_from_dense(mgr, np.asarray(initial))
    for gate in circuit.gates:
        state = mgr.mv_multiply(gate_matrix_dd(mgr, gate), state)
    return mgr, state


def simulate_state_dd(
    circuit: Circuit, initial: np.ndarray | int | None = None
) -> np.ndarray:
    """Dense final state of a single-input DD simulation."""
    mgr, state = simulate_circuit_dd(circuit, initial)
    return vector_to_dense(state, circuit.num_qubits)


def state_dd_size(circuit: Circuit, initial: np.ndarray | int | None = None) -> int:
    """Node count of the final state DD (the compression DD sims exploit)."""
    _, state = simulate_circuit_dd(circuit, initial)
    return count_nodes(state)
