"""Wall-clock stage profiling for the simulation pipelines.

The device model reports *modeled* seconds (what the calibrated GPU would
take); this module measures *real* host seconds per pipeline stage, so
speedups of the compiled-plan hot paths are observed rather than asserted.
Simulators surface the recorded breakdown in
``SimulationResult.stats["wall_breakdown"]`` alongside the modeled
``breakdown``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class StageTimer:
    """Accumulates wall seconds per named pipeline stage.

    Stages may be entered repeatedly; durations accumulate.  The timer is
    deliberately tiny — one ``perf_counter`` pair per stage entry — so it
    can stay on permanently in every simulator run.
    """

    def __init__(self) -> None:
        self.wall: dict[str, float] = {}

    @contextmanager
    def time(self, stage: str):
        """Context manager charging the enclosed block to ``stage``."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.record(stage, time.perf_counter() - t0)

    def record(self, stage: str, seconds: float) -> None:
        """Add ``seconds`` of wall time to ``stage``."""
        self.wall[stage] = self.wall.get(stage, 0.0) + seconds

    def total(self) -> float:
        return sum(self.wall.values())

    def snapshot(self) -> dict[str, float]:
        """Copy of the per-stage totals (safe to stash in result stats)."""
        return dict(self.wall)

    def summary(self) -> str:
        parts = ", ".join(
            f"{stage}={seconds * 1e3:.2f}ms" for stage, seconds in self.wall.items()
        )
        return f"<StageTimer {parts}>"


@contextmanager
def stopwatch():
    """Standalone timer: ``with stopwatch() as t: ...; t.seconds``."""

    class _Watch:
        seconds = 0.0

    watch = _Watch()
    t0 = time.perf_counter()
    try:
        yield watch
    finally:
        watch.seconds = time.perf_counter() - t0
