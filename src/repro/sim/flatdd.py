"""FlatDD-like baseline: multi-threaded CPU decision-diagram simulation.

FlatDD fuses gates on DDs (with a CPU-oriented total-non-zero objective) and
applies each fused DD to a flat state-vector array with 16 threads; the
paper runs 8 such processes for throughput.  The model charges the machine's
effective DD-walk rate for the total non-zeros each input must traverse —
no GPU is involved at all, which is why FlatDD trails every GPU simulator by
2-3 orders of magnitude on batch workloads (Table 2).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..circuit import Circuit, InputBatch
from ..dd.manager import DDManager
from ..ell.convert import ell_from_dd_cpu
from ..ell.spmm import build_apply_plans
from ..fusion.greedy import flatdd_fusion
from ..gpu.power import PowerReport, cpu_power_from_utilization
from ..gpu.spec import CpuSpec, GpuSpec
from ..kernels.engine import ArrayEngine, get_engine
from ..obs import CANONICAL_STAGES
from ..profile import StageTimer
from ..resilience import (
    BackendLadder,
    FaultPlan,
    HealthPolicy,
    RetryPolicy,
    RetrySession,
    apply_with_recovery,
    check_state_block,
    fault_injection,
)
from .base import (
    BatchSimulator,
    BatchSpec,
    PlanCache,
    RunObservation,
    SimulationResult,
)


class FlatDDSimulator(BatchSimulator):
    """CPU-parallel DD-based single-input simulation, forked per input.

    The FlatDD baseline: greedy DD fusion, then each input state is
    simulated independently on a modeled CPU thread pool — the paper's
    representative of the one-process-per-input school that BQSim's
    batching beats.  Example::

        result = FlatDDSimulator().run(make_circuit("qft", 4), BatchSpec(1, 4))
        assert result.outputs[0].shape == (16, 4)
    """

    name = "flatdd"

    def __init__(
        self,
        gpu: GpuSpec | None = None,
        cpu: CpuSpec | None = None,
        retry: RetryPolicy | None = None,
        faults: FaultPlan | str | None = None,
        health: HealthPolicy | str | None = "warn",
        engine: "str | ArrayEngine | None" = None,
    ):
        self.cpu = cpu or CpuSpec()
        self.gpu = gpu or GpuSpec()  # unused; kept for a uniform constructor
        self._plans = PlanCache()
        self.retry = retry
        self.faults = faults
        self.health = HealthPolicy.coerce(health)
        self.engine = engine

    def run(
        self,
        circuit: Circuit,
        spec: BatchSpec,
        batches: Sequence[InputBatch] | None = None,
        execute: bool = True,
    ) -> SimulationResult:
        with fault_injection(self.faults):
            return self._run(circuit, spec, batches, execute)

    def _run(
        self,
        circuit: Circuit,
        spec: BatchSpec,
        batches: Sequence[InputBatch] | None,
        execute: bool,
    ) -> SimulationResult:
        wall_start = time.perf_counter()
        n = circuit.num_qubits
        eng = get_engine(self.engine)
        obs = RunObservation()
        timer = StageTimer(stages=CANONICAL_STAGES)

        def build():
            mgr = DDManager(n)
            built = flatdd_fusion(mgr, circuit)
            return {"mgr": mgr, "plan": built, "ells": None}

        with obs.tracer.span(
            f"{self.name}.run",
            simulator=self.name,
            circuit=circuit.name,
            num_qubits=n,
            num_batches=spec.num_batches,
            batch_size=spec.batch_size,
            execute=execute,
        ):
            with timer.time("fusion") as span:
                prepared = self._plans.get(circuit, build, extra=("flatdd-v1",))
                span.set(fused_gates=len(prepared["plan"].gates))
            plan = prepared["plan"]

            work_per_input = sum(fg.nnz for fg in plan.gates)
            per_input = (
                self.cpu.flatdd_input_overhead
                + work_per_input / self.cpu.flatdd_machine_rate
            )
            total = per_input * spec.num_inputs

            with timer.time("io"):
                batches = self._resolve_batches(circuit, spec, batches, execute)
            outputs: list[np.ndarray] | None = None
            if execute:
                with timer.time("convert"):
                    if prepared["ells"] is None:
                        prepared["ells"] = [
                            ell_from_dd_cpu(fg.dd, n) for fg in plan.gates
                        ]
                    # compiled gather plans, consecutive width-1 kernels composed
                    apply_plans = build_apply_plans(prepared["ells"])
                with timer.time("execute") as span:
                    ladder = BackendLadder()
                    session = RetrySession(self.retry, seed=spec.seed)
                    outputs = []
                    for ib, batch in enumerate(batches):
                        states = (
                            eng.from_host(batch.states)
                            if eng.is_device
                            else batch.states
                        )
                        for apply_plan in apply_plans:
                            states = apply_with_recovery(
                                ladder, apply_plan, states, session, engine=eng
                            )
                        states = check_state_block(
                            eng.to_host(states), self.health,
                            label=f"{circuit.name} batch {ib}",
                        )
                        outputs.append(states)
                    span.set(
                        num_kernels=len(apply_plans), backend=ladder.backend
                    )

        power = PowerReport(
            gpu_watts=0.0,
            cpu_watts=cpu_power_from_utilization(1.0, self.cpu),
        )
        return SimulationResult(
            simulator=self.name,
            circuit_name=circuit.name,
            num_qubits=n,
            spec=spec,
            modeled_time=total,
            breakdown={"simulation": total},
            power=power,
            outputs=outputs,
            wall_time=time.perf_counter() - wall_start,
            stats=obs.finalize(
                {
                    "engine": eng.name,
                    "plan": plan,
                    "macs": plan.macs(spec.num_inputs),
                    "work_per_input": work_per_input,
                },
                timer,
                self._plans,
            ),
        )
