"""Experiment report writer: persist results as JSON and Markdown.

``python -m repro.bench --output DIR`` routes every experiment's rows
through :func:`write_report`, producing ``DIR/<experiment>.json`` (raw
rows, machine-readable) and ``DIR/report.md`` (one Markdown section per
experiment) — the artifacts EXPERIMENTS.md is distilled from.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Mapping, Sequence


def _jsonable(value):
    """Coerce experiment row values into JSON-safe primitives."""
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else str(value)
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalars
        return _jsonable(value.item())
    return repr(value)


def rows_to_json(rows, scale: str) -> str:
    if isinstance(rows, dict):  # fig5 returns a dict of series
        payload = {k: _jsonable(v) for k, v in rows.items()}
    else:
        payload = [_jsonable(row) for row in rows]
    return json.dumps({"scale": scale, "rows": payload}, indent=1)


def rows_to_markdown(name: str, rows, scale: str) -> str:
    """Render one experiment's rows as a Markdown table section."""
    lines = [f"## {name} (scale={scale})", ""]
    if isinstance(rows, dict):
        rows = rows.get("time_vs_qubits") or next(
            (v for v in rows.values() if isinstance(v, list)), []
        )
    rows = list(rows)
    if not rows:
        lines.append("_no rows_")
        return "\n".join(lines) + "\n"
    headers = [k for k in rows[0] if not isinstance(rows[0][k], (dict, list))]
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "---|" * len(headers))
    for row in rows:
        cells = []
        for key in headers:
            value = row.get(key)
            if isinstance(value, float):
                cells.append(f"{value:.4g}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines) + "\n"


def write_report(
    results: Mapping[str, object],
    output_dir: str | Path,
    scale: str,
) -> Path:
    """Write per-experiment JSON files plus a combined Markdown report.

    ``results`` maps experiment name to the rows its ``run()`` returned.
    Returns the path of the Markdown report.
    """
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    sections = [f"# Reproduction report (scale={scale})", ""]
    for name in sorted(results):
        rows = results[name]
        (out / f"{name}.json").write_text(rows_to_json(rows, scale))
        sections.append(rows_to_markdown(name, rows, scale))
    report = out / "report.md"
    report.write_text("\n".join(sections))
    return report
