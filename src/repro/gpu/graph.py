"""CUDA-Graph-style task graphs over the virtual engines.

A :class:`TaskGraph` accumulates kernel/copy/host tasks with explicit
dependencies and then *executes* under one of two launch modes:

* ``"graph"`` — the whole graph is launched once (one launch latency, a
  sub-microsecond per-node overhead), engines run asynchronously, copies
  overlap kernels.  This is the paper's Taskflow/CUDA-Graph execution.
* ``"stream"`` — every task pays a full kernel-launch overhead and launches
  synchronously (no copy/compute overlap).  This is the "without task
  graph" ablation of Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..errors import DeviceError
from ..obs import get_metrics, get_tracer
from .engine import Task, Timeline, schedule
from .spec import GpuSpec


@dataclass
class TaskHandle:
    """Opaque reference to a task inside a :class:`TaskGraph`."""

    tid: int
    name: str


class TaskGraph:
    """Dependency graph of device work, executed analytically."""

    def __init__(self, spec: GpuSpec, mode: str = "graph"):
        if mode not in ("graph", "stream"):
            raise DeviceError(f"unknown launch mode {mode!r}")
        self.spec = spec
        self.mode = mode
        self._tasks: list[Task] = []

    def __len__(self) -> int:
        return len(self._tasks)

    def add(
        self,
        name: str,
        engine: str,
        duration: float,
        deps: Sequence[TaskHandle] = (),
        retries: int = 0,
    ) -> TaskHandle:
        """Append a task; dependencies must already be in the graph.

        ``retries`` records transient-fault retries already folded into
        ``duration`` by the submitting device (timeline bookkeeping only).
        """
        overhead = (
            self.spec.graph_node_overhead
            if self.mode == "graph"
            else self.spec.kernel_launch_overhead
        )
        if engine == "host":
            overhead = 0.0
        tid = len(self._tasks)
        for dep in deps:
            if dep.tid >= tid:
                raise DeviceError("dependency submitted after dependent task")
        if retries:
            get_metrics().inc("graph.task_retries", retries)
        self._tasks.append(
            Task(
                tid=tid,
                name=name,
                engine=engine,
                duration=duration + overhead,
                deps=tuple(dep.tid for dep in deps),
                retries=retries,
            )
        )
        return TaskHandle(tid=tid, name=name)

    def execute(self) -> Timeline:
        """Schedule all tasks and return the timeline."""
        metrics = get_metrics()
        metrics.inc("graph.launches")
        metrics.inc(f"graph.launches.{self.mode}")
        by_engine: dict[str, int] = {}
        for task in self._tasks:
            by_engine[task.engine] = by_engine.get(task.engine, 0) + 1
        for engine, count in by_engine.items():
            metrics.inc(f"graph.tasks.{engine}", count)
        with get_tracer().span(
            "graph.execute", mode=self.mode, num_tasks=len(self._tasks)
        ) as span:
            timeline = schedule(self._tasks, serialize=(self.mode == "stream"))
            if self.mode == "graph" and self._tasks:
                # one whole-graph launch latency, paid once
                for task in timeline.tasks:
                    task.start += self.spec.graph_launch_overhead
                    task.end += self.spec.graph_launch_overhead
            timeline.validate()
            span.set(
                modeled_makespan_s=timeline.makespan,
                overlap_fraction=timeline.overlap_fraction(),
            )
        return timeline
