"""DD export and inspection: dense conversion, entry iteration, sizes."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import DDError
from .node import Edge, MNode, VNode


def _expect_level(edge: Edge, level: int) -> None:
    if edge.weight != 0 and edge.level != level:
        raise DDError(f"edge at level {edge.level}, expected {level}")


def matrix_to_dense(edge: Edge, num_qubits: int) -> np.ndarray:
    """Expand a matrix DD to a dense ``2^n x 2^n`` array."""
    dim = 1 << num_qubits
    out = np.zeros((dim, dim), dtype=np.complex128)
    _expect_level(edge, num_qubits - 1)

    def rec(e: Edge, level: int, row: int, col: int, acc: complex) -> None:
        if e.weight == 0:
            return
        acc = acc * e.weight
        if level < 0:
            out[row, col] = acc
            return
        node = e.node
        half = 1 << level
        for i, child in enumerate(node.children):
            rec(child, level - 1, row + (i >> 1) * half, col + (i & 1) * half, acc)

    rec(edge, num_qubits - 1, 0, 0, 1.0)
    return out


def vector_to_dense(edge: Edge, num_qubits: int) -> np.ndarray:
    """Expand a vector DD to a dense length-``2^n`` array."""
    dim = 1 << num_qubits
    out = np.zeros(dim, dtype=np.complex128)
    _expect_level(edge, num_qubits - 1)

    def rec(e: Edge, level: int, offset: int, acc: complex) -> None:
        if e.weight == 0:
            return
        acc = acc * e.weight
        if level < 0:
            out[offset] = acc
            return
        half = 1 << level
        rec(e.node.children[0], level - 1, offset, acc)
        rec(e.node.children[1], level - 1, offset + half, acc)

    rec(edge, num_qubits - 1, 0, acc=1.0)
    return out


def iter_matrix_entries(
    edge: Edge, num_qubits: int
) -> Iterator[tuple[int, int, complex]]:
    """Yield ``(row, col, value)`` for every structurally non-zero entry."""

    def rec(e: Edge, level: int, row: int, col: int, acc: complex):
        if e.weight == 0:
            return
        acc = acc * e.weight
        if level < 0:
            yield (row, col, acc)
            return
        half = 1 << level
        for i, child in enumerate(e.node.children):
            yield from rec(child, level - 1, row + (i >> 1) * half, col + (i & 1) * half, acc)

    _expect_level(edge, num_qubits - 1)
    yield from rec(edge, num_qubits - 1, 0, 0, 1.0)


def reachable_nodes(edge: Edge) -> list[MNode | VNode]:
    """Unique nodes reachable from ``edge`` (excluding the terminal)."""
    seen: dict[int, MNode | VNode] = {}
    stack = [edge]
    while stack:
        e = stack.pop()
        node = e.node
        if node is None or node.nid in seen:
            continue
        seen[node.nid] = node
        stack.extend(node.children)
    return list(seen.values())


def count_nodes(edge: Edge) -> int:
    """Unique non-terminal nodes reachable from ``edge``."""
    return len(reachable_nodes(edge))


def count_edges(edge: Edge) -> int:
    """Edges in the DD as the paper counts them for the hybrid-conversion
    threshold: the root edge plus every non-zero child slot of every
    reachable node."""
    if edge.weight == 0:
        return 0
    total = 1
    for node in reachable_nodes(edge):
        total += sum(1 for child in node.children if child.weight != 0)
    return total
