"""The asyncio TCP gateway server.

One :class:`GatewayServer` listens on a TCP port, speaks the NDJSON
protocol of :mod:`repro.gateway.protocol`, and drives a
:class:`~repro.gateway.router.ShardRouter` from a background **pump
thread** — the shards' synchronous ``step()`` loops never run on the
event loop, so a slow mega-batch cannot stall connection handling.
Handler coroutines reach the router through ``run_in_executor`` (router
calls take shard locks) and poll job objects with short async sleeps for
bounded ``result`` waits.

Request ops: ``ping``, ``submit``, ``status``, ``result``, ``cancel``,
``stream`` (the connection switches to a live feed of lifecycle events,
one frame each, with optional replay from the beginning), ``metrics``
(a Prometheus text scrape of the process registry — per-shard labeled
families included), and ``stats`` (the merged fleet summary).

Graceful drain: :meth:`shutdown` with ``drain=True`` flips the server
into draining mode — every request on a *new* connection is refused with
the typed ``DRAINING`` error, in-flight work is finished via the
router's drain, then the fleet closes.  Established connections may keep
calling ``status``/``result``/``metrics`` during the drain to collect
what they are owed; only ``submit`` and ``stream`` are refused.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

from ..errors import (
    GatewayError,
    JobNotCancellable,
    RetryLater,
    ServiceError,
)
from ..obs import get_metrics
from ..obs.prom import prometheus_text
from .protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    circuit_from_wire,
    decode_frame,
    encode_array,
    encode_frame,
    error_response,
    inputs_from_wire,
    ok_response,
)
from .router import ShardRouter

#: upper bound on one blocking ``result`` wait; clients re-ask to wait
#: longer (keeps a dead client from parking a handler forever)
MAX_RESULT_WAIT_S = 300.0

#: how long the pump thread sleeps when the fleet is idle
PUMP_IDLE_S = 0.005


def _salvage_id(line: bytes):
    """Best-effort request id from a frame that failed validation, so
    even refusals of bad envelopes correlate when the line was JSON."""
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if isinstance(obj, dict):
        request_id = obj.get("id")
        if isinstance(request_id, (int, str)):
            return request_id
    return None


class _EventHub:
    """Globally-sequenced merge of every shard's lifecycle stream.

    Lifecycle listeners fire on whatever thread emitted the event (pump
    thread, handler executor); the hub appends under a lock and stream
    handlers poll :meth:`since` — no cross-thread event-loop wakeups to
    get wrong, at the cost of a few milliseconds of staleness.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[dict] = []

    def attach(self, router: ShardRouter) -> None:
        for shard in router.shards.values():
            shard.service.lifecycle.subscribe(
                lambda event, _name=shard.name: self._append(_name, event)
            )

    def _append(self, shard: str, event: dict) -> None:
        with self._lock:
            self._events.append(
                {"seq": len(self._events), "shard": shard, **event}
            )

    def since(self, seq: int) -> list[dict]:
        """Events with hub sequence >= ``seq`` (empty when caught up)."""
        with self._lock:
            if seq >= len(self._events):
                return []
            return self._events[seq:]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class GatewayServer:
    """TCP front door over a shard fleet.

    Construct with an existing router, or let the server build one from
    ``num_shards``/``routing``/``quotas``/``service_kwargs``.  Typical
    embedded use (tests, benchmarks)::

        server = GatewayServer(num_shards=2)
        await server.start()           # binds 127.0.0.1:<ephemeral>
        ...                            # connect clients to server.port
        await server.shutdown(drain=True)
    """

    def __init__(
        self,
        router: ShardRouter | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        num_shards: int = 1,
        routing: str = "affinity",
        quotas=None,
        service_kwargs: dict | None = None,
    ) -> None:
        self.router = router or ShardRouter(
            num_shards=num_shards,
            routing=routing,
            quotas=quotas,
            service_kwargs=service_kwargs,
        )
        self.host = host
        self.port = port
        self.hub = _EventHub()
        self._server: asyncio.AbstractServer | None = None
        self._pump_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._draining = False
        self._closed = False
        self._connections: set[asyncio.StreamWriter] = set()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "GatewayServer":
        """Bind and start serving; resolves the ephemeral port."""
        if self._server is not None:
            raise GatewayError("server already started")
        self.hub.attach(self.router)
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=MAX_LINE_BYTES + 2
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._pump_thread = threading.Thread(
            target=self._pump, name="gateway-pump", daemon=True
        )
        self._pump_thread.start()
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def shutdown(self, drain: bool = True) -> None:
        """Stop serving; with ``drain`` finish all admitted work first.

        Idempotent.  New requests are refused with ``DRAINING`` the
        moment this is called; the pump thread keeps stepping until the
        fleet is idle, then everything closes and every job is in
        exactly one terminal state.
        """
        if self._closed:
            return
        self._draining = True
        loop = asyncio.get_running_loop()
        if drain:
            await loop.run_in_executor(None, self.router.drain)
        self._stop.set()
        if self._pump_thread is not None:
            await loop.run_in_executor(None, self._pump_thread.join)
        await loop.run_in_executor(
            None, lambda: self.router.close(drain=False)
        )
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._connections):
            writer.close()

    # -- the pump thread -----------------------------------------------------

    def _pump(self) -> None:
        """Drive the synchronous shards until told to stop."""
        metrics = get_metrics()
        while not self._stop.is_set():
            try:
                finished = self.router.step_all()
            except Exception:  # a step must never kill the pump
                metrics.inc("gateway.pump_errors")
                finished = 0
            if finished:
                metrics.inc("gateway.pumped_jobs", finished)
            else:
                self._stop.wait(PUMP_IDLE_S)

    # -- connection handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        metrics = get_metrics()
        metrics.inc("gateway.connections")
        self._connections.add(writer)
        #: connections opened during a drain get the typed refusal on
        #: every request; established ones may still collect results
        born_draining = self._draining
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    error = ProtocolError(
                        "OVERSIZED",
                        f"request line exceeds {MAX_LINE_BYTES} bytes",
                        limit=MAX_LINE_BYTES,
                    )
                    writer.write(encode_frame(error_response(None, error)))
                    await writer.drain()
                    break  # cannot resync NDJSON mid-line: drop the link
                if not line:
                    break
                if not line.strip():
                    continue
                request_id = None
                try:
                    request = decode_frame(line)
                    request_id = request.get("id")
                    op = request["op"]
                    metrics.inc("gateway.requests", op=op)
                    if self._draining and (
                        born_draining or op in ("submit", "stream")
                    ):
                        raise ProtocolError(
                            "DRAINING",
                            "gateway is draining; not accepting new work",
                        )
                    if op == "stream":
                        await self._stream(request, writer)
                        break  # a stream consumes the connection
                    response = await self._dispatch(op, request)
                except ProtocolError as error:
                    if request_id is None:
                        request_id = _salvage_id(line)
                    metrics.inc("gateway.errors", code=error.code)
                    response = error_response(request_id, error)
                except ConnectionError:
                    raise
                except Exception as exc:  # never a traceback on the wire
                    error = self._map_exception(exc)
                    metrics.inc("gateway.errors", code=error.code)
                    response = error_response(request_id, error)
                else:
                    response["id"] = request_id
                writer.write(encode_frame(response))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    def _map_exception(exc: Exception) -> ProtocolError:
        """Typed wire form of any non-protocol exception."""
        if isinstance(exc, RetryLater):
            code = (
                "QUOTA_EXCEEDED"
                if getattr(exc, "reason", "") == "quota"
                else "RETRY_LATER"
            )
            return ProtocolError(
                code, str(exc), retry_after_s=exc.retry_after_s
            )
        if isinstance(exc, JobNotCancellable):
            return ProtocolError(
                "NOT_CANCELLABLE", str(exc),
                job=exc.job_id, status=exc.status,
            )
        if isinstance(exc, ServiceError) and "unknown job id" in str(exc):
            return ProtocolError("UNKNOWN_JOB", str(exc))
        if isinstance(exc, (ServiceError, GatewayError)):
            return ProtocolError("INTERNAL", str(exc))
        # arbitrary failure: expose the type, not the internals
        return ProtocolError(
            "INTERNAL", f"internal error ({type(exc).__name__})"
        )

    # -- ops -----------------------------------------------------------------

    async def _dispatch(self, op: str, request: dict) -> dict:
        if op == "ping":
            return ok_response(None, pong=True, t=time.time())
        if op == "submit":
            return await self._submit(request)
        if op == "status":
            return await self._status(request)
        if op == "result":
            return await self._result(request)
        if op == "cancel":
            return await self._cancel(request)
        if op == "metrics":
            text = prometheus_text(get_metrics().snapshot())
            return ok_response(None, text=text)
        if op == "stats":
            loop = asyncio.get_running_loop()
            stats = await loop.run_in_executor(None, self.router.stats)
            return ok_response(None, stats=stats)
        raise ProtocolError("UNKNOWN_OP", f"unknown op {op!r}")

    @staticmethod
    def _job_ref(request: dict) -> str:
        job_id = request.get("job")
        if not isinstance(job_id, str) or not job_id:
            raise ProtocolError(
                "BAD_ENVELOPE", "missing or non-string 'job'"
            )
        return job_id

    async def _submit(self, request: dict) -> dict:
        circuit = circuit_from_wire(request.get("circuit"))
        batch = inputs_from_wire(request.get("inputs"), circuit)
        num_inputs = request.get("num_inputs", 1)
        if not isinstance(num_inputs, int) or num_inputs < 1:
            raise ProtocolError(
                "BAD_INPUTS",
                f"'num_inputs' must be a positive integer, "
                f"got {num_inputs!r}",
            )
        tenant = request.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise ProtocolError(
                "BAD_ENVELOPE", "'tenant' must be a non-empty string"
            )
        priority = request.get("priority", 0)
        if not isinstance(priority, int):
            raise ProtocolError(
                "BAD_ENVELOPE", "'priority' must be an integer"
            )
        deadline_s = request.get("deadline_s")
        timeout_s = request.get("timeout_s")
        for name, value in (("deadline_s", deadline_s),
                            ("timeout_s", timeout_s)):
            if value is not None and (
                not isinstance(value, (int, float)) or value <= 0
            ):
                raise ProtocolError(
                    "BAD_ENVELOPE", f"{name!r} must be a positive number"
                )
        fidelity = request.get("fidelity", 1.0)
        if (
            not isinstance(fidelity, (int, float))
            or isinstance(fidelity, bool)
            or not 0.0 < fidelity <= 1.0
        ):
            raise ProtocolError(
                "BAD_ENVELOPE",
                f"'fidelity' must be a number in (0, 1], got {fidelity!r}",
            )
        options = request.get("options", [])
        if not isinstance(options, list):
            raise ProtocolError("BAD_ENVELOPE", "'options' must be a list")
        loop = asyncio.get_running_loop()

        def _do_submit():
            deadline = (
                self.router.clock() + float(deadline_s)
                if deadline_s is not None else None
            )
            return self.router.submit(
                circuit,
                batch,
                num_inputs=num_inputs,
                tenant=tenant,
                priority=priority,
                deadline=deadline,
                timeout_s=(
                    float(timeout_s) if timeout_s is not None else None
                ),
                options=tuple(options),
                fidelity=float(fidelity),
            )

        job, shard = await loop.run_in_executor(None, _do_submit)
        return ok_response(None, job=job.job_id, shard=shard)

    async def _status(self, request: dict) -> dict:
        job_id = self._job_ref(request)
        loop = asyncio.get_running_loop()
        info = await loop.run_in_executor(
            None, self.router.describe, job_id
        )
        return ok_response(None, job=info)

    async def _result(self, request: dict) -> dict:
        job_id = self._job_ref(request)
        wait = bool(request.get("wait", True))
        timeout_s = request.get("timeout_s", 60.0)
        if not isinstance(timeout_s, (int, float)) or timeout_s <= 0:
            raise ProtocolError(
                "BAD_ENVELOPE", "'timeout_s' must be a positive number"
            )
        timeout_s = min(float(timeout_s), MAX_RESULT_WAIT_S)
        loop = asyncio.get_running_loop()
        job = await loop.run_in_executor(None, self.router.job, job_id)
        if wait:
            deadline = time.monotonic() + timeout_s
            while not job.is_terminal:
                if time.monotonic() >= deadline:
                    raise ProtocolError(
                        "TIMEOUT",
                        f"job {job_id} still {job.status.value} after "
                        f"{timeout_s:g}s",
                        status=job.status.value,
                    )
                await asyncio.sleep(0.003)
                #: failover may have re-homed the job mid-wait
                job = await loop.run_in_executor(
                    None, self.router.job, job_id
                )
        status = job.status.value
        if not job.is_terminal:
            return ok_response(None, status=status, result=None)
        if status == "done":
            return ok_response(
                None, status=status, result=encode_array(job.result),
                job_id=job.job_id,
                fidelity=job.fidelity,
                achieved_fidelity=job.achieved_fidelity,
            )
        raise ProtocolError(
            "JOB_FAILED",
            job.error or f"job {job_id} ended {status}",
            status=status,
            evidence=job.evidence,
        )

    async def _cancel(self, request: dict) -> dict:
        job_id = self._job_ref(request)
        loop = asyncio.get_running_loop()
        job = await loop.run_in_executor(
            None, self.router.cancel, job_id
        )
        return ok_response(
            None, job=job.job_id, status=job.status.value,
            cancel_requested=job.cancel_requested,
        )

    async def _stream(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        """Switch the connection to a live lifecycle feed.

        Sends an acknowledgement, then one frame per hub event starting
        from ``from_seq`` (0 replays everything the server has seen).
        Runs until the client disconnects or the server shuts down.
        """
        from_seq = request.get("from_seq", len(self.hub))
        if not isinstance(from_seq, int) or from_seq < 0:
            raise ProtocolError(
                "BAD_ENVELOPE", "'from_seq' must be a non-negative integer"
            )
        writer.write(
            encode_frame(
                ok_response(
                    request.get("id"), streaming=True, from_seq=from_seq
                )
            )
        )
        await writer.drain()
        seq = from_seq
        while not self._closed:
            events = self.hub.since(seq)
            if events:
                for event in events:
                    writer.write(
                        encode_frame(
                            {"v": 1, "stream": True, **event}
                        )
                    )
                seq = events[-1]["seq"] + 1
                await writer.drain()
            else:
                await asyncio.sleep(0.01)
