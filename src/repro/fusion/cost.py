"""BQCS cost model (Section 3.1.1).

The BQCS cost of a gate is the number of multiply-accumulate operations
needed per state amplitude when the gate runs as an ELL spMM — which equals
the maximum number of non-zeros per row (max NZR) of its matrix, computed
symbolically on the DD via the NZRV algorithm.
"""

from __future__ import annotations

from ..circuit.gates import Gate
from ..dd.manager import DDManager
from ..dd.node import Edge
from ..dd.nzrv import max_nzr, nzr_vector, vector_moments


def bqcs_cost(mgr: DDManager, dd: Edge) -> int:
    """#MAC per state amplitude for a DD gate matrix (its max NZR)."""
    return max_nzr(mgr, dd)


def total_nonzeros(mgr: DDManager, dd: Edge) -> float:
    """Total non-zero entries of a DD gate matrix (CPU DD-sim work metric,
    used by the FlatDD-style fusion objective)."""
    total, _ = vector_moments(nzr_vector(mgr, dd), mgr.num_qubits, mgr)
    return total


def is_cost_one(mgr: DDManager, dd: Edge) -> bool:
    """Cost-1 gates are exactly the diagonal-or-permutation gates."""
    return max_nzr(mgr, dd) == 1


def dense_gate_cost(gate: Gate, pad_to: int = 2) -> int:
    """#MAC per amplitude when a gate is applied as a *dense* batched matrix
    (the cuQuantum baseline).  The batched apply pads every gate to at least
    ``pad_to`` qubits, so a 1-qubit gate still costs ``2**pad_to`` MACs per
    amplitude — matching the paper's Table 3 column exactly (4 per gate for
    1- and 2-qubit gates)."""
    k = max(gate.num_qubits, pad_to)
    return 1 << k
