"""Unit tests for the circuit IR."""

import numpy as np
import pytest

from repro.circuit import Circuit, gate_unitary
from repro.circuit.gates import Gate
from repro.errors import CircuitError


def test_builder_chaining(small_circuit):
    assert small_circuit.num_gates == 10
    assert len(small_circuit) == 10
    assert small_circuit[0].name == "h"


def test_add_rejects_out_of_range_qubit():
    c = Circuit(2)
    with pytest.raises(CircuitError, match="touches qubit"):
        c.cx(0, 5)


def test_constructor_validates_existing_gates():
    with pytest.raises(CircuitError):
        Circuit(1, [Gate.make("cx", [0, 1])])


def test_zero_qubits_rejected():
    with pytest.raises(CircuitError):
        Circuit(0)


def test_depth_counts_layers():
    c = Circuit(4)
    c.h(0).h(1).h(2).h(3)  # one layer
    assert c.depth() == 1
    c.cx(0, 1).cx(2, 3)  # second layer
    assert c.depth() == 2
    c.cx(1, 2)  # third layer
    assert c.depth() == 3


def test_counts_folds_controls():
    c = Circuit(3)
    c.h(0).cx(0, 1).cx(1, 2).ccx(0, 1, 2)
    assert c.counts() == {"h": 1, "cx": 2, "ccx": 1}


def test_inverse_undoes_circuit(small_circuit):
    ident = small_circuit.to_matrix() @ small_circuit.inverse().to_matrix()
    # inverse is applied first here; check the other order too
    assert np.allclose(
        small_circuit.inverse().to_matrix() @ small_circuit.to_matrix(),
        np.eye(16),
        atol=1e-10,
    )
    assert np.allclose(ident, np.eye(16), atol=1e-10)


def test_to_matrix_is_unitary(small_circuit):
    u = small_circuit.to_matrix()
    assert np.allclose(u @ u.conj().T, np.eye(16), atol=1e-10)


def test_to_matrix_refuses_large_circuits():
    with pytest.raises(CircuitError, match="limited"):
        Circuit(13).to_matrix()


def test_gate_unitary_matches_kron_for_single_qubit():
    g = Gate.make("h", [1])
    u = gate_unitary(g, 2)
    h = g.matrix()
    expected = np.kron(h, np.eye(2))  # qubit 1 is the high bit
    assert np.allclose(u, expected)


def test_gate_unitary_cx_truth_table():
    u = gate_unitary(Gate.make("cx", [0, 1]), 2)  # control q0, target q1
    for basis in range(4):
        vec = np.zeros(4)
        vec[basis] = 1
        out = u @ vec
        target = basis ^ 2 if basis & 1 else basis
        assert out[target] == 1


def test_extend_and_iter(small_circuit):
    c = Circuit(4)
    c.extend(small_circuit.gates)
    assert [g.name for g in c] == [g.name for g in small_circuit]


def test_str_snippets(small_circuit):
    text = str(small_circuit)
    assert "small" in text and "n=4" in text
