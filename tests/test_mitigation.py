"""Tests for zero-noise extrapolation."""

import numpy as np
import pytest

from repro.circuit import zero_state_batch
from repro.circuit.generators import ghz
from repro.errors import SimulationError
from repro.noise import richardson_extrapolate, zero_noise_extrapolation


def test_richardson_linear():
    assert richardson_extrapolate([1, 2], [0.9, 0.8]) == pytest.approx(1.0)


def test_richardson_quadratic():
    scales = [1.0, 2.0, 3.0]
    values = [5 - 2 * s + 0.5 * s * s for s in scales]
    assert richardson_extrapolate(scales, values) == pytest.approx(5.0)


def test_richardson_validation():
    with pytest.raises(SimulationError, match="matching"):
        richardson_extrapolate([1.0], [0.5])
    with pytest.raises(SimulationError, match="distinct"):
        richardson_extrapolate([1.0, 1.0], [0.5, 0.6])


def test_zne_improves_ghz_weight():
    circuit = ghz(4)

    def ghz_weight(probs):
        return float(probs[0, 0] + probs[-1, 0])

    result = zero_noise_extrapolation(
        circuit,
        base_error=0.02,
        batch=zero_state_batch(4, 1),
        observable=ghz_weight,
        num_trajectories=250,
        seed=2,
    )
    assert len(result.values) == 3
    assert result.raw < 1.0  # noise visibly degrades the GHZ weight
    # mitigation moves the estimate toward the ideal value 1.0
    assert abs(result.mitigated - 1.0) < abs(result.raw - 1.0)


def test_zne_validates_base_error():
    with pytest.raises(SimulationError, match="base_error"):
        zero_noise_extrapolation(
            ghz(2), base_error=0.0, batch=zero_state_batch(2, 1),
            observable=lambda p: 0.0,
        )
