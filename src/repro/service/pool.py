"""Process-parallel execution pool for the batch simulation service.

The serving layer's coalescer removes per-gate overhead by merging jobs
into mega-batches, but PR 4 still executed every mega-batch serially on
one Python interpreter — the GIL caps throughput at one core no matter
how many :class:`~repro.service.workers.Worker` objects exist.  This
module adds the missing axis: a :class:`ProcessWorkerPool` of **N OS
processes** (stdlib :mod:`multiprocessing`, spawn-safe) that each own a
full :class:`~repro.sim.bqsim.BQSimSimulator` and execute whole
mega-batches concurrently.

Three properties carry over from the serial path by construction:

* **bit-identical results** — a worker runs the exact padded mega-block
  the serial path would have run, through the same simulator code; spMM
  computes each output column from its input column alone, so process
  placement cannot change a single bit (property-tested in
  ``tests/test_service_pool.py``);
* **degradation stays local** — when a mega-batch raises
  :class:`~repro.errors.ReproError` inside a worker, that worker re-runs
  every member job alone (per-job isolation) before reporting, exactly
  like the serial service's ``_degrade``;
* **compile-once plans** — every worker points at one shared on-disk
  :class:`~repro.sim.base.PlanCache` tier; first-build races are settled
  by the cache's ``flock``-based :meth:`~repro.sim.base.PlanCache.build_lock`,
  so each plan fingerprint is fused and converted exactly once fleet-wide
  and the losers load the winner's archive.

State vectors cross the process boundary via
:mod:`multiprocessing.shared_memory` once they exceed
:data:`DEFAULT_SHM_THRESHOLD` bytes (below it, pickling through the task
queue is cheaper than two segment syscalls).  The parent creates *both*
the input and the output segment and unlinks them when the result lands,
so segment lifetime never depends on worker exit order.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import shutil
import tempfile
import time
from contextlib import nullcontext
from multiprocessing import shared_memory

import numpy as np

from ..circuit import InputBatch
from ..errors import ReproError, ServiceError
from ..obs import get_metrics, get_tracer
from ..obs.tracer import Tracer, set_tracer
from ..sim.base import PLAN_CACHE_ENV, BatchSpec

#: arrays at or above this many bytes ship via ``shared_memory``; smaller
#: ones are pickled inline through the task queue (two segment syscalls
#: plus a mmap cost more than copying a few KiB through a pipe)
DEFAULT_SHM_THRESHOLD = 1 << 16

#: seconds a blocking :meth:`ProcessWorkerPool.poll` waits between
#: worker-liveness checks
_POLL_TICK_S = 0.25

#: seconds :meth:`ProcessWorkerPool.close` waits for a worker to exit
#: before terminating it
_JOIN_TIMEOUT_S = 5.0


def _receive_array(desc) -> np.ndarray:
    """Materialize an array descriptor produced by ``_ship_array``.

    Workers only ever *attach* (``create=False``), which registers
    nothing with the resource tracker — segment lifetime and tracker
    bookkeeping belong solely to the creating parent, which unlinks
    after collecting the result.
    """
    kind = desc[0]
    if kind == "inline":
        return desc[1]
    _, name, shape, dtype = desc
    seg = shared_memory.SharedMemory(name=name)
    try:
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf).copy()
    finally:
        seg.close()


def _span(tracer, name: str, **attrs):
    """A tracer span when tracing is on, a no-op context otherwise."""
    return tracer.span(name, **attrs) if tracer is not None else nullcontext()


def _run_task(sim, wid: int, task: dict) -> dict:
    """Execute one dispatched mega-batch inside a worker process.

    Returns a picklable result record.  Mirrors the serial service's
    execute-then-degrade contract: a :class:`ReproError` from the group
    run triggers per-job solo re-runs *inside this worker*; any other
    exception fails every member (the worker itself must survive to take
    the next task).
    """
    wall0 = time.perf_counter()
    tracer = Tracer(enabled=True) if task["trace"] else None
    previous = set_tracer(tracer) if tracer is not None else None
    mega = _receive_array(task["inputs"])
    spec = BatchSpec(*task["spec"])
    total = task["total_columns"]
    job_columns = task["job_columns"]
    job_ids = task.get("job_ids") or []
    width = spec.batch_size
    batches = [
        InputBatch(mega[:, i * width : (i + 1) * width])
        for i in range(spec.num_batches)
    ]
    merged = None
    per_job: list[dict] = []
    degraded = False
    cause = None
    modeled = 0.0
    plan_source = ""
    solo_runs = 0
    try:
        try:
            with _span(
                tracer, "pool.megabatch",
                worker=wid,
                jobs=len(job_columns),
                job_ids=list(job_ids),
                columns=total,
            ):
                result = sim.run(
                    task["circuit"], spec, batches=batches, execute=True
                )
        except ReproError as exc:
            degraded = True
            cause = str(exc)
            merged = np.zeros((mega.shape[0], total), dtype=np.complex128)
            offset = 0
            for idx, cols in enumerate(job_columns):
                solo_batch = InputBatch(mega[:, offset : offset + cols])
                jid = job_ids[idx] if idx < len(job_ids) else ""
                try:
                    with _span(
                        tracer, "pool.solo",
                        worker=wid, job=jid, columns=cols,
                    ):
                        solo = sim.run(
                            task["circuit"],
                            BatchSpec(num_batches=1, batch_size=cols, seed=0),
                            batches=[solo_batch],
                            execute=True,
                        )
                except ReproError as solo_exc:
                    per_job.append({"ok": False, "error": str(solo_exc)})
                else:
                    merged[:, offset : offset + cols] = solo.outputs[0]
                    modeled += solo.modeled_time
                    solo_runs += 1
                    per_job.append({"ok": True, "error": None})
                offset += cols
        else:
            out = (
                result.outputs[0]
                if len(result.outputs) == 1
                else np.hstack(result.outputs)
            )
            merged = np.ascontiguousarray(out[:, :total])
            modeled = result.modeled_time
            plan_source = result.stats.get("plan_source", "")
            per_job = [{"ok": True, "error": None} for _ in job_columns]
    except BaseException as exc:  # noqa: BLE001 - worker must not die
        degraded = True
        cause = f"{type(exc).__name__}: {exc}"
        merged = None
        per_job = [{"ok": False, "error": cause} for _ in job_columns]
    finally:
        if previous is not None:
            set_tracer(previous)

    outputs = None
    if merged is not None:
        if task["out_shm"] is not None:
            name, shape = task["out_shm"]
            seg = shared_memory.SharedMemory(name=name)
            try:
                view = np.ndarray(
                    shape, dtype=np.complex128, buffer=seg.buf
                )
                view[:] = merged
            finally:
                seg.close()
            outputs = ("shm",)
        else:
            outputs = ("inline", merged)
    return {
        "task_id": task["task_id"],
        "wid": wid,
        "degraded": degraded,
        "cause": cause,
        "per_job": per_job,
        "outputs": outputs,
        "modeled_s": modeled,
        "plan_source": plan_source,
        "solo_runs": solo_runs,
        "plan_cache": sim._plans.stats_dict(),
        "spans": (
            [span.to_dict() for span in tracer.spans()] if tracer else []
        ),
        "wall_s": time.perf_counter() - wall0,
    }


def _worker_main(wid: int, task_q, result_q, simulator_kwargs: dict) -> None:
    """Entry point of one pool worker process (module-level: spawn pickles
    it by qualified name)."""
    from ..sim.bqsim import BQSimSimulator

    sim = BQSimSimulator(**simulator_kwargs)
    while True:
        task = task_q.get()
        if task is None:
            break
        result_q.put(_run_task(sim, wid, task))


class ProcessWorkerPool:
    """N spawn-safe worker processes executing mega-batches concurrently.

    The pool is deliberately dumb: it knows nothing about jobs, queues,
    or scheduling — :meth:`submit` takes one packed mega-block and hands
    it to an idle worker, :meth:`poll` collects finished results.  The
    :class:`~repro.service.workers.BatchSimulationService` drives it in
    ``parallelism="process"`` mode and keeps all policy (fairness,
    coalescing, accounting) in the parent.

    Example — two workers sharing one on-disk plan cache::

        pool = ProcessWorkerPool(num_workers=2, cache_dir="/tmp/plans")
        tid, wid = pool.submit(circuit, spec, mega, total, [total])
        (result,) = pool.poll(block=True)
        pool.close()
    """

    def __init__(
        self,
        num_workers: int,
        simulator_kwargs: dict | None = None,
        cache_dir: str | None = None,
        shm_threshold: int = DEFAULT_SHM_THRESHOLD,
    ) -> None:
        if num_workers < 1:
            raise ServiceError("process pool needs at least one worker")
        self.num_workers = num_workers
        self.shm_threshold = shm_threshold
        kwargs = dict(simulator_kwargs or {})
        #: the shared disk tier every worker compiles into; precedence:
        #: explicit argument > simulator kwargs > $REPRO_PLAN_CACHE > a
        #: pool-owned temp dir removed at close()
        self._owns_cache_dir = False
        resolved = (
            cache_dir
            or kwargs.get("cache_dir")
            or os.environ.get(PLAN_CACHE_ENV)
        )
        if not resolved:
            resolved = tempfile.mkdtemp(prefix="repro-pool-plans-")
            self._owns_cache_dir = True
        kwargs["cache_dir"] = str(resolved)
        self.cache_dir = str(resolved)
        self.simulator_kwargs = kwargs
        self._ctx = mp.get_context("spawn")
        self._procs: dict[int, mp.process.BaseProcess] = {}
        self._task_qs: dict[int, object] = {}
        self._result_q = None
        self._idle: set[int] = set()
        self._pending: dict[int, dict] = {}
        self._task_ids = itertools.count(1)
        self._started = False
        self._closed = False
        #: transport + throughput counters (also mirrored to metrics)
        self.dispatched = 0
        self.completed = 0
        self.shm_tasks = 0
        self.pickle_tasks = 0
        self.shm_bytes = 0
        #: last plan-cache snapshot and per-worker tallies, by wid
        self._plan_cache: dict[int, dict] = {}
        self._worker_stats: dict[int, dict] = {
            wid: {"wid": wid, "megabatches": 0, "solo_runs": 0, "jobs_done": 0}
            for wid in range(num_workers)
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker processes (idempotent; ``submit`` calls it)."""
        if self._started:
            return
        if self._closed:
            raise ServiceError("pool is closed")
        self._result_q = self._ctx.Queue()
        for wid in range(self.num_workers):
            task_q = self._ctx.Queue()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(wid, task_q, self._result_q, self.simulator_kwargs),
                name=f"repro-pool-{wid}",
                daemon=True,
            )
            proc.start()
            self._task_qs[wid] = task_q
            self._procs[wid] = proc
            self._idle.add(wid)
        self._started = True
        get_metrics().gauge("service.pool.workers", self.num_workers)

    def close(self) -> None:
        """Stop every worker and release all pool-owned resources."""
        if self._closed:
            return
        self._closed = True
        for wid, task_q in self._task_qs.items():
            try:
                task_q.put(None)
            except Exception:
                pass
        for proc in self._procs.values():
            proc.join(timeout=_JOIN_TIMEOUT_S)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for pending in self._pending.values():
            self._release_segments(pending)
        self._pending.clear()
        if self._result_q is not None:
            self._result_q.close()
        for task_q in self._task_qs.values():
            task_q.close()
        if self._owns_cache_dir:
            shutil.rmtree(self.cache_dir, ignore_errors=True)

    def __enter__(self) -> "ProcessWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def idle_workers(self) -> int:
        """Workers currently without a dispatched task."""
        if not self._started:
            return self.num_workers
        return len(self._idle)

    @property
    def inflight(self) -> int:
        """Tasks dispatched but not yet collected by :meth:`poll`."""
        return len(self._pending)

    # -- dispatch ------------------------------------------------------------

    def _ship_array(self, array: np.ndarray, handles: list):
        """Descriptor for ``array``: a parent-owned shm segment when it
        clears the threshold, the pickled array itself otherwise."""
        if array.nbytes >= self.shm_threshold:
            seg = shared_memory.SharedMemory(create=True, size=array.nbytes)
            np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf)[:] = (
                array
            )
            handles.append(seg)
            self.shm_tasks += 1
            self.shm_bytes += array.nbytes
            get_metrics().inc("service.pool.shm_tasks")
            get_metrics().inc("service.pool.shm_bytes", array.nbytes)
            return ("shm", seg.name, array.shape, array.dtype.str)
        self.pickle_tasks += 1
        get_metrics().inc("service.pool.pickle_tasks")
        return ("inline", array)

    def submit(
        self,
        circuit,
        spec: BatchSpec,
        mega: np.ndarray,
        total_columns: int,
        job_columns: list[int],
        trace: bool | None = None,
        job_ids: list[str] | None = None,
    ) -> tuple[int, int]:
        """Dispatch one packed mega-block to an idle worker.

        ``mega`` is the padded ``(2**n, spec.num_inputs)`` block the serial
        path would execute; ``job_columns`` are the unpadded per-job column
        counts (summing to ``total_columns``); ``job_ids`` (optional, same
        order) are stamped onto the worker's ``pool.megabatch``/``pool.solo``
        spans so a merged trace correlates one job across processes.
        Returns ``(task_id, wid)``.  Raises :class:`ServiceError` when no
        worker is idle — callers poll first.
        """
        self.start()
        if not self._idle:
            raise ServiceError("no idle pool worker (poll for results first)")
        if trace is None:
            trace = get_tracer().enabled
        wid = min(self._idle)
        self._idle.discard(wid)
        task_id = next(self._task_ids)
        handles: list[shared_memory.SharedMemory] = []
        inputs = self._ship_array(mega, handles)
        out_bytes = mega.shape[0] * total_columns * 16
        out_shm = None
        out_seg = None
        if out_bytes >= self.shm_threshold:
            out_seg = shared_memory.SharedMemory(create=True, size=out_bytes)
            handles.append(out_seg)
            out_shm = (out_seg.name, (mega.shape[0], total_columns))
            self.shm_bytes += out_bytes
            get_metrics().inc("service.pool.shm_bytes", out_bytes)
        task = {
            "task_id": task_id,
            "circuit": circuit,
            "spec": (spec.num_batches, spec.batch_size, spec.seed),
            "inputs": inputs,
            "out_shm": out_shm,
            "total_columns": total_columns,
            "job_columns": list(job_columns),
            "job_ids": list(job_ids or []),
            "trace": bool(trace),
        }
        self._pending[task_id] = {
            "wid": wid,
            "handles": handles,
            "out_seg": out_seg,
            "out_shape": (mega.shape[0], total_columns),
            "dispatched_at": time.perf_counter() - get_tracer().epoch,
        }
        self._task_qs[wid].put(task)
        self.dispatched += 1
        get_metrics().inc("service.pool.dispatched")
        get_metrics().gauge("service.pool.inflight", self.inflight)
        return task_id, wid

    # -- collection ----------------------------------------------------------

    def _release_segments(self, pending: dict) -> None:
        for seg in pending["handles"]:
            try:
                seg.close()
                seg.unlink()
            except Exception:  # pragma: no cover - already gone
                pass

    def _finalize(self, raw: dict) -> dict:
        pending = self._pending.pop(raw["task_id"])
        wid = pending["wid"]
        self._idle.add(wid)
        outputs = None
        if raw["outputs"] is not None:
            if raw["outputs"][0] == "shm":
                seg = pending["out_seg"]
                outputs = np.ndarray(
                    pending["out_shape"], dtype=np.complex128, buffer=seg.buf
                ).copy()
            else:
                outputs = raw["outputs"][1]
        self._release_segments(pending)
        self.completed += 1
        stats = self._worker_stats[wid]
        stats["megabatches"] += 1
        stats["solo_runs"] += raw["solo_runs"]
        stats["jobs_done"] += sum(
            1 for pj in raw["per_job"] or [] if pj["ok"]
        )
        self._plan_cache[wid] = raw["plan_cache"]
        metrics = get_metrics()
        metrics.inc("service.pool.completed")
        metrics.observe("service.pool.task_wall_s", raw["wall_s"])
        metrics.gauge("service.pool.inflight", self.inflight)
        if raw["spans"]:
            get_tracer().absorb(
                raw["spans"],
                thread=f"pool-worker-{wid}",
                offset=pending["dispatched_at"],
            )
        raw["outputs"] = outputs
        return raw

    def poll(self, block: bool = False, timeout: float = 60.0) -> list[dict]:
        """Collect finished task results (empty list when none are ready).

        ``block=True`` waits up to ``timeout`` seconds for at least one
        result while there is anything in flight, failing any task whose
        worker died rather than hanging forever.
        """
        import queue as _queue

        results = []
        if self._result_q is None:
            return results
        while True:
            try:
                results.append(self._finalize(self._result_q.get_nowait()))
            except _queue.Empty:
                break
        if results or not block or not self._pending:
            return results
        deadline = time.monotonic() + timeout
        while not results:
            try:
                results.append(
                    self._finalize(self._result_q.get(timeout=_POLL_TICK_S))
                )
            except _queue.Empty:
                dead = [
                    tid
                    for tid, pending in self._pending.items()
                    if not self._procs[pending["wid"]].is_alive()
                ]
                for tid in dead:
                    results.append(self._fail_dead_worker(tid))
                if results:
                    break
                if time.monotonic() > deadline:
                    raise ServiceError(
                        f"pool poll timed out after {timeout}s with "
                        f"{self.inflight} task(s) in flight"
                    )
        return results

    def _fail_dead_worker(self, task_id: int) -> dict:
        """Synthesize a failure result for a task whose worker crashed."""
        pending = self._pending[task_id]
        wid = pending["wid"]
        get_metrics().inc("service.pool.worker_deaths")
        raw = {
            "task_id": task_id,
            "wid": wid,
            "degraded": True,
            "cause": f"pool worker {wid} died",
            "per_job": None,  # caller fails every member
            "outputs": None,
            "modeled_s": 0.0,
            "plan_source": "",
            "solo_runs": 0,
            "plan_cache": self._plan_cache.get(
                wid, {"hits": 0, "disk_hits": 0, "misses": 0, "quarantined": 0}
            ),
            "spans": [],
            "wall_s": 0.0,
        }
        finalized = self._finalize(raw)
        # a dead worker is not idle: it can never take another task
        self._idle.discard(wid)
        return finalized

    # -- reporting -----------------------------------------------------------

    def worker_summaries(self) -> list[dict]:
        """Per-worker tallies shaped like the serial service's entries."""
        return [self._worker_stats[wid] for wid in sorted(self._worker_stats)]

    def plan_cache_totals(self) -> dict[str, int]:
        """Fleet-wide plan-cache counters (sum of last per-worker
        snapshots)."""
        keys = ("hits", "disk_hits", "misses", "quarantined")
        return {
            key: sum(snap.get(key, 0) for snap in self._plan_cache.values())
            for key in keys
        }

    def stats(self) -> dict:
        """JSON-safe pool summary for ``service.stats()["pool"]``."""
        return {
            "workers": self.num_workers,
            "idle": self.idle_workers,
            "inflight": self.inflight,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "shm_tasks": self.shm_tasks,
            "pickle_tasks": self.pickle_tasks,
            "shm_bytes": self.shm_bytes,
            "cache_dir": self.cache_dir,
        }
