"""Fidelity-budgeted approximate simulation (``repro.approx``).

The approximation tier trades *bounded* fidelity for smaller decision
diagrams: low-weight DD branches are pruned and renormalized, every
pruned gate's fidelity is measured exactly on the DDs, and a
:class:`FidelityLedger` composes the per-gate fidelities into an
end-to-end guarantee ``achieved >= budget``.  Smaller DDs mean lower
BQCS cost (max NZR), narrower ELL matrices, and fewer MACs per
amplitude — the speedup side of the ablation in
``benchmarks/bench_ext_approx.py``.

A budget of ``1.0`` is the exact tier: the plan is passed through
untouched and results are bit-identical to a run without the pass.
Budgets below ``1.0`` partition jobs into fidelity classes throughout
the serving stack (plan fingerprints, the coalescer, shard placement),
so an exact job never lands in an approximate mega-batch.

See ``docs/approximation.md`` for the user guide.
"""

from .prune import (
    THRESHOLD_LADDER,
    FidelityLedger,
    GateApproximation,
    gate_fidelity,
    prune_edge,
    prune_plan,
    renormalize,
)

__all__ = [
    "FidelityLedger",
    "GateApproximation",
    "gate_fidelity",
    "prune_edge",
    "prune_plan",
    "renormalize",
    "THRESHOLD_LADDER",
]
