"""Timeline inspection and export: Chrome-trace JSON and ASCII Gantt.

A :class:`~repro.gpu.engine.Timeline` holds the scheduled tasks of one
virtual-GPU run; this module renders it for humans (terminal Gantt chart)
and for tools (the Trace Event format consumed by ``chrome://tracing`` and
Perfetto) — the debugging surface a real task-graph runtime ships with.
"""

from __future__ import annotations

import json
from typing import Sequence

from ..errors import DeviceError
from .engine import ENGINES, Task, Timeline

#: stable lane order for rendering
_LANES = ("host", "h2d", "compute", "d2h")


def to_chrome_trace(timeline: Timeline, time_unit: float = 1e-6) -> str:
    """Serialize a timeline as Trace Event JSON (complete 'X' events).

    ``time_unit`` converts modeled seconds into the microseconds the format
    expects (1e-6 means timestamps are reported in real microseconds).
    """
    events = []
    for task in timeline.tasks:
        if task.start < 0:
            raise DeviceError(f"task {task.name!r} is not scheduled")
        events.append(
            {
                "name": task.name,
                "cat": task.engine,
                "ph": "X",
                "ts": task.start / time_unit,
                "dur": task.duration / time_unit,
                "pid": 0,
                "tid": _LANES.index(task.engine) if task.engine in _LANES else 99,
                "args": {"deps": list(task.deps)},
            }
        )
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": i,
            "args": {"name": lane},
        }
        for i, lane in enumerate(_LANES)
    ]
    return json.dumps({"traceEvents": meta + events}, indent=1)


def render_gantt(
    timeline: Timeline,
    width: int = 72,
    lanes: Sequence[str] = _LANES,
) -> str:
    """ASCII Gantt chart: one row per engine, '#' marks busy spans."""
    span = timeline.makespan
    if span <= 0:
        return "(empty timeline)"
    lines = []
    for lane in lanes:
        tasks = timeline.engine_tasks(lane)
        if not tasks:
            continue
        row = [" "] * width
        for task in tasks:
            lo = int(task.start / span * (width - 1))
            hi = max(int(task.end / span * (width - 1)), lo)
            for i in range(lo, hi + 1):
                row[i] = "#"
        busy = timeline.busy_time(lane)
        lines.append(
            f"{lane:>8} |{''.join(row)}| {busy * 1e3:8.3f} ms "
            f"({timeline.utilization(lane) * 100:5.1f}%)"
        )
    lines.append(
        f"{'total':>8}  {' ' * width}  {span * 1e3:8.3f} ms "
        f"(overlap {timeline.overlap_fraction() * 100:.0f}%)"
    )
    return "\n".join(lines)


def summarize(timeline: Timeline) -> dict:
    """Machine-readable timeline statistics."""
    return {
        "makespan_s": timeline.makespan,
        "num_tasks": len(timeline.tasks),
        "overlap_fraction": timeline.overlap_fraction(),
        "busy_s": {e: timeline.busy_time(e) for e in ENGINES},
        "utilization": {e: timeline.utilization(e) for e in ENGINES},
    }
