"""Tests for the multi-GPU batch-partitioning extension."""

import numpy as np
import pytest

from repro.circuit import generate_batches
from repro.circuit.generators import make_circuit
from repro.sim import BQSimSimulator, BatchSpec, MultiGpuBQSimSimulator
from repro.sim.statevector import simulate_batch
from repro.errors import SimulationError


def test_outputs_match_reference_and_order():
    circuit = make_circuit("vqe", 6)
    spec = BatchSpec(num_batches=7, batch_size=8, seed=9)
    batches = list(generate_batches(6, 7, 8, 9))
    result = MultiGpuBQSimSimulator(num_devices=3).run(circuit, spec, batches=batches)
    assert len(result.outputs) == 7
    for out, batch in zip(result.outputs, batches):
        assert np.allclose(out, simulate_batch(circuit, batch), atol=1e-8)


def test_speedup_approaches_device_count():
    circuit = make_circuit("vqe", 10)
    spec = BatchSpec(num_batches=64, batch_size=256)
    single = BQSimSimulator().run(circuit, spec, execute=False)
    quad = MultiGpuBQSimSimulator(num_devices=4).run(circuit, spec, execute=False)
    speedup = single.breakdown["simulation"] / quad.breakdown["simulation"]
    assert 3.0 < speedup <= 4.0
    # one-time stages are shared, not multiplied
    assert quad.breakdown["fusion"] == single.breakdown["fusion"]


def test_one_device_matches_plain_bqsim():
    circuit = make_circuit("vqe", 8)
    spec = BatchSpec(num_batches=6, batch_size=64)
    single = BQSimSimulator().run(circuit, spec, execute=False)
    one = MultiGpuBQSimSimulator(num_devices=1).run(circuit, spec, execute=False)
    assert one.breakdown["simulation"] == pytest.approx(
        single.breakdown["simulation"], rel=1e-9
    )


def test_more_devices_than_batches():
    circuit = make_circuit("routing", 6)
    spec = BatchSpec(num_batches=2, batch_size=8)
    result = MultiGpuBQSimSimulator(num_devices=5).run(circuit, spec, execute=False)
    makespans = result.stats["device_makespans"]
    assert len(makespans) == 5
    assert sum(1 for m in makespans if m > 0) == 2


def test_rejects_zero_devices():
    with pytest.raises(SimulationError, match="at least one"):
        MultiGpuBQSimSimulator(num_devices=0)
