"""Quantum gate library.

A :class:`Gate` is an *instance* of a named gate applied to concrete qubits,
optionally under positive controls.  The base matrix of a gate acts on
``gate.qubits`` only; control qubits are kept symbolic (``gate.controls``) so
that decision-diagram construction and cost analysis can exploit control
structure instead of expanding dense controlled matrices.

Qubit-order convention (matching Qiskit): ``qubits[i]`` contributes bit ``i``
of the *local* matrix index, and global state index bit ``q`` is the value of
qubit ``q``; qubit 0 is the least-significant bit of the state index.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..errors import CircuitError

SQRT1_2 = 1.0 / math.sqrt(2.0)


def _mat(rows: Sequence[Sequence[complex]]) -> np.ndarray:
    return np.array(rows, dtype=np.complex128)


# ---------------------------------------------------------------------------
# Base matrices for the standard gate set
# ---------------------------------------------------------------------------

def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat([[c, -1j * s], [-1j * s, c]])


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat([[c, -s], [s, c]])


def _rz(theta: float) -> np.ndarray:
    e = cmath.exp(-1j * theta / 2)
    return _mat([[e, 0], [0, e.conjugate()]])


def _p(lam: float) -> np.ndarray:
    return _mat([[1, 0], [0, cmath.exp(1j * lam)]])


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ]
    )


def _u2(phi: float, lam: float) -> np.ndarray:
    return _u3(math.pi / 2, phi, lam)


def _rzz(theta: float) -> np.ndarray:
    e = cmath.exp(-1j * theta / 2)
    return np.diag([e, e.conjugate(), e.conjugate(), e]).astype(np.complex128)


def _rxx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), -1j * math.sin(theta / 2)
    m = np.zeros((4, 4), dtype=np.complex128)
    for i in range(4):
        m[i, i] = c
        m[i, i ^ 3] = s
    return m


def _ryy(theta: float) -> np.ndarray:
    # RYY = cos(t/2) I - i sin(t/2) (Y (x) Y); the anti-diagonal of Y (x) Y is
    # (-1, 1, 1, -1) for local indices 0..3.
    c, s = math.cos(theta / 2), 1j * math.sin(theta / 2)
    m = np.zeros((4, 4), dtype=np.complex128)
    for i in range(4):
        m[i, i] = c
        m[i, i ^ 3] = -s if i in (1, 2) else s
    return m


def _fsim(theta: float, phi: float) -> np.ndarray:
    # Google Sycamore's fSim gate: partial iSWAP plus controlled phase.
    c, s = math.cos(theta), math.sin(theta)
    return _mat(
        [
            [1, 0, 0, 0],
            [0, c, -1j * s, 0],
            [0, -1j * s, c, 0],
            [0, 0, 0, cmath.exp(-1j * phi)],
        ]
    )


_SWAP = _mat([[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]])
_ISWAP = _mat([[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]])

_FIXED: dict[str, np.ndarray] = {
    "id": _mat([[1, 0], [0, 1]]),
    "x": _mat([[0, 1], [1, 0]]),
    "y": _mat([[0, -1j], [1j, 0]]),
    "z": _mat([[1, 0], [0, -1]]),
    "h": _mat([[SQRT1_2, SQRT1_2], [SQRT1_2, -SQRT1_2]]),
    "s": _mat([[1, 0], [0, 1j]]),
    "sdg": _mat([[1, 0], [0, -1j]]),
    "t": _mat([[1, 0], [0, cmath.exp(1j * math.pi / 4)]]),
    "tdg": _mat([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]]),
    "sx": 0.5 * _mat([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]]),
    "sxdg": 0.5 * _mat([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]]),
    "swap": _SWAP,
    "iswap": _ISWAP,
}

_PARAMETRIC: dict[str, tuple[int, Callable[..., np.ndarray]]] = {
    "rx": (1, _rx),
    "ry": (1, _ry),
    "rz": (1, _rz),
    "p": (1, _p),
    "u1": (1, _p),
    "u2": (2, _u2),
    "u3": (3, _u3),
    "u": (3, _u3),
    "rzz": (1, _rzz),
    "rxx": (1, _rxx),
    "ryy": (1, _ryy),
    "fsim": (2, _fsim),
}

#: number of non-control qubits each named gate's base matrix acts on
_BASE_ARITY: dict[str, int] = {name: 1 for name in _FIXED}
_BASE_ARITY.update(
    {"swap": 2, "iswap": 2, "rzz": 2, "rxx": 2, "ryy": 2, "fsim": 2}
)
for _name, (_nparams, _fn) in _PARAMETRIC.items():
    _BASE_ARITY.setdefault(_name, 1)

#: gates whose printed name is a controlled alias: name -> (base, #controls)
CONTROLLED_ALIASES: dict[str, tuple[str, int]] = {
    "cx": ("x", 1),
    "cnot": ("x", 1),
    "cy": ("y", 1),
    "cz": ("z", 1),
    "ch": ("h", 1),
    "cs": ("s", 1),
    "csx": ("sx", 1),
    "cp": ("p", 1),
    "cu1": ("p", 1),
    "crx": ("rx", 1),
    "cry": ("ry", 1),
    "crz": ("rz", 1),
    "cu3": ("u3", 1),
    "cswap": ("swap", 1),
    "ccx": ("x", 2),
    "ccz": ("z", 2),
    "mcx": ("x", -1),  # arity inferred from operand count
}


def base_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Return the base (uncontrolled) unitary for gate ``name``.

    Raises :class:`CircuitError` for unknown names or wrong parameter counts.
    """
    if name in _FIXED:
        if params:
            raise CircuitError(f"gate '{name}' takes no parameters, got {len(params)}")
        return _FIXED[name].copy()
    if name in _PARAMETRIC:
        nparams, fn = _PARAMETRIC[name]
        if len(params) != nparams:
            raise CircuitError(
                f"gate '{name}' takes {nparams} parameter(s), got {len(params)}"
            )
        return fn(*params)
    raise CircuitError(f"unknown gate '{name}'")


def base_arity(name: str) -> int:
    """Number of target qubits of ``name``'s base matrix."""
    try:
        return _BASE_ARITY[name]
    except KeyError:
        raise CircuitError(f"unknown gate '{name}'") from None


def known_gate_names() -> frozenset[str]:
    """All gate names accepted by :func:`base_matrix`, plus controlled aliases."""
    return frozenset(_BASE_ARITY) | frozenset(CONTROLLED_ALIASES)


@dataclass(frozen=True)
class Gate:
    """One gate application inside a circuit.

    Attributes:
        name: base gate name (controlled aliases are resolved at construction).
        qubits: target qubits; ``qubits[i]`` is bit ``i`` of the local index.
        params: rotation angles / phases.
        controls: positive-control qubits (all must be ``1`` to apply).
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = ()
    controls: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        arity = base_arity(self.name)
        if len(self.qubits) != arity:
            raise CircuitError(
                f"gate '{self.name}' acts on {arity} qubit(s), got {len(self.qubits)}"
            )
        all_qubits = self.qubits + self.controls
        if len(set(all_qubits)) != len(all_qubits):
            raise CircuitError(f"duplicate qubit in {self!r}")
        if any(q < 0 for q in all_qubits):
            raise CircuitError(f"negative qubit index in {self!r}")
        base_matrix(self.name, self.params)  # validates name/params eagerly

    @staticmethod
    def make(
        name: str,
        qubits: Sequence[int],
        params: Sequence[float] = (),
        controls: Sequence[int] = (),
    ) -> "Gate":
        """Build a gate, resolving controlled aliases like ``cx`` or ``ccz``.

        For aliases, leading operands in ``qubits`` are the controls, matching
        OpenQASM convention (``cx control, target``).
        """
        name = name.lower()
        extra_controls: tuple[int, ...] = tuple(controls)
        if name in CONTROLLED_ALIASES:
            base, nctrl = CONTROLLED_ALIASES[name]
            if nctrl < 0:  # mcx: everything but the last operand is a control
                nctrl = len(qubits) - base_arity(base)
            if nctrl < 0 or len(qubits) < nctrl + base_arity(base):
                raise CircuitError(f"too few operands for '{name}': {qubits}")
            extra_controls = extra_controls + tuple(qubits[:nctrl])
            qubits = qubits[nctrl:]
            name = base
        return Gate(name, tuple(qubits), tuple(params), extra_controls)

    @property
    def all_qubits(self) -> tuple[int, ...]:
        """Targets followed by controls."""
        return self.qubits + self.controls

    @property
    def num_qubits(self) -> int:
        return len(self.qubits) + len(self.controls)

    def matrix(self) -> np.ndarray:
        """Base matrix over ``self.qubits`` (controls not expanded)."""
        return base_matrix(self.name, self.params)

    def full_matrix(self) -> np.ndarray:
        """Dense unitary over ``self.all_qubits`` with controls expanded.

        Local bit ``i`` is ``all_qubits[i]``: target bits first, then control
        bits (most-significant).
        """
        base = self.matrix()
        k_t = len(self.qubits)
        k = self.num_qubits
        dim = 1 << k
        full = np.eye(dim, dtype=np.complex128)
        ctrl_mask = ((1 << len(self.controls)) - 1) << k_t
        block = slice(ctrl_mask, ctrl_mask + (1 << k_t))
        full[block, block] = base
        return full

    def is_diagonal(self, tol: float = 1e-12) -> bool:
        """True if the expanded gate matrix is diagonal."""
        m = self.matrix()
        return bool(np.allclose(m, np.diag(np.diag(m)), atol=tol))

    def dagger(self) -> "Gate":
        """Inverse gate (conjugate-transpose), staying in the named gate set."""
        inverses = {
            "s": "sdg",
            "sdg": "s",
            "t": "tdg",
            "tdg": "t",
            "sx": "sxdg",
            "sxdg": "sx",
        }
        if self.name in inverses:
            return Gate(inverses[self.name], self.qubits, (), self.controls)
        if self.name in ("id", "x", "y", "z", "h", "swap"):
            return self
        if self.name in ("rx", "ry", "rz", "p", "u1", "rzz", "rxx", "ryy"):
            return Gate(self.name, self.qubits, (-self.params[0],), self.controls)
        if self.name == "fsim":
            th, ph = self.params
            return Gate(self.name, self.qubits, (-th, -ph), self.controls)
        if self.name in ("u3", "u"):
            th, ph, lam = self.params
            return Gate(self.name, self.qubits, (-th, -lam, -ph), self.controls)
        if self.name == "u2":
            ph, lam = self.params
            return Gate("u3", self.qubits, (-math.pi / 2, -lam, -ph), self.controls)
        if self.name == "iswap":
            raise CircuitError("iswap inverse is not in the named gate set")
        raise CircuitError(f"no symbolic inverse for '{self.name}'")

    def __str__(self) -> str:
        args = ",".join(f"{p:.6g}" for p in self.params)
        head = f"{self.name}({args})" if args else self.name
        operands = ",".join(
            [f"c{q}" for q in self.controls] + [f"q{q}" for q in self.qubits]
        )
        return f"{head} {operands}"
