"""Roofline-based power model (the Figure 11 substitution).

Average GPU power is modeled as idle power plus two activity terms: the FP
pipelines draw in proportion to the *achieved* MAC rate and the memory
system in proportion to the achieved bandwidth.  This captures the paper's
finding: cuQuantum's dense batched applies are compute-bound (high
arithmetic intensity, high draw, and ~3x more total MACs), while BQSim's
ELL spMM is memory-bound and draws markedly less despite keeping the GPU
busy.  Host power scales with modeled core utilization, which is what makes
the 8-process Aer/FlatDD setups expensive on the CPU side.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import CpuSpec, GpuSpec


@dataclass(frozen=True)
class PowerReport:
    """Average power draw (watts) over one simulation run."""

    gpu_watts: float
    cpu_watts: float

    @property
    def total_watts(self) -> float:
        return self.gpu_watts + self.cpu_watts

    def energy_joules(self, runtime_s: float) -> float:
        return self.total_watts * runtime_s


def gpu_power_from_work(
    macs: float, bytes_moved: float, runtime_s: float, spec: GpuSpec
) -> float:
    """Average GPU power given total kernel work over a runtime."""
    if runtime_s <= 0:
        return spec.idle_power
    mac_util = min(macs / (runtime_s * spec.mac_rate), 1.0)
    bw_util = min(bytes_moved / (runtime_s * spec.mem_bandwidth), 1.0)
    return spec.idle_power + mac_util * spec.compute_power + bw_util * spec.mem_power


def cpu_power_from_utilization(utilization: float, spec: CpuSpec) -> float:
    """Average host power at a given multicore utilization in [0, 1]."""
    u = min(max(utilization, 0.0), 1.0)
    return spec.idle_power + u * spec.active_power
