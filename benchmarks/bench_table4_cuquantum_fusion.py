"""Table 4 — BQCS runtime vs cuQuantum+B and cuQuantum+Q."""

from conftest import run_once
from repro.bench.experiments import table4


def test_table4_execution_strategies(benchmark, scale):
    rows = run_once(benchmark, table4.run, scale)
    for row in rows:
        assert row["speedup_cuquantum+Q"] > 1
    if scale == "paper":
        # BQSim's wide fused gates cannot be materialized densely for the
        # batched API on several circuits (the paper's "-" runs)
        assert any(r["cuquantum+B_failed"] for r in rows)
