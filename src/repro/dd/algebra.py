"""Extended DD algebra: adjoint, Kronecker product, trace, inner products.

These are the operations DD-based verification tools (equivalence checkers,
observable evaluation) need beyond the simulator core, implemented
structurally on the hash-consed graphs so structured operands stay compact.
"""

from __future__ import annotations

import cmath

from ..errors import DDError
from .manager import DDManager
from .node import Edge, ZERO_EDGE


def adjoint(mgr: DDManager, matrix: Edge) -> Edge:
    """Conjugate transpose of a matrix DD.

    Transposition swaps the off-diagonal children (row/col bit exchange);
    conjugation maps every weight to its conjugate.  Memoized per node.
    """
    memo: dict[int, Edge] = {}

    def rec(e: Edge) -> Edge:
        if e.weight == 0:
            return ZERO_EDGE
        if e.node is None:
            return mgr.terminal(e.weight.conjugate())
        hit = memo.get(e.node.nid)
        if hit is None:
            c = e.node.children
            hit = mgr.make_mnode(
                e.node.level, (rec(c[0]), rec(c[2]), rec(c[1]), rec(c[3]))
            )
            memo[e.node.nid] = hit
        return hit.scaled(complex(e.weight).conjugate())

    return rec(matrix)


def matrix_kron(mgr_out: DDManager, upper: Edge, lower: Edge, lower_qubits: int) -> Edge:
    """Kronecker product ``upper (x) lower`` (``lower`` on the low qubits).

    ``lower`` must span exactly ``lower_qubits`` levels; the result lives in
    ``mgr_out``, whose width must cover both operands.  Structure is shared:
    the lower DD is grafted under every terminal of the upper DD.
    """
    memo: dict[int, Edge] = {}

    def rebuild(e: Edge, shift: int) -> Edge:
        """Re-create ``e`` inside mgr_out, shifted up by ``shift`` levels."""
        if e.weight == 0:
            return ZERO_EDGE
        if e.node is None:
            return mgr_out.terminal(e.weight)
        key = (e.node.nid, shift)
        hit = memo.get(key)
        if hit is None:
            hit = mgr_out.make_mnode(
                e.node.level + shift,
                tuple(rebuild(c, shift) for c in e.node.children),
            )
            memo[key] = hit
        return hit.scaled(e.weight)

    lower_rebuilt = rebuild(lower, 0)
    if lower_rebuilt.weight != 0 and lower_rebuilt.level != lower_qubits - 1:
        raise DDError("lower operand does not span lower_qubits levels")

    graft_memo: dict[int, Edge] = {}

    def graft(e: Edge) -> Edge:
        if e.weight == 0:
            return ZERO_EDGE
        if e.node is None:
            return lower_rebuilt.scaled(e.weight)
        hit = graft_memo.get(e.node.nid)
        if hit is None:
            hit = mgr_out.make_mnode(
                e.node.level + lower_qubits,
                tuple(graft(c) for c in e.node.children),
            )
            graft_memo[e.node.nid] = hit
        return hit.scaled(e.weight)

    return graft(upper)


def trace(matrix: Edge, num_qubits: int) -> complex:
    """Trace of a matrix DD (sum of diagonal path products)."""
    memo: dict[int, complex] = {}

    def rec(e: Edge, level: int) -> complex:
        if e.weight == 0:
            return 0.0
        if e.node is None:
            return complex(e.weight)
        hit = memo.get(e.node.nid)
        if hit is None:
            c = e.node.children
            hit = rec(c[0], level - 1) + rec(c[3], level - 1)
            memo[e.node.nid] = hit
        return e.weight * hit

    if matrix.weight != 0 and matrix.node is not None and (
        matrix.node.level != num_qubits - 1
    ):
        raise DDError("matrix level does not match num_qubits")
    if matrix.node is None:
        return complex(matrix.weight) * (1 << num_qubits)
    return rec(matrix, num_qubits - 1)


def hilbert_schmidt(mgr: DDManager, a: Edge, b: Edge) -> complex:
    """Hilbert-Schmidt inner product ``tr(a^dagger b)``."""
    return trace(mgr.mm_multiply(adjoint(mgr, a), b), mgr.num_qubits)


def process_fidelity(mgr: DDManager, a: Edge, b: Edge) -> float:
    """``|tr(a^dagger b)|^2 / 4^n`` — 1 iff equal up to global phase (for
    unitaries)."""
    dim = 1 << mgr.num_qubits
    return abs(hilbert_schmidt(mgr, a, b)) ** 2 / (dim * dim)


def vector_inner(a: Edge, b: Edge) -> complex:
    """Inner product ``<a|b>`` of two vector DDs (levels aligned)."""
    memo: dict[tuple[int, int], complex] = {}

    def rec(x: Edge, y: Edge) -> complex:
        if x.weight == 0 or y.weight == 0:
            return 0.0
        if x.node is None and y.node is None:
            return complex(x.weight).conjugate() * y.weight
        if x.node is None or y.node is None or x.node.level != y.node.level:
            raise DDError("misaligned operands in vector inner product")
        key = (x.node.nid, y.node.nid)
        hit = memo.get(key)
        if hit is None:
            hit = sum(
                rec(cx, cy) for cx, cy in zip(x.node.children, y.node.children)
            )
            memo[key] = hit
        return complex(x.weight).conjugate() * y.weight * hit

    return rec(a, b)


def expectation(mgr: DDManager, matrix: Edge, state: Edge) -> complex:
    """``<state| matrix |state>`` evaluated entirely on DDs."""
    return vector_inner(state, mgr.mv_multiply(matrix, state))
