"""Integration tests: every experiment module runs at small scale and its
rows exhibit the paper's qualitative shape."""

import math

import pytest

from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    fig5,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    table1,
    table2,
    table3,
    table4,
)
from repro.bench.workloads import suite


def test_registry_is_complete():
    assert set(ALL_EXPERIMENTS) == {
        "table1", "table2", "table3", "table4",
        "fig5", "fig9", "fig10", "fig11", "fig12", "fig13",
        "ablation_formats", "scaling_multigpu",
    }


def test_suite_scales():
    small, small_spec, execute = suite("small")
    assert execute and small_spec.batch_size <= 32
    paper, paper_spec, execute = suite("paper")
    assert not execute
    assert paper_spec.num_batches == 200 and paper_spec.batch_size == 256
    assert len(paper) == 16
    with pytest.raises(KeyError):
        suite("galactic")


def test_table1_cv_shape():
    rows = table1.run("small")
    by_family = {r["family"]: r["cv"] for r in rows}
    # NZR is perfectly uniform for the ansatz families, non-uniform for the
    # supremacy circuit (fSim rows carry 1 or 2 non-zeros)
    assert by_family["vqe"] == pytest.approx(0.0, abs=1e-12)
    assert by_family["qnn"] == pytest.approx(0.0, abs=1e-12)
    assert by_family["tsp"] == pytest.approx(0.0, abs=1e-12)
    assert by_family["supremacy"] > 0.0


def test_table2_runs_and_reports_all_simulators():
    rows = table2.run("small", execute=False)
    assert len(rows) == 6
    for row in rows:
        for name in ("cuquantum_s", "qiskit-aer_s", "flatdd_s", "bqsim_s"):
            assert row[name] > 0
        # BQSim beats the per-input simulators even at small scale
        assert row["speedup_qiskit-aer"] > 1
        assert row["speedup_flatdd"] > 1


def test_table3_ordering():
    rows = table3.run("small")
    for row in rows:
        assert row["bqsim_cost"] <= row["flatdd_cost"]
        assert row["bqsim_cost"] <= row["qiskit-aer_cost"]
        assert row["qiskit-aer_cost"] <= row["cuquantum_cost"]
        assert row["bqsim_macs"] == row["bqsim_cost"] * (1 << row["num_qubits"])


def test_table4_speedups_positive():
    rows = table4.run("small", execute=False)
    for row in rows:
        assert row["speedup_cuquantum+Q"] > 1
        if not row["cuquantum+B_failed"]:
            assert row["speedup_cuquantum+B"] > 1


def test_fig5_crossover_shape():
    data = fig5.run("small")
    # at fixed qubit count, the GPU/CPU ratio grows with edge count (thread
    # divergence); mixing sizes would confound the trend with launch overhead
    biggest_n = max(s["num_qubits"] for s in data["samples"])
    group = sorted(
        (s for s in data["samples"] if s["num_qubits"] == biggest_n),
        key=lambda s: s["edges"],
    )
    assert group[-1]["gpu_s"] / group[-1]["cpu_s"] > group[0]["gpu_s"] / group[0]["cpu_s"]
    # per-gate CPU time grows faster with qubit count than GPU time
    series = data["time_vs_qubits"]
    assert series[-1]["cpu_ms"] / series[0]["cpu_ms"] > series[-1]["gpu_ms"] / series[0]["gpu_ms"]


def test_fig9_hybrid_never_loses():
    for row in fig9.run("small"):
        assert row["norm_gpu"] >= 1.0 - 1e-9
        assert row["norm_cpu"] >= 1.0 - 1e-9


def test_fig10_speedup_grows_with_batch_size():
    rows = fig10.run("small")
    by_circuit: dict[tuple, list] = {}
    for r in rows:
        by_circuit.setdefault((r["family"], r["num_qubits"]), []).append(r)
    for series in by_circuit.values():
        series.sort(key=lambda r: r["batch_size"])
        assert series[-1]["speedup"] > series[0]["speedup"]


def test_fig11_power_relations():
    # CPU-side relations hold at any scale; the GPU-side ordering (BQSim
    # below cuQuantum) needs at-scale kernels and is asserted in
    # test_sim_baselines.test_power_ordering
    rows = fig11.run("small")
    by_key = {(r["family"], r["simulator"]): r for r in rows}
    for family in {r["family"] for r in rows}:
        bq = by_key[(family, "bqsim")]
        assert bq["cpu_watts"] < by_key[(family, "qiskit-aer")]["cpu_watts"]
        assert by_key[(family, "flatdd")]["gpu_watts"] == 0
        # FlatDD draws less total power but burns far more energy
        assert by_key[(family, "flatdd")]["energy_j"] > bq["energy_j"]


def test_fig12_overhead_amortizes():
    rows = fig12.run("small")
    by_circuit: dict[tuple, list] = {}
    for r in rows:
        by_circuit.setdefault((r["family"], r["num_qubits"]), []).append(r)
    for series in by_circuit.values():
        series.sort(key=lambda r: r["num_batches"])
        overhead = [r["fusion_pct"] + r["conversion_pct"] for r in series]
        assert overhead[-1] < overhead[0]
        assert series[-1]["simulation_pct"] > series[0]["simulation_pct"]


def test_fig13_every_ablation_hurts_at_scale():
    rows = fig13.run("small")
    for row in rows:
        # normalized against the full pipeline; dropping any stage cannot
        # make the *simulation* faster, though at tiny scale one-time stage
        # savings may mask it — so compare with a small tolerance
        assert row["norm_no-task-graph"] > 0.99
        assert row["norm_no-fusion"] > 0.99
        assert row["norm_no-ell"] > 0.99


def test_experiment_mains_print(capsys):
    table3.main("small")
    out = capsys.readouterr().out
    assert "Table 3" in out and "geomean" in out
