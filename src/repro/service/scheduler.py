"""Weighted-fair, deadline-aware job scheduling.

The scheduler answers one question per dispatch round: *which queued job
leads the next mega-batch?*  Its policy combines three ingredients:

* **weighted-fair priority aging** — a job's effective priority is its
  static priority plus ``aging_rate`` points per second of queue wait, so
  a sustained stream of high-priority arrivals can delay a low-priority
  job only linearly, never forever (starvation-freedom: for any
  ``aging_rate > 0`` and bounded static priorities, wait eventually
  dominates);
* **deadline-aware ordering** — jobs whose absolute deadline falls within
  ``urgent_window`` of now form an urgent class scheduled
  earliest-deadline-first ahead of everything else (a bounded EDF lane,
  so deadlines cannot be weaponized into a starvation channel: a job is
  only urgent for a bounded window);
* **deterministic tie-breaking** — equal scores resolve by submission
  sequence, so the schedule is a pure function of (queue contents, clock).

Admission control lives in :class:`~repro.service.queue.JobQueue`; the
scheduler only orders what was admitted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ServiceError
from ..obs.lifecycle import JobLifecycleLog, get_lifecycle_log
from .jobs import Job


@dataclass(frozen=True)
class SchedulerPolicy:
    """Tunable fairness knobs (defaults favor throughput, bounded wait).

    ``aging_rate`` is the effective-priority points a job earns per
    second of queue wait (any positive value guarantees
    starvation-freedom); ``urgent_window`` is how close a deadline must
    be before the job jumps to the bounded earliest-deadline-first lane.
    Example::

        policy = SchedulerPolicy(aging_rate=2.0, urgent_window=10.0)
        service = BatchSimulationService(policy=policy)
    """

    #: effective-priority points granted per second of queue wait; must be
    #: positive — zero would reintroduce starvation under sustained
    #: high-priority load
    aging_rate: float = 1.0
    #: seconds before its deadline at which a job enters the urgent
    #: (earliest-deadline-first) class
    urgent_window: float = 30.0

    def __post_init__(self) -> None:
        if self.aging_rate <= 0:
            raise ServiceError(
                "aging_rate must be > 0 (zero starves low-priority jobs)"
            )
        if self.urgent_window < 0:
            raise ServiceError("urgent_window must be >= 0")


class FairScheduler:
    """Orders queued jobs by (urgency, effective priority, seniority).

    Effective priority is ``priority + aging_rate × wait_seconds``, so a
    priority-0 job eventually outranks any stream of high-priority
    arrivals; deadline-urgent jobs preempt via a bounded EDF lane; ties
    break on submission sequence, making the schedule a deterministic
    function of (submissions, clock).  Example::

        scheduler = FairScheduler(SchedulerPolicy(aging_rate=1.0))
        ranked = scheduler.select(queue.jobs(), now=time.monotonic())
    """

    def __init__(
        self,
        policy: SchedulerPolicy | None = None,
        lifecycle: JobLifecycleLog | None = None,
    ) -> None:
        self.policy = policy or SchedulerPolicy()
        # explicit None test: an empty log is falsy (it defines __len__)
        self.lifecycle = (
            lifecycle if lifecycle is not None else get_lifecycle_log()
        )
        #: dispatch accounting, surfaced in service stats
        self.rounds = 0

    def effective_priority(self, job: Job, now: float) -> float:
        """Static priority plus linear aging credit for time in queue."""
        return job.priority + self.policy.aging_rate * max(
            0.0, now - job.submitted_at
        )

    def is_urgent(self, job: Job, now: float) -> bool:
        return (
            job.deadline is not None
            and job.deadline - now <= self.policy.urgent_window
        )

    def sort_key(self, job: Job, now: float):
        """Total order over queued jobs; smaller sorts first.

        Urgent jobs (class 0) order earliest-deadline-first; the rest
        (class 1) order by descending effective priority.  Submission
        sequence breaks every tie deterministically.
        """
        if self.is_urgent(job, now):
            return (0, job.deadline, -self.effective_priority(job, now), job.seq)
        return (1, -self.effective_priority(job, now), 0.0, job.seq)

    def rank(self, jobs: list[Job], now: float) -> list[Job]:
        """All queued jobs in dispatch order (does not mutate the queue)."""
        return sorted(jobs, key=lambda job: self.sort_key(job, now))

    def select(self, jobs: list[Job], now: float) -> Job | None:
        """The job that leads the next mega-batch (None when idle)."""
        if not jobs:
            return None
        self.rounds += 1
        head = min(jobs, key=lambda job: self.sort_key(job, now))
        self.lifecycle.emit(
            "scheduled", head.job_id, t=now,
            priority=head.priority,
            effective_priority=self.effective_priority(head, now),
            urgent=self.is_urgent(head, now),
            queue_age_s=max(0.0, now - head.submitted_at),
            round=self.rounds,
            # > 0 marks a redelivery: the job already crossed a worker
            # that died, and its aging credit carried over the requeue
            delivery=head.delivery_count,
        )
        return head
