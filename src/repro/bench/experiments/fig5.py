"""Figure 5 — GPU-based vs CPU-based DD-to-ELL conversion.

(a) conversion time vs number of qubits; (b) GPU/CPU time ratio vs number
of DD edges.  Data points come from converting each fused gate of several
circuits under both routes of the hybrid converter's cost model: GPU wins
on large simple DDs, CPU wins once edge-heavy DDs make the kernel diverge.
"""

from __future__ import annotations

from ...circuit.generators import make_circuit
from ...dd.export import count_edges
from ...dd.manager import DDManager
from ...fusion.bqcs import bqcs_fusion
from ...gpu.spec import CpuSpec, GpuSpec
from ..tables import print_table

#: circuits sampled for per-gate conversion data: (family, [qubit counts])
SWEEPS = {
    "small": (("vqe", (6, 8, 10)), ("qnn", (6, 8)), ("tsp", (6, 8, 10))),
    "medium": (("vqe", (10, 12, 14, 16)), ("qnn", (10, 12)), ("tsp", (9, 12, 16))),
    "paper": (("vqe", (10, 12, 14, 16)), ("qnn", (12, 14, 17)), ("tsp", (9, 16))),
}


def gate_conversion_samples(scale: str = "small") -> list[dict]:
    """One sample per fused gate: qubit count, edges, both modeled times."""
    gpu, cpu = GpuSpec(), CpuSpec()
    samples = []
    for family, sizes in SWEEPS.get(scale, SWEEPS["small"]):
        for n in sizes:
            circuit = make_circuit(family, n)
            mgr = DDManager(n)
            plan = bqcs_fusion(mgr, circuit)
            rows = 1 << n
            for fused in plan.gates:
                edges = count_edges(fused.dd)
                samples.append(
                    {
                        "family": family,
                        "num_qubits": n,
                        "edges": edges,
                        "width": fused.cost,
                        "gpu_s": gpu.conversion_time(rows, fused.cost, edges),
                        "cpu_s": cpu.conversion_time(rows, fused.cost, edges),
                    }
                )
    return samples


def run(scale: str = "small") -> dict:
    samples = gate_conversion_samples(scale)
    by_qubits: dict[int, dict[str, float]] = {}
    for s in samples:
        agg = by_qubits.setdefault(s["num_qubits"], {"gpu": 0.0, "cpu": 0.0, "k": 0})
        agg["gpu"] += s["gpu_s"]
        agg["cpu"] += s["cpu_s"]
        agg["k"] += 1
    series_a = [
        {
            "num_qubits": n,
            "gpu_ms": 1e3 * agg["gpu"] / agg["k"],
            "cpu_ms": 1e3 * agg["cpu"] / agg["k"],
        }
        for n, agg in sorted(by_qubits.items())
    ]
    series_b = sorted(
        (
            {"edges": s["edges"], "ratio": s["gpu_s"] / s["cpu_s"]}
            for s in samples
        ),
        key=lambda d: d["edges"],
    )
    return {"samples": samples, "time_vs_qubits": series_a, "ratio_vs_edges": series_b}


def main(scale: str = "small") -> dict:
    data = run(scale)
    print_table(
        f"Figure 5a: mean conversion time per gate in ms (scale={scale})",
        ["#qubits", "GPU", "CPU"],
        [
            [r["num_qubits"], f"{r['gpu_ms']:.4f}", f"{r['cpu_ms']:.4f}"]
            for r in data["time_vs_qubits"]
        ],
    )
    ratios = data["ratio_vs_edges"]
    buckets = {}
    for r in ratios:
        key = 1 << max(r["edges"].bit_length() - 1, 0)
        buckets.setdefault(key, []).append(r["ratio"])
    print_table(
        "Figure 5b: GPU/CPU conversion-time ratio vs #edges (bucketed)",
        ["#edges >=", "mean ratio", "samples"],
        [
            [k, f"{sum(v) / len(v):.2f}", len(v)]
            for k, v in sorted(buckets.items())
        ],
    )
    return data


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
