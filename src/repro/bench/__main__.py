"""Run experiments from the command line:

    python -m repro.bench [experiment ...] [--scale small|medium|paper]
                          [--output DIR]

With no experiment names, runs everything at the requested scale; with
``--output``, also writes per-experiment JSON plus a Markdown report.
"""

import argparse
from pathlib import Path

from ..obs import get_metrics
from ..obs.export import metrics_record, write_metrics_jsonl
from .experiments import ALL_EXPERIMENTS
from .report import write_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", default=[])
    parser.add_argument(
        "--scale", default="small", choices=["small", "medium", "paper"]
    )
    parser.add_argument(
        "--output", default=None, help="directory for JSON/Markdown reports"
    )
    args = parser.parse_args()
    names = args.experiments or sorted(ALL_EXPERIMENTS)
    metrics = get_metrics()
    results = {}
    metric_rows = []
    for name in names:
        mark = metrics.mark()
        results[name] = ALL_EXPERIMENTS[name].main(args.scale)
        metric_rows.append(
            metrics_record(name, metrics.delta(mark), scale=args.scale)
        )
    if args.output:
        report = write_report(results, args.output, args.scale)
        metrics_path = write_metrics_jsonl(
            Path(args.output) / "metrics.jsonl", metric_rows
        )
        print(f"\nwrote {report}")
        print(f"wrote {metrics_path}")


if __name__ == "__main__":
    main()
