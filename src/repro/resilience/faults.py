"""Deterministic, seeded fault injection for the modeled runtime.

A :class:`FaultPlan` names the fault *sites* to perturb and at what rate;
a :class:`FaultInjector` turns the plan into reproducible per-site decision
streams (one seeded RNG per site, so the outcome of query ``k`` on a site
never depends on how other sites were queried).  The runtime consults the
injector at well-defined points:

========== =================================================================
site       effect when it fires
========== =================================================================
kernel     transient compute-kernel failure before launch
           (:meth:`VirtualGPU.kernel`) — healed by the retry layer
copy       transient H2D/D2H copy failure (:meth:`VirtualGPU.h2d`/``d2h``)
bitflip    one spMM result value becomes NaN (an ELL-value bit-flip);
           detected by the kernel output check and healed by a retry
oom        device/pool allocation raises :class:`~repro.errors.MemoryFault`
           (``VirtualGPU.alloc`` and :meth:`MemoryPool.allocate`) — healed
           by adaptive batch splitting
cache      a plan-cache archive read reports corruption — the archive is
           quarantined and the plan rebuilt
cache_io   transient plan-cache disk read failure — retried, then treated
           as a cache miss
spmm       the active spMM backend fails; ``spmm.<backend>`` targets one
           backend specifically — healed by the backend fallback ladder
========== =================================================================

Plans come from the API (``FaultPlan(specs=..., seed=...)``) or from the
``REPRO_FAULTS`` environment variable, e.g.::

    REPRO_FAULTS="seed=7,kernel=0.05,copy=0.01,oom=1:1"

Each entry is ``site=rate[:max_fires[:skip]]``: ``rate`` is the per-query
fire probability, ``max_fires`` caps total fires (empty = unlimited), and
``skip`` arms the site only after that many queries — which is how tests
kill a run at an exact batch boundary.
"""

from __future__ import annotations

import os
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from .events import get_resilience_log

#: environment variable holding the process-default fault plan
FAULTS_ENV = "REPRO_FAULTS"

#: recognised fault-site roots (``spmm`` may be qualified: ``spmm.csr``)
FAULT_SITES = ("kernel", "copy", "bitflip", "oom", "cache", "cache_io", "spmm")


@dataclass(frozen=True)
class FaultSpec:
    """One fault site's injection schedule."""

    site: str
    rate: float
    max_fires: int | None = None
    skip: int = 0

    def __post_init__(self) -> None:
        root = self.site.split(".", 1)[0]
        if root not in FAULT_SITES:
            raise SimulationError(
                f"unknown fault site {self.site!r}; roots are {FAULT_SITES}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise SimulationError(f"fault rate {self.rate} outside [0, 1]")
        if self.skip < 0 or (self.max_fires is not None and self.max_fires < 0):
            raise SimulationError("fault skip/max_fires must be non-negative")

    def describe(self) -> str:
        text = f"{self.site}={self.rate:g}"
        if self.max_fires is not None or self.skip:
            text += f":{'' if self.max_fires is None else self.max_fires}"
        if self.skip:
            text += f":{self.skip}"
        return text


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault specs; the unit of configuration."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` syntax (see module docstring)."""
        seed = 0
        specs: list[FaultSpec] = []
        for raw in text.split(","):
            raw = raw.strip()
            if not raw:
                continue
            if "=" not in raw:
                raise SimulationError(f"bad fault entry {raw!r}: expected key=value")
            key, value = raw.split("=", 1)
            key = key.strip()
            if key == "seed":
                seed = int(value)
                continue
            parts = value.split(":")
            try:
                rate = float(parts[0])
                max_fires = (
                    int(parts[1]) if len(parts) > 1 and parts[1] != "" else None
                )
                skip = int(parts[2]) if len(parts) > 2 and parts[2] != "" else 0
            except ValueError as exc:
                raise SimulationError(f"bad fault entry {raw!r}: {exc}") from None
            specs.append(FaultSpec(site=key, rate=rate, max_fires=max_fires, skip=skip))
        return cls(specs=tuple(specs), seed=seed)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"] + [s.describe() for s in self.specs]
        return ",".join(parts)


class FaultInjector:
    """Stateful decision engine for one :class:`FaultPlan`.

    Each site gets an independent RNG stream seeded by ``(plan.seed, site)``
    and independent query/fire counters, so injection is a pure function of
    the plan and the per-site query order — the basis of the determinism
    guarantees in ``tests/test_resilience.py``.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._specs = {spec.site: spec for spec in plan.specs}
        self._rngs: dict[str, np.random.Generator] = {}
        self.queries: dict[str, int] = {}
        self.fires: dict[str, int] = {}

    def _rng_for(self, site: str) -> np.random.Generator:
        rng = self._rngs.get(site)
        if rng is None:
            rng = np.random.default_rng(
                [self.plan.seed & 0xFFFFFFFF, zlib.crc32(site.encode())]
            )
            self._rngs[site] = rng
        return rng

    def _spec_for(self, site: str) -> FaultSpec | None:
        spec = self._specs.get(site)
        if spec is None and "." in site:
            spec = self._specs.get(site.split(".", 1)[0])
        return spec

    def check(self, site: str) -> bool:
        """One injection decision at ``site``; records a ``fault`` event
        (and advances the site's deterministic stream) when it fires."""
        spec = self._spec_for(site)
        if spec is None or spec.rate <= 0.0:
            return False
        query = self.queries.get(site, 0)
        self.queries[site] = query + 1
        if query < spec.skip:
            return False
        # fires are budgeted against the *spec's* site, so ``spmm=1:1``
        # caps the whole family (spmm.csr, spmm.numpy, ...) at one fire
        if (
            spec.max_fires is not None
            and self.fires.get(spec.site, 0) >= spec.max_fires
        ):
            return False
        if float(self._rng_for(site).random()) >= spec.rate:
            return False
        self.fires[spec.site] = self.fires.get(spec.site, 0) + 1
        get_resilience_log().record("fault", site=site, query=query)
        return True

    def draw_index(self, site: str, size: int) -> int:
        """Deterministic index draw from the site's stream (bit-flip targets)."""
        return int(self._rng_for(site).integers(size))

    def counts(self) -> dict:
        return {"queries": dict(self.queries), "fires": dict(self.fires)}


# ---------------------------------------------------------------------------
# process-global injector: explicit plan wins, else REPRO_FAULTS, else none
# ---------------------------------------------------------------------------

_explicit: FaultInjector | None = None
_explicit_set = False
_env_cache: tuple[str | None, FaultInjector | None] = (None, None)


def set_fault_plan(plan: FaultPlan | str | None) -> None:
    """Install a process-wide fault plan (``None`` reverts to the env)."""
    global _explicit, _explicit_set
    if plan is None:
        _explicit, _explicit_set = None, False
        return
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _explicit, _explicit_set = FaultInjector(plan), True


def get_fault_injector() -> FaultInjector | None:
    """The active injector: the explicitly installed one, else one lazily
    parsed from ``REPRO_FAULTS``, else ``None`` (injection disabled)."""
    if _explicit_set:
        return _explicit
    global _env_cache
    raw = os.environ.get(FAULTS_ENV) or None
    if raw != _env_cache[0]:
        _env_cache = (raw, FaultInjector(FaultPlan.parse(raw)) if raw else None)
    return _env_cache[1]


@contextmanager
def fault_injection(plan: FaultPlan | str | None):
    """Scope a fault plan to a block (a fresh injector per entry, so every
    run under the same plan sees the same decision streams).  ``None``
    leaves whatever is currently active in place."""
    if plan is None:
        yield get_fault_injector()
        return
    global _explicit, _explicit_set
    previous = (_explicit, _explicit_set)
    set_fault_plan(plan)
    try:
        yield _explicit
    finally:
        _explicit, _explicit_set = previous
