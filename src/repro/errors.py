"""Exception hierarchy for the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CircuitError(ReproError):
    """Malformed circuit, gate, or qubit specification."""


class QasmError(ReproError):
    """OpenQASM parsing failed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class DDError(ReproError):
    """Decision-diagram invariant violation or unsupported operation."""


class FusionError(ReproError):
    """Gate-fusion planning failed."""


class ConversionError(ReproError):
    """DD-to-ELL conversion failed."""


class DeviceError(ReproError):
    """Virtual-GPU misuse (bad buffer, unscheduled task, capacity overflow)."""


class SimulationError(ReproError):
    """Batch simulation failed or produced inconsistent results."""
