"""Exact density-matrix simulation (the reference for noisy runs).

Keeps the full ``2^n x 2^n`` density matrix and applies gates as
``U rho U^dagger`` and channels as Kraus sums, using the same index
machinery as the state-vector reference.  Exponentially sized in ``n`` —
intended as a small-``n`` oracle for validating the trajectory sampler.
"""

from __future__ import annotations

import numpy as np

from ..circuit.circuit import Circuit, gate_unitary
from ..errors import SimulationError
from .channels import NoiseModel

_MAX_QUBITS = 8


def _embed_single(num_qubits: int, qubit: int, op: np.ndarray) -> np.ndarray:
    """Embed a 2x2 operator on one qubit into the full space."""
    full = np.array([[1.0]], dtype=np.complex128)
    for q in reversed(range(num_qubits)):
        full = np.kron(full, op if q == qubit else np.eye(2))
    return full


def simulate_density(
    circuit: Circuit,
    noise: NoiseModel | None = None,
    initial: np.ndarray | None = None,
) -> np.ndarray:
    """Final density matrix of a (noisy) circuit run.

    ``initial`` may be a state vector or a density matrix; defaults to
    ``|0...0><0...0|``.
    """
    n = circuit.num_qubits
    if n > _MAX_QUBITS:
        raise SimulationError(
            f"density-matrix reference is limited to {_MAX_QUBITS} qubits"
        )
    dim = 1 << n
    if initial is None:
        rho = np.zeros((dim, dim), dtype=np.complex128)
        rho[0, 0] = 1.0
    elif initial.ndim == 1:
        state = initial.astype(np.complex128).reshape(dim, 1)
        rho = state @ state.conj().T
    else:
        rho = initial.astype(np.complex128).copy()
        if rho.shape != (dim, dim):
            raise SimulationError("initial density matrix has wrong shape")

    for gate in circuit.gates:
        u = gate_unitary(gate, n)
        rho = u @ rho @ u.conj().T
        if noise is not None:
            for qubit in gate.all_qubits:
                kraus_full = [
                    _embed_single(n, qubit, k)
                    for k in noise.gate_channel.kraus
                ]
                rho = sum(k @ rho @ k.conj().T for k in kraus_full)
    return rho


def density_probabilities(rho: np.ndarray) -> np.ndarray:
    """Measurement probabilities (the diagonal, clipped to real)."""
    return np.clip(np.real(np.diag(rho)), 0.0, 1.0)


def purity(rho: np.ndarray) -> float:
    """``tr(rho^2)`` — 1 for pure states, 1/2^n for maximally mixed."""
    return float(np.real(np.trace(rho @ rho)))


def state_fidelity_with_density(state: np.ndarray, rho: np.ndarray) -> float:
    """``<psi| rho |psi>`` for a pure target state."""
    state = state.reshape(-1)
    return float(np.real(state.conj() @ rho @ state))
