"""The ELL sparse-matrix format (value matrix + column-index matrix).

Each row stores exactly ``width`` entries, where ``width`` is the maximum
number of non-zeros per row (max NZR) of the matrix; shorter rows are padded
with ``(value 0, column 0)`` pairs, as in Figure 7a of the paper.  The padded
layout is what gives the BQCS kernel its uniform per-row #MAC and low thread
divergence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConversionError


@dataclass(frozen=True)
class ELLMatrix:
    """ELL representation of a ``2^n x 2^n`` gate matrix."""

    num_qubits: int
    values: np.ndarray  # complex128[rows, width]
    cols: np.ndarray  # int64[rows, width]

    def __post_init__(self) -> None:
        rows = 1 << self.num_qubits
        if self.values.shape != self.cols.shape:
            raise ConversionError("ELL value/column shapes differ")
        if self.values.shape[0] != rows:
            raise ConversionError(
                f"ELL has {self.values.shape[0]} rows, expected {rows}"
            )
        if self.cols.size and (
            self.cols.min() < 0 or self.cols.max() >= rows
        ):
            raise ConversionError("ELL column index out of range")

    @property
    def num_rows(self) -> int:
        return int(self.values.shape[0])

    @property
    def width(self) -> int:
        """Entries per row == max NZR == #MAC per state amplitude."""
        return int(self.values.shape[1])

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes + self.cols.nbytes)

    @property
    def macs_per_input(self) -> int:
        """Multiply-accumulates to apply this gate to one state vector."""
        return self.num_rows * self.width

    def to_dense(self) -> np.ndarray:
        """Dense expansion (validation only; exponential in ``n``)."""
        out = np.zeros((self.num_rows, self.num_rows), dtype=np.complex128)
        for k in range(self.width):
            np.add.at(out, (np.arange(self.num_rows), self.cols[:, k]), self.values[:, k])
        return out

    def row_nnz(self) -> np.ndarray:
        """Actual non-zero count per row (excluding padding)."""
        return (self.values != 0).sum(axis=1)

    def plan(self):
        """Compiled :class:`~repro.ell.spmm.GatherPlan` for this matrix.

        Built on first use and memoized on the instance, so every later
        application reuses the flattened gather indices (and CSR mirror).
        """
        from .spmm import gather_plan

        return gather_plan(self)


def ell_from_dense(matrix: np.ndarray) -> ELLMatrix:
    """Build an ELL matrix from a dense array (reference/tests)."""
    matrix = np.asarray(matrix, dtype=np.complex128)
    rows = matrix.shape[0]
    if matrix.shape != (rows, rows) or rows & (rows - 1):
        raise ConversionError(f"not a square power-of-two matrix: {matrix.shape}")
    num_qubits = rows.bit_length() - 1
    nnz = (matrix != 0).sum(axis=1)
    width = max(int(nnz.max()), 1)
    values = np.zeros((rows, width), dtype=np.complex128)
    cols = np.zeros((rows, width), dtype=np.int64)
    for r in range(rows):
        nz = np.flatnonzero(matrix[r])
        values[r, : nz.size] = matrix[r, nz]
        cols[r, : nz.size] = nz
    return ELLMatrix(num_qubits, values, cols)
