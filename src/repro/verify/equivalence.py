"""Equivalence checking of quantum circuits (the paper's first motivating
BQCS application, after Burgholzer & Wille's "power of simulation").

Two complementary deciders:

* :func:`check_exact` — build the DD of ``b . a^-1``; hash-consing makes
  "is it the identity (times a unit phase)" a structural comparison.
  Complete but can be expensive for wide, unstructured circuits.
* :func:`check_simulative` — run shared random input batches through both
  circuits with BQSim and compare amplitudes up to one global phase.
  One-sided (can only *refute* with certainty), but random states make a
  false "equivalent" astronomically unlikely, and the whole check is a
  single BQCS workload.
"""

from __future__ import annotations

import cmath
from dataclasses import dataclass

import numpy as np

from ..circuit.circuit import Circuit
from ..dd.build import circuit_matrix_dd
from ..dd.manager import DDManager
from ..errors import SimulationError
from ..sim.base import BatchSpec
from ..sim.bqsim import BQSimSimulator


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    method: str
    phase: complex | None = None  # global phase b = phase * a, when known
    max_deviation: float | None = None

    def __bool__(self) -> bool:
        return self.equivalent


def check_exact(a: Circuit, b: Circuit, tol: float = 1e-9) -> EquivalenceResult:
    """DD-exact equivalence up to global phase."""
    if a.num_qubits != b.num_qubits:
        return EquivalenceResult(False, "exact")
    mgr = DDManager(a.num_qubits)
    product = mgr.mm_multiply(
        circuit_matrix_dd(mgr, b.gates),
        circuit_matrix_dd(mgr, a.inverse().gates),
    )
    identity = mgr.identity()
    if product.node is not identity.node:
        return EquivalenceResult(False, "exact")
    if abs(abs(product.weight) - 1.0) > tol:
        return EquivalenceResult(False, "exact")
    return EquivalenceResult(True, "exact", phase=product.weight)


def check_simulative(
    a: Circuit,
    b: Circuit,
    num_batches: int = 4,
    batch_size: int = 32,
    seed: int = 0,
    atol: float = 1e-8,
    simulator: BQSimSimulator | None = None,
) -> EquivalenceResult:
    """Batch-simulative equivalence up to global phase."""
    if a.num_qubits != b.num_qubits:
        return EquivalenceResult(False, "simulative")
    simulator = simulator or BQSimSimulator()
    spec = BatchSpec(num_batches=num_batches, batch_size=batch_size, seed=seed)
    from ..circuit.inputs import generate_batches

    batches = list(generate_batches(a.num_qubits, num_batches, batch_size, seed))
    out_a = simulator.run(a, spec, batches=batches).outputs
    out_b = simulator.run(b, spec, batches=batches).outputs

    phase: complex | None = None
    worst = 0.0
    for x, y in zip(out_a, out_b):
        if phase is None:
            anchor = np.unravel_index(np.argmax(np.abs(x)), x.shape)
            if abs(y[anchor]) < 1e-14:
                return EquivalenceResult(False, "simulative", max_deviation=float("inf"))
            phase = complex(x[anchor] / y[anchor])
            if abs(abs(phase) - 1.0) > 1e-6:
                return EquivalenceResult(False, "simulative", max_deviation=float("inf"))
        worst = max(worst, float(np.abs(x - phase * y).max()))
    return EquivalenceResult(worst <= atol, "simulative", phase=phase, max_deviation=worst)


def check(a: Circuit, b: Circuit, prefer: str = "auto") -> EquivalenceResult:
    """Equivalence check with method selection.

    ``auto`` uses the exact DD check for narrow circuits and falls back to
    simulative checking above 14 qubits (where the product DD may blow up).
    """
    if prefer == "exact":
        return check_exact(a, b)
    if prefer == "simulative":
        return check_simulative(a, b)
    if prefer != "auto":
        raise SimulationError(f"unknown method {prefer!r}")
    if a.num_qubits <= 14:
        return check_exact(a, b)
    return check_simulative(a, b)
