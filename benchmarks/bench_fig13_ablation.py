"""Figure 13 — ablation of the three BQSim stages."""

from conftest import run_once
from repro.bench.experiments import fig13


def test_fig13_ablation(benchmark, scale):
    rows = run_once(benchmark, fig13.run, scale)
    for row in rows:
        assert row["norm_no-fusion"] > 0.99
        assert row["norm_no-ell"] > 0.99
        assert row["norm_no-task-graph"] > 0.99
        if scale in ("medium", "paper"):
            # paper ranges: fusion 1.39-6.73x, DD-to-ELL 5.55-35x, graph 1.46-1.73x
            assert row["norm_no-fusion"] > 1.2
            assert row["norm_no-ell"] > 2.0
            assert row["norm_no-task-graph"] > 1.1
