"""The virtual GPU device: buffers, kernels, and memcpys.

The device plays two roles at once:

* **numerics** — buffer contents are real NumPy arrays, kernels run real
  functions eagerly at submission time (valid because tasks are submitted in
  a topological order, like building a CUDA graph stream-by-stream);
* **timing** — every submission also appends a task to a
  :class:`~repro.gpu.graph.TaskGraph`, whose analytic schedule provides the
  device-model runtime, utilization, and power.

This split is the substitution documented in DESIGN.md: results are exact,
times come from the calibrated device model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import DeviceError
from .engine import Timeline
from .graph import TaskGraph, TaskHandle
from .spec import GpuSpec


@dataclass
class DeviceBuffer:
    """A named device allocation holding a dense complex block."""

    name: str
    nbytes: int
    array: np.ndarray | None = None

    def require(self) -> np.ndarray:
        if self.array is None:
            raise DeviceError(f"buffer {self.name!r} read before any write")
        return self.array


class VirtualGPU:
    """One virtual device with a task graph attached."""

    def __init__(self, spec: GpuSpec | None = None, mode: str = "graph"):
        self.spec = spec or GpuSpec()
        self.graph = TaskGraph(self.spec, mode=mode)
        self._buffers: dict[str, DeviceBuffer] = {}
        self._allocated = 0

    # -- memory ---------------------------------------------------------------

    def alloc(self, name: str, nbytes: int) -> DeviceBuffer:
        if name in self._buffers:
            raise DeviceError(f"buffer {name!r} already allocated")
        if self._allocated + nbytes > self.spec.memory_bytes:
            raise DeviceError(
                f"device out of memory: {self._allocated + nbytes} bytes "
                f"requested, capacity {self.spec.memory_bytes}"
            )
        buffer = DeviceBuffer(name=name, nbytes=nbytes)
        self._buffers[name] = buffer
        self._allocated += nbytes
        return buffer

    def free(self, buffer: DeviceBuffer) -> None:
        stored = self._buffers.pop(buffer.name, None)
        if stored is None:
            raise DeviceError(f"buffer {buffer.name!r} not allocated")
        self._allocated -= stored.nbytes
        stored.array = None

    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    # -- work submission --------------------------------------------------------

    def h2d(
        self,
        buffer: DeviceBuffer,
        host_array: np.ndarray,
        deps: Sequence[TaskHandle] = (),
        name: str | None = None,
    ) -> TaskHandle:
        """Host-to-device copy (eagerly stores a private copy)."""
        if host_array.nbytes > buffer.nbytes:
            raise DeviceError(
                f"copy of {host_array.nbytes} B into {buffer.nbytes} B buffer"
            )
        buffer.array = np.array(host_array, copy=True)
        return self.graph.add(
            name or f"h2d:{buffer.name}",
            "h2d",
            self.spec.copy_time(host_array.nbytes),
            deps,
        )

    def d2h(
        self,
        buffer: DeviceBuffer,
        deps: Sequence[TaskHandle] = (),
        name: str | None = None,
    ) -> tuple[TaskHandle, np.ndarray]:
        """Device-to-host copy; returns the handle and the snapshot."""
        snapshot = np.array(buffer.require(), copy=True)
        handle = self.graph.add(
            name or f"d2h:{buffer.name}",
            "d2h",
            self.spec.copy_time(snapshot.nbytes),
            deps,
        )
        return handle, snapshot

    def kernel(
        self,
        name: str,
        fn: Callable[[], None],
        macs: float = 0.0,
        bytes_moved: float = 0.0,
        deps: Sequence[TaskHandle] = (),
        duration: float | None = None,
    ) -> TaskHandle:
        """Submit a compute kernel; ``fn`` performs the real math eagerly.

        Duration defaults to the roofline model over ``macs``/``bytes_moved``;
        pass ``duration`` to pin a pre-priced cost instead.
        """
        fn()
        if duration is None:
            duration = self.spec.kernel_time(macs, bytes_moved)
        return self.graph.add(name, "compute", duration, deps)

    def raw_task(
        self,
        name: str,
        engine: str,
        duration: float,
        deps: Sequence[TaskHandle] = (),
    ) -> TaskHandle:
        """Submit a pre-priced task (e.g. conversion kernels, host stages)."""
        return self.graph.add(name, engine, duration, deps)

    def run(self) -> Timeline:
        """Schedule everything submitted so far."""
        return self.graph.execute()
