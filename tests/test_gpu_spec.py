"""Tests for the device cost models."""

import pytest

from repro.gpu.spec import (
    COMPLEX_BYTES,
    CpuSpec,
    GpuSpec,
    dense_kernel_bytes,
    ell_kernel_bytes,
    state_block_bytes,
)


def test_state_block_bytes():
    assert state_block_bytes(10, 256) == 1024 * 256 * 16


def test_ell_kernel_bytes_scales_with_width():
    narrow = ell_kernel_bytes(10, 64, 1, 0)
    wide = ell_kernel_bytes(10, 64, 4, 0)
    block = state_block_bytes(10, 64)
    assert narrow == 2 * block
    assert wide == 5 * block


def test_dense_kernel_bytes_is_two_sweeps():
    assert dense_kernel_bytes(10, 64) == 2 * state_block_bytes(10, 64)


def test_kernel_time_is_roofline():
    spec = GpuSpec()
    assert spec.kernel_time(0, 0) == 0
    t_mem = spec.kernel_time(1, 768e9)
    assert t_mem == pytest.approx(1.0)
    t_mac = spec.kernel_time(7.5e10, 1)
    assert t_mac == pytest.approx(1.0)
    assert spec.kernel_time(7.5e10, 768e9) == pytest.approx(1.0)


def test_copy_time_has_latency_floor():
    spec = GpuSpec()
    assert spec.copy_time(0) == pytest.approx(spec.copy_latency)
    assert spec.copy_time(25e9) == pytest.approx(1.0 + spec.copy_latency)


def test_conversion_divergence_penalty():
    spec = GpuSpec()
    base = spec.conversion_time(1 << 12, 2, 0)
    doubled = spec.conversion_time(1 << 12, 2, int(spec.conv_divergence_scale))
    launch = spec.conv_launch_overhead
    assert doubled - launch == pytest.approx(2 * (base - launch))


def test_cpu_conversion_linear_in_entries():
    cpu = CpuSpec()
    assert cpu.conversion_time(1024, 4, 999999) == pytest.approx(
        1024 * 4 * cpu.conv_entry_time
    )


def test_fusion_time_components():
    cpu = CpuSpec()
    t = cpu.fusion_time(100, 5000)
    assert t == pytest.approx(100 * cpu.fusion_gate_time + 5000 * cpu.fusion_node_time)


def test_calibration_anchor_qnn17():
    """The headline calibration: QNN n=17 BQSim simulation time ~= 23 s."""
    spec = GpuSpec()
    block = state_block_bytes(17, 256)
    # BQCS-fused plan: total cost 136 over 35 gates (measured in this repo)
    sweeps = 136 + 35
    modeled = 200 * sweeps * block / spec.mem_bandwidth
    assert 20 < modeled < 28  # the paper measured 24.2 s end to end


def test_calibration_anchor_aer():
    """Aer's fitted host model reproduces the paper's per-input times."""
    cpu = CpuSpec()
    per_input_n17 = cpu.aer_run_overhead + cpu.aer_amp_time * (1 << 17)
    assert per_input_n17 == pytest.approx(32.5e-3, rel=0.05)  # paper: 32.5 ms
    per_input_n12 = cpu.aer_run_overhead + cpu.aer_amp_time * (1 << 12)
    assert per_input_n12 == pytest.approx(7.7e-3, rel=0.05)  # paper: 7.7 ms
