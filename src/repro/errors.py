"""Exception hierarchy for the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CircuitError(ReproError):
    """Malformed circuit, gate, or qubit specification."""


class QasmError(ReproError):
    """OpenQASM parsing failed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class DDError(ReproError):
    """Decision-diagram invariant violation or unsupported operation."""


class FusionError(ReproError):
    """Gate-fusion planning failed."""


class ConversionError(ReproError):
    """DD-to-ELL conversion or plan (de)serialization failed.

    For archive failures, ``key`` names the missing/unreadable entry and
    ``version`` records the archive's format version when one was read.
    """

    def __init__(
        self,
        message: str,
        key: str | None = None,
        version: int | None = None,
    ):
        self.key = key
        self.version = version
        super().__init__(message)


class DeviceError(ReproError):
    """Virtual-GPU misuse (bad buffer, unscheduled task, capacity overflow)."""


class SimulationError(ReproError):
    """Batch simulation failed or produced inconsistent results."""


class MemoryFault(DeviceError, SimulationError):
    """Device or pool allocation failed: capacity overflow, fragmentation,
    or an injected out-of-memory fault.  Subclasses both device and
    simulation errors so existing handlers keep working; the resilience
    layer catches it specifically to drive adaptive batch splitting."""


class TransientFault(DeviceError):
    """A retryable runtime failure (injected or detected) on one fault site.

    Raised to the caller only after the retry policy's attempt/budget limits
    are exhausted; until then the executor heals it transparently.
    """

    def __init__(self, message: str, site: str = ""):
        self.site = site
        super().__init__(message)


class CheckpointError(SimulationError):
    """Checkpoint archive unreadable or incompatible with the current run."""


class NumericalError(SimulationError):
    """Numerical health guard tripped (non-finite amplitudes or norm drift
    beyond tolerance under the ``fail`` policy)."""


class ApproximationError(SimulationError):
    """Fidelity-budgeted approximation misuse or guarantee violation: a
    budget outside ``(0, 1]``, or a pruning step that would drop the
    composed plan fidelity below the requested budget."""


class ServiceError(ReproError):
    """Batch-simulation-service misuse: unknown job id, illegal lifecycle
    transition, or a request against a terminal/failed job."""


class AdmissionError(ServiceError):
    """The service refused a new job (backpressure).

    Raised when the queue is at its depth bound; ``depth`` and
    ``max_depth`` let clients implement retry/shedding policies.
    """

    def __init__(self, message: str, depth: int = 0, max_depth: int = 0):
        self.depth = depth
        self.max_depth = max_depth
        super().__init__(message)


class RetryLater(AdmissionError):
    """Transient refusal: the request is fine, the moment is not.

    Raised by the shard router when every admissible shard is at its
    queue-depth bound or a tenant's token bucket is empty.  Carries a
    ``retry_after_s`` hint (seconds until capacity plausibly returns) so
    network clients can back off instead of hammering; the gateway maps
    it to the ``RETRY_LATER`` protocol error.
    """

    def __init__(
        self,
        message: str,
        retry_after_s: float = 0.05,
        depth: int = 0,
        max_depth: int = 0,
    ):
        self.retry_after_s = retry_after_s
        super().__init__(message, depth=depth, max_depth=max_depth)


class GatewayError(ReproError):
    """Network-gateway misuse or failure outside the wire protocol itself
    (bad configuration, a request against a stopped server)."""


class JobNotCancellable(ServiceError):
    """A cancel targeted a job that is no longer synchronously cancellable.

    Carries the job id and the status that made the cancel impossible —
    an in-flight (taken) job can only be cancelled asynchronously through
    :meth:`~repro.service.workers.BatchSimulationService.cancel`, and a
    terminal job not at all.
    """

    def __init__(self, message: str, job_id: str = "", status: str = ""):
        self.job_id = job_id
        self.status = status
        super().__init__(message)
