"""Process worker pool: parallel execution must be invisible in the bits.

The contract under test is the one the serving layer advertises: for any
worker count and any transport (shared memory or pickle), dispatching
coalesced mega-batches to OS processes produces results *bit-identical*
to serial in-process execution; degradation to per-job isolation happens
inside the owning worker; and workers sharing one on-disk plan cache
compile each fingerprint exactly once fleet-wide.
"""

import numpy as np
import pytest

from repro.circuit import InputBatch
from repro.circuit.generators import make_circuit
from repro.circuit.inputs import random_batch
from repro.errors import ServiceError
from repro.obs import get_tracer
from repro.obs.tracer import tracing
from repro.service import (
    BatchSimulationService,
    JobStatus,
    ProcessWorkerPool,
)
from repro.sim.base import BatchSpec
from repro.sim.bqsim import BQSimSimulator

FAMILIES = ("qft", "ghz", "vqe", "qaoa")


def _mixed_plan_workload(num_qubits: int = 5, seed: int = 0):
    """(circuit, batch) pairs spanning four plan fingerprints."""
    rng = np.random.default_rng(seed)
    pairs = []
    for i, family in enumerate(FAMILIES):
        circuit = make_circuit(family, num_qubits, seed=seed)
        for j in range(3):
            width = int(rng.integers(1, 5))
            pairs.append((circuit, random_batch(num_qubits, width, 10 * i + j)))
    return pairs


def _run_service(pairs, **service_kwargs):
    """Submit every pair, drain, close; per-job results in submit order."""
    service = BatchSimulationService(**service_kwargs)
    try:
        jobs = [service.submit(c, b) for c, b in pairs]
        service.drain()
    finally:
        service.close()
    return [job.result for job in jobs], service.stats()


# ---------------------------------------------------------------------------
# the property: bit-identical results for any worker count
# ---------------------------------------------------------------------------

def test_results_bit_identical_across_worker_counts():
    pairs = _mixed_plan_workload()
    serial, serial_stats = _run_service(pairs, num_workers=2)
    one, _ = _run_service(pairs, num_workers=1, parallelism="process")
    four, four_stats = _run_service(pairs, num_workers=4, parallelism="process")
    assert all(r is not None for r in serial)
    for reference, a, b in zip(serial, one, four):
        assert np.array_equal(reference, a)
        assert np.array_equal(reference, b)
    assert serial_stats["completed"] == four_stats["completed"] == len(pairs)
    assert four_stats["parallelism"] == "process"
    assert four_stats["pool"]["workers"] == 4


@pytest.mark.parametrize("shm_threshold", [1, 1 << 30])
def test_both_transports_are_exact(shm_threshold):
    """Forcing everything through shm (threshold 1) or everything through
    pickle (huge threshold) must not change a bit."""
    pairs = _mixed_plan_workload(num_qubits=4, seed=3)[:6]
    serial, _ = _run_service(pairs, num_workers=1)
    pooled, stats = _run_service(
        pairs,
        num_workers=2,
        parallelism="process",
        shm_threshold=shm_threshold,
    )
    for reference, got in zip(serial, pooled):
        assert np.array_equal(reference, got)
    if shm_threshold == 1:
        assert stats["pool"]["shm_tasks"] > 0
        assert stats["pool"]["pickle_tasks"] == 0
        assert stats["pool"]["shm_bytes"] > 0
    else:
        assert stats["pool"]["shm_tasks"] == 0
        assert stats["pool"]["pickle_tasks"] > 0


# ---------------------------------------------------------------------------
# in-worker degradation
# ---------------------------------------------------------------------------

def test_poisoned_job_fails_alone_inside_its_worker():
    service = BatchSimulationService(
        num_workers=2,
        parallelism="process",
        simulator_kwargs={"health": "fail"},
    )
    circuit = make_circuit("qft", 5)
    try:
        good_a = service.submit(circuit, random_batch(5, 2, 1))
        poison = service.submit(
            circuit, InputBatch(np.full((32, 2), np.nan, dtype=np.complex128))
        )
        good_b = service.submit(circuit, random_batch(5, 3, 2))
        service.drain()
    finally:
        service.close()
    assert good_a.status is JobStatus.DONE and good_a.solo_retry
    assert good_b.status is JobStatus.DONE and good_b.solo_retry
    assert poison.status is JobStatus.FAILED
    assert "non-finite" in poison.error
    stats = service.stats()
    assert stats["degraded_groups"] == 1
    assert stats["completed"] == 2 and stats["failed"] == 1
    assert sum(w["solo_runs"] for w in stats["workers"]) == 2
    # the isolated re-runs are still bit-identical to a standalone run
    solo = BQSimSimulator(health="fail")
    reference = solo.run(
        circuit, BatchSpec(1, 2), batches=[good_a.batch]
    ).outputs[0]
    assert np.array_equal(good_a.result, reference)


# ---------------------------------------------------------------------------
# shared plan cache: compile-once fleet-wide
# ---------------------------------------------------------------------------

def test_shared_disk_cache_compiles_each_fingerprint_once():
    """Two workers racing on one fingerprint: exactly one build; the
    other loads the winner's archive from the shared disk tier."""
    service = BatchSimulationService(
        num_workers=2,
        parallelism="process",
        max_jobs_per_batch=1,  # force two groups -> two workers, same plan
    )
    circuit = make_circuit("ghz", 5)
    try:
        jobs = [service.submit(circuit, random_batch(5, 2, i)) for i in (0, 1)]
        service.drain()
    finally:
        service.close()
    assert all(job.status is JobStatus.DONE for job in jobs)
    stats = service.stats()
    assert sum(w["megabatches"] for w in stats["workers"]) == 2
    cache = stats["plan_cache"]
    assert cache["misses"] == 1, cache  # one fleet-wide build
    assert cache["disk_hits"] == 1, cache  # the loser loaded the archive


# ---------------------------------------------------------------------------
# direct pool API
# ---------------------------------------------------------------------------

def test_pool_submit_poll_matches_direct_simulator_run():
    circuit = make_circuit("ghz", 4)
    batch = random_batch(4, 3, 7)
    spec = BatchSpec(num_batches=1, batch_size=3, seed=0)
    with ProcessWorkerPool(num_workers=1) as pool:
        task_id, wid = pool.submit(circuit, spec, batch.states, 3, [3])
        assert wid == 0
        (result,) = pool.poll(block=True)
    assert result["task_id"] == task_id
    assert not result["degraded"]
    reference = BQSimSimulator().run(circuit, spec, batches=[batch]).outputs[0]
    assert np.array_equal(result["outputs"], reference)


def test_pool_refuses_dispatch_with_no_idle_worker():
    circuit = make_circuit("ghz", 4)
    batch = random_batch(4, 2, 0)
    spec = BatchSpec(num_batches=1, batch_size=2, seed=0)
    with ProcessWorkerPool(num_workers=1) as pool:
        pool.submit(circuit, spec, batch.states, 2, [2])
        with pytest.raises(ServiceError):
            pool.submit(circuit, spec, batch.states, 2, [2])
        pool.poll(block=True)  # drain before close


def test_pool_rejects_zero_workers():
    with pytest.raises(ServiceError):
        ProcessWorkerPool(num_workers=0)


def test_service_rejects_unknown_parallelism():
    with pytest.raises(ServiceError):
        BatchSimulationService(parallelism="threads")


# ---------------------------------------------------------------------------
# observability wiring
# ---------------------------------------------------------------------------

def test_worker_spans_absorbed_into_parent_trace():
    pairs = _mixed_plan_workload(num_qubits=4, seed=5)[:3]
    with tracing() as tracer:
        _run_service(pairs, num_workers=2, parallelism="process")
        spans = tracer.spans()
    threads = {span.thread for span in spans}
    worker_threads = {t for t in threads if t.startswith("pool-worker-")}
    assert worker_threads, threads
    # the parent recorded its own dispatch spans too
    assert any(span.name == "service.dispatch" for span in spans)
    # absorbed worker spans kept their parent/child nesting
    by_id = {span.span_id: span for span in spans}
    absorbed = [s for s in spans if s.thread in worker_threads]
    assert any(
        s.parent_id in by_id and by_id[s.parent_id].thread == s.thread
        for s in absorbed
    )
    assert get_tracer() is not tracer  # context manager restored the global


def test_pool_metrics_emitted():
    from repro.obs import get_metrics

    metrics = get_metrics()
    mark = metrics.mark()
    pairs = _mixed_plan_workload(num_qubits=4, seed=9)[:4]
    _run_service(pairs, num_workers=2, parallelism="process")
    delta = metrics.delta(mark)
    counters = delta.get("counters", delta)
    assert counters.get("service.pool.dispatched", 0) >= 1
    assert counters.get("service.pool.completed", 0) >= 1


def test_pool_worker_metrics_merge_without_double_counting():
    """N workers' tallies fold into exact totals: every job and mega-batch
    is counted exactly once no matter which process ran it."""
    from repro.obs import get_metrics, labeled

    metrics = get_metrics()
    mark = metrics.mark()
    pairs = _mixed_plan_workload(num_qubits=4, seed=11)
    results, stats = _run_service(
        pairs, num_workers=3, parallelism="process"
    )
    assert all(r is not None for r in results)
    delta = metrics.delta(mark)["counters"]
    # pool counters: one dispatch and one completion per mega-batch
    assert delta["service.pool.dispatched"] == stats["megabatches"]
    assert delta["service.pool.completed"] == stats["megabatches"]
    assert delta["service.completed"] == len(pairs)
    # per-worker tallies sum to the fleet totals, not a multiple
    summaries = stats["workers"]
    assert sum(w["jobs_done"] for w in summaries) == len(pairs)
    assert sum(w["megabatches"] for w in summaries) == stats["megabatches"]
    # SLO mirror: terminal events counted once per job across priorities
    done = sum(
        count for name, count in delta.items()
        if name.startswith("service.job.terminal") and '"done"' in name
    )
    assert done == len(pairs)
    slo = stats["slo"]
    assert slo["done"] == len(pairs) and slo["unaccounted_jobs"] == 0


def test_pool_spans_carry_job_ids_for_correlation():
    """One job's id appears on both the parent dispatch span and the
    worker-process mega-batch span after absorption — the property that
    makes a merged Perfetto timeline correlatable."""
    pairs = _mixed_plan_workload(num_qubits=4, seed=13)[:3]
    service = BatchSimulationService(num_workers=2, parallelism="process")
    with tracing() as tracer:
        try:
            jobs = [service.submit(c, b) for c, b in pairs]
            service.drain()
        finally:
            service.close()
        spans = tracer.spans()
    dispatch = [s for s in spans if s.name == "service.dispatch"]
    megabatch = [s for s in spans if s.name == "pool.megabatch"]
    assert dispatch and megabatch
    assert all(s.thread.startswith("pool-worker-") for s in megabatch)
    for job in jobs:
        parent_hits = [
            s for s in dispatch if job.job_id in s.attrs.get("job_ids", [])
        ]
        worker_hits = [
            s for s in megabatch if job.job_id in s.attrs.get("job_ids", [])
        ]
        assert parent_hits and worker_hits, job.job_id
        assert all(
            s.thread != worker_hits[0].thread for s in parent_hits
        )  # genuinely cross-process tracks
