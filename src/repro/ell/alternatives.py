"""CSR and COO sparse formats — the alternatives the paper rejects.

Section 3.2: "We choose ELL over other sparse formats (e.g., CSR, COO)
because the NZRs of quantum gate matrices are distributed roughly uniformly
across rows, which is best suited for ELL."  This module implements both
alternatives with matching spMM kernels and device cost models so the
design choice can be *measured* (see the ``ablation_formats`` experiment):

* **CSR** assigns one thread(-group) per row; rows with different lengths
  diverge, and the row-pointer indirection adds a dependent load per row.
* **COO** iterates non-zeros and scatters with atomic adds; contended
  atomics on the output serialize updates.
* **ELL**'s padded layout wastes ``(width - nnz(row))`` slots per row — but
  with CV(NZR) ~ 0 there is nearly nothing to waste, and accesses are
  perfectly coalesced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConversionError, SimulationError
from ..gpu.spec import COMPLEX_BYTES, GpuSpec, state_block_bytes
from .format import ELLMatrix


@dataclass(frozen=True)
class CSRMatrix:
    """Compressed sparse row gate matrix."""

    num_qubits: int
    indptr: np.ndarray  # int64[rows + 1]
    indices: np.ndarray  # int64[nnz]
    data: np.ndarray  # complex128[nnz]

    def __post_init__(self) -> None:
        rows = 1 << self.num_qubits
        if self.indptr.shape != (rows + 1,):
            raise ConversionError("CSR indptr has wrong length")
        if self.indices.shape != self.data.shape:
            raise ConversionError("CSR indices/data length mismatch")
        if self.indptr[0] != 0 or self.indptr[-1] != self.data.shape[0]:
            raise ConversionError("CSR indptr endpoints inconsistent")

    @property
    def num_rows(self) -> int:
        return int(self.indptr.shape[0] - 1)

    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    @property
    def nbytes(self) -> int:
        return int(self.indptr.nbytes + self.indices.nbytes + self.data.nbytes)

    def row_nnz(self) -> np.ndarray:
        return np.diff(self.indptr)

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.num_rows, self.num_rows), dtype=np.complex128)
        for row in range(self.num_rows):
            lo, hi = self.indptr[row], self.indptr[row + 1]
            out[row, self.indices[lo:hi]] = self.data[lo:hi]
        return out


@dataclass(frozen=True)
class COOMatrix:
    """Coordinate-list gate matrix."""

    num_qubits: int
    rows: np.ndarray  # int64[nnz]
    cols: np.ndarray  # int64[nnz]
    data: np.ndarray  # complex128[nnz]

    def __post_init__(self) -> None:
        if not (self.rows.shape == self.cols.shape == self.data.shape):
            raise ConversionError("COO arrays must have equal length")

    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    @property
    def nbytes(self) -> int:
        return int(self.rows.nbytes + self.cols.nbytes + self.data.nbytes)

    def to_dense(self) -> np.ndarray:
        dim = 1 << self.num_qubits
        out = np.zeros((dim, dim), dtype=np.complex128)
        np.add.at(out, (self.rows, self.cols), self.data)
        return out


def csr_from_ell(ell: ELLMatrix) -> CSRMatrix:
    """Strip ELL padding into CSR."""
    mask = ell.values != 0
    counts = mask.sum(axis=1)
    indptr = np.zeros(ell.num_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRMatrix(
        num_qubits=ell.num_qubits,
        indptr=indptr,
        indices=ell.cols[mask],
        data=ell.values[mask],
    )


def coo_from_ell(ell: ELLMatrix) -> COOMatrix:
    """Strip ELL padding into COO (row-major order)."""
    mask = ell.values != 0
    row_index = np.broadcast_to(
        np.arange(ell.num_rows, dtype=np.int64)[:, None], ell.values.shape
    )
    return COOMatrix(
        num_qubits=ell.num_qubits,
        rows=row_index[mask],
        cols=ell.cols[mask],
        data=ell.values[mask],
    )


def csr_spmm(csr: CSRMatrix, states: np.ndarray) -> np.ndarray:
    """CSR sparse-matrix times state block."""
    if states.shape[0] != csr.num_rows:
        raise SimulationError("state dimension mismatch in csr_spmm")
    out = np.zeros_like(states)
    contrib = csr.data[:, None] * states[csr.indices, :]
    row_of = np.repeat(np.arange(csr.num_rows), csr.row_nnz())
    np.add.at(out, row_of, contrib)
    return out


def coo_spmm(coo: COOMatrix, states: np.ndarray) -> np.ndarray:
    """COO scatter-add sparse-matrix times state block."""
    if states.shape[0] != (1 << coo.num_qubits):
        raise SimulationError("state dimension mismatch in coo_spmm")
    out = np.zeros_like(states)
    np.add.at(out, coo.rows, coo.data[:, None] * states[coo.cols, :])
    return out


# ---------------------------------------------------------------------------
# Device cost models (see the module docstring for the effects modeled)
# ---------------------------------------------------------------------------

def ell_kernel_time(
    spec: GpuSpec, num_qubits: int, batch_size: int, width: int
) -> float:
    """Padded-uniform ELL kernel: (width + 1) coalesced state sweeps."""
    block = state_block_bytes(num_qubits, batch_size)
    macs = (1 << num_qubits) * width * batch_size
    return spec.kernel_time(macs, (width + 1) * block)


def csr_kernel_time(
    spec: GpuSpec,
    num_qubits: int,
    batch_size: int,
    row_nnz: np.ndarray,
    divergence_penalty: float = 0.15,
) -> float:
    """CSR kernel: warps run at their *longest* row; short rows idle.

    The imbalance factor is max/mean NZR within a warp (approximated
    globally); the row-pointer walk adds one dependent load per row.
    """
    rows = 1 << num_qubits
    mean = max(float(row_nnz.mean()), 1e-12)
    imbalance = float(row_nnz.max()) / mean
    block = state_block_bytes(num_qubits, batch_size)
    macs = int(row_nnz.sum()) * batch_size
    traffic = (float(row_nnz.max()) + 1.0) * block + rows * 8
    base = spec.kernel_time(macs * imbalance, traffic)
    return base * (1.0 + divergence_penalty * (imbalance - 1.0))


def coo_kernel_time(
    spec: GpuSpec,
    num_qubits: int,
    batch_size: int,
    nnz: int,
    atomic_penalty: float = 2.5,
) -> float:
    """COO kernel: per-non-zero scatter with atomic adds on the output."""
    block = state_block_bytes(num_qubits, batch_size)
    macs = nnz * batch_size
    gathers = nnz * batch_size * COMPLEX_BYTES  # value gather
    scatters = atomic_penalty * nnz * batch_size * COMPLEX_BYTES
    return spec.kernel_time(macs, gathers + scatters + block)
