"""End-to-end gateway tests over a real TCP socket.

Everything here talks to a live :class:`GatewayServer` through the
loopback interface — the same code path as ``repro submit --connect``.
The two load-bearing properties:

* **bit-identity** — a job submitted over the wire returns amplitudes
  ``np.array_equal`` to the same job run in-process (the base64
  complex128 codec is exact, not approximate);
* **typed refusals** — every hostile or mistimed request (garbage bytes,
  bad QASM, unknown ops, draining server, dead shard) yields a protocol
  error with a stable code, never a traceback or a hung connection.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading

import numpy as np
import pytest

from repro.circuit.generators import make_circuit
from repro.circuit.inputs import random_batch
from repro.gateway import GatewayClient, GatewayServer
from repro.gateway.protocol import PROTOCOL_VERSION, ProtocolError
from repro.obs.prom import parse_prometheus_text
from repro.service import BatchSimulationService
from repro.testing.chaos_pool import ChaosSchedule


class ServerHarness:
    """A gateway server on a private event-loop thread (sync tests)."""

    def __init__(self, **kwargs) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="test-gateway", daemon=True
        )
        self._thread.start()
        self.server = GatewayServer(**kwargs)
        self._run(self.server.start())

    def _run(self, coroutine, timeout_s: float = 120.0):
        return asyncio.run_coroutine_threadsafe(
            coroutine, self._loop
        ).result(timeout=timeout_s)

    @property
    def port(self) -> int:
        return self.server.port

    def shutdown(self, drain: bool = True) -> None:
        self._run(self.server.shutdown(drain=drain))

    def stop(self) -> None:
        try:
            self.shutdown()
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._loop.close()


@pytest.fixture()
def harness():
    h = ServerHarness(num_shards=2)
    yield h
    h.stop()


@pytest.fixture()
def client(harness):
    with GatewayClient("127.0.0.1", harness.port) as c:
        yield c


def raw_exchange(port: int, payload: bytes) -> dict:
    """One raw line in, one frame out (no client-side validation)."""
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        sock.sendall(payload)
        handle = sock.makefile("rb")
        line = handle.readline()
    assert line, "server closed the connection without a response"
    return json.loads(line)


class TestEndToEnd:
    def test_ping(self, client):
        assert client.ping() is True

    def test_wire_results_are_bit_identical_to_in_process(self, harness):
        """The acceptance criterion: socket == in-process, bit for bit."""
        circuit = make_circuit("qft", 4)
        batch = random_batch(4, 8, 3)

        local = BatchSimulationService()
        reference = local.submit(circuit, batch)
        local.close(drain=True)

        with GatewayClient("127.0.0.1", harness.port) as client:
            job_id = client.submit(circuit, inputs=batch.states)
            remote = client.result(job_id)
        assert np.array_equal(remote, reference.result)  # not allclose

    def test_submit_status_result_cycle(self, client):
        job_id = client.submit(family="ghz", num_qubits=4, num_inputs=6)
        assert job_id.startswith("s")  # shard-prefixed public id
        result = client.result(job_id)
        assert result.shape == (16, 6)
        info = client.status(job_id)
        assert info["status"] == "done"
        assert info["shard"] in ("s0", "s1")
        assert info["job_id"] == job_id

    def test_qasm_submit(self, client):
        qasm = (
            "OPENQASM 2.0;\n"
            'include "qelib1.inc";\n'
            "qreg q[3];\n"
            "h q[0];\ncx q[0], q[1];\ncx q[1], q[2];\n"
        )
        job_id = client.submit(qasm=qasm, num_inputs=2)
        assert client.result(job_id).shape == (8, 2)

    def test_metrics_scrape_is_valid_prometheus(self, client):
        client.result(client.submit(family="ghz", num_qubits=3))
        scrape = parse_prometheus_text(client.metrics())
        samples = scrape["samples"]
        assert any(name.startswith("repro_gateway_") for name in samples)
        # service-layer families ride along in the same scrape
        assert any(
            not name.startswith("repro_gateway_") for name in samples
        )

    def test_stats_covers_the_fleet(self, client):
        client.result(client.submit(family="ghz", num_qubits=3))
        stats = client.stats()
        assert set(stats["shards"]) == {"s0", "s1"}
        assert stats["submitted"] >= 1
        assert stats["slo"]["unaccounted_jobs"] == 0

    def test_stream_carries_the_job_lifecycle(self, harness):
        with GatewayClient("127.0.0.1", harness.port) as submitter:
            job_id = submitter.submit(family="ghz", num_qubits=3)
            submitter.result(job_id)
        with GatewayClient("127.0.0.1", harness.port) as streamer:
            events = streamer.stream_events(
                from_seq=0, limit=64, timeout_s=2.0
            )
        mine = [e for e in events if e.get("job") == job_id]
        stages = [e["event"] for e in mine]
        for stage in ("submitted", "routed", "done"):
            assert stage in stages, f"stream missed {stage}: {stages}"
        assert all("seq" in e and "shard" in e for e in mine)

    def test_cancel_done_job_is_typed(self, client):
        job_id = client.submit(family="ghz", num_qubits=3)
        client.result(job_id)
        with pytest.raises(ProtocolError) as err:
            client.cancel(job_id)
        assert err.value.code == "NOT_CANCELLABLE"
        assert err.value.extra["status"] == "done"


class TestTypedWireErrors:
    def test_garbage_bytes(self, harness):
        response = raw_exchange(harness.port, b"\x00\xfe{{{ nope\n")
        assert response["ok"] is False
        assert response["error"]["code"] == "BAD_ENVELOPE"

    def test_wrong_version(self, harness):
        response = raw_exchange(
            harness.port, b'{"v": 99, "op": "ping", "id": 1}\n'
        )
        assert response["error"]["code"] == "UNSUPPORTED_VERSION"
        assert response["id"] == 1  # refusals still correlate

    def test_unknown_op(self, harness):
        response = raw_exchange(
            harness.port,
            json.dumps(
                {"v": PROTOCOL_VERSION, "op": "frobnicate", "id": 2}
            ).encode() + b"\n",
        )
        assert response["error"]["code"] == "UNKNOWN_OP"

    def test_submit_without_circuit(self, harness):
        response = raw_exchange(
            harness.port,
            json.dumps(
                {"v": PROTOCOL_VERSION, "op": "submit", "id": 3}
            ).encode() + b"\n",
        )
        assert response["error"]["code"] in ("BAD_CIRCUIT", "BAD_ENVELOPE")

    def test_bad_qasm_is_typed_with_line(self, client):
        with pytest.raises(ProtocolError) as err:
            client.submit(
                qasm="OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n"
            )
        assert err.value.code == "BAD_QASM"
        assert err.value.extra.get("line") == 3

    def test_oversized_circuit_is_typed(self, client):
        with pytest.raises(ProtocolError) as err:
            client.submit(family="ghz", num_qubits=30)
        assert err.value.code == "OVERSIZED"

    def test_bad_inputs_are_typed(self, client):
        wrong = random_batch(5, 2, 0).states  # 32 rows for a 3q circuit
        with pytest.raises(ProtocolError) as err:
            client.submit(family="ghz", num_qubits=3, inputs=wrong)
        assert err.value.code == "BAD_INPUTS"

    def test_unknown_job(self, client):
        with pytest.raises(ProtocolError) as err:
            client.status("s0/job-404-deadbeef")
        assert err.value.code == "UNKNOWN_JOB"
        with pytest.raises(ProtocolError) as err:
            client.result("s9/job-404-deadbeef")
        assert err.value.code == "UNKNOWN_JOB"

    def test_connection_survives_an_error(self, client):
        """A typed refusal must not poison the connection."""
        with pytest.raises(ProtocolError):
            client.status("s0/nope")
        assert client.ping() is True


class TestShardDeathOverTheWire:
    def test_dead_fleet_yields_job_failed_not_a_hang(self):
        """With every shard dead, result() gets a typed terminal error."""
        harness = ServerHarness(
            num_shards=1,
            service_kwargs={
                "parallelism": "process",
                "num_workers": 1,
                "max_restarts": 0,
            },
        )
        router = harness.server.router
        router.shards["s0"].service.chaos = ChaosSchedule.parse("kill=1")
        try:
            with GatewayClient("127.0.0.1", harness.port) as client:
                job_ids = [
                    client.submit(family="ghz", num_qubits=3 + i)
                    for i in range(2)
                ]
                failures = []
                for job_id in job_ids:
                    with pytest.raises(ProtocolError) as err:
                        client.result(job_id, timeout_s=30.0)
                    failures.append(err.value)
                for failure in failures:
                    assert failure.code == "JOB_FAILED"
                    assert failure.extra["status"] in (
                        "failed", "cancelled", "quarantined"
                    )
            assert router.unaccounted() == []
        finally:
            harness.stop()


class TestDraining:
    def test_draining_refusals_are_typed(self, harness):
        """New connections get DRAINING everywhere; old ones can still
        collect results (only submit/stream are refused)."""
        with GatewayClient("127.0.0.1", harness.port) as veteran:
            job_id = veteran.submit(family="ghz", num_qubits=3)
            veteran.result(job_id)  # finished before the drain starts
            harness.server._draining = True
            try:
                # a connection born during the drain: everything refused
                with GatewayClient("127.0.0.1", harness.port) as newborn:
                    with pytest.raises(ProtocolError) as err:
                        newborn.ping()
                    assert err.value.code == "DRAINING"
                # the veteran may not add work...
                with pytest.raises(ProtocolError) as err:
                    veteran.submit(family="ghz", num_qubits=3)
                assert err.value.code == "DRAINING"
                # ...but may still collect what it is owed
                assert veteran.status(job_id)["status"] == "done"
                assert veteran.result(job_id).shape == (8, 1)
            finally:
                harness.server._draining = False

    def test_graceful_shutdown_finishes_admitted_work(self):
        """shutdown(drain=True) under worker chaos: admitted jobs reach
        terminal states, nothing is lost, new work is refused."""
        harness = ServerHarness(
            num_shards=2,
            service_kwargs={
                "parallelism": "process",
                "num_workers": 1,
                "chaos": ChaosSchedule.parse("kill=1"),
            },
        )
        router = harness.server.router
        client = GatewayClient("127.0.0.1", harness.port)
        try:
            job_ids = [
                client.submit(family="ghz", num_qubits=3, num_inputs=2)
                for _ in range(4)
            ] + [
                client.submit(family="qft", num_qubits=4, num_inputs=2)
                for _ in range(4)
            ]
            harness.shutdown(drain=True)
            for job_id in job_ids:
                info = router.describe(job_id)
                # chaos kills the first task on each pool; with restart
                # budget the job is redelivered and still finishes
                assert info["status"] in ("done", "quarantined")
            assert router.unaccounted() == []
        finally:
            client.close()
            harness.stop()
