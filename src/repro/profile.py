"""Wall-clock stage profiling for the simulation pipelines.

The device model reports *modeled* seconds (what the calibrated GPU would
take); this module measures *real* host seconds per pipeline stage, so
speedups of the compiled-plan hot paths are observed rather than asserted.
Simulators surface the recorded breakdown in
``SimulationResult.stats["wall_breakdown"]`` alongside the modeled
``breakdown``, using the canonical stage names of
:data:`repro.obs.CANONICAL_STAGES` (fusion/convert/io/execute).

:class:`StageTimer` is a thin view over the process-global
:class:`~repro.obs.tracer.Tracer`: every timed stage also opens a span on
it (a no-op while tracing is disabled), so the wall totals and an exported
trace always agree on stage boundaries.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Sequence

from .obs import get_tracer
from .obs.tracer import Tracer


class StageTimer:
    """Accumulates wall seconds per named pipeline stage.

    Stages may be entered repeatedly; durations accumulate.  The timer is
    deliberately tiny — one ``perf_counter`` pair plus one (usually no-op)
    tracer span per stage entry — so it can stay on permanently in every
    simulator run.  ``stages`` pre-registers keys at 0.0 so the breakdown
    dict has a stable key set and ordering even for stages a run skips.
    """

    def __init__(
        self, stages: Sequence[str] = (), tracer: Tracer | None = None
    ) -> None:
        self.wall: dict[str, float] = {stage: 0.0 for stage in stages}
        self._tracer = tracer

    @contextmanager
    def time(self, stage: str, **attrs):
        """Context manager charging the enclosed block to ``stage``.

        Yields the tracer span of the stage (a no-op span while tracing is
        disabled), so callers can attach attributes:
        ``with timer.time("fusion") as sp: sp.set(fused_gates=8)``.
        """
        tracer = self._tracer if self._tracer is not None else get_tracer()
        t0 = time.perf_counter()
        try:
            with tracer.span(stage, category="stage", **attrs) as span:
                yield span
        finally:
            self.record(stage, time.perf_counter() - t0)

    def record(self, stage: str, seconds: float) -> None:
        """Add ``seconds`` of wall time to ``stage``."""
        self.wall[stage] = self.wall.get(stage, 0.0) + seconds

    def total(self) -> float:
        return sum(self.wall.values())

    def snapshot(self) -> dict[str, float]:
        """Copy of the per-stage totals (safe to stash in result stats)."""
        return dict(self.wall)

    def summary(self) -> str:
        parts = ", ".join(
            f"{stage}={seconds * 1e3:.2f}ms" for stage, seconds in self.wall.items()
        )
        return f"<StageTimer {parts}>"


@contextmanager
def stopwatch():
    """Standalone timer: ``with stopwatch() as t: ...; t.seconds``."""

    class _Watch:
        seconds = 0.0

    watch = _Watch()
    t0 = time.perf_counter()
    try:
        yield watch
    finally:
        watch.seconds = time.perf_counter() - t0
