"""Extension bench — parameter-batched SIMD execution (ParamBatch).

The VQE/QNN workload of the paper is many parameter sets of one ansatz
structure.  :class:`~repro.kernels.ParamBatch` stacks K parameter sets into
a leading tensor axis, so each gate position costs one stacked kernel call
instead of K — amortizing per-call overhead (Python dispatch on the host
engines, kernel launches on a real device).

Acceptance, at K >= 64 parameter sets of a shared-structure ansatz:

* the launch-aware device model predicts >= 3x speedup over the per-slot
  serial schedule, and so does host wall time;
* numpy-engine batched outputs are **bit-identical** to the serial
  baseline (same stacked kernel, K=1 slices).
"""

import numpy as np
from conftest import run_once

from repro.kernels import ParamBatch
from repro.vqa import Ansatz

#: K >= 64 parameter sets is where the acceptance bar is set
NUM_SETS = {"small": 64, "medium": 128, "paper": 256}
NUM_QUBITS = {"small": 5, "medium": 8, "paper": 10}


def _best_of(fn, repeats: int = 3) -> float:
    import time

    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def param_batch_speedup(scale: str) -> dict:
    ansatz = Ansatz(num_qubits=NUM_QUBITS[scale], reps=3)
    rng = np.random.default_rng(42)
    rows = [ansatz.random_parameters(rng) for _ in range(NUM_SETS[scale])]
    pb = ParamBatch.from_ansatz(ansatz, rows, engine="numpy")

    batched = pb.run()
    serial = pb.run_serial()
    bit_identical = bool(np.array_equal(batched, serial))

    wall_batched = _best_of(pb.run)
    wall_serial = _best_of(pb.run_serial)
    model = pb.modeled_times()
    return {
        "num_sets": pb.num_sets,
        "num_gates": pb.num_gates,
        "serial_kernels": model["serial_kernels"],
        "batched_kernels": model["batched_kernels"],
        "modeled_speedup": model["speedup"],
        "wall_serial_s": wall_serial,
        "wall_batched_s": wall_batched,
        "wall_speedup": wall_serial / wall_batched,
        "bit_identical": bit_identical,
    }


def test_param_batch_speedup(benchmark, scale):
    row = run_once(benchmark, param_batch_speedup, scale)
    assert row["bit_identical"], row
    assert row["num_sets"] >= 64
    # one kernel call per gate position instead of K
    assert row["batched_kernels"] * row["num_sets"] == row["serial_kernels"]
    # acceptance: >= 3x on both the launch-aware device model and host wall
    assert row["modeled_speedup"] >= 3.0, row
    assert row["wall_speedup"] >= 3.0, row
