"""Tests for the report writer and the multi-GPU scaling experiment."""

import json

import pytest

from repro.bench.experiments import scaling_multigpu
from repro.bench.report import rows_to_json, rows_to_markdown, write_report


def test_scaling_multigpu_rows():
    rows = scaling_multigpu.run("small")
    by_devices = {r["devices"]: r for r in rows}
    assert by_devices[1]["speedup"] == pytest.approx(1.0)
    assert by_devices[4]["speedup"] > by_devices[2]["speedup"] > 1.0
    assert by_devices[4]["speedup"] <= 4.0
    for r in rows:
        assert 0 < r["efficiency"] <= 1.0 + 1e-9


def test_rows_to_json_handles_non_finite_and_numpy():
    import numpy as np

    rows = [{"a": float("inf"), "b": np.int64(3), "c": (1, 2), "d": None}]
    doc = json.loads(rows_to_json(rows, "small"))
    assert doc["scale"] == "small"
    assert doc["rows"][0]["a"] == "inf"
    assert doc["rows"][0]["b"] == 3
    assert doc["rows"][0]["c"] == [1, 2]


def test_rows_to_markdown_renders_table():
    text = rows_to_markdown("demo", [{"x": 1, "y": 2.5}, {"x": 3, "y": 4.0}], "small")
    assert "## demo" in text
    assert "| x | y |" in text
    assert "| 3 | 4 |" in text


def test_rows_to_markdown_empty():
    assert "_no rows_" in rows_to_markdown("demo", [], "small")


def test_write_report_produces_files(tmp_path):
    results = {
        "exp_a": [{"value": 1}],
        "exp_b": [{"value": 2}],
    }
    report = write_report(results, tmp_path, "small")
    assert report.exists()
    assert (tmp_path / "exp_a.json").exists()
    assert (tmp_path / "exp_b.json").exists()
    text = report.read_text()
    assert "## exp_a" in text and "## exp_b" in text


def test_write_report_handles_dict_rows(tmp_path):
    results = {"fig5ish": {"time_vs_qubits": [{"n": 4, "ms": 1.0}], "other": "x"}}
    report = write_report(results, tmp_path, "small")
    assert "fig5ish" in report.read_text()
    doc = json.loads((tmp_path / "fig5ish.json").read_text())
    assert doc["rows"]["time_vs_qubits"][0]["n"] == 4
