"""DD-to-ELL conversion (Section 3.2 of the paper).

Three converters are provided:

* :func:`ell_from_dd_cpu` — the CPU algorithm: a memoized bottom-up assembly
  over DD nodes.  Each node's sub-matrix becomes (value, column) arrays; a
  parent concatenates its children's rows with scaled weights and shifted
  columns.  Complexity is linear in the output size.
* :func:`ell_from_flat_gpu` — the GPU kernel of Algorithm 1, executed
  faithfully: one *block* per ELL row running an iterative DFS with an
  explicit edge stack and ``left_right`` / ``up_down`` direction arrays over
  the flat edge/node arrays of :class:`~repro.dd.flat.FlatDD`.
* :func:`ell_from_dd` — the *hybrid* converter: CPU when the DD has more
  than ``tau`` edges (heavy branching hurts the GPU), GPU otherwise.

The faithful per-row kernel is exponential work on a host CPU, so for large
matrices the GPU path computes the rows with the (bit-identical) CPU
algorithm while the virtual-GPU cost model still charges GPU conversion
time; ``execute="faithful"`` forces the literal kernel loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dd.export import count_edges
from ..dd.flat import FlatDD, flatten_matrix_dd
from ..dd.node import Edge
from ..errors import ConversionError
from ..kernels.engine import ArrayEngine, get_engine
from ..obs import get_metrics, get_tracer
from .format import ELLMatrix

#: default edge-count threshold tau for the hybrid policy.  The paper uses
#: 2000 on its machine and notes the best tau is hardware dependent; 4500 is
#: the break-even edge count of this repo's calibrated conversion cost model
#: (GPU divergence factor ``1 + edges/500`` crossing the CPU's 10x higher
#: per-entry cost).
DEFAULT_TAU = 4500

#: above this many rows the faithful per-row kernel loop is replaced by the
#: equivalent vectorized computation (results are identical)
_FAITHFUL_ROW_LIMIT = 1 << 12


# ---------------------------------------------------------------------------
# CPU-based conversion: memoized bottom-up assembly
# ---------------------------------------------------------------------------

def _compress(values, cols, xp=np):
    """Push non-zeros left in every row and trim trailing all-zero columns."""
    if values.shape[1] == 0:
        return values, cols
    zero = values == 0
    order = xp.argsort(zero, axis=1, kind="stable")
    values = xp.take_along_axis(values, order, axis=1)
    cols = xp.take_along_axis(cols, order, axis=1)
    width = int((~zero).sum(axis=1).max())
    cols = xp.where(values == 0, 0, cols)  # canonical padding: column 0
    return values[:, :width], cols[:, :width]


def _assemble_ell(
    root_node,
    root_weight: complex,
    node_key,
    node_level,
    node_children,
    xp=np,
):
    """Memoized bottom-up (value, column) assembly shared by both the CPU
    converter and the vectorized GPU stand-in.

    The DD is traversed through three callbacks so the same recursion works
    over :class:`~repro.dd.node.Edge` objects and over the flat arrays of a
    :class:`~repro.dd.flat.FlatDD`:

    * ``node_key(node)`` — hashable memo key;
    * ``node_level(node)`` — qubit level of the node;
    * ``node_children(node)`` — sequence of 4 ``(child_node | None, weight)``
      pairs in ``row_bit * 2 + col_bit`` order, where ``None`` marks the
      constant-one terminal and ``weight == 0`` a skipped zero edge.
    """
    memo: dict = {}

    def rec(node):
        if node is None:
            return (
                xp.ones((1, 1), dtype=xp.complex128),
                xp.zeros((1, 1), dtype=xp.int64),
            )
        key = node_key(node)
        hit = memo.get(key)
        if hit is not None:
            return hit
        half = 1 << node_level(node)
        children = node_children(node)
        halves = []
        for row_bit in (0, 1):
            parts_v, parts_c = [], []
            for col_bit in (0, 1):
                child, weight = children[row_bit * 2 + col_bit]
                if weight == 0:
                    continue
                cv, cc = rec(child)
                parts_v.append(cv * weight)
                parts_c.append(cc + col_bit * half)
            if not parts_v:
                parts_v = [xp.zeros((half, 0), dtype=xp.complex128)]
                parts_c = [xp.zeros((half, 0), dtype=xp.int64)]
            halves.append(
                (xp.concatenate(parts_v, axis=1), xp.concatenate(parts_c, axis=1))
            )
        width = max(halves[0][0].shape[1], halves[1][0].shape[1])
        values = xp.zeros((2 * half, width), dtype=xp.complex128)
        cols = xp.zeros((2 * half, width), dtype=xp.int64)
        for i, (hv, hc) in enumerate(halves):
            values[i * half : (i + 1) * half, : hv.shape[1]] = hv
            cols[i * half : (i + 1) * half, : hc.shape[1]] = hc
        hit = _compress(values, cols, xp=xp)
        memo[key] = hit
        return hit

    values, cols = rec(root_node)
    return values * root_weight, cols


def ell_from_dd_cpu(
    edge: Edge,
    num_qubits: int,
    engine: "str | ArrayEngine | None" = None,
) -> ELLMatrix:
    """CPU-based DD-to-ELL conversion (memoized recursion over nodes).

    Assembly arrays are allocated through ``engine`` (numpy by default —
    bit-identical to the historical converter); the resulting
    :class:`ELLMatrix` is always materialized in host memory, since ELL
    is the host interchange format that :class:`~repro.ell.spmm.GatherPlan`
    re-uploads per engine.
    """
    if edge.weight == 0:
        raise ConversionError("cannot convert the zero matrix to ELL")
    eng = get_engine(engine)

    def children(node):
        return [
            (child.node, child.weight) for child in node.children
        ]

    values, cols = _assemble_ell(
        edge.node,
        edge.weight,
        node_key=lambda node: node.nid,
        node_level=lambda node: node.level,
        node_children=children,
        xp=eng.xp,
    )
    if values.shape[1] == 0:
        raise ConversionError("DD represented the zero matrix")
    return ELLMatrix(
        num_qubits,
        np.ascontiguousarray(eng.to_host(values)),
        np.ascontiguousarray(eng.to_host(cols)),
    )


# ---------------------------------------------------------------------------
# GPU-based conversion: Algorithm 1, one block per row
# ---------------------------------------------------------------------------

def _kernel_block(
    flat: FlatDD,
    bid: int,
    max_nzr: int,
    values: np.ndarray,
    cols: np.ndarray,
) -> None:
    """Algorithm 1 for one block (= one ELL row), line-for-line.

    ``up_down[d]`` holds the row direction for stack depth ``d`` (the paper
    stores it per qubit level; with full chains stack depth == n-1-level).
    """
    n = flat.num_qubits
    edge_stack = [0] * (n + 1)
    left_right = [0] * (n + 1)
    up_down = [(bid >> (n - 1 - d)) & 1 for d in range(n)] + [0]
    stack_ptr = 0
    edge_stack[0] = flat.root()
    val = 1.0 + 0j
    col = 0
    idx = 0
    while stack_ptr >= 0:
        edge_ptr = edge_stack[stack_ptr]
        if edge_ptr == -1:  # constant-zero edge
            stack_ptr -= 1
            continue
        node_ptr = flat.edge_node[edge_ptr]
        if node_ptr == -1:  # constant-one terminal: emit an entry
            if idx >= max_nzr:
                raise ConversionError(
                    f"row {bid} exceeds the declared max NZR {max_nzr}"
                )
            cols[bid, idx] = col
            values[bid, idx] = val * flat.edge_weight[edge_ptr]
            stack_ptr -= 1
            idx += 1
            continue
        if left_right[stack_ptr] == 2:  # both columns explored: backtrack
            left_right[stack_ptr] = 0
            stack_ptr -= 1
            val = val / flat.edge_weight[edge_ptr]
            col = col - (1 << flat.node_level[node_ptr])
        else:
            child_idx = 2 * up_down[stack_ptr] + left_right[stack_ptr]
            left_right[stack_ptr] += 1
            if left_right[stack_ptr] == 1:
                val = val * flat.edge_weight[edge_ptr]
            col = col + (left_right[stack_ptr] - 1) * (
                1 << flat.node_level[node_ptr]
            )
            edge_stack[stack_ptr + 1] = flat.node_edges[node_ptr, child_idx]
            stack_ptr += 1


def ell_from_flat_gpu(
    flat: FlatDD,
    max_nzr: int,
    execute: str = "auto",
    engine: "str | ArrayEngine | None" = None,
) -> ELLMatrix:
    """GPU-kernel DD-to-ELL conversion over the flat edge/node arrays.

    ``execute='faithful'`` runs the literal Algorithm-1 loop for every row;
    ``'auto'`` switches to the equivalent vectorized assembly above
    ``_FAITHFUL_ROW_LIMIT`` rows (the virtual GPU charges modeled kernel
    time either way).
    """
    rows = 1 << flat.num_qubits
    if execute not in ("auto", "faithful", "fast"):
        raise ConversionError(f"unknown execute mode {execute!r}")
    if execute == "fast" or (execute == "auto" and rows > _FAITHFUL_ROW_LIMIT):
        ell = _ell_from_flat_fast(flat, engine=engine)
        return _pad_to(ell, max_nzr)
    values = np.zeros((rows, max_nzr), dtype=np.complex128)
    cols = np.zeros((rows, max_nzr), dtype=np.int64)
    for bid in range(rows):
        _kernel_block(flat, bid, max_nzr, values, cols)
    return ELLMatrix(flat.num_qubits, values, cols)


def _ell_from_flat_fast(
    flat: FlatDD, engine: "str | ArrayEngine | None" = None
) -> ELLMatrix:
    """Vectorized per-node assembly over the flat arrays (same math as the
    kernel; used as its fast stand-in for large row counts)."""
    eng = get_engine(engine)

    def children(node: int):
        out = []
        for slot in range(4):
            eidx = int(flat.node_edges[node, slot])
            if eidx == -1:
                out.append((None, 0))
                continue
            child = int(flat.edge_node[eidx])
            out.append((child if child != -1 else None, flat.edge_weight[eidx]))
        return out

    root = flat.root()
    root_node = int(flat.edge_node[root])
    values, cols = _assemble_ell(
        root_node if root_node != -1 else None,
        flat.edge_weight[root],
        node_key=lambda node: node,
        node_level=lambda node: int(flat.node_level[node]),
        node_children=children,
        xp=eng.xp,
    )
    return ELLMatrix(
        flat.num_qubits, eng.to_host(values), eng.to_host(cols)
    )


def _pad_to(ell: ELLMatrix, width: int) -> ELLMatrix:
    if ell.width == width:
        return ell
    if ell.width > width:
        raise ConversionError(
            f"ELL width {ell.width} exceeds declared max NZR {width}"
        )
    values = np.zeros((ell.num_rows, width), dtype=np.complex128)
    cols = np.zeros((ell.num_rows, width), dtype=np.int64)
    values[:, : ell.width] = ell.values
    cols[:, : ell.width] = ell.cols
    return ELLMatrix(ell.num_qubits, values, cols)


# ---------------------------------------------------------------------------
# Hybrid conversion
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ConversionResult:
    """ELL matrix plus the route the hybrid policy took."""

    ell: ELLMatrix
    route: str  # "cpu" or "gpu"
    num_edges: int
    tau: int


def ell_from_dd(
    edge: Edge,
    num_qubits: int,
    max_nzr: int | None = None,
    tau: int = DEFAULT_TAU,
    force: str | None = None,
    engine: "str | ArrayEngine | None" = None,
) -> ConversionResult:
    """Hybrid DD-to-ELL conversion (Section 3.2): GPU when the DD has at
    most ``tau`` edges, CPU otherwise.  ``force`` pins the route."""
    edges = count_edges(edge)
    route = force or ("cpu" if edges > tau else "gpu")
    with get_tracer().span(
        "convert.dd_to_ell", dd_edges=edges, route=route, tau=tau,
        forced=force is not None,
    ) as span:
        if route == "cpu":
            ell = ell_from_dd_cpu(edge, num_qubits, engine=engine)
            if max_nzr is not None:
                ell = _pad_to(ell, max_nzr)
        elif route == "gpu":
            flat = flatten_matrix_dd(edge, num_qubits)
            if max_nzr is None:
                ell = _ell_from_flat_fast(flat, engine=engine)
            else:
                ell = ell_from_flat_gpu(flat, max_nzr, engine=engine)
        else:
            raise ConversionError(f"unknown conversion route {route!r}")
        span.set(ell_width=ell.width)
    _record_conversion(ell, edges, route)
    return ConversionResult(ell=ell, route=route, num_edges=edges, tau=tau)


def _record_conversion(ell: ELLMatrix, edges: int, route: str) -> None:
    """Feed the hybrid converter's decision and output shape into the
    metrics registry (the paper's Fig. 9 / Table 1 signals)."""
    metrics = get_metrics()
    metrics.inc(f"convert.route.{route}")
    metrics.observe("convert.dd_edges", edges)
    metrics.observe("ell.width", ell.width)
    nnz = int(np.count_nonzero(ell.values))
    metrics.observe("ell.nnz", nnz)
    slots = ell.num_rows * max(ell.width, 1)
    metrics.observe("ell.padding_ratio", 1.0 - nnz / slots)
