"""The BQSim simulator: the paper's three-stage pipeline.

Stage 1 — BQCS-aware gate fusion on DDs (Section 3.1).
Stage 2 — hybrid DD-to-ELL conversion (Section 3.2).
Stage 3 — task-graph execution of ELL spMM kernels over rotating device
buffers with overlapped H2D/D2H copies (Section 3.3, Figure 8).

Ablation switches mirror Figure 13: ``fusion=False`` skips stage 1,
``use_ell=False`` simulates straight from flat DDs on the device (each
kernel pays a DFS walk per amplitude), ``task_graph=False`` launches every
kernel/copy synchronously.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Sequence

import numpy as np

from ..approx import FidelityLedger, prune_plan
from ..circuit import Circuit, InputBatch
from ..dd.export import count_edges, count_nodes
from ..dd.manager import DDManager
from ..ell.convert import DEFAULT_TAU, ell_from_dd
from ..ell.format import ELLMatrix
from ..ell.persist import CompiledPlan, load_compiled_plan, save_compiled_plan
from ..ell.spmm import default_backend, ell_spmm
from ..errors import (
    ApproximationError,
    CheckpointError,
    ConversionError,
    MemoryFault,
    SimulationError,
    TransientFault,
)
from ..fusion.bqcs import bqcs_fusion, no_fusion_plan
from ..fusion.plan import FusionPlan
from ..gpu.device import VirtualGPU
from ..gpu.power import PowerReport, cpu_power_from_utilization, gpu_power_from_work
from ..kernels import ops as _kernels
from ..kernels.engine import ArrayEngine, get_engine
from ..gpu.spec import (
    COMPLEX_BYTES,
    CpuSpec,
    GpuSpec,
    ell_kernel_bytes,
    state_block_bytes,
)
from ..obs import CANONICAL_STAGES, get_tracer
from ..profile import StageTimer
from ..resilience import (
    BackendLadder,
    CheckpointManager,
    FaultPlan,
    HealthPolicy,
    RetryPolicy,
    RetrySession,
    check_state_block,
    fault_injection,
    get_fault_injector,
    get_resilience_log,
    load_checkpoint,
)
from .base import (
    BatchSimulator,
    BatchSpec,
    PlanCache,
    RunObservation,
    SimulationResult,
)

NUM_BUFFERS = 4


def buffer_indices(batch_index: int, kernel_index: int, kernels_per_batch: int) -> tuple[int, int]:
    """The paper's buffer-selection formulas (Section 3.3.2): input and
    output buffer for kernel ``I_k`` of batch ``I_B``."""
    base = 2 * (batch_index % 2)
    phase = (batch_index // 2) * (kernels_per_batch + 1) + kernel_index
    return base + phase % 2, base + (phase + 1) % 2


class BQSimSimulator(BatchSimulator):
    """GPU-accelerated batch quantum circuit simulation with DDs.

    The paper's three-stage pipeline behind one ``run()`` call: BQCS-aware
    gate fusion, DD-to-ELL conversion (hybrid CPU/GPU route), and
    task-graph execution over rotating device buffers.  Compiled plans
    are cached by circuit structure (in memory, and on disk when
    ``cache_dir`` or ``$REPRO_PLAN_CACHE`` is set), so repeated runs of
    an equal circuit skip stages 1-2.  Example::

        sim = BQSimSimulator()
        result = sim.run(make_circuit("ghz", 4), BatchSpec(2, 8))
        amplitudes = result.output_batch(0)       # (16, 8) complex128
    """

    name = "bqsim"

    def __init__(
        self,
        gpu: GpuSpec | None = None,
        cpu: CpuSpec | None = None,
        tau: int = DEFAULT_TAU,
        fusion: bool = True,
        use_ell: bool = True,
        task_graph: bool = True,
        max_fused_cost: int | None = None,
        snapshots: bool = False,
        cache_dir: str | Path | None = None,
        retry: RetryPolicy | None = None,
        faults: FaultPlan | str | None = None,
        health: HealthPolicy | str | None = "warn",
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int = 1,
        max_splits: int = 0,
        engine: "str | ArrayEngine | None" = None,
        fidelity: float = 1.0,
    ):
        self.gpu = gpu or GpuSpec()
        #: array-engine designator; resolved per run so ``REPRO_ENGINE``
        #: and :func:`repro.kernels.set_default_engine` changes apply
        self.engine = engine
        self.cpu = cpu or CpuSpec()
        self.tau = tau
        self.fusion = fusion
        self.use_ell = use_ell
        self.task_graph = task_graph
        self.max_fused_cost = max_fused_cost
        #: capture the full state after every fused gate (paper Section 2.1:
        #: full-state simulation exposes the amplitudes at each gate)
        self.snapshots = snapshots
        #: optional disk tier: compiled plans round-trip through
        #: ``cache_dir`` (or $REPRO_PLAN_CACHE) so warm *processes* skip
        #: fusion and conversion entirely
        self._plans = PlanCache(cache_dir)
        #: retry policy for transient kernel/copy/cache faults (None = defaults)
        self.retry = retry
        #: fault plan scoped to every run of this simulator (None = the
        #: process-wide plan, i.e. set_fault_plan() or $REPRO_FAULTS)
        self.faults = faults
        #: per-batch numerical health guard (off/warn/renormalize/fail)
        self.health = HealthPolicy.coerce(health)
        #: batch-boundary checkpointing (None = disabled)
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.checkpoint_every = checkpoint_every
        #: adaptive batch splitting: on OOM, halve the state-block batch up
        #: to ``2**max_splits`` parts; 0 keeps the strict memory guard
        self.max_splits = max_splits
        #: end-to-end fidelity budget in (0, 1].  1.0 is the exact tier —
        #: the approximation pass is a no-op and results are bit-identical
        #: to a build without it.  Below 1.0, the fused plan is pruned by
        #: :func:`repro.approx.prune_plan` under this budget and the run's
        #: ``stats["approx"]`` reports the achieved fidelity.
        fidelity = float(fidelity)
        if not 0.0 < fidelity <= 1.0:
            raise ApproximationError(
                f"fidelity budget must be in (0, 1], got {fidelity}"
            )
        self.fidelity = fidelity

    # -- pipeline stages ------------------------------------------------------

    def plan_circuit(self, mgr: DDManager, circuit: Circuit) -> FusionPlan:
        if self.fusion:
            return bqcs_fusion(mgr, circuit, max_cost=self.max_fused_cost)
        return no_fusion_plan(mgr, circuit)

    def _cache_extra(self, fidelity: float | None = None) -> tuple:
        """Settings that change what stages 1-2 produce (part of the key).

        The fidelity budget joins the key only below 1.0, so exact plans
        keep their historical fingerprints (warm caches stay warm) while
        every approximate budget names a distinct plan — which is also how
        jobs partition into fidelity classes downstream: the coalescer and
        the gateway's shard placement both key on this fingerprint.

        ``fidelity`` lets callers key a budget other than this simulator's
        own without mutating shared state (the serving layer fingerprints
        per-job budgets against one template simulator from concurrent
        threads); None keys ``self.fidelity``.
        """
        budget = self.fidelity if fidelity is None else float(fidelity)
        extra = (
            "bqsim-v1", self.fusion, self.max_fused_cost, self.tau, self.use_ell
        )
        if budget < 1.0:
            extra += ("fidelity", budget)
        return extra

    def plan_fingerprint(self, circuit: Circuit) -> str:
        """The structural key this simulator compiles ``circuit`` under.

        Two circuits with equal fingerprints share one compiled plan in
        this simulator's :class:`~repro.sim.base.PlanCache` (memory and
        disk tiers alike), which is the compatibility predicate the
        serving layer's coalescer uses to merge jobs into one mega-batch.
        """
        return self._plans.key(circuit, self._cache_extra())

    def _build(self, circuit: Circuit) -> dict:
        """Stages 1 and 2 from scratch: fusion + conversion analysis.

        With a fidelity budget below 1.0, the fused plan is pruned under
        the budget *before* the conversion analysis, so routes, widths, and
        modeled times all reflect the smaller approximate DDs."""
        mgr = DDManager(circuit.num_qubits)
        plan = self.plan_circuit(mgr, circuit)
        plan, ledger = prune_plan(mgr, plan, self.fidelity)
        fused_nodes = sum(count_nodes(g.dd) for g in plan.gates)
        rows = 1 << plan.num_qubits
        infos: list[dict] = []
        for fused in plan.gates:
            edges = count_edges(fused.dd)
            route = "cpu" if edges > self.tau else "gpu"
            if route == "gpu":
                t = self.gpu.conversion_time(rows, fused.cost, edges)
            else:
                t = self.cpu.conversion_time(rows, fused.cost, edges)
            if not self.use_ell:
                t = 0.0  # ablation: simulate straight from the flat DD
            infos.append(
                {"route": route, "edges": edges, "width": fused.cost, "time": t}
            )
        return {
            "mgr": mgr,
            "plan": plan,
            "fused_nodes": fused_nodes,
            "conv_infos": infos,
            "ells": None,
            "approx": ledger.to_dict(),
        }

    def _prepare(self, circuit: Circuit, execute: bool = False) -> tuple[dict, str]:
        """Stages 1 and 2, cached per circuit structure.

        Tier order: memory, then disk (compiled-plan archives), then a
        fresh build.  Returns ``(prepared, source)`` with source one of
        ``"memory"``, ``"disk"``, ``"built"``.  A disk entry saved without
        matrices (model-only run) cannot feed numeric execution, so with
        ``execute=True`` it is treated as a miss and rebuilt.

        Misses build under :meth:`PlanCache.build_lock`, the per-key
        cross-process lock of the shared disk tier: after acquiring it the
        disk is re-checked (another worker process may have compiled the
        same fingerprint while this one waited), so a fleet of pool
        workers sharing one ``cache_dir`` compiles each plan exactly once.
        """
        key = self._plans.key(circuit, self._cache_extra())

        def _usable(entry: dict | None) -> dict | None:
            """Reject metadata-only entries when numerics are required."""
            if (
                entry is not None
                and execute
                and entry["ells"] is None
                and any(g.dd is None for g in entry["plan"].gates)
            ):
                return None
            return entry

        prepared = _usable(self._plans.peek(key))
        source = "memory" if prepared is not None else ""
        if prepared is None:
            with self._plans.build_lock(key):
                # the disk read happens under the lock: a concurrent
                # process building the same key has either finished (we
                # load its archive) or never started (we build and save
                # before releasing) — never half-written bytes
                prepared = _usable(self._load_compiled(key))
                if prepared is not None:
                    source = "disk"
                else:
                    prepared = self._build(circuit)
                    source = "built"
                    prepared["key"] = key
                    prepared["circuit_name"] = circuit.name
                    if execute:
                        # materialize the matrices before the (locked)
                        # save: the archive a racer loads must be fully
                        # executable, or it would reject the entry and
                        # compile the same fingerprint a second time
                        prepared["ells"] = self._convert_ells(prepared)
                    self._save_compiled(prepared)
        self._plans.note_lookup(source)
        prepared["key"] = key
        prepared["circuit_name"] = circuit.name
        self._plans.put(key, prepared)
        return prepared, source

    def _convert_ells(self, prepared: dict) -> list[ELLMatrix]:
        """Stage-2 numerics: one ELL matrix per fused gate (no caching)."""
        plan: FusionPlan = prepared["plan"]
        return [
            ell_from_dd(
                fused.dd, plan.num_qubits, max_nzr=fused.cost, tau=self.tau
            ).ell
            for fused in plan.gates
        ]

    def _materialize_ells(self, prepared: dict) -> list[ELLMatrix]:
        if prepared["ells"] is None:
            prepared["ells"] = self._convert_ells(prepared)
            # upgrade the disk entry: metadata-only archives become fully
            # executable once the matrices exist (locked: pool workers may
            # race to upgrade the same fingerprint)
            with self._plans.build_lock(prepared.get("key", "")):
                self._save_compiled(prepared)
        return prepared["ells"]

    # -- disk tier ------------------------------------------------------------

    def _load_compiled(self, key: str) -> dict | None:
        """Disk-tier read with transient-I/O retries and corruption quarantine.

        Transient read failures (site ``cache_io``) are retried under the
        simulator's retry policy, then degrade to a cache miss.  A corrupt
        or version-skewed archive (a real :class:`ConversionError`, or the
        injected ``cache`` fault) is *quarantined* — moved aside, counted,
        and warned about — never silently swallowed, and never retried by
        every future process.
        """
        path = self._plans.disk_path(key)
        if path is None or not path.exists():
            return None
        injector = get_fault_injector()
        session = RetrySession(self.retry) if injector is not None else None
        attempt = 0
        while True:
            attempt += 1
            try:
                if injector is not None and injector.check("cache_io"):
                    raise TransientFault(
                        f"injected cache read failure on {path.name}",
                        site="cache_io",
                    )
                if injector is not None and injector.check("cache"):
                    raise ConversionError(
                        f"injected corruption in plan archive {path.name}"
                    )
                compiled = load_compiled_plan(path)
            except TransientFault as exc:
                if session.next_backoff("cache_io", attempt, exc) is None:
                    return None  # exhausted: treat as a cache miss
                continue
            except ConversionError as exc:
                self._plans.quarantine(path, str(exc))
                return None
            return {
                "mgr": None,
                "plan": compiled.to_fusion_plan(),
                "fused_nodes": compiled.fused_nodes,
                "conv_infos": [dict(info) for info in compiled.conv_infos],
                "ells": list(compiled.matrices) if compiled.has_matrices else None,
                # pre-approximation archives carry no ledger; the exact
                # block keeps disk-warm stats["approx"] well-formed
                "approx": compiled.approx
                or FidelityLedger(budget=self.fidelity).to_dict(),
            }

    def _save_compiled(self, prepared: dict) -> None:
        path = self._plans.disk_path(prepared.get("key", ""))
        if path is None:
            return
        plan: FusionPlan = prepared["plan"]
        compiled = CompiledPlan(
            fingerprint=prepared["key"],
            circuit_name=prepared.get("circuit_name", ""),
            num_qubits=plan.num_qubits,
            algorithm=plan.algorithm,
            source_gate_count=plan.source_gate_count,
            fused_nodes=prepared["fused_nodes"],
            gate_costs=tuple(g.cost for g in plan.gates),
            gate_indices=tuple(g.gate_indices for g in plan.gates),
            gate_nnz=tuple(g.nnz for g in plan.gates),
            conv_infos=tuple(prepared["conv_infos"]),
            matrices=tuple(prepared["ells"]) if prepared["ells"] else None,
            # exact plans carry no approx payload (pre-approx archives
            # stay byte-compatible); only budgeted plans persist a ledger
            approx=prepared.get("approx") if self.fidelity < 1.0 else None,
        )
        try:
            save_compiled_plan(compiled, path)
        except OSError:
            pass  # a read-only cache dir must not break simulation

    # -- main entry point -------------------------------------------------------

    def _trace_conv_infos(self, conv_infos: list[dict]) -> None:
        """Emit one attribute-only span per fused gate from the cached
        conversion analysis, so traces of model-only or plan-cache-warm
        runs still carry the per-gate dd_edges/ell_width/route decisions."""
        tracer = get_tracer()
        if not tracer.enabled:
            return
        for i, info in enumerate(conv_infos):
            with tracer.span(
                "convert.dd_to_ell",
                gate=i,
                dd_edges=info["edges"],
                ell_width=info["width"],
                route=info["route"],
                modeled_s=info["time"],
                cached=True,
            ):
                pass

    def run(
        self,
        circuit: Circuit,
        spec: BatchSpec,
        batches: Sequence[InputBatch] | None = None,
        execute: bool = True,
        resume: str | Path | None = None,
    ) -> SimulationResult:
        """Run the pipeline; ``resume`` replays from a checkpoint archive.

        The whole run executes under the simulator's fault plan (when one
        was configured) so injected faults, retries, and degradation are
        scoped to this call.
        """
        with fault_injection(self.faults):
            return self._run(circuit, spec, batches, execute, resume)

    def _run(
        self,
        circuit: Circuit,
        spec: BatchSpec,
        batches: Sequence[InputBatch] | None,
        execute: bool,
        resume: str | Path | None,
    ) -> SimulationResult:
        wall_start = time.perf_counter()
        n = circuit.num_qubits
        eng = get_engine(self.engine)
        obs = RunObservation()
        timer = StageTimer(stages=CANONICAL_STAGES)

        with obs.tracer.span(
            f"{self.name}.run",
            simulator=self.name,
            circuit=circuit.name,
            num_qubits=n,
            num_batches=spec.num_batches,
            batch_size=spec.batch_size,
            execute=execute,
        ):
            # stages 1 and 2: fusion + conversion (one-time, cached per
            # circuit structure in memory and — with a cache_dir — on disk)
            with timer.time("fusion") as span:
                prepared, plan_source = self._prepare(circuit, execute)
                span.set(
                    plan_source=plan_source,
                    fused_gates=len(prepared["plan"].gates),
                    dd_nodes=prepared["fused_nodes"],
                )
            plan: FusionPlan = prepared["plan"]
            conv_infos = prepared["conv_infos"]
            t_fusion = self.cpu.fusion_time(
                len(circuit.gates), prepared["fused_nodes"]
            )
            t_conversion = sum(info["time"] for info in conv_infos)
            with timer.time("convert") as span:
                fresh = prepared["ells"] is None
                ells = self._materialize_ells(prepared) if execute else None
                if not (execute and fresh):
                    self._trace_conv_infos(conv_infos)
                span.set(
                    num_gates=len(conv_infos),
                    materialized=bool(execute and fresh),
                )

            with timer.time("io") as span:
                resumed: list[np.ndarray] = []
                skip = 0
                if resume is not None:
                    if not execute:
                        raise CheckpointError("resume requires execute=True")
                    resumed = self._load_checkpoint_outputs(
                        resume, prepared["key"], circuit, spec
                    )
                    skip = len(resumed)
                batches = self._resolve_batches(circuit, spec, batches, execute)
                span.set(
                    num_batches=0 if batches is None else len(batches),
                    resumed_batches=skip,
                )

            # stage 3: task-graph execution (OOM-aware, retrying, checked)
            with timer.time("execute") as span:
                ladder = BackendLadder() if execute else None
                ckpt = (
                    CheckpointManager(self.checkpoint_dir, every=self.checkpoint_every)
                    if (self.checkpoint_dir is not None and execute)
                    else None
                )
                done: dict[int, np.ndarray] = {}

                def on_batch(ib: int, states: np.ndarray) -> np.ndarray:
                    states = check_state_block(
                        states, self.health, label=f"{circuit.name} batch {ib}"
                    )
                    done[ib] = states
                    if ckpt is not None:
                        ckpt.maybe_save(
                            ib,
                            plan_key=prepared["key"],
                            circuit_name=circuit.name,
                            num_qubits=n,
                            num_batches=spec.num_batches,
                            batch_size=spec.batch_size,
                            seed=spec.seed,
                            outputs=resumed + [done[j] for j in sorted(done)],
                        )
                    return states

                device, work, outputs, snapshots, split = self._execute_resilient(
                    plan,
                    conv_infos,
                    ells,
                    batches,
                    spec,
                    skip=skip,
                    ladder=ladder,
                    on_batch=on_batch if execute else None,
                    engine=eng,
                )
                timeline = device.run()
                if outputs is not None and resumed:
                    outputs = resumed + outputs
                span.set(
                    backend=ladder.backend if ladder else default_backend(),
                    num_tasks=len(timeline.tasks),
                    overlap_fraction=timeline.overlap_fraction(),
                    batch_split=split,
                )
        t_sim = timeline.makespan

        total = t_fusion + t_conversion + t_sim
        host_busy = t_fusion + sum(
            info["time"] for info in conv_infos if info["route"] == "cpu"
        )
        power = PowerReport(
            gpu_watts=gpu_power_from_work(
                work["macs"], work["bytes"], t_sim, self.gpu
            ),
            cpu_watts=cpu_power_from_utilization(
                min(host_busy / total, 1.0) if total > 0 else 0.0, self.cpu
            ),
        )
        return SimulationResult(
            simulator=self.name,
            circuit_name=circuit.name,
            num_qubits=n,
            spec=spec,
            modeled_time=total,
            breakdown={
                "fusion": t_fusion,
                "conversion": t_conversion,
                "simulation": t_sim,
            },
            power=power,
            timeline=timeline,
            outputs=outputs,
            wall_time=time.perf_counter() - wall_start,
            stats=obs.finalize(
                {
                    "engine": eng.name,
                    "fused_gates": len(plan),
                    "total_cost": plan.total_cost,
                    "macs": plan.macs(spec.num_inputs),
                    "conversion_routes": [i["route"] for i in conv_infos],
                    "plan": plan,
                    "plan_source": plan_source,
                    "plan_key": prepared["key"],
                    "overlap_fraction": timeline.overlap_fraction(),
                    "snapshots": snapshots,
                    "approx": prepared.get("approx")
                    or FidelityLedger(budget=self.fidelity).to_dict(),
                },
                timer,
                self._plans,
                resilience_extra={
                    "batch_split": split,
                    "resumed_batches": skip,
                    "task_retries": timeline.total_retries(),
                    "backend": ladder.backend if ladder else default_backend(),
                    "demoted": bool(ladder.demoted) if ladder else False,
                },
            ),
        )

    # -- resilient execution -------------------------------------------------

    def _execute_resilient(
        self,
        plan: FusionPlan,
        conv_infos: list[dict],
        ells: list[ELLMatrix] | None,
        batches: list[InputBatch] | None,
        spec: BatchSpec,
        skip: int = 0,
        ladder: BackendLadder | None = None,
        on_batch=None,
        engine: "ArrayEngine | None" = None,
    ):
        """Build and numerically execute the task graph, splitting batches
        on memory pressure.

        Each :class:`MemoryFault` (capacity overflow or injected OOM) halves
        the state-block batch — a fresh device, fresh graph — up to
        ``2**max_splits`` parts; the final split factor is returned so the
        stats can report the degradation.
        """
        split = 1
        limit = 1 << max(self.max_splits, 0)
        while True:
            device = VirtualGPU(
                self.gpu,
                mode="graph" if self.task_graph else "stream",
                retry=self.retry,
                seed=spec.seed,
                engine=engine if engine is not None else self.engine,
            )
            work = {"macs": 0.0, "bytes": 0.0}
            try:
                outputs, snapshots = self._simulate(
                    device,
                    plan,
                    conv_infos,
                    ells,
                    batches,
                    spec,
                    work,
                    split=split,
                    skip=skip,
                    ladder=ladder,
                    on_batch=on_batch,
                )
            except MemoryFault as exc:
                if split >= limit:
                    raise
                split *= 2
                get_resilience_log().record(
                    "batch_split", site="oom", split=split, reason=str(exc)
                )
                continue
            return device, work, outputs, snapshots, split

    def _load_checkpoint_outputs(
        self,
        resume: str | Path,
        plan_key: str,
        circuit: Circuit,
        spec: BatchSpec,
    ) -> list[np.ndarray]:
        """Validate a checkpoint against this run and return its outputs."""
        ckpt = load_checkpoint(resume)
        if ckpt.plan_key != plan_key:
            raise CheckpointError(
                f"checkpoint plan {ckpt.plan_key[:12]}... does not match "
                f"the compiled plan {plan_key[:12]}..."
            )
        if ckpt.num_qubits != circuit.num_qubits:
            raise CheckpointError(
                f"checkpoint is for {ckpt.num_qubits} qubits, "
                f"circuit has {circuit.num_qubits}"
            )
        expected = (spec.num_batches, spec.batch_size, spec.seed)
        actual = (ckpt.num_batches, ckpt.batch_size, ckpt.seed)
        if actual != expected:
            raise CheckpointError(
                f"checkpoint batch spec {actual} does not match the "
                f"requested run {expected}"
            )
        if ckpt.completed > spec.num_batches:
            raise CheckpointError(
                "checkpoint reports more completed batches than the run has"
            )
        get_resilience_log().record(
            "resume",
            site="checkpoint",
            completed=ckpt.completed,
            path=str(resume),
        )
        return [np.array(block) for block in ckpt.outputs]

    # -- task-graph construction -------------------------------------------------

    def _simulate(
        self,
        device: VirtualGPU,
        plan: FusionPlan,
        conv_infos: list[dict],
        ells: list[ELLMatrix] | None,
        batches: list[InputBatch] | None,
        spec: BatchSpec,
        work: dict | None = None,
        split: int = 1,
        skip: int = 0,
        ladder: BackendLadder | None = None,
        on_batch=None,
    ) -> tuple[list[np.ndarray] | None, list[list[np.ndarray]] | None]:
        """Build (and, when ``batches`` is given, numerically execute) the
        rotating-buffer task graph.

        ``split`` divides every input batch into that many column slices so
        the four device buffers shrink accordingly (OOM degradation);
        ``skip`` omits already-completed batches (checkpoint resume);
        ``ladder`` routes kernels through the spMM fallback chain; and
        ``on_batch(ib, states)`` observes/rewrites each merged output batch
        (health checks + checkpointing).
        """
        n = plan.num_qubits
        rows = 1 << n
        kernels = max(len(plan), 1)
        sub_size = -(-spec.batch_size // split)  # ceil division
        block = state_block_bytes(n, sub_size)
        if NUM_BUFFERS * block > device.spec.memory_bytes:
            raise MemoryFault(
                f"{NUM_BUFFERS} state buffers of {block} B exceed device "
                f"memory ({device.spec.memory_bytes} B); reduce the batch "
                "size or shard across devices"
            )
        executing = batches is not None
        buffers = (
            [device.alloc(f"D[{i}]", block) for i in range(NUM_BUFFERS)]
            if executing
            else None
        )

        writer = [None] * NUM_BUFFERS  # last task writing each buffer
        readers: list[list] = [[] for _ in range(NUM_BUFFERS)]
        outputs: list[np.ndarray] | None = [] if executing else None
        snapshots: list[list[np.ndarray]] | None = (
            [] if (self.snapshots and executing) else None
        )
        dfs_penalty = 1.0 if self.use_ell else float(n)
        #: global sub-batch counter — drives the buffer rotation, so a split
        #: run keeps the paper's double-buffered dependency pattern intact
        jb = 0

        for ib in range(skip, spec.num_batches):
            parts: list[np.ndarray] = []
            ksnaps: list[list[np.ndarray]] | None = (
                [[] for _ in range(len(plan.gates))]
                if snapshots is not None
                else None
            )
            for part in range(split):
                lo = part * sub_size
                width_part = min(sub_size, spec.batch_size - lo)
                if width_part <= 0:
                    break
                tag = f"b{ib}" if split == 1 else f"b{ib}.{part}"
                part_block = state_block_bytes(n, width_part)
                in_idx, _ = buffer_indices(jb, 0, kernels)
                # H2D: write hazard on the input buffer (WAR + WAW)
                deps = readers[in_idx] + (
                    [writer[in_idx]] if writer[in_idx] else []
                )
                if executing:
                    seg = batches[ib].states[:, lo : lo + width_part]
                    handle = device.h2d(
                        buffers[in_idx], seg, deps, name=f"h2d:{tag}"
                    )
                else:
                    handle = device.raw_task(
                        f"h2d:{tag}", "h2d", self.gpu.copy_time(part_block), deps
                    )
                writer[in_idx], readers[in_idx] = handle, []

                for ik in range(len(plan.gates)):
                    src, dst = buffer_indices(jb, ik, kernels)
                    width = conv_infos[ik]["width"]
                    ell_bytes = rows * width * (COMPLEX_BYTES + 8)
                    macs = rows * width * width_part
                    traffic = ell_kernel_bytes(n, width_part, width, ell_bytes)
                    duration = self.gpu.kernel_time(macs, traffic) * dfs_penalty
                    if work is not None:
                        work["macs"] += macs
                        work["bytes"] += traffic
                    deps = [writer[src]] + readers[dst]
                    if writer[dst] is not None:
                        deps.append(writer[dst])
                    if executing:
                        ell = ells[ik]
                        src_buf, dst_buf = buffers[src], buffers[dst]

                        def body(
                            ell=ell, src_buf=src_buf, dst_buf=dst_buf
                        ):
                            states = src_buf.require()
                            eng = device.engine
                            if ladder is not None:
                                dst_buf.array = ladder.apply(
                                    ell, states, engine=eng
                                )
                            else:
                                dst_buf.array = ell_spmm(ell, states, engine=eng)

                        handle = device.kernel(
                            f"k{ik}:{tag}",
                            body,
                            deps=deps,
                            duration=duration,
                            output=dst_buf,
                        )
                    else:
                        handle = device.raw_task(
                            f"k{ik}:{tag}", "compute", duration, deps
                        )
                    readers[src].append(handle)
                    writer[dst] = handle
                    readers[dst] = []
                    if self.snapshots:
                        # per-gate full-state capture: an extra D2H per kernel
                        if executing:
                            snap_handle, snap = device.d2h(
                                buffers[dst], [handle], name=f"snap:k{ik}:{tag}"
                            )
                            ksnaps[ik].append(snap)
                        else:
                            snap_handle = device.raw_task(
                                f"snap:k{ik}:{tag}", "d2h",
                                self.gpu.copy_time(part_block), [handle],
                            )
                        readers[dst].append(snap_handle)

                final_idx, _ = buffer_indices(jb, len(plan.gates), kernels)
                deps = [writer[final_idx]] if writer[final_idx] else []
                if executing:
                    handle, snapshot = device.d2h(
                        buffers[final_idx], deps, name=f"d2h:{tag}"
                    )
                    parts.append(snapshot)
                else:
                    handle = device.raw_task(
                        f"d2h:{tag}", "d2h", self.gpu.copy_time(part_block), deps
                    )
                readers[final_idx].append(handle)
                jb += 1

            if executing:
                merged = _kernels.batch_merge(device.engine, parts)
                if on_batch is not None:
                    merged = on_batch(ib, merged)
                outputs.append(merged)
                if snapshots is not None:
                    snapshots.append(
                        [_kernels.batch_merge(device.engine, s) for s in ksnaps]
                    )
        return outputs, snapshots
