"""Shard router tests: ring stability, affinity, quotas, failover.

The consistent-hash property tests pin the gateway's scaling story:
adding or removing one of N shards remaps only ~1/N of the fingerprint
space, and jobs already placed on surviving shards never move.  The
failover tests reuse the chaos harness to kill one shard's pool mid-run
and assert the PR-8 invariant fleet-wide: zero unaccounted jobs in the
merged lifecycle log, with rescued work finishing on survivors carrying
its crash evidence.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.generators import make_circuit
from repro.circuit.inputs import random_batch
from repro.errors import GatewayError, RetryLater
from repro.gateway.quotas import TenantQuotas, TokenBucket
from repro.gateway.router import HashRing, ShardRouter
from repro.testing.chaos_pool import ChaosSchedule


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ---------------------------------------------------------------------------
# the hash ring
# ---------------------------------------------------------------------------

KEYS = [f"fingerprint-{i:05d}" for i in range(2000)]


class TestHashRing:
    def test_deterministic(self):
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s2", "s0", "s1"])  # insertion order irrelevant
        assert [a.node_for(k) for k in KEYS] == [
            b.node_for(k) for k in KEYS
        ]

    def test_covers_all_nodes(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        owners = {ring.node_for(k) for k in KEYS}
        assert owners == {"s0", "s1", "s2", "s3"}

    def test_balance(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        counts = {}
        for key in KEYS:
            node = ring.node_for(key)
            counts[node] = counts.get(node, 0) + 1
        # vnode smoothing: no shard owns more than 2x its fair share
        assert max(counts.values()) < 2 * len(KEYS) / 4

    def test_add_remaps_about_one_over_n(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        before = {k: ring.node_for(k) for k in KEYS}
        ring.add("s4")
        moved = [k for k in KEYS if ring.node_for(k) != before[k]]
        # expected 1/5 of keys move; allow generous slack, but far below
        # the ~4/5 a naive mod-N rehash would move
        assert len(moved) < 0.40 * len(KEYS)
        # every key that moved went TO the new node, nowhere else
        assert {ring.node_for(k) for k in moved} == {"s4"}

    def test_remove_remaps_only_the_dead_nodes_keys(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        before = {k: ring.node_for(k) for k in KEYS}
        ring.remove("s2")
        for key in KEYS:
            if before[key] != "s2":
                assert ring.node_for(key) == before[key]
            else:
                assert ring.node_for(key) != "s2"

    @settings(max_examples=25, deadline=None)
    @given(
        nodes=st.integers(min_value=2, max_value=8),
        victim=st.integers(min_value=0, max_value=7),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_removal_stability_property(self, nodes, victim, seed):
        """Removing any one of N nodes never moves a surviving node's key."""
        victim %= nodes
        keys = [f"k{seed}-{i}" for i in range(200)]
        ring = HashRing([f"s{i}" for i in range(nodes)])
        before = {k: ring.node_for(k) for k in keys}
        ring.remove(f"s{victim}")
        survivors_keys = [
            k for k in keys if before[k] != f"s{victim}"
        ]
        assert all(ring.node_for(k) == before[k] for k in survivors_keys)

    def test_empty_ring_refuses(self):
        with pytest.raises(GatewayError):
            HashRing().node_for("x")

    def test_duplicate_node_refused(self):
        ring = HashRing(["s0"])
        with pytest.raises(GatewayError):
            ring.add("s0")


# ---------------------------------------------------------------------------
# quotas
# ---------------------------------------------------------------------------

class TestQuotas:
    def test_bucket_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.try_acquire()

    def test_admit_raises_retry_later_with_hint(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate=1.0, burst=1, clock=clock)
        quotas.admit("alice")
        with pytest.raises(RetryLater) as err:
            quotas.admit("alice")
        assert err.value.retry_after_s == pytest.approx(1.0)
        assert getattr(err.value, "reason", "") == "quota"
        # tenants are isolated: bob still has his whole burst
        quotas.admit("bob")
        assert quotas.stats()["alice"]["refused"] == 1

    def test_weights_become_priority_offsets(self):
        quotas = TenantQuotas(tenants={"gold": {"weight": 5}})
        assert quotas.priority_offset("gold") == 5
        assert quotas.priority_offset("anonymous") == 0

    def test_weighted_tenant_gets_priority_on_the_shard(self):
        quotas = TenantQuotas(
            rate=1000.0, tenants={"gold": {"weight": 7}}
        )
        router = ShardRouter(num_shards=1, quotas=quotas)
        job, _ = router.submit(
            make_circuit("ghz", 3), num_inputs=2, tenant="gold"
        )
        assert job.priority == 7
        router.close()


# ---------------------------------------------------------------------------
# routing
# ---------------------------------------------------------------------------

class TestRouting:
    def test_affinity_colocates_identical_fingerprints(self):
        router = ShardRouter(num_shards=4)
        shards = {
            router.submit(make_circuit("ghz", 3), num_inputs=1)[1]
            for _ in range(6)
        }
        assert len(shards) == 1  # same fingerprint, same home shard
        router.drain()
        router.close()
        assert router.unaccounted() == []

    def test_random_routing_spreads(self):
        router = ShardRouter(num_shards=4, routing="random")
        shards = [
            router.submit(make_circuit("ghz", 3), num_inputs=1)[1]
            for _ in range(8)
        ]
        assert len(set(shards)) == 4  # round-robin hits every shard
        router.close()

    def test_routed_lifecycle_event(self):
        router = ShardRouter(num_shards=2)
        job, shard = router.submit(make_circuit("qft", 3), num_inputs=2)
        events = [
            e for e in router.lifecycle_events() if e["event"] == "routed"
        ]
        assert len(events) == 1
        assert events[0]["job"] == job.job_id
        assert events[0]["shard"] == shard
        assert job.job_id.startswith(f"{shard}/")
        router.close()

    def test_backpressure_is_retry_later(self):
        router = ShardRouter(
            num_shards=1, service_kwargs={"max_depth": 2}
        )
        circuit = make_circuit("ghz", 3)
        router.submit(circuit, num_inputs=1)
        router.submit(circuit, num_inputs=1)
        with pytest.raises(RetryLater) as err:
            router.submit(circuit, num_inputs=1)
        assert getattr(err.value, "reason", "") == "backpressure"
        assert err.value.retry_after_s > 0
        router.close()

    def test_merged_slo_is_exact(self):
        router = ShardRouter(num_shards=2, routing="random")
        for i in range(4):
            router.submit(make_circuit("ghz", 3), num_inputs=2)
        router.drain()
        merged = router.merged_slo().summary()
        per_shard = [
            shard.service.slo.summary()
            for shard in router.shards.values()
        ]
        assert merged["done"] == sum(s["done"] for s in per_shard) == 4
        assert merged["latency_s"]["count"] == 4
        router.close()

    def test_stats_shape(self):
        router = ShardRouter(num_shards=2)
        router.submit(make_circuit("ghz", 3), num_inputs=1)
        router.drain()
        stats = router.stats()
        assert stats["submitted"] == stats["completed"] == 1
        assert set(stats["shards"]) == {"s0", "s1"}
        assert stats["slo"]["unaccounted_jobs"] == 0
        router.close()


# ---------------------------------------------------------------------------
# failover
# ---------------------------------------------------------------------------

def _distinct_circuits(router, shard_name, count, start_qubits=3):
    """Circuits whose fingerprints all hash to ``shard_name``."""
    picked = []
    n = start_qubits
    while len(picked) < count and n < 12:
        for family in ("ghz", "qft", "wstate"):
            circuit = make_circuit(family, n)
            key = router.group_key_for(circuit)
            if router.ring.node_for(key) == shard_name:
                picked.append(circuit)
                if len(picked) == count:
                    break
        n += 1
    assert len(picked) == count, "could not find enough distinct groups"
    return picked


class TestFailover:
    def test_dead_shard_rescues_to_survivor(self):
        router = ShardRouter(
            num_shards=2,
            service_kwargs={
                "parallelism": "process",
                "num_workers": 1,
                "max_restarts": 0,
            },
        )
        # only s0's pool is chaos-laden: its first task dies, and with a
        # zero restart budget the whole shard is dead from then on
        router.shards["s0"].service.chaos = ChaosSchedule.parse("kill=1")
        circuits = _distinct_circuits(router, "s0", 3)
        jobs = [
            router.submit(c, batch=random_batch(c.num_qubits, 2, i))[0]
            for i, c in enumerate(circuits)
        ]
        assert all(j.job_id.startswith("s0/") for j in jobs)
        router.drain()
        stats = router.stats()
        router.close()
        # the fleet-wide zero-lost-jobs invariant
        assert router.unaccounted() == []
        assert stats["failovers"] == 1
        assert stats["dead_shards"] == ["s0"]
        assert stats["rescued"] >= 1
        # every original id still resolves; rescued ones finished on s1
        outcomes = [router.describe(j.job_id) for j in jobs]
        rescued = [o for o in outcomes if "resubmitted_as" in o]
        assert rescued, "nothing was rescued"
        for outcome in rescued:
            assert outcome["shard"] == "s1"
            assert outcome["status"] == "done"
        # the job that actually crashed keeps its crash evidence; jobs
        # that were merely queued behind it carry none
        assert any(o["evidence"] for o in rescued), "evidence dropped"

    def test_results_identical_after_failover(self):
        """A rescued job's amplitudes match a healthy run bit-for-bit."""
        chaotic = ShardRouter(
            num_shards=2,
            service_kwargs={
                "parallelism": "process",
                "num_workers": 1,
                "max_restarts": 0,
            },
        )
        chaotic.shards["s0"].service.chaos = ChaosSchedule.parse("kill=1")
        circuits = _distinct_circuits(chaotic, "s0", 2)
        batches = [
            random_batch(c.num_qubits, 2, 7 + i)
            for i, c in enumerate(circuits)
        ]
        jobs = [
            chaotic.submit(c, batch=b)[0]
            for c, b in zip(circuits, batches)
        ]
        chaotic.drain()
        healthy = ShardRouter(num_shards=1)
        reference = [
            healthy.submit(c, batch=b)[0]
            for c, b in zip(circuits, batches)
        ]
        healthy.drain()
        compared = 0
        for job, ref in zip(jobs, reference):
            outcome = chaotic.job(job.job_id)
            if outcome.status.value == "done":
                assert np.array_equal(outcome.result, ref.result)
                compared += 1
        assert compared >= 1
        chaotic.close()
        healthy.close()
        assert chaotic.unaccounted() == []

    def test_no_survivors_still_accounts_everything(self):
        router = ShardRouter(
            num_shards=1,
            service_kwargs={
                "parallelism": "process",
                "num_workers": 1,
                "max_restarts": 0,
            },
        )
        router.shards["s0"].service.chaos = ChaosSchedule.parse("kill=1")
        circuits = _distinct_circuits(router, "s0", 2)
        for i, circuit in enumerate(circuits):
            router.submit(
                circuit, batch=random_batch(circuit.num_qubits, 2, i)
            )
        router.drain(max_rounds=50)
        router.close()
        # nowhere to rescue to: queued jobs were cancelled (accounted),
        # nothing is silently lost
        assert router.unaccounted() == []

    def test_surviving_shard_jobs_untouched_by_failover(self):
        router = ShardRouter(
            num_shards=2,
            service_kwargs={
                "parallelism": "process",
                "num_workers": 1,
                "max_restarts": 0,
            },
        )
        router.shards["s0"].service.chaos = ChaosSchedule.parse("kill=1")
        doomed = _distinct_circuits(router, "s0", 2)
        safe = _distinct_circuits(router, "s1", 2)
        safe_jobs = [
            router.submit(c, batch=random_batch(c.num_qubits, 2, 50 + i))[0]
            for i, c in enumerate(safe)
        ]
        for i, circuit in enumerate(doomed):
            router.submit(
                circuit, batch=random_batch(circuit.num_qubits, 2, i)
            )
        router.drain()
        router.close()
        assert router.unaccounted() == []
        for job in safe_jobs:
            info = router.describe(job.job_id)
            assert info["shard"] == "s1"
            assert "resubmitted_as" not in info
            assert info["status"] == "done"
