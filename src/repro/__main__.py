"""Command-line interface.

Subcommands::

    python -m repro simulate  --family vqe -n 10 [--qasm FILE]
                              [--simulator bqsim|cuquantum|qiskit-aer|flatdd]
                              [--batches N] [--batch-size B] [--execute]
                              [--trace-out trace.json] [--metrics-out m.jsonl]
    python -m repro trace     --family qft -n 10 --out trace.json
    python -m repro trace     --serve --workers 2 --parallelism process
                              --out service.json   # merged cross-process trace
    python -m repro gateway   --port 7421 --shards 2 --workers 2
                              --parallelism process  # TCP front door
    python -m repro submit    --connect HOST:PORT --family ghz -n 4
    python -m repro status    --connect HOST:PORT  # live fleet SLO table
    python -m repro metrics   --in metrics.jsonl [--out metrics.prom]
                              ('-' reads stdin / writes stdout)
    python -m repro status    --stats stats.json  # SLO snapshot table
    python -m repro fuse      --family qnn -n 10      # show the fusion plan
    python -m repro check     --qasm A.qasm --against B.qasm
    python -m repro bench ... # alias of python -m repro.bench

Circuits come either from a generator family (``--family``/``-n``) or an
OpenQASM 2 file (``--qasm``).
"""

from __future__ import annotations

import argparse
import sys

from .bench.runner import make_simulators
from .circuit import load_qasm
from .circuit.generators import FAMILIES, make_circuit
from .dd.manager import DDManager
from .fusion.bqcs import bqcs_fusion
from .sim.base import BatchSpec


def _circuit_from_args(args) -> "Circuit":
    if args.qasm:
        return load_qasm(args.qasm)
    if not args.family:
        raise SystemExit("need --family/-n or --qasm")
    return make_circuit(args.family, args.num_qubits, seed=args.seed)


def _add_circuit_args(parser) -> None:
    parser.add_argument("--family", choices=sorted(FAMILIES), default=None)
    parser.add_argument("-n", "--num-qubits", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--qasm", default=None, help="load an OpenQASM 2 file")


def _run_simulation(args):
    """Run one simulation; trace it when the args ask for an export."""
    from .obs import get_metrics, tracing
    from .obs.export import (
        metrics_record,
        write_chrome_trace,
        write_metrics_jsonl,
    )

    circuit = _circuit_from_args(args)
    bqsim_kwargs = {}
    engine = getattr(args, "engine", None)
    faults = getattr(args, "faults", None)
    health = getattr(args, "health", None)
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    resume = getattr(args, "resume", None)
    if health is not None:
        bqsim_kwargs["health"] = health
    if checkpoint_dir is not None:
        bqsim_kwargs["checkpoint_dir"] = checkpoint_dir
    max_splits = getattr(args, "max_splits", None)
    if max_splits is not None:
        bqsim_kwargs["max_splits"] = max_splits
    fidelity = getattr(args, "fidelity", 1.0)
    if fidelity != 1.0:
        if args.simulator != "bqsim":
            raise SystemExit(
                "--fidelity below 1.0 is only supported with "
                "--simulator bqsim"
            )
        bqsim_kwargs["fidelity"] = fidelity
    simulators = make_simulators(engine=engine, **bqsim_kwargs)
    simulator = simulators[args.simulator]
    if faults is not None:
        # scope the plan to the chosen simulator's runs
        simulator.faults = faults
    if health is not None and args.simulator != "bqsim":
        from .resilience import HealthPolicy

        simulator.health = HealthPolicy.coerce(health)
    run_kwargs = {}
    if resume is not None:
        if args.simulator != "bqsim":
            raise SystemExit("--resume is only supported with --simulator bqsim")
        run_kwargs["resume"] = resume
    spec = BatchSpec(num_batches=args.batches, batch_size=args.batch_size,
                     seed=args.seed)
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if trace_out:
        with tracing() as tracer:
            mark = tracer.mark()
            result = simulator.run(circuit, spec, execute=args.execute,
                                   **run_kwargs)
            spans = tracer.spans_since(mark)
        write_chrome_trace(
            trace_out, spans, timeline=result.timeline,
            metadata={
                "circuit": circuit.name,
                "simulator": result.simulator,
                "engine": result.stats.get("engine", "numpy"),
            },
        )
    else:
        result = simulator.run(circuit, spec, execute=args.execute,
                               **run_kwargs)
        spans = []
    resilience_out = getattr(args, "resilience_out", None)
    if resilience_out:
        import json

        events = result.stats.get("resilience", {}).get("events", [])
        with open(resilience_out, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(json.dumps(event) + "\n")
    if metrics_out:
        write_metrics_jsonl(metrics_out, [
            metrics_record(
                f"{result.simulator}:{circuit.name}",
                result.stats.get("metrics", get_metrics().snapshot()),
                circuit=circuit.name,
                simulator=result.simulator,
                modeled_time_s=result.modeled_time,
                wall_time_s=result.wall_time,
            )
        ])
    stats_json = getattr(args, "stats_json", None)
    if stats_json:
        import json

        from .obs.export import simulation_stats_record

        with open(stats_json, "w", encoding="utf-8") as fh:
            json.dump(simulation_stats_record(result), fh, indent=2)
            fh.write("\n")
    return circuit, spec, result, spans


def cmd_simulate(args) -> int:
    circuit, spec, result, _ = _run_simulation(args)
    print(f"circuit   : {circuit.name} ({circuit.num_qubits} qubits, "
          f"{len(circuit)} gates)")
    print(f"workload  : {spec.num_batches} batches x {spec.batch_size} inputs")
    print(f"simulator : {result.simulator}")
    print(f"modeled   : {result.modeled_time_ms:.3f} ms "
          f"{dict((k, round(v * 1e3, 3)) for k, v in result.breakdown.items())}")
    if result.power:
        print(f"power     : GPU {result.power.gpu_watts:.0f} W, "
              f"CPU {result.power.cpu_watts:.0f} W")
    if result.outputs is not None:
        norm = float(abs(result.outputs[0][:, 0] ** 2).sum())
        print(f"amplitudes: computed ({len(result.outputs)} output batches, "
              f"first column norm {norm:.6f})")
    approx = result.stats.get("approx") or {}
    if approx.get("pruned_gates"):
        print(f"approx    : budget {approx['budget']:g}, "
              f"achieved {approx['achieved']:.6f} "
              f"({approx['pruned_gates']} gate(s) pruned, "
              f"{approx['dropped_branches']} branch(es) dropped)")
    resilience = result.stats.get("resilience") or {}
    if resilience.get("counts"):
        parts = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(resilience["counts"].items())
        )
        print(f"resilience: {parts} "
              f"(backend {resilience.get('backend', '?')}, "
              f"batch split x{resilience.get('batch_split', 1)})")
    if getattr(args, "resilience_out", None):
        print(f"resilience: wrote {args.resilience_out}")
    if getattr(args, "trace_out", None):
        print(f"trace     : wrote {args.trace_out} "
              f"(open in https://ui.perfetto.dev)")
    if getattr(args, "metrics_out", None):
        print(f"metrics   : wrote {args.metrics_out}")
    if getattr(args, "stats_json", None):
        print(f"stats     : wrote {args.stats_json}")
    return 0


def cmd_serve(args) -> int:
    """Run the scripted saturation workload against an in-process service."""
    from .service import BatchSimulationService, saturation_workload

    simulator_kwargs = {}
    if args.health is not None:
        simulator_kwargs["health"] = args.health
    if args.max_splits is not None:
        simulator_kwargs["max_splits"] = args.max_splits
    if args.faults is not None:
        simulator_kwargs["faults"] = args.faults
    if args.engine is not None:
        simulator_kwargs["engine"] = args.engine
    service_kwargs = {}
    if args.max_deliveries is not None:
        service_kwargs["max_deliveries"] = args.max_deliveries
    if args.max_restarts is not None:
        service_kwargs["max_restarts"] = args.max_restarts
    if args.timeout is not None:
        service_kwargs["default_timeout_s"] = args.timeout
    if args.chaos is not None:
        from .testing.chaos_pool import ChaosSchedule

        service_kwargs["chaos"] = ChaosSchedule.parse(args.chaos)
    service = BatchSimulationService(
        num_workers=args.workers,
        max_depth=args.max_depth,
        simulator_kwargs=simulator_kwargs,
        parallelism=args.parallelism,
        **service_kwargs,
    )
    families = [f.strip() for f in args.families.split(",") if f.strip()]
    try:
        stats = saturation_workload(
            service,
            families,
            num_qubits=args.num_qubits,
            num_jobs=args.jobs,
            seed=args.seed,
            max_inputs=args.max_inputs,
        )
    finally:
        service.close(drain=args.drain)
        # close() may cancel stragglers: re-snapshot the final accounting
        stats.update(
            {k: v for k, v in service.stats().items() if k != "workload"}
        )
    workload = stats["workload"]
    print(f"workload  : {workload['jobs_submitted']} jobs "
          f"({workload['jobs_shed']} shed) over {','.join(workload['families'])} "
          f"n={workload['num_qubits']}, {args.workers} worker(s), "
          f"parallelism={stats['parallelism']}")
    print(f"jobs      : {workload['jobs_done']} done, "
          f"{workload['jobs_failed']} failed, "
          f"{workload['solo_retries']} solo retries, "
          f"{stats['rejected']} rejected at admission")
    print(f"coalesce  : {stats['megabatches']} mega-batches, "
          f"factor mean {stats['coalesce_factor_mean']:.2f} "
          f"max {stats['coalesce_factor_max']}, "
          f"occupancy {stats['occupancy_mean']:.2f}")
    print(f"latency   : max wait {stats['wait_max_s'] * 1e3:.3f} ms, "
          f"{stats['degraded_groups']} degraded group(s)")
    if "pool" in stats:
        pool = stats["pool"]
        print(f"failure   : {pool['crashes']} crash(es) "
              f"({pool['timeouts']} timeout), "
              f"{pool['restarts']}/{pool['max_restarts']} restart(s), "
              f"{stats.get('requeued', 0)} redelivered, "
              f"{stats.get('quarantined', 0)} quarantined, "
              f"{pool['leaked_segments']} leaked shm segment(s)")
    print(f"throughput: {stats['inputs_done']} inputs in "
          f"{stats['modeled_time_s'] * 1e3:.3f} ms modeled "
          f"({stats['modeled_throughput_inputs_per_s']:.0f} inputs/s)")
    slo = stats.get("slo", {})
    lat = slo.get("latency_s", {})
    print(f"slo       : latency p50 {lat.get('p50', 0.0) * 1e3:.3f} ms "
          f"p95 {lat.get('p95', 0.0) * 1e3:.3f} ms "
          f"p99 {lat.get('p99', 0.0) * 1e3:.3f} ms, "
          f"deadline misses {slo.get('deadline_misses', 0)}"
          f"/{slo.get('deadline_jobs', 0)}, "
          f"{slo.get('unaccounted_jobs', 0)} unaccounted")
    if args.lifecycle_out:
        count = service.write_lifecycle(args.lifecycle_out)
        print(f"lifecycle : wrote {count} events to {args.lifecycle_out}")
    if args.prom_out:
        from .obs import get_metrics
        from .obs.prom import write_prometheus

        write_prometheus(args.prom_out, get_metrics().snapshot())
        print(f"prom      : wrote {args.prom_out}")
    if args.queue_metrics:
        count = service.write_queue_metrics(args.queue_metrics)
        print(f"metrics   : wrote {count} queue events to {args.queue_metrics}")
    if args.stats_json:
        import json

        with open(args.stats_json, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, indent=2)
            fh.write("\n")
        print(f"stats     : wrote {args.stats_json}")
    return 1 if workload["jobs_failed"] and args.strict else 0


def cmd_gateway(args) -> int:
    """Run the TCP gateway until SIGTERM/SIGINT, then drain gracefully."""
    import asyncio
    import signal

    from .gateway import GatewayServer, ShardRouter, TenantQuotas

    simulator_kwargs = {}
    if args.engine is not None:
        simulator_kwargs["engine"] = args.engine
    if args.faults is not None:
        simulator_kwargs["faults"] = args.faults
    service_kwargs = {
        "num_workers": args.workers,
        "max_depth": args.max_depth,
        "parallelism": args.parallelism,
        "simulator_kwargs": simulator_kwargs,
    }
    if args.max_deliveries is not None:
        service_kwargs["max_deliveries"] = args.max_deliveries
    if args.max_restarts is not None:
        service_kwargs["max_restarts"] = args.max_restarts
    if args.timeout is not None:
        service_kwargs["default_timeout_s"] = args.timeout
    if args.chaos is not None:
        from .testing.chaos_pool import ChaosSchedule

        service_kwargs["chaos"] = ChaosSchedule.parse(args.chaos)
    tenants = {}
    for spec in args.tenant_weight or []:
        name, _, weight = spec.partition("=")
        if not name or not weight.lstrip("-").isdigit():
            raise SystemExit(
                f"--tenant-weight expects NAME=WEIGHT, got {spec!r}"
            )
        tenants[name] = {"weight": int(weight)}
    quotas = None
    if args.quota_rate > 0 or tenants:
        quotas = TenantQuotas(
            rate=args.quota_rate if args.quota_rate > 0 else 1000.0,
            burst=args.quota_burst,
            tenants=tenants,
        )
    router = ShardRouter(
        num_shards=args.shards,
        routing=args.routing,
        quotas=quotas,
        service_kwargs=service_kwargs,
    )
    server = GatewayServer(router, host=args.host, port=args.port)

    async def _run() -> None:
        await server.start()
        print(f"gateway   : listening on {server.host}:{server.port} "
              f"({args.shards} shard(s) x {args.workers} worker(s), "
              f"routing={args.routing}, parallelism={args.parallelism})")
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as fh:
                fh.write(f"{server.port}\n")
        sys.stdout.flush()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("gateway   : signal received, draining ...")
        sys.stdout.flush()
        await server.shutdown(drain=True)

    asyncio.run(_run())
    stats = router.stats()
    unaccounted = router.unaccounted()
    print(f"jobs      : {stats['submitted']} submitted, "
          f"{stats['completed']} done, {stats['failed']} failed, "
          f"{stats['quarantined']} quarantined, "
          f"{len(unaccounted)} unaccounted")
    print(f"routing   : {stats['routed']} "
          f"({stats['failovers']} failover(s), "
          f"{stats['rescued']} job(s) rescued)")
    if args.lifecycle_out:
        count = router.write_lifecycle(args.lifecycle_out)
        print(f"lifecycle : wrote {count} events to {args.lifecycle_out}")
    if args.prom_out:
        from .obs import get_metrics
        from .obs.prom import write_prometheus

        write_prometheus(args.prom_out, get_metrics().snapshot())
        print(f"prom      : wrote {args.prom_out}")
    if args.stats_json:
        import json

        with open(args.stats_json, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, indent=2)
            fh.write("\n")
        print(f"stats     : wrote {args.stats_json}")
    return 1 if unaccounted else 0


def _parse_connect(connect: str) -> tuple[str, int]:
    host, _, port = connect.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--connect expects HOST:PORT, got {connect!r}")
    return host, int(port)


def _submit_remote(args) -> int:
    """Submit one job over TCP to a running gateway and wait for it.

    The input batch is generated *client-side* with the same seed an
    in-process service would use for its first submission, so the
    amplitudes coming back over the wire are bit-identical to
    ``repro submit`` without ``--connect``.
    """
    from .circuit.inputs import random_batch
    from .gateway import GatewayClient

    circuit = _circuit_from_args(args)
    host, port = _parse_connect(args.connect)
    batch = random_batch(circuit.num_qubits, args.inputs, 0)
    client = GatewayClient(host, port)
    try:
        job_id = client.submit(
            circuit,
            inputs=batch.states,
            tenant=args.tenant,
            priority=args.priority,
            timeout_s=args.timeout,
            fidelity=args.fidelity,
        )
        print(f"submitted : {job_id} ({circuit.name}, {args.inputs} "
              f"input(s), priority {args.priority}, "
              f"tenant {args.tenant}, via {host}:{port})")
        amplitudes = client.result(job_id)
        info = client.status(job_id)
        norm = float(abs(amplitudes[:, 0] ** 2).sum())
        print(f"status    : {info['status']} (shard {info['shard']}, "
              f"group {info['group_key']}, attempts {info['attempts']})")
        if args.fidelity < 1.0:
            achieved = info["achieved_fidelity"]
            achieved_s = "n/a" if achieved is None else f"{achieved:.6f}"
            print(f"fidelity  : budget {info['fidelity']:g}, "
                  f"achieved {achieved_s}")
        print(f"result    : {amplitudes.shape[1]} output state(s), "
              f"first column norm {norm:.6f}")
        if args.prom_out:
            text = client.metrics()
            with open(args.prom_out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"prom      : wrote {args.prom_out}")
    finally:
        client.close()
    return 0


def cmd_submit(args) -> int:
    """Submit one job to a fresh in-process service and wait for it."""
    from .service import ServiceClient

    if args.connect:
        return _submit_remote(args)
    circuit = _circuit_from_args(args)
    simulator_kwargs = {}
    if args.faults is not None:
        simulator_kwargs["faults"] = args.faults
    if args.engine is not None:
        simulator_kwargs["engine"] = args.engine
    client = ServiceClient(
        num_workers=args.workers,
        parallelism=args.parallelism,
        simulator_kwargs=simulator_kwargs,
    )
    try:
        job_id = client.submit(
            circuit, num_inputs=args.inputs, priority=args.priority,
            timeout_s=args.timeout, max_deliveries=args.max_deliveries,
            fidelity=args.fidelity,
        )
        print(f"submitted : {job_id} ({circuit.name}, {args.inputs} "
              f"input(s), priority {args.priority})")
        amplitudes = client.result(job_id)
        job = client.service.job(job_id)
        norm = float(abs(amplitudes[:, 0] ** 2).sum())
        print(f"status    : {job.status.value} "
              f"(group {job.group_key[:12]}, attempts {job.attempts})")
        if job.fidelity < 1.0:
            achieved = job.achieved_fidelity
            achieved_s = "n/a" if achieved is None else f"{achieved:.6f}"
            print(f"fidelity  : budget {job.fidelity:g}, "
                  f"achieved {achieved_s}")
        print(f"result    : {amplitudes.shape[1]} output state(s), "
              f"first column norm {norm:.6f}")
        if args.stats_json:
            import json

            from .obs.export import service_job_stats_record

            record = service_job_stats_record(job, client.service)
            with open(args.stats_json, "w", encoding="utf-8") as fh:
                json.dump(record, fh, indent=2)
                fh.write("\n")
            print(f"stats     : wrote {args.stats_json}")
        if args.prom_out:
            from .obs import get_metrics
            from .obs.prom import write_prometheus

            write_prometheus(args.prom_out, get_metrics().snapshot())
            print(f"prom      : wrote {args.prom_out}")
    finally:
        client.close()
    return 0


def _trace_serve(args) -> int:
    """Trace a coalesced service workload into one merged Perfetto file.

    Runs the scripted saturation workload under tracing; in process mode
    every worker's spans are absorbed back into the parent tracer on
    their own ``pool-worker-N`` tracks, and the service/pool spans carry
    job-id attributes, so one job's lifecycle correlates across scheduler
    and worker processes in a single timeline.
    """
    from .obs import tracing
    from .obs.export import write_chrome_trace
    from .service import BatchSimulationService, saturation_workload

    families = [f.strip() for f in args.families.split(",") if f.strip()]
    with tracing() as tracer:
        mark = tracer.mark()
        service = BatchSimulationService(
            num_workers=args.workers, parallelism=args.parallelism
        )
        try:
            stats = saturation_workload(
                service,
                families,
                num_qubits=args.num_qubits,
                num_jobs=args.jobs,
                seed=args.seed,
            )
        finally:
            service.close()
        spans = tracer.spans_since(mark)
    job_spans = [
        s for s in spans if "job_ids" in s.attrs or "job" in s.attrs
    ]
    write_chrome_trace(
        args.out,
        spans,
        metadata={
            "mode": "service",
            "parallelism": args.parallelism,
            "workers": args.workers,
        },
    )
    threads = sorted({s.thread for s in spans})
    workload = stats["workload"]
    print(f"workload  : {workload['jobs_submitted']} jobs, "
          f"{stats['megabatches']} mega-batches, "
          f"parallelism={args.parallelism}, {args.workers} worker(s)")
    print(f"spans     : {len(spans)} recorded on {len(threads)} track(s): "
          f"{', '.join(threads)}")
    print(f"job spans : {len(job_spans)} carry job-id attributes")
    print(f"trace     : wrote {args.out} (open in https://ui.perfetto.dev)")
    return 0


def cmd_trace(args) -> int:
    """Run a circuit with tracing on and write a Chrome/Perfetto trace."""
    if args.serve:
        return _trace_serve(args)
    args.trace_out = args.out
    circuit, spec, result, spans = _run_simulation(args)
    stages = [s for s in spans if s.attrs.get("category") == "stage"]
    print(f"circuit   : {circuit.name} ({circuit.num_qubits} qubits, "
          f"{len(circuit)} gates)")
    print(f"simulator : {result.simulator} "
          f"({spec.num_batches} batches x {spec.batch_size} inputs)")
    print(f"spans     : {len(spans)} recorded "
          f"({len(stages)} pipeline stages)")
    for span in stages:
        print(f"  {span.name:<10s} {span.duration * 1e3:9.3f} ms")
    if result.timeline is not None:
        print(f"timeline  : {len(result.timeline.tasks)} modeled GPU tasks, "
              f"makespan {result.timeline.makespan * 1e3:.3f} ms")
    print(f"trace     : wrote {args.out} (open in https://ui.perfetto.dev)")
    if getattr(args, "metrics_out", None):
        print(f"metrics   : wrote {args.metrics_out}")
    return 0


def cmd_metrics(args) -> int:
    """Render a metrics snapshot as Prometheus exposition text.

    ``--in`` converts a metrics JSONL file (``--metrics-out`` output);
    without it the live process-global registry is rendered (useful only
    in-process, so ``--in`` is the common path).  ``-`` works for both
    ends: ``--in -`` reads the JSONL from stdin, ``--out -`` writes the
    Prometheus text to stdout, so the command pipes.
    """
    import json

    from .obs import get_metrics
    from .obs.prom import prometheus_text

    if args.input:
        snapshots = []
        if args.input == "-":
            lines = sys.stdin.read().splitlines()
        else:
            with open(args.input, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        for line in lines:
            line = line.strip()
            if line:
                record = json.loads(line)
                snapshots.append(record.get("metrics", record))
        if not snapshots:
            raise SystemExit(f"no metrics records in {args.input}")
        try:
            snapshot = snapshots[args.index]
        except IndexError:
            raise SystemExit(
                f"--index {args.index} out of range "
                f"({len(snapshots)} record(s) in {args.input})"
            ) from None
    else:
        snapshot = get_metrics().snapshot()
    text = prometheus_text(snapshot, prefix=args.prefix)
    if args.out and args.out != "-":
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"prom      : wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _fmt_quantiles(block: dict) -> str:
    return (f"p50 {block.get('p50', 0.0) * 1e3:9.3f}  "
            f"p95 {block.get('p95', 0.0) * 1e3:9.3f}  "
            f"p99 {block.get('p99', 0.0) * 1e3:9.3f}  "
            f"max {block.get('max', 0.0) * 1e3:9.3f}")


def cmd_status(args) -> int:
    """Print the SLO snapshot from a ``--stats-json`` file.

    Accepts both ``repro serve`` output (``slo`` at the top level) and
    ``repro submit``/``simulate`` output (``stats.slo``).  ``--stats -``
    reads the JSON from stdin; ``--connect HOST:PORT`` fetches the
    merged fleet stats from a running gateway instead of a file.
    """
    import json

    if args.connect:
        from .gateway import GatewayClient

        host, port = _parse_connect(args.connect)
        client = GatewayClient(host, port)
        try:
            doc = client.stats()
        finally:
            client.close()
        source = args.connect
    elif args.stats == "-":
        doc = json.load(sys.stdin)
        source = "stdin"
    elif args.stats:
        with open(args.stats, encoding="utf-8") as fh:
            doc = json.load(fh)
        source = args.stats
    else:
        raise SystemExit("need --stats PATH (or '-') or --connect HOST:PORT")
    slo = doc.get("slo") or doc.get("stats", {}).get("slo")
    if slo is None:
        raise SystemExit(f"{source} has no 'slo' block")
    if "shards" in doc:
        dead = doc.get("dead_shards", [])
        print(f"fleet     : {len(doc['shards'])} shard(s)"
              + (f" ({len(dead)} dead: {','.join(dead)})" if dead else "")
              + f", routing={doc.get('routing', '?')}, "
              f"routed {doc.get('routed', {})}, "
              f"queue depth {doc.get('queue_depth', 0)}")
    print(f"jobs      : {slo['submitted']} submitted, {slo['done']} done, "
          f"{slo['failed']} failed, {slo['rejected']} rejected, "
          f"{slo['cancelled']} cancelled"
          + (f", {slo['unaccounted_jobs']} unaccounted"
             if "unaccounted_jobs" in slo else ""))
    print(f"latency ms: {_fmt_quantiles(slo['latency_s'])}")
    print(f"queue   ms: {_fmt_quantiles(slo['queue_age_s'])}")
    print(f"deadlines : {slo['deadline_misses']}/{slo['deadline_jobs']} "
          f"missed (rate {slo['deadline_miss_rate']:.3f})")
    print(f"degraded  : {slo['solo_retries']} solo retries "
          f"(rate {slo['degraded_rate']:.3f})")
    for priority, cls in sorted(slo.get("priorities", {}).items()):
        print(f"  priority {priority}: {cls['jobs']} job(s), "
              f"latency ms {_fmt_quantiles(cls['latency_s'])}")
    return 0


def cmd_fuse(args) -> int:
    circuit = _circuit_from_args(args)
    mgr = DDManager(circuit.num_qubits)
    plan = bqcs_fusion(mgr, circuit)
    print(f"{circuit.name}: {len(circuit)} gates -> {len(plan)} fused gates")
    print(f"#MAC per amplitude: {plan.total_cost} "
          f"(dense gate-by-gate would be {4 * len(circuit)})")
    for i, fused in enumerate(plan.gates):
        print(f"  fused[{i}]: cost {fused.cost}, "
              f"{fused.num_source_gates} source gates "
              f"{list(fused.gate_indices[:8])}{'...' if fused.num_source_gates > 8 else ''}")
    return 0


def cmd_check(args) -> int:
    from .verify import check

    a = load_qasm(args.qasm)
    b = load_qasm(args.against)
    result = check(a, b, prefer=args.method)
    verdict = "EQUIVALENT" if result else "NOT equivalent"
    print(f"{verdict} (method: {result.method}"
          + (f", max deviation {result.max_deviation:.2e}"
             if result.max_deviation is not None else "")
          + ")")
    return 0 if result else 1


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "bench":
        from .bench.__main__ import main as bench_main

        sys.argv = [sys.argv[0]] + argv[1:]
        bench_main()
        return 0

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_sim_args(parser) -> None:
        parser.add_argument("--simulator", default="bqsim",
                            choices=["bqsim", "cuquantum", "qiskit-aer",
                                     "flatdd"])
        parser.add_argument("--batches", type=int, default=10)
        parser.add_argument("--batch-size", type=int, default=32)
        parser.add_argument("--execute", action="store_true",
                            help="compute real amplitudes (default: model-only)")
        parser.add_argument("--metrics-out", default=None, metavar="PATH",
                            help="write a JSONL metrics snapshot to PATH")
        parser.add_argument("--faults", default=None, metavar="PLAN",
                            help="fault-injection plan, e.g. "
                                 "'seed=7,kernel=0.05,oom=1:1'")
        parser.add_argument("--health", default=None,
                            choices=["off", "warn", "renormalize", "fail"],
                            help="per-batch numerical health policy")
        parser.add_argument("--engine", default=None,
                            choices=["numpy", "fake-gpu", "cupy"],
                            help="array backend for the numeric kernels "
                                 "(default: REPRO_ENGINE or numpy)")
        parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                            help="write batch-boundary checkpoints "
                                 "(bqsim only)")
        parser.add_argument("--resume", default=None, metavar="CKPT",
                            help="resume a bqsim run from a checkpoint "
                                 "archive")
        parser.add_argument("--fidelity", type=float, default=1.0,
                            metavar="F",
                            help="end-to-end fidelity budget in (0, 1]; "
                                 "below 1.0 enables budgeted DD pruning "
                                 "(bqsim only, see docs/approximation.md)")
        parser.add_argument("--max-splits", type=int, default=None,
                            help="allow up to 2^N-way batch splitting on OOM "
                                 "(bqsim only)")
        parser.add_argument("--resilience-out", default=None, metavar="PATH",
                            help="write the run's resilience events as JSONL")

    p = sub.add_parser("simulate", help="run a batch simulation")
    _add_circuit_args(p)
    _add_sim_args(p)
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="record spans and write a Chrome/Perfetto trace")
    p.add_argument("--stats-json", default=None, metavar="PATH",
                   help="write the run's stats (incl. plan_cache and "
                        "resilience summaries) as a JSON document")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser(
        "serve",
        help="run a scripted saturation workload against the batch service",
    )
    p.add_argument("--families", default="qft,ghz,vqe",
                   help="comma-separated circuit families to mix")
    p.add_argument("-n", "--num-qubits", type=int, default=6)
    p.add_argument("--jobs", type=int, default=24,
                   help="jobs to submit (mixed priorities and sizes)")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--parallelism", default="none",
                   choices=["none", "process"],
                   help="'process' executes mega-batches concurrently on "
                        "--workers OS processes sharing one plan cache")
    p.add_argument("--max-depth", type=int, default=16,
                   help="admission queue depth bound (backpressure)")
    p.add_argument("--max-inputs", type=int, default=16,
                   help="largest per-job input batch in the workload")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--faults", default=None, metavar="PLAN",
                   help="fault-injection plan for every worker simulator")
    p.add_argument("--health", default=None,
                   choices=["off", "warn", "renormalize", "fail"])
    p.add_argument("--max-splits", type=int, default=None)
    p.add_argument("--engine", default=None,
                   choices=["numpy", "fake-gpu", "cupy"],
                   help="array backend for every worker simulator")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="default per-job execution deadline in seconds "
                        "(process mode: hung workers are killed)")
    p.add_argument("--max-deliveries", type=int, default=None, metavar="N",
                   help="deliveries before a crash-looping job is "
                        "quarantined (default: 3)")
    p.add_argument("--max-restarts", type=int, default=None, metavar="N",
                   help="pool-wide worker restart budget (default: 8)")
    p.add_argument("--chaos", default=None, metavar="SPEC",
                   help="chaos schedule for the worker pool, e.g. "
                        "'kill=2,hang@after=5' (kill/hang pool task N; "
                        "'@after' fires after the simulator ran)")
    p.add_argument("--drain", action="store_true",
                   help="graceful close: finish in-flight work instead of "
                        "cancelling it")
    p.add_argument("--queue-metrics", default=None, metavar="PATH",
                   help="write per-round queue metrics as JSONL")
    p.add_argument("--stats-json", default=None, metavar="PATH",
                   help="write the service summary stats as JSON")
    p.add_argument("--lifecycle-out", default=None, metavar="PATH",
                   help="write per-job lifecycle events as JSONL")
    p.add_argument("--prom-out", default=None, metavar="PATH",
                   help="write the metrics registry in Prometheus "
                        "exposition text format")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero if any job failed")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "gateway",
        help="run the TCP gateway over a shard fleet (SIGTERM drains)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default: 0 = ephemeral, printed and "
                        "written to --port-file)")
    p.add_argument("--port-file", default=None, metavar="PATH",
                   help="write the bound port to PATH once listening")
    p.add_argument("--shards", type=int, default=1,
                   help="independent service shards (each its own pool "
                        "and plan cache)")
    p.add_argument("--routing", default="affinity",
                   choices=["affinity", "random"],
                   help="'affinity' hashes plan fingerprints onto the "
                        "consistent-hash ring; 'random' scatters "
                        "round-robin (cache-oblivious baseline)")
    p.add_argument("--workers", type=int, default=1,
                   help="workers per shard")
    p.add_argument("--parallelism", default="none",
                   choices=["none", "process"])
    p.add_argument("--max-depth", type=int, default=256,
                   help="per-shard admission queue bound")
    p.add_argument("--quota-rate", type=float, default=0.0, metavar="N",
                   help="per-tenant admission rate in jobs/s "
                        "(0 = quotas off)")
    p.add_argument("--quota-burst", type=float, default=20.0, metavar="N")
    p.add_argument("--tenant-weight", action="append", metavar="NAME=W",
                   help="priority boost for a tenant (repeatable)")
    p.add_argument("--engine", default=None,
                   choices=["numpy", "fake-gpu", "cupy"])
    p.add_argument("--faults", default=None, metavar="PLAN")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="default per-job execution deadline")
    p.add_argument("--max-deliveries", type=int, default=None, metavar="N")
    p.add_argument("--max-restarts", type=int, default=None, metavar="N")
    p.add_argument("--chaos", default=None, metavar="SPEC",
                   help="chaos schedule for every shard's pool")
    p.add_argument("--lifecycle-out", default=None, metavar="PATH",
                   help="write the merged per-shard lifecycle stream "
                        "as JSONL on exit")
    p.add_argument("--prom-out", default=None, metavar="PATH")
    p.add_argument("--stats-json", default=None, metavar="PATH")
    p.set_defaults(fn=cmd_gateway)

    p = sub.add_parser(
        "submit", help="submit one job to the batch service and wait"
    )
    _add_circuit_args(p)
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="submit over TCP to a running gateway instead of "
                        "an in-process service (bit-identical results)")
    p.add_argument("--tenant", default="default",
                   help="tenant name for --connect (quotas + weight)")
    p.add_argument("--inputs", type=int, default=4,
                   help="input states in the job's batch")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--fidelity", type=float, default=1.0, metavar="F",
                   help="end-to-end fidelity budget in (0, 1]; below 1.0 "
                        "the job runs on the approximate tier and the "
                        "result reports its achieved fidelity")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="per-job execution deadline in seconds "
                        "(process mode: a hung worker is killed)")
    p.add_argument("--max-deliveries", type=int, default=None, metavar="N",
                   help="deliveries before the job is quarantined "
                        "(default: service setting, 3)")
    p.add_argument("--faults", default=None, metavar="PLAN")
    p.add_argument("--engine", default=None,
                   choices=["numpy", "fake-gpu", "cupy"])
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--parallelism", default="none",
                   choices=["none", "process"])
    p.add_argument("--stats-json", default=None, metavar="PATH",
                   help="write job + service stats as JSON (same schema "
                        "as 'repro simulate --stats-json')")
    p.add_argument("--prom-out", default=None, metavar="PATH",
                   help="write the metrics registry in Prometheus "
                        "exposition text format")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser(
        "trace", help="run a simulation with tracing on and export the trace"
    )
    _add_circuit_args(p)
    _add_sim_args(p)
    p.add_argument("--out", default="trace.json", metavar="PATH",
                   help="trace file to write (default: trace.json)")
    p.add_argument("--serve", action="store_true",
                   help="trace a coalesced service workload instead of a "
                        "single simulation (merges worker-process spans "
                        "into one correlated timeline)")
    p.add_argument("--workers", type=int, default=2,
                   help="service workers for --serve (default: 2)")
    p.add_argument("--jobs", type=int, default=8,
                   help="jobs to submit for --serve (default: 8)")
    p.add_argument("--parallelism", default="none",
                   choices=["none", "process"],
                   help="service execution mode for --serve")
    p.add_argument("--families", default="qft,ghz",
                   help="circuit families for the --serve workload")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "metrics",
        help="render a metrics snapshot as Prometheus exposition text",
    )
    p.add_argument("--in", dest="input", default=None, metavar="PATH",
                   help="metrics JSONL file (--metrics-out output); "
                        "default: the live in-process registry")
    p.add_argument("--index", type=int, default=-1,
                   help="which JSONL record to render (default: last)")
    p.add_argument("--prefix", default="repro_",
                   help="metric-name prefix (default: repro_)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write to PATH instead of stdout")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser(
        "status", help="print the SLO snapshot from a --stats-json file"
    )
    p.add_argument("--stats", default=None, metavar="PATH",
                   help="stats JSON written by 'repro serve/submit "
                        "--stats-json' ('-' reads stdin)")
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="fetch live merged stats from a running gateway")
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser("fuse", help="show the BQCS-aware fusion plan")
    _add_circuit_args(p)
    p.set_defaults(fn=cmd_fuse)

    p = sub.add_parser("check", help="equivalence-check two QASM files")
    p.add_argument("--qasm", required=True)
    p.add_argument("--against", required=True)
    p.add_argument("--method", default="auto",
                   choices=["auto", "exact", "simulative"])
    p.set_defaults(fn=cmd_check)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
