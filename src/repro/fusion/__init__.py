"""Gate fusion: BQCS-aware (the paper's), FlatDD greedy, and Aer array-based."""

from .array_fusion import aer_fusion, cuquantum_plan
from .bqcs import bqcs_fusion, no_fusion_plan
from .cost import bqcs_cost, dense_gate_cost, is_cost_one, total_nonzeros
from .greedy import flatdd_fusion
from .plan import FusedGate, FusionPlan

__all__ = [
    "aer_fusion",
    "bqcs_cost",
    "bqcs_fusion",
    "cuquantum_plan",
    "dense_gate_cost",
    "flatdd_fusion",
    "FusedGate",
    "FusionPlan",
    "is_cost_one",
    "no_fusion_plan",
    "total_nonzeros",
]
