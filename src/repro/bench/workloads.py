"""Benchmark workloads mirroring the paper's evaluation (Section 4).

``PAPER_SUITE`` lists the 16 circuits of Tables 2-4 at the paper's qubit
counts; ``paper_reference`` embeds the published numbers so every experiment
prints paper-vs-measured side by side (recorded in EXPERIMENTS.md).

Pure-Python numerics cannot chew through 200 x 256 inputs at n = 21, so each
experiment supports three scales:

* ``"small"``  — scaled-down circuits, real numerics (default for tests);
* ``"medium"`` — paper circuits up to n=16, model-only timing;
* ``"paper"``  — all 16 circuits at full size, model-only timing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit import Circuit
from ..circuit.generators import make_circuit
from ..sim.base import BatchSpec


@dataclass(frozen=True)
class Workload:
    """One benchmark circuit instance."""

    family: str
    num_qubits: int
    seed: int = 0

    @property
    def key(self) -> tuple[str, int]:
        return (self.family, self.num_qubits)

    @property
    def label(self) -> str:
        return f"{self.family} (n={self.num_qubits})"

    def build(self) -> Circuit:
        return make_circuit(self.family, self.num_qubits, seed=self.seed)


#: the paper's 16 evaluation circuits (Table 2 order)
PAPER_SUITE: tuple[Workload, ...] = tuple(
    Workload(family, n)
    for family, sizes in (
        ("qnn", (17, 19, 21)),
        ("vqe", (12, 14, 16)),
        ("portfolio", (16, 17, 18)),
        ("graphstate", (16, 18, 20)),
        ("tsp", (9, 16)),
        ("routing", (6, 12)),
    )
    for n in sizes
)

#: same families, capped at n=16 (medium scale, model-only)
MEDIUM_SUITE: tuple[Workload, ...] = tuple(
    w for w in PAPER_SUITE if w.num_qubits <= 16
)

#: scaled-down suite with real numerics (tests and default benches)
SMALL_SUITE: tuple[Workload, ...] = (
    Workload("qnn", 6),
    Workload("vqe", 8),
    Workload("portfolio", 7),
    Workload("graphstate", 8),
    Workload("tsp", 7),
    Workload("routing", 6),
)

PAPER_SPEC = BatchSpec(num_batches=200, batch_size=256)
MEDIUM_SPEC = BatchSpec(num_batches=200, batch_size=256)
SMALL_SPEC = BatchSpec(num_batches=4, batch_size=16)


def suite(scale: str) -> tuple[tuple[Workload, ...], BatchSpec, bool]:
    """(workloads, batch spec, execute-numerics?) for a named scale."""
    if scale == "small":
        return SMALL_SUITE, SMALL_SPEC, True
    if scale == "medium":
        return MEDIUM_SUITE, MEDIUM_SPEC, False
    if scale == "paper":
        return PAPER_SUITE, PAPER_SPEC, False
    raise KeyError(f"unknown scale {scale!r}; use small|medium|paper")


# ---------------------------------------------------------------------------
# Published numbers (for paper-vs-measured reporting)
# ---------------------------------------------------------------------------

#: Table 2 — runtimes in ms: (cuQuantum, Qiskit Aer, FlatDD, BQSim);
#: None marks runs the paper terminated after 24 h.
PAPER_TABLE2_MS: dict[tuple[str, int], tuple[float | None, ...]] = {
    ("qnn", 17): (246280, 1663228, 24195648, 24218),
    ("qnn", 19): (1181539, 5491441, None, 113254),
    ("qnn", 21): (5598394, 20428647, None, 517621),
    ("vqe", 12): (1433, 394267, 167565, 884),
    ("vqe", 14): (5901, 470945, 576705, 2495),
    ("vqe", 16): (24619, 874623, 2442323, 10026),
    ("portfolio", 16): (56934, 1035447, 3393370, 11159),
    ("portfolio", 17): (122784, 1755908, 6979064, 24551),
    ("portfolio", 18): (264992, 3135291, 15009161, 51675),
    ("graphstate", 16): (18424, 872669, 1056870, 9822),
    ("graphstate", 18): (75305, 2923585, 4537635, 39611),
    ("graphstate", 20): (308446, 10285365, 20036118, 157555),
    ("tsp", 9): (245, 373035, 130619, 138),
    ("tsp", 16): (36083, 886423, 3986412, 16435),
    ("routing", 6): (51, 363760, 54736, 31),
    ("routing", 12): (1628, 392998, 240627, 666),
}

#: Table 3 — #MAC per input divided by 2^n (cuQuantum, Aer, FlatDD, BQSim)
PAPER_TABLE3_COST: dict[tuple[str, int], tuple[int, int, int, int]] = {
    ("qnn", 17): (3736, 459, 151, 132),
    ("qnn", 19): (4632, 508, 167, 148),
    ("qnn", 21): (5624, 562, 183, 164),
    ("vqe", 12): (232, 88, 85, 62),
    ("vqe", 14): (272, 104, 97, 78),
    ("vqe", 16): (312, 120, 116, 92),
    ("portfolio", 16): (1696, 1416, 136, 128),
    ("portfolio", 17): (1904, 1608, 147, 136),
    ("portfolio", 18): (2124, 1812, 152, 144),
    ("graphstate", 16): (128, 64, 35, 32),
    ("graphstate", 18): (144, 72, 39, 36),
    ("graphstate", 20): (160, 80, 43, 40),
    ("tsp", 9): (376, 160, 186, 108),
    ("tsp", 16): (684, 300, 266, 192),
    ("routing", 6): (156, 60, 74, 48),
    ("routing", 12): (324, 132, 122, 96),
}

#: Table 4 — BQCS runtimes in ms: (cuQuantum+Q, cuQuantum+B, BQSim);
#: None for the failed (out-of-memory) cuQuantum+B runs.
PAPER_TABLE4_MS: dict[tuple[str, int], tuple[float, float | None, float]] = {
    ("qnn", 17): (367121, None, 22605),
    ("qnn", 19): (1828465, None, 105745),
    ("qnn", 21): (9054894, None, 481913),
    ("vqe", 12): (1192, 24334, 854),
    ("vqe", 14): (4820, 69319242, 2439),
    ("vqe", 16): (19655, 1266788, 9809),
    ("portfolio", 16): (77945, None, 10786),
    ("portfolio", 17): (175373, None, 23790),
    ("portfolio", 18): (386924, None, 49981),
    ("graphstate", 16): (17253, 3053229, 9736),
    ("graphstate", 18): (70727, 43888468, 39215),
    ("graphstate", 20): (286244, None, 155771),
    ("tsp", 9): (224, 46769, 111),
    ("tsp", 16): (28093, 238363, 15919),
    ("routing", 6): (36, 2889, 22),
    ("routing", 12): (1320, 6479010, 637),
}

#: Table 1 — average CV of NZR for the fusion gate matrices
PAPER_TABLE1_CV: dict[str, float] = {
    "supremacy": 0.0328,
    "vqe": 0.0,
    "qnn": 0.0,
    "tsp": 0.0,
}
