"""Benchmark harness: workloads, runner, and per-table/figure experiments."""

from .runner import (
    RunRecord,
    SIMULATOR_ORDER,
    make_cuquantum_variants,
    make_simulators,
    run_suite,
)
from .tables import fmt_ms, fmt_speedup, geomean, print_table, render_table
from .workloads import (
    MEDIUM_SPEC,
    MEDIUM_SUITE,
    PAPER_SPEC,
    PAPER_SUITE,
    PAPER_TABLE1_CV,
    PAPER_TABLE2_MS,
    PAPER_TABLE3_COST,
    PAPER_TABLE4_MS,
    SMALL_SPEC,
    SMALL_SUITE,
    Workload,
    suite,
)

__all__ = [
    "fmt_ms",
    "fmt_speedup",
    "geomean",
    "make_cuquantum_variants",
    "make_simulators",
    "MEDIUM_SPEC",
    "MEDIUM_SUITE",
    "PAPER_SPEC",
    "PAPER_SUITE",
    "PAPER_TABLE1_CV",
    "PAPER_TABLE2_MS",
    "PAPER_TABLE3_COST",
    "PAPER_TABLE4_MS",
    "print_table",
    "render_table",
    "run_suite",
    "RunRecord",
    "SIMULATOR_ORDER",
    "SMALL_SPEC",
    "SMALL_SUITE",
    "suite",
    "Workload",
]
