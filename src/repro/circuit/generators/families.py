"""Generators for the paper's six MQT-Bench circuit families.

Each generator reproduces the family's published template, and the resulting
gate counts match Table 2 of the paper exactly at the paper's qubit counts:

=============  =====================================================  =================
family         template                                               count identity
=============  =====================================================  =================
qnn            2 x ZZFeatureMap(full) + RealAmplitudes(linear, r=1)   2(2n+3C(n,2)) + (2n + (n-1))
vqe            TwoLocal(ry, cx, linear, reps=2)                       3n + 2(n-1)
portfolio      TwoLocal(ry, cx, full, reps=3)                         4n + 3C(n,2)
graphstate     H on all + CZ per ring edge                            2n
tsp            TwoLocal(ry, cx, linear, reps=5)                       6n + 5(n-1)
routing        TwoLocal(ry, cx, linear, reps=3)                       4n + 3(n-1)
=============  =====================================================  =================

e.g. qnn(17) -> 934 gates, vqe(12) -> 58, portfolio(16) -> 424,
graphstate(16) -> 32, tsp(16) -> 171, routing(12) -> 81, as in the paper.
"""

from __future__ import annotations

import math

import numpy as np

from ..circuit import Circuit
from .twolocal import compose, real_amplitudes, ring_pairs, two_local, zz_feature_map


def qnn(num_qubits: int, seed: int = 0) -> Circuit:
    """Quantum neural network: ZZ feature map (2 reps, full) + RealAmplitudes."""
    rng = np.random.default_rng(seed)
    feature = zz_feature_map(num_qubits, reps=2, rng=rng, entanglement="full")
    ansatz = real_amplitudes(num_qubits, reps=1, rng=rng, entanglement="linear")
    circuit = compose(feature, ansatz, name=f"qnn_n{num_qubits}")
    return circuit


def vqe(num_qubits: int, seed: int = 0) -> Circuit:
    """Variational quantum eigensolver ansatz (TwoLocal ry/cx, 2 reps)."""
    rng = np.random.default_rng(seed)
    circuit = two_local(num_qubits, reps=2, rng=rng, entanglement="linear")
    circuit.name = f"vqe_n{num_qubits}"
    return circuit


def portfolio(num_qubits: int, seed: int = 0) -> Circuit:
    """Portfolio optimization VQE (TwoLocal ry/cx, full entanglement, 3 reps)."""
    rng = np.random.default_rng(seed)
    circuit = two_local(num_qubits, reps=3, rng=rng, entanglement="full")
    circuit.name = f"portfolio_n{num_qubits}"
    return circuit


def graphstate(num_qubits: int, seed: int = 0) -> Circuit:
    """Graph state over a ring graph: H everywhere, CZ per edge (2n gates)."""
    circuit = Circuit(num_qubits, name=f"graphstate_n{num_qubits}")
    for q in range(num_qubits):
        circuit.h(q)
    edges = ring_pairs(num_qubits) if num_qubits > 2 else [(0, 1)]
    # a ring on n vertices has n edges; ring_pairs returns n edges for n > 2
    for a, b in edges[:num_qubits]:
        circuit.cz(a, b)
    return circuit


def tsp(num_qubits: int, seed: int = 0) -> Circuit:
    """Travelling-salesman VQE ansatz (TwoLocal ry/cx, 5 reps)."""
    rng = np.random.default_rng(seed)
    circuit = two_local(num_qubits, reps=5, rng=rng, entanglement="linear")
    circuit.name = f"tsp_n{num_qubits}"
    return circuit


def routing(num_qubits: int, seed: int = 0) -> Circuit:
    """Vehicle-routing VQE ansatz (TwoLocal ry/cx, 3 reps)."""
    rng = np.random.default_rng(seed)
    circuit = two_local(num_qubits, reps=3, rng=rng, entanglement="linear")
    circuit.name = f"routing_n{num_qubits}"
    return circuit


def vqe_finetune(
    num_qubits: int,
    seed: int = 0,
    reps: int = 2,
    angle_scale: float = 0.01,
) -> Circuit:
    """Near-converged VQE ansatz: the fine-tuning-step workload.

    Same TwoLocal(ry, cx, linear) shape as :func:`vqe`, but rotation
    angles are drawn within ``angle_scale * pi`` of zero — the circuit an
    optimizer evaluates late in a variational run, when every parameter
    update is a small correction.  The rotations are nearly identity, so
    the fidelity-budgeted approximation tier (:mod:`repro.approx`) can
    prune them to diagonal gates at tiny measured fidelity cost; this is
    the headline family of ``benchmarks/bench_ext_approx.py``.
    """
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, name=f"vqe_finetune_n{num_qubits}")
    pairs = [(i, i + 1) for i in range(num_qubits - 1)]
    bound = angle_scale * math.pi
    for _ in range(reps):
        for q in range(num_qubits):
            circuit.ry(float(rng.uniform(-bound, bound)), q)
        for a, b in pairs:
            circuit.cx(a, b)
    for q in range(num_qubits):
        circuit.ry(float(rng.uniform(-bound, bound)), q)
    return circuit


def supremacy(num_qubits: int, depth: int = 8, seed: int = 0) -> Circuit:
    """Google-quantum-supremacy-style random circuit.

    Alternates layers of random single-qubit gates from {sx, sy := ry(pi/2),
    t} with a shifting pattern of Sycamore-style fSim gates (slightly detuned
    from a pure iSWAP, as on real hardware) on a 1-D arrangement.  The fSim
    rows carry 1 or 2 non-zeros, which is what gives this family its small
    but non-zero NZR variation in Table 1.
    """
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, name=f"supremacy_n{num_qubits}")
    for q in range(num_qubits):
        circuit.h(q)
    last: list[str | None] = [None] * num_qubits
    for layer in range(depth):
        for q in range(num_qubits):
            choices = [g for g in ("sx", "sy", "t") if g != last[q]]
            pick = choices[int(rng.integers(len(choices)))]
            last[q] = pick
            if pick == "sy":
                circuit.ry(math.pi / 2, q)
            elif pick == "sx":
                circuit.add("sx", q)
            else:
                circuit.add("t", q)
        offset = layer % 2
        for a in range(offset, num_qubits - 1, 2):
            circuit.add("fsim", (a, a + 1), (0.47 * math.pi, math.pi / 6))
    return circuit


def ghz(num_qubits: int, seed: int = 0) -> Circuit:
    """GHZ state preparation: H + CX chain."""
    circuit = Circuit(num_qubits, name=f"ghz_n{num_qubits}")
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    return circuit


def qft(num_qubits: int, seed: int = 0) -> Circuit:
    """Quantum Fourier transform (with final swaps)."""
    circuit = Circuit(num_qubits, name=f"qft_n{num_qubits}")
    for q in reversed(range(num_qubits)):
        circuit.h(q)
        for k, lower in enumerate(reversed(range(q))):
            circuit.cp(math.pi / (1 << (k + 2)) * 2, lower, q)
    for q in range(num_qubits // 2):
        circuit.swap(q, num_qubits - 1 - q)
    return circuit


def random_circuit(num_qubits: int, num_gates: int, seed: int = 0) -> Circuit:
    """Random mixed circuit over the full gate set (testing workhorse)."""
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, name=f"random_n{num_qubits}")
    one_q = ["h", "x", "y", "z", "s", "t", "sx", "rx", "ry", "rz", "p"]
    parametric = {"rx", "ry", "rz", "p"}
    while len(circuit) < num_gates:
        roll = rng.random()
        if roll < 0.5 or num_qubits == 1:
            name = one_q[int(rng.integers(len(one_q)))]
            q = int(rng.integers(num_qubits))
            params = (float(rng.uniform(0, 2 * math.pi)),) if name in parametric else ()
            circuit.add(name, q, params)
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            kind = rng.random()
            if kind < 0.5:
                circuit.cx(int(a), int(b))
            elif kind < 0.75:
                circuit.cz(int(a), int(b))
            else:
                circuit.rzz(float(rng.uniform(0, 2 * math.pi)), int(a), int(b))
    return circuit


#: registry used by the bench harness and examples
from .algorithms import deutsch_jozsa, grover, qaoa_maxcut, qpe, wstate  # noqa: E402

FAMILIES = {
    "grover": grover,
    "dj": deutsch_jozsa,
    "wstate": wstate,
    "qpe": qpe,
    "qaoa": qaoa_maxcut,
    "qnn": qnn,
    "vqe": vqe,
    "vqe_finetune": vqe_finetune,
    "portfolio": portfolio,
    "graphstate": graphstate,
    "tsp": tsp,
    "routing": routing,
    "supremacy": supremacy,
    "ghz": ghz,
    "qft": qft,
}


def make_circuit(family: str, num_qubits: int, seed: int = 0) -> Circuit:
    """Instantiate a benchmark family by name.

    The registry behind every CLI ``--family`` flag: the paper's six
    MQT-Bench families (gate counts match Table 2 exactly) plus
    supremacy, GHZ, QFT, and the textbook algorithms.  ``seed`` only
    affects families with random parameters (e.g. ``vqe``, ``qnn``).
    Raises ``KeyError`` naming the known families on a typo.  Example::

        circuit = make_circuit("ghz", 4)
        assert circuit.num_qubits == 4 and len(circuit) == 4
    """
    try:
        maker = FAMILIES[family]
    except KeyError:
        raise KeyError(
            f"unknown circuit family {family!r}; known: {sorted(FAMILIES)}"
        ) from None
    return maker(num_qubits, seed=seed)
