"""Unit tests for the OpenQASM 2.0 reader/writer."""

import math

import numpy as np
import pytest

from repro.circuit import Circuit, parse_qasm, to_qasm
from repro.circuit.generators import random_circuit
from repro.errors import QasmError

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[3];\n'


def test_parse_basic_gates():
    c = parse_qasm(HEADER + "h q[0];\ncx q[0],q[1];\nrz(pi/2) q[2];\n")
    assert c.num_qubits == 3
    assert [g.name for g in c] == ["h", "x", "rz"]
    assert c[1].controls == (0,)
    assert c[2].params == (math.pi / 2,)


def test_parse_parameter_expressions():
    c = parse_qasm(HEADER + "rx(2*pi/3) q[0]; ry(-pi) q[1]; p(0.25+0.5) q[2];")
    assert c[0].params[0] == pytest.approx(2 * math.pi / 3)
    assert c[1].params[0] == pytest.approx(-math.pi)
    assert c[2].params[0] == pytest.approx(0.75)


def test_parse_ignores_comments_barriers_measure():
    src = HEADER + "// a comment\nh q[0]; barrier q;\ncreg c[3];\nmeasure q[0] -> c[0];\nx q[1];"
    c = parse_qasm(src)
    assert [g.name for g in c] == ["h", "x"]


def test_parse_register_broadcast():
    c = parse_qasm(HEADER + "h q;")
    assert len(c) == 3 and all(g.name == "h" for g in c)
    assert sorted(g.qubits[0] for g in c) == [0, 1, 2]


def test_parse_multi_register_offsets():
    src = 'OPENQASM 2.0;\nqreg a[2];\nqreg b[2];\ncx a[1],b[0];\n'
    c = parse_qasm(src)
    assert c.num_qubits == 4
    assert c[0].controls == (1,) and c[0].qubits == (2,)


def test_parse_rejects_unknown_gate():
    with pytest.raises(QasmError, match="unknown gate"):
        parse_qasm(HEADER + "warp q[0];")


def test_parse_expands_gate_definitions():
    src = HEADER + "gate mygate a { h a; t a; }\nmygate q[1];"
    c = parse_qasm(src)
    assert [g.name for g in c] == ["h", "t"]
    assert all(g.qubits == (1,) for g in c)


def test_parse_expands_parameterized_nested_definitions():
    src = HEADER + (
        "gate inner(t) a { rz(t/2) a; }\n"
        "gate outer(t) a,b { inner(t) a; cx a,b; inner(-t) b; }\n"
        "outer(pi) q[0],q[2];"
    )
    c = parse_qasm(src)
    assert [g.name for g in c] == ["rz", "x", "rz"]
    assert c[0].params[0] == pytest.approx(math.pi / 2)
    assert c[2].params[0] == pytest.approx(-math.pi / 2)
    assert c[1].controls == (0,) and c[1].qubits == (2,)


def test_parse_rejects_recursive_gate_definition():
    src = HEADER + "gate loop a { loop a; }\nloop q[0];"
    with pytest.raises(QasmError, match="too deep"):
        parse_qasm(src)


def test_parse_rejects_unknown_gate_in_body():
    src = HEADER + "gate bad a { warp a; }\nbad q[0];"
    with pytest.raises(QasmError, match="unknown gate 'warp'"):
        parse_qasm(src)


def test_parse_rejects_wrong_custom_arity():
    src = HEADER + "gate two a,b { cx a,b; }\ntwo q[0];"
    with pytest.raises(QasmError, match="takes 2 qubit"):
        parse_qasm(src)


def test_parse_still_rejects_opaque():
    with pytest.raises(QasmError, match="unsupported"):
        parse_qasm(HEADER + "opaque magic a;")


def test_parse_rejects_bad_index():
    with pytest.raises(QasmError, match="out of range"):
        parse_qasm(HEADER + "h q[7];")


def test_parse_rejects_missing_qreg():
    with pytest.raises(QasmError, match="no qreg"):
        parse_qasm("OPENQASM 2.0;\n")


def test_parse_rejects_malicious_parameter():
    with pytest.raises(QasmError):
        parse_qasm(HEADER + "rx(__import__('os')) q[0];")


def test_roundtrip_preserves_semantics():
    for seed in range(3):
        c = random_circuit(4, 15, seed=seed)
        c2 = parse_qasm(to_qasm(c))
        assert np.allclose(c2.to_matrix(), c.to_matrix(), atol=1e-10)


def test_roundtrip_gate_counts(small_circuit):
    c2 = parse_qasm(to_qasm(small_circuit))
    assert len(c2) == len(small_circuit)
    assert np.allclose(c2.to_matrix(), small_circuit.to_matrix(), atol=1e-10)


def test_serialize_ccx():
    c = Circuit(3)
    c.ccx(0, 1, 2)
    text = to_qasm(c)
    assert "ccx q[0],q[1],q[2];" in text
