"""Property tests for the compiled GatherPlan spMM fast path.

The contract of :mod:`repro.ell.spmm`:

* the ``numpy`` backend is **bit-identical** to the reference per-slot loop
  (it performs the same floating-point operations in the same order);
* the ``csr`` backend (SciPy) agrees to a few ULPs;
* composed width-1 plans match sequential application.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ell import (
    ELLMatrix,
    GatherPlan,
    build_apply_plans,
    ell_spmm,
    ell_spmm_loop,
    gather_plan,
)
from repro.ell.spmm import _scipy_sparse
from repro.errors import SimulationError

HAVE_SCIPY = _scipy_sparse is not None


def random_ell(
    rng: np.random.Generator,
    num_qubits: int,
    width: int,
    pad_fraction: float = 0.0,
) -> ELLMatrix:
    """Random ELL matrix with optional zero-padded slots."""
    rows = 1 << num_qubits
    values = rng.standard_normal((rows, width)) + 1j * rng.standard_normal(
        (rows, width)
    )
    cols = rng.integers(0, rows, size=(rows, width), dtype=np.int64)
    if pad_fraction > 0:
        padded = rng.random((rows, width)) < pad_fraction
        values[padded] = 0.0
        cols[padded] = 0  # padded slots point at row 0, like the converters
    return ELLMatrix(num_qubits, values, cols)


def random_states(
    rng: np.random.Generator, num_qubits: int, batch: int
) -> np.ndarray:
    rows = 1 << num_qubits
    return rng.standard_normal((rows, batch)) + 1j * rng.standard_normal(
        (rows, batch)
    )


ell_cases = st.tuples(
    st.integers(min_value=1, max_value=6),  # num_qubits
    st.integers(min_value=1, max_value=5),  # width (clamped to 2^n below)
    st.integers(min_value=1, max_value=8),  # batch size
    st.floats(min_value=0.0, max_value=0.8),  # padded-slot fraction
    st.integers(min_value=0, max_value=2**32 - 1),  # rng seed
)


@settings(max_examples=60, deadline=None)
@given(case=ell_cases)
def test_numpy_backend_bit_identical_to_loop(case):
    n, width, batch, pad, seed = case
    width = min(width, 1 << n)
    rng = np.random.default_rng(seed)
    ell = random_ell(rng, n, width, pad)
    states = random_states(rng, n, batch)
    expected = ell_spmm_loop(ell, states)
    got = ell_spmm(ell, states, backend="numpy")
    assert np.array_equal(got, expected)


@settings(max_examples=40, deadline=None)
@given(case=ell_cases)
def test_default_backend_matches_loop(case):
    n, width, batch, pad, seed = case
    width = min(width, 1 << n)
    rng = np.random.default_rng(seed)
    ell = random_ell(rng, n, width, pad)
    states = random_states(rng, n, batch)
    expected = ell_spmm_loop(ell, states)
    got = ell_spmm(ell, states)
    assert np.allclose(got, expected, rtol=1e-12, atol=1e-12)


@pytest.mark.skipif(not HAVE_SCIPY, reason="csr backend requires scipy")
@settings(max_examples=40, deadline=None)
@given(case=ell_cases)
def test_csr_backend_matches_loop(case):
    n, width, batch, pad, seed = case
    width = min(width, 1 << n)
    rng = np.random.default_rng(seed)
    ell = random_ell(rng, n, width, pad)
    states = random_states(rng, n, batch)
    expected = ell_spmm_loop(ell, states)
    got = ell_spmm(ell, states, backend="csr")
    assert np.allclose(got, expected, rtol=1e-12, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=6),
    batch=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_composed_width_one_plans_match_sequential(n, batch, seed):
    rng = np.random.default_rng(seed)
    first = gather_plan(random_ell(rng, n, 1))
    second = gather_plan(random_ell(rng, n, 1))
    states = random_states(rng, n, batch)
    sequential = second.apply(first.apply(states))
    composed = first.compose(second)
    assert composed.is_width_one
    assert np.allclose(composed.apply(states), sequential, rtol=1e-12, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=5),
    widths=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=6),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_build_apply_plans_pipeline_matches_loop(n, widths, seed):
    rng = np.random.default_rng(seed)
    ells = [random_ell(rng, n, min(w, 1 << n)) for w in widths]
    states = random_states(rng, n, 4)
    expected = states
    for ell in ells:
        expected = ell_spmm_loop(ell, expected)
    plans = build_apply_plans(ells)
    # every width-1 run collapsed to one plan
    assert len(plans) <= len(ells)
    for a, b in zip(plans, plans[1:]):
        assert not (a.is_width_one and b.is_width_one)
    got = states
    for plan in plans:
        got = plan.apply(got)
    assert np.allclose(got, expected, rtol=1e-10, atol=1e-10)


def test_width_one_short_circuit_is_single_gather(rng):
    ell = random_ell(rng, 4, 1)
    states = random_states(rng, 4, 8)
    plan = gather_plan(ell)
    assert plan.is_width_one
    expected = ell_spmm_loop(ell, states)
    assert np.array_equal(plan.apply(states), expected)


def test_padded_rows_match_loop(rng):
    # rows whose every slot is padding must produce exact zeros
    values = np.zeros((8, 3), dtype=np.complex128)
    values[::2] = rng.standard_normal((4, 3)) + 1j
    cols = rng.integers(0, 8, size=(8, 3), dtype=np.int64)
    cols[1::2] = 0
    ell = ELLMatrix(3, values, cols)
    states = random_states(rng, 3, 5)
    expected = ell_spmm_loop(ell, states)
    for backend in ("numpy",) + (("csr",) if HAVE_SCIPY else ()):
        got = ell_spmm(ell, states, backend=backend)
        assert np.allclose(got, expected, rtol=1e-12, atol=1e-12)
        assert not got[1::2].any()


def test_out_buffer_semantics(rng):
    ell = random_ell(rng, 3, 2)
    states = random_states(rng, 3, 4)
    out = np.empty_like(states)
    returned = ell_spmm(ell, states, out=out)
    assert returned is out
    assert np.allclose(out, ell_spmm_loop(ell, states), rtol=1e-12, atol=1e-12)
    with pytest.raises(SimulationError, match="in place"):
        ell_spmm(ell, states, out=states)
    with pytest.raises(SimulationError, match="shape"):
        ell_spmm(ell, states, out=np.empty((4, 4), dtype=states.dtype))
    with pytest.raises(SimulationError, match="state dim"):
        ell_spmm(ell, random_states(rng, 4, 4))


def test_unknown_backend_rejected(rng):
    ell = random_ell(rng, 2, 2)
    states = random_states(rng, 2, 2)
    with pytest.raises(SimulationError, match="unknown spMM backend"):
        ell_spmm(ell, states, backend="cuda")


def test_compose_rejects_wide_or_mismatched_plans(rng):
    wide = gather_plan(random_ell(rng, 3, 2))
    narrow = gather_plan(random_ell(rng, 3, 1))
    with pytest.raises(SimulationError, match="width-1"):
        wide.compose(narrow)
    with pytest.raises(SimulationError, match="width-1"):
        narrow.compose(wide)
    other = gather_plan(random_ell(rng, 2, 1))
    with pytest.raises(SimulationError, match="different sizes"):
        narrow.compose(other)


def test_plan_memoized_on_matrix(rng):
    ell = random_ell(rng, 3, 2)
    assert ell.plan() is ell.plan()
    assert gather_plan(ell) is ell.plan()


def test_ell_spmm_accepts_prebuilt_plan(rng):
    ell = random_ell(rng, 3, 2)
    states = random_states(rng, 3, 4)
    plan = GatherPlan.from_ell(ell)
    assert np.allclose(
        ell_spmm(plan, states), ell_spmm_loop(ell, states), rtol=1e-12, atol=1e-12
    )
    roundtrip = plan.to_ell()
    assert np.array_equal(roundtrip.values, ell.values)
    assert np.array_equal(roundtrip.cols, ell.cols)
