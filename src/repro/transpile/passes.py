"""Circuit transformation passes.

A small, composable transpiler used by the verification/testing examples
and as a substrate for generating "equivalent but different" circuits — the
inputs the paper's motivating BQCS applications (differential testing,
equivalence checking) feed to a batch simulator.

Every pass is a pure function ``Circuit -> Circuit`` registered in
``PASSES``; :class:`~repro.transpile.manager.PassManager` chains them and
can verify semantic preservation after every step.
"""

from __future__ import annotations

import math

from ..circuit.circuit import Circuit
from ..circuit.gates import Gate
from ..errors import CircuitError

_ROTATIONS = {"rx", "ry", "rz", "p", "rzz", "rxx", "ryy"}
_SELF_INVERSE = {"h", "x", "y", "z", "swap", "id"}
_INVERSE_PAIRS = {("s", "sdg"), ("t", "tdg"), ("sx", "sxdg")}
_TWO_PI = 2 * math.pi


def _same_operands(a: Gate, b: Gate) -> bool:
    return a.qubits == b.qubits and a.controls == b.controls


def _cancels(a: Gate, b: Gate) -> bool:
    if not _same_operands(a, b):
        return False
    if a.name == b.name and a.name in _SELF_INVERSE:
        return True
    pair = (a.name, b.name)
    return pair in _INVERSE_PAIRS or tuple(reversed(pair)) in _INVERSE_PAIRS


def cancel_inverse_pairs(circuit: Circuit) -> Circuit:
    """Remove adjacent gate pairs that multiply to the identity.

    Iterates to a fixpoint so cascading cancellations (``x x x x``) vanish.
    """
    gates = list(circuit.gates)
    changed = True
    while changed:
        changed = False
        out: list[Gate] = []
        for gate in gates:
            if out and _cancels(out[-1], gate):
                out.pop()
                changed = True
            else:
                out.append(gate)
        gates = out
    return Circuit(circuit.num_qubits, gates, name=circuit.name)


def merge_rotations(circuit: Circuit) -> Circuit:
    """Fold adjacent same-axis rotations on identical operands.

    Angles summing to a multiple of 2*pi drop the gate entirely (all the
    supported rotations are 4*pi-periodic but 2*pi-periodic up to global
    phase only for ``p``; therefore only exact zero sums are dropped for
    the others).
    """
    out: list[Gate] = []
    for gate in circuit.gates:
        if (
            out
            and gate.name in _ROTATIONS
            and out[-1].name == gate.name
            and _same_operands(out[-1], gate)
        ):
            total = out[-1].params[0] + gate.params[0]
            out.pop()
            if gate.name == "p":
                total = math.remainder(total, _TWO_PI)
            if abs(total) > 1e-12:
                out.append(Gate(gate.name, gate.qubits, (total,), gate.controls))
            continue
        out.append(gate)
    return Circuit(circuit.num_qubits, out, name=circuit.name)


def commute_diagonals_right(circuit: Circuit) -> Circuit:
    """Bubble diagonal gates rightward past gates on disjoint qubits.

    Normalizes gate order so the cancellation/merge passes see more
    adjacent pairs; a purely structural, semantics-preserving reordering.
    """
    gates = list(circuit.gates)
    for i in range(len(gates) - 2, -1, -1):
        j = i
        while (
            j + 1 < len(gates)
            and gates[j].is_diagonal()
            and not gates[j + 1].is_diagonal()
            and not (set(gates[j].all_qubits) & set(gates[j + 1].all_qubits))
        ):
            gates[j], gates[j + 1] = gates[j + 1], gates[j]
            j += 1
    return Circuit(circuit.num_qubits, gates, name=circuit.name)


#: decompositions into the {h, rz, cx} basis (plus phase gates)
_BASIS = {"h", "rz", "x"}


def decompose_to_basis(circuit: Circuit) -> Circuit:
    """Rewrite into {h, rz, cx, ccx} (Z-rotations + Hadamard + controlled X).

    Global phases are dropped, so the result is equivalent only up to phase
    — exactly the equivalence class simulative checking works with.
    """
    out = Circuit(circuit.num_qubits, name=f"{circuit.name}_basis")
    for gate in circuit.gates:
        _emit_basis(out, gate)
    return out


def _emit_ry(out: Circuit, theta: float, q: int) -> None:
    """ry(theta) up to global phase: rz(-pi/2) h rz(theta) h rz(pi/2)."""
    out.rz(-math.pi / 2, q)
    out.h(q)
    out.rz(theta, q)
    out.h(q)
    out.rz(math.pi / 2, q)


def _emit_basis(out: Circuit, gate: Gate) -> None:
    name = gate.name
    ctr = gate.controls
    q = gate.qubits[0] if gate.qubits else None

    # already in the basis (controlled-x of any arity included)
    if name == "x" or (name == "h" and not ctr) or (name == "rz" and not ctr):
        out.append(gate)
        return
    # controlled-z via h . c..x . h on the target
    if name == "z" and ctr:
        out.h(q)
        out.append(Gate("x", (q,), (), ctr))
        out.h(q)
        return
    # controlled rotations/phases are kept (already DD/simulator friendly)
    if ctr:
        out.append(gate)
        return

    phase_angles = {
        "z": math.pi, "s": math.pi / 2, "sdg": -math.pi / 2,
        "t": math.pi / 4, "tdg": -math.pi / 4, "p": None, "u1": None,
    }
    if name in phase_angles:
        angle = phase_angles[name]
        out.rz(gate.params[0] if angle is None else angle, q)
        return
    if name == "id":
        return
    if name == "y":
        out.rz(math.pi, q)
        out.x(q)
        return
    if name == "rx":
        out.h(q)
        out.rz(gate.params[0], q)
        out.h(q)
        return
    if name == "ry":
        _emit_ry(out, gate.params[0], q)
        return
    if name == "sx":
        out.h(q)
        out.rz(math.pi / 2, q)
        out.h(q)
        return
    if name == "sxdg":
        out.h(q)
        out.rz(-math.pi / 2, q)
        out.h(q)
        return
    if name == "swap":
        a, b = gate.qubits
        out.cx(a, b)
        out.cx(b, a)
        out.cx(a, b)
        return
    if name == "rzz":
        a, b = gate.qubits
        out.cx(a, b)
        out.rz(gate.params[0], b)
        out.cx(a, b)
        return
    if name in ("u3", "u", "u2"):
        if name == "u2":
            theta, (phi, lam) = math.pi / 2, gate.params
        else:
            theta, phi, lam = gate.params
        out.rz(lam, q)
        _emit_ry(out, theta, q)
        out.rz(phi, q)
        return
    raise CircuitError(f"no basis decomposition for {gate}")


def remove_identities(circuit: Circuit) -> Circuit:
    """Drop explicit identity gates and zero-angle rotations."""
    out = [
        gate
        for gate in circuit.gates
        if not (
            gate.name == "id"
            or (gate.name in _ROTATIONS and abs(gate.params[0]) < 1e-12)
        )
    ]
    return Circuit(circuit.num_qubits, out, name=circuit.name)


PASSES = {
    "cancel_inverse_pairs": cancel_inverse_pairs,
    "merge_rotations": merge_rotations,
    "commute_diagonals_right": commute_diagonals_right,
    "decompose_to_basis": decompose_to_basis,
    "remove_identities": remove_identities,
}
