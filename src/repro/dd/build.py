"""Constructing DDs for gates, circuits, and state vectors.

Gate-matrix DDs are built structurally (never via dense ``2^n`` matrices):
a memoized recursion walks qubit levels from the most significant down,
choosing a (row bit, col bit) pair per level.  Control qubits contribute
Kronecker-delta structure; once a control bit is 0 the remaining targets
collapse to identity — exactly the semantics of Equation 3 in the paper.
"""

from __future__ import annotations

import numpy as np

from ..circuit.gates import Gate
from ..errors import DDError
from .manager import DDManager
from .node import Edge, ZERO_EDGE


def gate_matrix_dd(mgr: DDManager, gate: Gate) -> Edge:
    """Matrix DD of ``gate`` embedded in ``mgr.num_qubits`` qubits."""
    n = mgr.num_qubits
    if max(gate.all_qubits) >= n:
        raise DDError(f"gate {gate} does not fit in {n} qubits")
    base = gate.matrix()
    target_pos = {q: i for i, q in enumerate(gate.qubits)}
    controls = frozenset(gate.controls)
    memo: dict[tuple[int, int, int, bool], Edge] = {}

    def rec(level: int, grow: int, gcol: int, ctrl_ok: bool) -> Edge:
        if level < 0:
            if ctrl_ok:
                return mgr.terminal(base[grow, gcol])
            return mgr.terminal(1.0 if grow == gcol else 0.0)
        key = (level, grow, gcol, ctrl_ok)
        hit = memo.get(key)
        if hit is not None:
            return hit
        children = []
        for r in (0, 1):
            for c in (0, 1):
                if level in target_pos:
                    i = target_pos[level]
                    children.append(
                        rec(level - 1, grow | (r << i), gcol | (c << i), ctrl_ok)
                    )
                elif level in controls:
                    if r != c:
                        children.append(ZERO_EDGE)
                    else:
                        children.append(rec(level - 1, grow, gcol, ctrl_ok and r == 1))
                else:
                    children.append(
                        rec(level - 1, grow, gcol, ctrl_ok) if r == c else ZERO_EDGE
                    )
        result = mgr.make_mnode(level, children)
        memo[key] = result
        return result

    return rec(n - 1, 0, 0, True)


def circuit_matrix_dd(mgr: DDManager, gates) -> Edge:
    """DD of the product ``M_{L-1} ... M_0`` over an iterable of gates."""
    result = mgr.identity()
    for gate in gates:
        result = mgr.mm_multiply(gate_matrix_dd(mgr, gate), result)
    return result


def vector_dd_from_dense(mgr: DDManager, state: np.ndarray) -> Edge:
    """Vector DD of a dense state (length ``2^n``)."""
    n = mgr.num_qubits
    state = np.asarray(state, dtype=np.complex128).reshape(-1)
    if state.shape[0] != (1 << n):
        raise DDError(f"state length {state.shape[0]} != 2^{n}")

    def rec(level: int, offset: int) -> Edge:
        if level < 0:
            return mgr.terminal(state[offset])
        half = 1 << level
        return mgr.make_vnode(
            level, (rec(level - 1, offset), rec(level - 1, offset + half))
        )

    return rec(n - 1, 0)


def basis_vector_dd(mgr: DDManager, index: int) -> Edge:
    """Vector DD of the computational-basis state ``|index>``."""
    n = mgr.num_qubits
    if not 0 <= index < (1 << n):
        raise DDError(f"basis index {index} out of range")
    edge = mgr.terminal(1.0)
    for level in range(n):
        if (index >> level) & 1:
            edge = mgr.make_vnode(level, (ZERO_EDGE, edge))
        else:
            edge = mgr.make_vnode(level, (edge, ZERO_EDGE))
    return edge


def matrix_dd_from_dense(mgr: DDManager, matrix: np.ndarray) -> Edge:
    """Matrix DD of a dense ``2^n x 2^n`` array (tests / small inputs)."""
    n = mgr.num_qubits
    matrix = np.asarray(matrix, dtype=np.complex128)
    if matrix.shape != (1 << n, 1 << n):
        raise DDError(f"matrix shape {matrix.shape} != (2^{n}, 2^{n})")

    def rec(level: int, row: int, col: int) -> Edge:
        if level < 0:
            return mgr.terminal(matrix[row, col])
        half = 1 << level
        children = [
            rec(level - 1, row + r * half, col + c * half)
            for r in (0, 1)
            for c in (0, 1)
        ]
        return mgr.make_mnode(level, children)

    return rec(n - 1, 0, 0)
