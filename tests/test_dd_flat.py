"""Tests for the flat GPU-oriented DD layout (Figure 6)."""

import numpy as np
import pytest

from repro.circuit.gates import Gate
from repro.circuit.generators import random_circuit
from repro.dd import (
    DDManager,
    ZERO_EDGE,
    circuit_matrix_dd,
    count_edges,
    count_nodes,
    flat_entry,
    flatten_matrix_dd,
    gate_matrix_dd,
    matrix_to_dense,
)
from repro.errors import DDError


def test_flatten_preserves_entries(mgr4, random_circuits):
    for circuit in random_circuits:
        edge = circuit_matrix_dd(mgr4, circuit.gates)
        flat = flatten_matrix_dd(edge, 4)
        dense = matrix_to_dense(edge, 4)
        for row in range(16):
            for col in range(16):
                assert flat_entry(flat, row, col) == pytest.approx(
                    dense[row, col], abs=1e-10
                )


def test_flatten_counts_match_graph(mgr4):
    edge = gate_matrix_dd(mgr4, Gate.make("h", [1]))
    flat = flatten_matrix_dd(edge, 4)
    assert flat.num_nodes == count_nodes(edge)
    assert flat.num_edges == count_edges(edge)


def test_root_edge_is_zero_index(mgr4):
    edge = gate_matrix_dd(mgr4, Gate.make("x", [0]))
    flat = flatten_matrix_dd(edge, 4)
    assert flat.root() == 0
    assert flat.edge_weight[0] == edge.weight


def test_zero_child_slots_are_minus_one(mgr4):
    edge = gate_matrix_dd(mgr4, Gate.make("rz", [0], [0.3]))  # diagonal
    flat = flatten_matrix_dd(edge, 4)
    # diagonal matrices have no off-diagonal children anywhere
    assert (flat.node_edges[:, 1] == -1).all()
    assert (flat.node_edges[:, 2] == -1).all()


def test_terminal_pointer_is_minus_one(mgr4):
    edge = gate_matrix_dd(mgr4, Gate.make("x", [0]))
    flat = flatten_matrix_dd(edge, 4)
    assert (flat.edge_node == -1).any()


def test_flatten_rejects_zero_matrix():
    with pytest.raises(DDError, match="zero matrix"):
        flatten_matrix_dd(ZERO_EDGE, 4)


def test_flatten_rejects_level_mismatch(mgr4):
    edge = gate_matrix_dd(mgr4, Gate.make("h", [0]))
    with pytest.raises(DDError, match="level"):
        flatten_matrix_dd(edge, 5)


def test_nbytes_positive(mgr4):
    flat = flatten_matrix_dd(mgr4.identity(), 4)
    assert flat.nbytes > 0
    assert flat.num_nodes == 4  # identity chain
    assert flat.num_edges == 1 + 2 * 4  # root + two children per level
