"""Unit tests for the gate library."""

import math

import numpy as np
import pytest

from repro.circuit.gates import (
    CONTROLLED_ALIASES,
    Gate,
    base_arity,
    base_matrix,
    known_gate_names,
)
from repro.errors import CircuitError

FIXED_NAMES = ["id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg", "swap", "iswap"]
PARAM_1 = ["rx", "ry", "rz", "p", "u1", "rzz", "rxx", "ryy"]


def is_unitary(m: np.ndarray) -> bool:
    return np.allclose(m @ m.conj().T, np.eye(m.shape[0]), atol=1e-12)


@pytest.mark.parametrize("name", FIXED_NAMES)
def test_fixed_gates_are_unitary(name):
    assert is_unitary(base_matrix(name))


@pytest.mark.parametrize("name", PARAM_1)
@pytest.mark.parametrize("theta", [0.0, 0.37, math.pi, -2.5])
def test_parametric_gates_are_unitary(name, theta):
    assert is_unitary(base_matrix(name, (theta,)))


def test_u_gates_unitary():
    assert is_unitary(base_matrix("u2", (0.3, 1.2)))
    assert is_unitary(base_matrix("u3", (0.3, 1.2, -0.4)))


def test_base_matrix_rejects_unknown_name():
    with pytest.raises(CircuitError, match="unknown gate"):
        base_matrix("frobnicate")


def test_base_matrix_rejects_wrong_param_count():
    with pytest.raises(CircuitError, match="parameter"):
        base_matrix("rx", ())
    with pytest.raises(CircuitError, match="parameter"):
        base_matrix("h", (1.0,))


def test_known_rotation_identities():
    assert np.allclose(base_matrix("rx", (0.0,)), np.eye(2))
    # rz(t) = diag(e^{-it/2}, e^{it/2})
    rz = base_matrix("rz", (math.pi,))
    assert np.allclose(rz, np.diag([-1j, 1j]))
    # u3 reproduces ry and (up to phase) rz
    assert np.allclose(base_matrix("u3", (0.7, 0.0, 0.0)), base_matrix("ry", (0.7,)))


def test_rzz_is_diagonal_and_correct():
    theta = 0.9
    m = base_matrix("rzz", (theta,))
    phases = np.exp(-1j * theta / 2 * np.array([1, -1, -1, 1]))
    assert np.allclose(m, np.diag(phases))


def test_rxx_ryy_match_exponential(rng):
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    y = np.array([[0, -1j], [1j, 0]], dtype=complex)
    theta = 1.234
    for name, pauli in [("rxx", x), ("ryy", y)]:
        pp = np.kron(pauli, pauli)
        w, v = np.linalg.eigh(pp)
        expected = v @ np.diag(np.exp(-1j * theta / 2 * w)) @ v.conj().T
        assert np.allclose(base_matrix(name, (theta,)), expected, atol=1e-12), name


def test_gate_make_resolves_cx_alias():
    g = Gate.make("cx", [0, 1])
    assert g.name == "x" and g.qubits == (1,) and g.controls == (0,)


def test_gate_make_resolves_ccx_and_cp():
    g = Gate.make("ccx", [2, 0, 1])
    assert g.name == "x" and g.qubits == (1,) and set(g.controls) == {0, 2}
    g = Gate.make("cp", [1, 3], [0.5])
    assert g.name == "p" and g.qubits == (3,) and g.controls == (1,)


def test_gate_make_mcx_infers_controls():
    g = Gate.make("mcx", [0, 1, 2, 3])
    assert g.name == "x" and g.qubits == (3,) and g.controls == (0, 1, 2)


def test_gate_rejects_duplicate_qubits():
    with pytest.raises(CircuitError, match="duplicate"):
        Gate.make("cx", [1, 1])
    with pytest.raises(CircuitError, match="duplicate"):
        Gate("x", (0,), (), (0,))


def test_gate_rejects_negative_qubits():
    with pytest.raises(CircuitError, match="negative"):
        Gate("x", (-1,))


def test_gate_rejects_wrong_arity():
    with pytest.raises(CircuitError, match="acts on"):
        Gate("swap", (0,))


def test_full_matrix_expands_controls():
    g = Gate.make("cx", [0, 1])
    full = g.full_matrix()
    # local order: target bit 0, control bit 1
    expected = np.eye(4, dtype=complex)
    expected[2:, 2:] = np.array([[0, 1], [1, 0]])
    assert np.allclose(full, expected)


def test_full_matrix_double_control():
    g = Gate.make("ccz", [0, 1, 2])
    full = g.full_matrix()
    expected = np.diag([1, 1, 1, 1, 1, 1, 1, -1]).astype(complex)
    assert np.allclose(full, expected)


@pytest.mark.parametrize(
    "name,params",
    [
        ("h", ()), ("x", ()), ("s", ()), ("t", ()), ("sx", ()),
        ("rx", (0.7,)), ("ry", (0.7,)), ("rz", (0.7,)), ("p", (0.7,)),
        ("u2", (0.3, 0.9)), ("u3", (0.3, 0.9, -1.1)), ("rzz", (0.5,)),
        ("swap", ()),
    ],
)
def test_dagger_inverts(name, params):
    qubits = [0, 1] if base_arity(name) == 2 else [0]
    g = Gate.make(name, qubits, params)
    prod = g.dagger().matrix() @ g.matrix()
    assert np.allclose(prod, np.eye(prod.shape[0]), atol=1e-12)


def test_dagger_keeps_controls():
    g = Gate.make("crz", [0, 1], [0.4])
    assert g.dagger().controls == (0,)
    assert g.dagger().params == (-0.4,)


def test_is_diagonal():
    assert Gate.make("rz", [0], [0.2]).is_diagonal()
    assert Gate.make("cz", [0, 1]).is_diagonal()
    assert not Gate.make("h", [0]).is_diagonal()


def test_known_gate_names_includes_aliases():
    names = known_gate_names()
    assert {"h", "cx", "ccx", "rzz", "cp"} <= names
    for alias in CONTROLLED_ALIASES:
        assert alias in names


def test_gate_str_is_informative():
    text = str(Gate.make("crz", [2, 0], [0.25]))
    assert "rz" in text and "c2" in text and "q0" in text
