"""The resilience event log: one append-only record per fault-handling step.

Every fault, retry, demotion, quarantine, checkpoint, and health action in
the runtime lands here as a small dict.  The log is process-global (like the
metrics registry) and scoped to one run with :meth:`ResilienceLog.mark` /
:meth:`ResilienceLog.summary_since`, which is how
``SimulationResult.stats["resilience"]`` is produced.

Events deliberately carry **no wall-clock timestamps** — only deterministic
payloads (sites, attempt counts, modeled backoff seconds) — so two runs with
the same seed and the same :class:`~repro.resilience.faults.FaultPlan`
produce bit-identical event logs, which the determinism tests assert.
"""

from __future__ import annotations

import threading

from ..obs import get_metrics, get_tracer

#: event kinds a summary rolls up into convenience counters
_SUMMARY_KINDS = {
    "faults": "fault",
    "retries": "retry",
    "demotions": "demotion",
    "quarantines": "quarantine",
    "checkpoints": "checkpoint",
    "renormalizations": "renormalize",
    # serving-layer fault handling (the process worker pool records these)
    "worker_restarts": "worker_restart",
    "redeliveries": "redelivery",
}


class ResilienceLog:
    """Thread-safe append-only log of resilience events."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[dict] = []

    def record(self, kind: str, **attrs) -> dict:
        """Append one event; mirrors it into metrics and (when enabled) the
        tracer as a zero-duration ``resilience.<kind>`` span."""
        event = {"kind": kind}
        event.update(attrs)
        with self._lock:
            self._events.append(event)
        metrics = get_metrics()
        metrics.inc(f"resilience.{kind}")
        site = attrs.get("site")
        if site:
            metrics.inc(f"resilience.{kind}.{site}")
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(f"resilience.{kind}", **attrs):
                pass
        return event

    # -- per-run scoping ------------------------------------------------------

    def mark(self) -> int:
        """Opaque marker (the current event count) for ``*_since``."""
        with self._lock:
            return len(self._events)

    def events_since(self, mark: int) -> list[dict]:
        """Copies of the events recorded since ``mark``."""
        with self._lock:
            return [dict(e) for e in self._events[mark:]]

    def summary_since(self, mark: int) -> dict:
        """The ``stats["resilience"]`` block: events + per-kind counts."""
        events = self.events_since(mark)
        counts: dict[str, int] = {}
        for event in events:
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        summary: dict = {"events": events, "counts": counts}
        for name, kind in _SUMMARY_KINDS.items():
            summary[name] = counts.get(kind, 0)
        return summary

    def clear(self) -> None:
        with self._lock:
            self._events.clear()


_global_log = ResilienceLog()


def get_resilience_log() -> ResilienceLog:
    """The process-global resilience event log."""
    return _global_log
