"""Extension bench — gateway saturation across a shard fleet.

The sharded-routing acceptance check: a mixed-tenant backlog (every job
queued before the first dispatch round, mimicking a scrape-and-burst
arrival pattern) is drained through 1, 2, and 4 shards, and
fingerprint-affinity placement is compared against cache-oblivious
round-robin ("random") placement at the widest fleet.

Affinity's claim is about *plan-cache locality*: hashing jobs to shards
by their coalescing key sends every job of one circuit family to one
shard, so each shard compiles its plans once and hits its cache for the
rest of the run.  Random placement warms every shard's cache a little,
multiplying compile misses by roughly the shard count.  The bench
asserts the hit-rate gap and the fleet-wide zero-unaccounted invariant,
and reports merged SLO percentiles (latency, queue age) per fleet size.

At ``--repro-scale paper`` the backlog is >= 10k queued jobs; the
default small scale keeps the same shape at a few hundred jobs so the
whole harness stays quick under pytest-benchmark.  Results land in
``BENCH_gateway_saturation.json`` next to this module.
"""

import json
import time
from pathlib import Path

from conftest import run_once

from repro.circuit.generators import make_circuit
from repro.gateway import ShardRouter, TenantQuotas

RESULT_JSON = Path(__file__).parent / "BENCH_gateway_saturation.json"

#: six distinct plan fingerprints — enough that a 4-shard ring gives
#: every shard at least one family while leaving room for imbalance
FAMILIES = ("qft", "ghz", "vqe", "qaoa", "wstate", "graphstate")
NUM_QUBITS = 6
INPUTS_PER_JOB = 2
TENANTS = {"acme": 4, "globex": 2, "initech": 0}  # weight = priority boost

JOBS_BY_SCALE = {"small": 420, "medium": 2400, "paper": 10_800}


def _hit_rate(plan_cache: dict) -> float:
    hits = plan_cache["hits"] + plan_cache["disk_hits"]
    lookups = hits + plan_cache["misses"]
    return hits / lookups if lookups else 0.0


def run_fleet(num_shards: int, routing: str, jobs: int) -> dict:
    """Queue the full backlog, drain it, and summarize the fleet."""
    quotas = TenantQuotas(
        rate=1e9, burst=1e9,  # admission never throttles this bench
        tenants={name: {"weight": w} for name, w in TENANTS.items()},
    )
    router = ShardRouter(
        num_shards=num_shards,
        routing=routing,
        quotas=quotas,
        # cap the coalescer so each family drains as a *series* of
        # mega-batches — the realistic steady-state, and the regime
        # where plan-cache reuse (hit after first compile) is visible
        service_kwargs={"max_depth": jobs + 8, "max_jobs_per_batch": 8},
    )
    circuits = [make_circuit(f, NUM_QUBITS) for f in FAMILIES]
    tenants = list(TENANTS)
    start = time.perf_counter()
    for i in range(jobs):
        router.submit(
            circuits[i % len(circuits)],
            num_inputs=INPUTS_PER_JOB,
            tenant=tenants[i % len(tenants)],
        )
    queued_s = time.perf_counter() - start
    stats = router.drain()
    wall_s = time.perf_counter() - start
    unaccounted = router.unaccounted()
    router.close()
    assert unaccounted == [], unaccounted
    assert stats["completed"] == jobs, stats
    slo = stats["slo"]
    per_shard_hits = {
        name: _hit_rate(shard["plan_cache"])
        for name, shard in stats["shards"].items()
    }
    lookups = sum(
        shard["plan_cache"]["hits"] + shard["plan_cache"]["disk_hits"]
        + shard["plan_cache"]["misses"]
        for shard in stats["shards"].values()
    )
    misses = sum(
        shard["plan_cache"]["misses"] for shard in stats["shards"].values()
    )
    return {
        "shards": num_shards,
        "routing": routing,
        "jobs": jobs,
        "queued_s": queued_s,
        "wall_s": wall_s,
        "jobs_per_s": jobs / (wall_s - queued_s),
        "latency_p50_ms": slo["latency_s"]["p50"] * 1e3,
        "latency_p99_ms": slo["latency_s"]["p99"] * 1e3,
        "queue_age_p50_ms": slo["queue_age_s"]["p50"] * 1e3,
        "queue_age_p99_ms": slo["queue_age_s"]["p99"] * 1e3,
        "plan_cache_hit_rate": (lookups - misses) / lookups,
        "plan_cache_misses": misses,
        "per_shard_hit_rate": per_shard_hits,
        "routed": stats["routed"],
        "quota_admitted": {
            name: q["admitted"] for name, q in stats["quotas"].items()
        },
    }


def gateway_saturation(jobs: int) -> dict:
    rows = [run_fleet(n, "affinity", jobs) for n in (1, 2, 4)]
    random_row = run_fleet(4, "random", jobs)
    doc = {
        "bench": "gateway_saturation",
        "jobs": jobs,
        "tenants": len(TENANTS),
        "fleet_sweep": rows,
        "random_baseline": random_row,
        "affinity_hit_rate_at_4": rows[-1]["plan_cache_hit_rate"],
        "random_hit_rate_at_4": random_row["plan_cache_hit_rate"],
    }
    RESULT_JSON.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def test_gateway_saturation(benchmark, scale):
    doc = run_once(benchmark, gateway_saturation, JOBS_BY_SCALE[scale])
    sweep = doc["fleet_sweep"]
    # every fleet size drained the identical backlog, nothing lost
    assert all(row["jobs"] == doc["jobs"] for row in sweep)
    # all three tenants were admitted throughout
    for row in sweep:
        assert len(row["quota_admitted"]) == len(TENANTS)
        assert sum(row["quota_admitted"].values()) == doc["jobs"]
    # affinity keeps per-shard caches hot: each of the 6 fingerprints
    # compiles on exactly one shard, so misses stay flat as the fleet
    # widens, while random placement re-compiles on every shard it hits
    affinity4 = sweep[-1]
    assert affinity4["shards"] == 4
    assert affinity4["plan_cache_misses"] <= len(FAMILIES)
    assert (
        doc["affinity_hit_rate_at_4"] > doc["random_hit_rate_at_4"]
    ), (doc["affinity_hit_rate_at_4"], doc["random_hit_rate_at_4"])
    # percentile sanity on the merged fleet SLO
    for row in sweep:
        assert row["latency_p99_ms"] >= row["latency_p50_ms"] > 0
        assert row["queue_age_p99_ms"] >= row["queue_age_p50_ms"] >= 0
