"""The virtual GPU device: buffers, kernels, and memcpys.

The device plays two roles at once:

* **numerics** — buffer contents are real NumPy arrays, kernels run real
  functions eagerly at submission time (valid because tasks are submitted in
  a topological order, like building a CUDA graph stream-by-stream);
* **timing** — every submission also appends a task to a
  :class:`~repro.gpu.graph.TaskGraph`, whose analytic schedule provides the
  device-model runtime, utilization, and power.

This split is the substitution documented in DESIGN.md: results are exact,
times come from the calibrated device model.

**Resilience.**  Every submission consults the process fault injector
(:func:`repro.resilience.faults.get_fault_injector`): transient ``kernel``
and ``copy`` faults are healed in place with bounded, backoff-priced retries
(the extra attempts and modeled backoff extend the task's duration on the
timeline), ``oom`` faults and genuine capacity overflows raise a typed
:class:`~repro.errors.MemoryFault`, and kernels submitted with an ``output``
buffer get a post-launch non-finite check that detects injected bit-flips
and retries the (idempotent) kernel body.  With no injector installed, the
fault paths cost one ``None`` check per submission.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import DeviceError, MemoryFault, TransientFault
from ..kernels.engine import ArrayEngine, get_engine
from ..resilience.faults import get_fault_injector
from ..resilience.retry import RetryPolicy, RetrySession
from .engine import Timeline
from .graph import TaskGraph, TaskHandle
from .spec import GpuSpec


@dataclass
class DeviceBuffer:
    """A named device allocation holding a dense complex block."""

    name: str
    nbytes: int
    array: np.ndarray | None = None

    def require(self) -> np.ndarray:
        if self.array is None:
            raise DeviceError(f"buffer {self.name!r} read before any write")
        return self.array


class VirtualGPU:
    """One virtual device with a task graph attached."""

    def __init__(
        self,
        spec: GpuSpec | None = None,
        mode: str = "graph",
        retry: RetryPolicy | None = None,
        seed: int = 0,
        engine: "str | ArrayEngine | None" = None,
    ):
        self.spec = spec or GpuSpec()
        #: array engine buffer contents live in (numpy/fake-gpu/cupy);
        #: H2D/D2H bodies cross the host<->engine boundary through it
        self.engine = get_engine(engine)
        self.graph = TaskGraph(self.spec, mode=mode)
        self._buffers: dict[str, DeviceBuffer] = {}
        self._allocated = 0
        #: the injector active at construction governs this device's run
        self._injector = get_fault_injector()
        self._retry = (
            RetrySession(retry, seed=seed) if self._injector is not None else None
        )

    # -- memory ---------------------------------------------------------------

    def alloc(self, name: str, nbytes: int) -> DeviceBuffer:
        if name in self._buffers:
            raise DeviceError(f"buffer {name!r} already allocated")
        if self._injector is not None and self._injector.check("oom"):
            raise MemoryFault(
                f"injected allocation failure for buffer {name!r} "
                f"({nbytes} bytes)"
            )
        if self._allocated + nbytes > self.spec.memory_bytes:
            raise MemoryFault(
                f"device out of memory: {self._allocated + nbytes} bytes "
                f"requested, capacity {self.spec.memory_bytes}"
            )
        buffer = DeviceBuffer(name=name, nbytes=nbytes)
        self._buffers[name] = buffer
        self._allocated += nbytes
        return buffer

    def free(self, buffer: DeviceBuffer) -> None:
        stored = self._buffers.pop(buffer.name, None)
        if stored is None:
            raise DeviceError(f"buffer {buffer.name!r} not allocated")
        self._allocated -= stored.nbytes
        stored.array = None

    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    # -- fault handling ---------------------------------------------------------

    def _attempt(self, site: str, body: Callable[[], object], name: str):
        """Run ``body`` under transient-fault injection with bounded retries.

        The injected fault fires *before* the body runs, so a retried body
        always starts from intact inputs.  Bodies may also raise
        :class:`TransientFault` themselves (the kernel output check does)
        to request a retry.  Returns ``(result, attempts, backoff_total)``.
        """
        if self._injector is None:
            return body(), 1, 0.0
        attempt = 0
        backoff_total = 0.0
        while True:
            attempt += 1
            try:
                if self._injector.check(site):
                    raise TransientFault(
                        f"injected {site} fault in {name!r}", site=site
                    )
                return body(), attempt, backoff_total
            except TransientFault as exc:
                backoff = self._retry.next_backoff(exc.site or site, attempt, exc)
                if backoff is None:
                    raise
                backoff_total += backoff

    # -- work submission --------------------------------------------------------

    def h2d(
        self,
        buffer: DeviceBuffer,
        host_array: np.ndarray,
        deps: Sequence[TaskHandle] = (),
        name: str | None = None,
    ) -> TaskHandle:
        """Host-to-device copy (eagerly stores a private copy)."""
        if host_array.nbytes > buffer.nbytes:
            raise DeviceError(
                f"copy of {host_array.nbytes} B into {buffer.nbytes} B buffer"
            )
        name = name or f"h2d:{buffer.name}"

        def body():
            buffer.array = self.engine.from_host(host_array)

        _, attempts, backoff = self._attempt("copy", body, name)
        duration = self.spec.copy_time(host_array.nbytes) * attempts + backoff
        return self.graph.add(name, "h2d", duration, deps, retries=attempts - 1)

    def d2h(
        self,
        buffer: DeviceBuffer,
        deps: Sequence[TaskHandle] = (),
        name: str | None = None,
    ) -> tuple[TaskHandle, np.ndarray]:
        """Device-to-host copy; returns the handle and the snapshot."""
        name = name or f"d2h:{buffer.name}"

        def body():
            return self.engine.to_host_copy(buffer.require())

        snapshot, attempts, backoff = self._attempt("copy", body, name)
        duration = self.spec.copy_time(snapshot.nbytes) * attempts + backoff
        handle = self.graph.add(name, "d2h", duration, deps, retries=attempts - 1)
        return handle, snapshot

    def kernel(
        self,
        name: str,
        fn: Callable[[], None],
        macs: float = 0.0,
        bytes_moved: float = 0.0,
        deps: Sequence[TaskHandle] = (),
        duration: float | None = None,
        output: DeviceBuffer | None = None,
    ) -> TaskHandle:
        """Submit a compute kernel; ``fn`` performs the real math eagerly.

        Duration defaults to the roofline model over ``macs``/``bytes_moved``;
        pass ``duration`` to pin a pre-priced cost instead.  Pass ``output``
        — the buffer ``fn`` writes, which must be distinct from its inputs so
        re-running is safe — to enable the post-launch non-finite check that
        catches injected bit-flips and heals them with a retry.
        """

        def body():
            fn()
            if output is not None and self._injector is not None:
                result = output.array
                xp = self.engine.xp
                if result is not None and not bool(
                    xp.all(xp.isfinite(result))
                ):
                    raise TransientFault(
                        f"non-finite output detected after kernel {name!r}",
                        site="bitflip",
                    )

        _, attempts, backoff = self._attempt("kernel", body, name)
        if duration is None:
            duration = self.spec.kernel_time(macs, bytes_moved)
        return self.graph.add(
            name,
            "compute",
            duration * attempts + backoff,
            deps,
            retries=attempts - 1,
        )

    def raw_task(
        self,
        name: str,
        engine: str,
        duration: float,
        deps: Sequence[TaskHandle] = (),
    ) -> TaskHandle:
        """Submit a pre-priced task (e.g. conversion kernels, host stages)."""
        return self.graph.add(name, engine, duration, deps)

    def run(self) -> Timeline:
        """Schedule everything submitted so far."""
        return self.graph.execute()
