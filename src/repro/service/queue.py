"""Bounded admission queue for service jobs.

The queue is the service's backpressure valve: depth is bounded, and an
admission past the bound raises a typed
:class:`~repro.errors.AdmissionError` instead of growing without limit —
overload must surface at the *edge* (the submitting client) rather than as
memory growth or unbounded latency inside the service.  Everything is
thread-safe under one lock so a multi-threaded client can share a service
instance, and the queue-depth gauge (``service.queue_depth``) tracks every
admission and removal.
"""

from __future__ import annotations

import threading
import time

from ..errors import AdmissionError, JobNotCancellable, ServiceError
from ..obs import get_metrics
from ..obs.lifecycle import JobLifecycleLog, get_lifecycle_log
from .jobs import Job, JobStatus

#: default admission bound, sized so a saturation script must shed load
DEFAULT_MAX_DEPTH = 256


class JobQueue:
    """FIFO store of admitted-but-unscheduled jobs with bounded depth.

    ``admit()`` raises a typed :class:`~repro.errors.AdmissionError`
    (carrying ``depth``/``max_depth``) once ``max_depth`` jobs wait, so
    submitters get backpressure instead of unbounded latency; requeued
    jobs keep their original submission time, preserving aging credit.
    Example::

        queue = JobQueue(max_depth=2)
        queue.admit(job)                  # OK
        assert queue.depth() == 1
    """

    def __init__(
        self,
        max_depth: int = DEFAULT_MAX_DEPTH,
        clock=time.monotonic,
        lifecycle: JobLifecycleLog | None = None,
    ) -> None:
        if max_depth < 1:
            raise ServiceError("queue depth bound must be >= 1")
        self.max_depth = max_depth
        self.clock = clock
        # explicit None test: an empty log is falsy (it defines __len__)
        self.lifecycle = (
            lifecycle if lifecycle is not None else get_lifecycle_log()
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}  # insertion-ordered (submit order)
        #: ids removed via :meth:`take` and not (yet) requeued — the jobs
        #: that are *in flight* and therefore not synchronously cancellable
        self._taken: set[str] = set()
        #: admission accounting
        self.admitted = 0
        self.rejected = 0
        self.requeued_total = 0

    # -- admission -----------------------------------------------------------

    def admit(self, job: Job) -> Job:
        """Admit a PENDING job, stamping its submit time; bounded.

        Raises :class:`AdmissionError` (and counts the rejection) when the
        queue is full — the job stays PENDING so the client may retry after
        backing off.
        """
        metrics = get_metrics()
        with self._lock:
            if len(self._jobs) >= self.max_depth:
                self.rejected += 1
                depth = len(self._jobs)
            else:
                depth = -1
        if depth >= 0:
            metrics.inc("service.rejected")
            self.lifecycle.emit(
                "rejected", job.job_id, t=self.clock(),
                priority=job.priority, queue_depth=depth,
                max_depth=self.max_depth,
            )
            raise AdmissionError(
                f"queue is at its depth bound ({self.max_depth}); "
                f"job {job.job_id} rejected",
                depth=depth,
                max_depth=self.max_depth,
            )
        with self._lock:
            job.submitted_at = self.clock()
            job.transition(JobStatus.QUEUED)
            self._jobs[job.job_id] = job
            self.admitted += 1
            depth = len(self._jobs)
        metrics.inc("service.submitted")
        metrics.gauge("service.queue_depth", depth)
        self.lifecycle.emit(
            "admitted", job.job_id, t=job.submitted_at,
            priority=job.priority, queue_depth=depth,
        )
        return job

    # -- inspection ----------------------------------------------------------

    def depth(self) -> int:
        with self._lock:
            return len(self._jobs)

    def jobs(self) -> list[Job]:
        """Snapshot of queued jobs in submission order."""
        with self._lock:
            return list(self._jobs.values())

    def __len__(self) -> int:
        return self.depth()

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._jobs

    # -- removal -------------------------------------------------------------

    def take(self, jobs: list[Job]) -> None:
        """Remove scheduled jobs from the queue (they now belong to a
        mega-batch group)."""
        with self._lock:
            for job in jobs:
                self._jobs.pop(job.job_id, None)
                self._taken.add(job.job_id)
            depth = len(self._jobs)
        get_metrics().gauge("service.queue_depth", depth)

    def requeue(self, jobs: list[Job]) -> None:
        """Return abandoned (COALESCED) or crashed-in-flight (RUNNING)
        jobs to the queue — the at-least-once redelivery edge.

        Re-inserted jobs keep their original ``submitted_at``, so their
        aging credit — and thus their scheduling position — survives; a
        redelivered job also keeps its ``delivery_count``, which is how
        the poison quarantine eventually triggers.
        """
        with self._lock:
            for job in jobs:
                job.transition(JobStatus.QUEUED)
                job.started_at = None  # the wait clock runs again
                self._jobs[job.job_id] = job
                self._taken.discard(job.job_id)
            self.requeued_total += len(jobs)
            depth = len(self._jobs)
        get_metrics().gauge("service.queue_depth", depth)
        now = self.clock()
        for job in jobs:
            self.lifecycle.emit(
                "requeued", job.job_id, t=now, priority=job.priority,
                delivery=job.delivery_count,
            )

    def settle(self, job_ids) -> None:
        """Mark taken jobs terminal: they are no longer *in flight*.

        The service calls this whenever a taken job reaches a terminal
        state, so a later :meth:`cancel` reports "unknown or done" rather
        than the misleading "in flight"."""
        with self._lock:
            for job_id in job_ids:
                self._taken.discard(job_id)

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job.

        Raises typed :class:`~repro.errors.JobNotCancellable` for a job
        that was already taken in flight (cancel it asynchronously via
        :meth:`BatchSimulationService.cancel` instead), and
        :class:`~repro.errors.ServiceError` for an unknown id.
        """
        with self._lock:
            job = self._jobs.pop(job_id, None)
            taken = job is None and job_id in self._taken
            depth = len(self._jobs)
        if taken:
            raise JobNotCancellable(
                f"job {job_id!r} is in flight (taken by a mega-batch); "
                "request asynchronous cancellation through the service",
                job_id=job_id,
            )
        if job is None:
            raise ServiceError(
                f"job {job_id!r} is not queued (unknown or done)"
            )
        job.transition(JobStatus.CANCELLED)
        job.finished_at = self.clock()
        metrics = get_metrics()
        metrics.inc("service.cancelled")
        metrics.gauge("service.queue_depth", depth)
        self.lifecycle.emit(
            "cancelled", job.job_id, t=job.finished_at,
            priority=job.priority, queue_age_s=job.wait_time(job.finished_at),
        )
        return job
