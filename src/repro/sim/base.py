"""Common simulator API and result types.

Every simulator (BQSim and the three baselines) implements
:meth:`BatchSimulator.run` over one circuit and a stream of input batches.
Results carry both the *numeric outputs* (exact amplitudes, when
``execute=True``) and the *modeled runtime* from the calibrated device model
(see :mod:`repro.gpu.spec`), which is what the bench harness reports —
letting experiments run at the paper's full scale where pure-Python numerics
would be prohibitive.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..circuit import Circuit, InputBatch, generate_batches
from ..errors import SimulationError
from ..gpu.engine import Timeline
from ..gpu.power import PowerReport


@dataclass
class BatchSpec:
    """Describes the input stream without materializing it."""

    num_batches: int
    batch_size: int
    seed: int = 0

    @property
    def num_inputs(self) -> int:
        return self.num_batches * self.batch_size


@dataclass
class SimulationResult:
    """Outcome of one batch-simulation run."""

    simulator: str
    circuit_name: str
    num_qubits: int
    spec: BatchSpec
    modeled_time: float  # seconds, from the device model
    breakdown: dict[str, float] = field(default_factory=dict)
    power: PowerReport | None = None
    timeline: Timeline | None = None
    outputs: list[np.ndarray] | None = None
    wall_time: float = 0.0
    stats: dict = field(default_factory=dict)

    @property
    def modeled_time_ms(self) -> float:
        return self.modeled_time * 1e3

    def output_batch(self, index: int) -> np.ndarray:
        if self.outputs is None:
            raise SimulationError("run with execute=True to obtain amplitudes")
        return self.outputs[index]


class BatchSimulator(abc.ABC):
    """Interface implemented by BQSim and the baseline simulators."""

    name: str = "abstract"

    @abc.abstractmethod
    def run(
        self,
        circuit: Circuit,
        spec: BatchSpec,
        batches: Sequence[InputBatch] | None = None,
        execute: bool = True,
    ) -> SimulationResult:
        """Simulate ``circuit`` over the input stream described by ``spec``.

        ``batches`` overrides the generated stream; ``execute=False`` skips
        all numerics (and array materialization) and returns model-only
        timings, enabling paper-scale experiments.
        """

    def _resolve_batches(
        self,
        circuit: Circuit,
        spec: BatchSpec,
        batches: Sequence[InputBatch] | None,
        execute: bool,
    ) -> list[InputBatch] | None:
        if not execute:
            return None
        if batches is None:
            return list(
                generate_batches(
                    circuit.num_qubits, spec.num_batches, spec.batch_size, spec.seed
                )
            )
        batches = list(batches)
        if len(batches) != spec.num_batches:
            raise SimulationError(
                f"expected {spec.num_batches} batches, got {len(batches)}"
            )
        for batch in batches:
            if batch.num_qubits != circuit.num_qubits:
                raise SimulationError("batch width does not match circuit")
            if batch.batch_size != spec.batch_size:
                raise SimulationError("batch size does not match spec")
        return batches


class PlanCache:
    """Per-simulator cache of fusion artifacts keyed by circuit identity.

    Experiments sweep batch counts and ablation flags over one circuit;
    fusion is a deterministic function of the circuit, so each simulator
    caches its (manager, plan, ...) tuple per circuit object.
    """

    def __init__(self) -> None:
        self._entries: dict[int, tuple[object, object]] = {}

    def get(self, circuit, build):
        key = id(circuit)
        hit = self._entries.get(key)
        if hit is None or hit[0] is not circuit:
            hit = (circuit, build())
            self._entries[key] = hit
        return hit[1]


class _StageTimer:
    """Context helper measuring host wall time of pipeline stages."""

    def __init__(self) -> None:
        self.wall: dict[str, float] = {}

    def time(self, stage: str):
        timer = self

        class _Ctx:
            def __enter__(self_inner):
                self_inner.t0 = time.perf_counter()
                return self_inner

            def __exit__(self_inner, *exc):
                timer.wall[stage] = timer.wall.get(stage, 0.0) + (
                    time.perf_counter() - self_inner.t0
                )
                return False

        return _Ctx()
