"""Sharded routing over a fleet of batch simulation services.

A :class:`ShardRouter` owns N independent
:class:`~repro.service.workers.BatchSimulationService` instances
("shards"), each with its own worker pool, queue, scheduler, and —
decisively — its own plan cache.  Placement is **fingerprint affinity**:
jobs hash to shards by their coalescing key (the plan fingerprint), so
work that would coalesce into one mega-batch lands on one shard and hits
one hot plan cache, instead of warming every shard's cache a little.
The hash ring (:class:`HashRing`) uses virtual nodes, so adding or
removing a shard remaps only ~1/N of the fingerprint space — the
stability property the gateway's scaling story rests on.

Failover reuses the crash-evidence machinery from the service layer:
when a shard's process pool spends its restart budget
(:func:`~repro.resilience.failover.shard_is_dead`), the router rescues
its queued jobs (:func:`~repro.resilience.failover.rescue_queued` —
cancelled on the dead shard, so the lifecycle log stays accounted),
resubmits them on surviving shards with their exact input amplitudes and
crash evidence carried along, and records the old-id → new-id alias so
clients polling the original id keep working.  In-flight jobs are left
to the dead shard's own redelivery/quarantine bookkeeping, which already
guarantees a terminal state for them.

Observability is merged, not sampled: per-shard
:class:`~repro.obs.slo.SLOTracker` histograms fold together exactly
(shared bucket grid), the merged lifecycle stream is the concatenation
of per-shard logs, and ``unaccounted()`` across the fleet is the same
zero-lost-jobs invariant each shard guarantees alone.
"""

from __future__ import annotations

import hashlib
import threading
import time
from bisect import bisect_right

from ..errors import (
    AdmissionError,
    GatewayError,
    JobNotCancellable,
    RetryLater,
    ServiceError,
)
from ..obs import get_metrics
from ..obs.slo import SLOTracker
from ..resilience.failover import rescue_queued, shard_is_dead
from ..service import BatchSimulationService
from .quotas import DEFAULT_TENANT, TenantQuotas

#: virtual nodes per shard on the hash ring — enough that load and the
#: remap fraction both stay near 1/N without making ring rebuilds slow
DEFAULT_VNODES = 64


def _ring_hash(key: str) -> int:
    return int.from_bytes(
        hashlib.sha256(key.encode()).digest()[:8], "big"
    )


class HashRing:
    """Consistent hashing with virtual nodes.

    Each node owns :data:`DEFAULT_VNODES` pseudo-random points on a
    64-bit ring; a key maps to the first node point at or after its own
    hash.  Adding or removing one of N nodes therefore remaps only the
    arcs that node owned — ~1/N of the key space — while every other
    key keeps its assignment.  Example::

        ring = HashRing(["s0", "s1"])
        home = ring.node_for("fingerprint-x")
        ring.add("s2")
        assert ring.node_for("fingerprint-x") in {home, "s2"}
    """

    def __init__(self, nodes=(), vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise GatewayError("hash ring needs vnodes >= 1")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []
        self._keys: list[int] = []
        for node in nodes:
            self.add(node)

    def _rebuild(self) -> None:
        self._points = sorted(
            (_ring_hash(f"{node}#{i}"), node)
            for node in self._nodes
            for i in range(self.vnodes)
        )
        self._keys = [point for point, _ in self._points]

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise GatewayError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        self._rebuild()

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise GatewayError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        self._rebuild()

    @property
    def nodes(self) -> set[str]:
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def node_for(self, key: str) -> str:
        """The node owning ``key`` (raises on an empty ring)."""
        if not self._points:
            raise GatewayError("hash ring is empty")
        index = bisect_right(self._keys, _ring_hash(key))
        if index == len(self._points):
            index = 0
        return self._points[index][1]


class Shard:
    """One service plus the lock serializing access to it.

    The service layer is synchronous and single-threaded by design; the
    gateway drives many shards from a pump thread while network handlers
    submit concurrently, so every call into a shard's service goes
    through its re-entrant ``lock``.
    """

    def __init__(self, name: str, service: BatchSimulationService) -> None:
        self.name = name
        self.service = service
        self.lock = threading.RLock()
        self.dead = False


class ShardRouter:
    """Fingerprint-affinity placement over N service shards.

    ``routing`` selects the placement policy: ``"affinity"`` (default)
    hashes the job's plan fingerprint on the consistent-hash ring;
    ``"random"`` scatters jobs round-robin regardless of fingerprint —
    the cache-oblivious baseline the saturation benchmark compares
    against.  ``service_kwargs`` are forwarded to every shard's
    :class:`BatchSimulationService`.  Example::

        router = ShardRouter(num_shards=2)
        job, shard = router.submit(make_circuit("ghz", 3), num_inputs=4)
        router.drain()
        assert job.status.value == "done"
        router.close()
    """

    def __init__(
        self,
        num_shards: int = 1,
        routing: str = "affinity",
        quotas: TenantQuotas | None = None,
        clock=time.monotonic,
        service_kwargs: dict | None = None,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if num_shards < 1:
            raise GatewayError("router needs at least one shard")
        if routing not in ("affinity", "random"):
            raise GatewayError(
                f"unknown routing {routing!r} "
                "(expected 'affinity' or 'random')"
            )
        self.routing = routing
        self.quotas = quotas
        self.clock = clock
        kwargs = dict(service_kwargs or {})
        kwargs.setdefault("clock", clock)
        self.shards: dict[str, Shard] = {}
        for i in range(num_shards):
            name = f"s{i}"
            self.shards[name] = Shard(
                name, BatchSimulationService(shard=name, **kwargs)
            )
        self.ring = HashRing(self.shards, vnodes=vnodes)
        #: rescued-job aliases: original id -> replacement id (chains)
        self._aliases: dict[str, str] = {}
        #: per-tenant submit accounting by shard (for stats)
        self._routed: dict[str, int] = {name: 0 for name in self.shards}
        self._failovers = 0
        self._rescued = 0
        self._rr = 0
        self._lock = threading.Lock()
        self._closed = False

    # -- placement -----------------------------------------------------------

    def _live_shards(self) -> list[Shard]:
        return [s for s in self.shards.values() if not s.dead]

    def _any_live(self) -> Shard:
        live = self._live_shards()
        if not live:
            raise GatewayError("no live shards")
        return live[0]

    def group_key_for(
        self, circuit, options: tuple = (), fidelity: float = 1.0
    ) -> str:
        """The fleet-wide coalescing key (identical on every shard)."""
        return self._any_live().service.group_key_for(
            circuit, options, fidelity
        )

    def _place(self, group_key: str) -> Shard:
        live = self._live_shards()
        if not live:
            raise GatewayError("no live shards")
        if self.routing == "affinity":
            return self.shards[self.ring.node_for(group_key)]
        with self._lock:
            shard = live[self._rr % len(live)]
            self._rr += 1
        return shard

    def submit(
        self,
        circuit,
        batch=None,
        *,
        num_inputs: int = 1,
        tenant: str = DEFAULT_TENANT,
        priority: int = 0,
        deadline: float | None = None,
        timeout_s: float | None = None,
        max_deliveries: int | None = None,
        options: tuple = (),
        fidelity: float = 1.0,
    ):
        """Admit one job onto its home shard; returns ``(job, shard_name)``.

        Order of refusals: tenant quota first
        (:class:`~repro.errors.RetryLater` with ``reason="quota"``), then
        the home shard's queue depth (``reason="backpressure"``, with a
        retry hint scaled to the queue's drain rate).  The job id is
        shard-prefixed (``s1/job-…``) and doubles as the public id.
        ``fidelity`` (a budget in ``(0, 1]``, default exact) joins the
        group key when below 1.0, so approximate jobs route to their
        fidelity class's home shard and never coalesce with exact ones.
        """
        if self._closed:
            raise GatewayError("router is closed")
        if self.quotas is not None:
            self.quotas.admit(tenant)
            priority += self.quotas.priority_offset(tenant)
        group_key = self.group_key_for(circuit, tuple(options), fidelity)
        shard = self._place(group_key)
        try:
            with shard.lock:
                job = shard.service.submit(
                    circuit,
                    batch,
                    num_inputs=num_inputs,
                    priority=priority,
                    deadline=deadline,
                    timeout_s=timeout_s,
                    max_deliveries=max_deliveries,
                    options=tuple(options),
                    fidelity=fidelity,
                )
        except RetryLater:
            raise
        except AdmissionError as exc:
            refusal = RetryLater(
                f"shard {shard.name} is at its queue depth bound "
                f"({exc.max_depth}); retry shortly",
                retry_after_s=0.05,
                depth=exc.depth,
                max_depth=exc.max_depth,
            )
            refusal.reason = "backpressure"
            raise refusal from None
        shard.service.lifecycle.emit(
            "routed", job.job_id, t=self.clock(),
            shard=shard.name, tenant=tenant,
            group_key=job.group_key[:12], routing=self.routing,
            priority=job.priority,
        )
        with self._lock:
            self._routed[shard.name] += 1
        get_metrics().inc("gateway.routed", shard=shard.name, tenant=tenant)
        return job, shard.name

    # -- lookup --------------------------------------------------------------

    def resolve(self, job_id: str) -> str:
        """Follow failover aliases to the job's current id."""
        seen = set()
        while job_id in self._aliases and job_id not in seen:
            seen.add(job_id)
            job_id = self._aliases[job_id]
        return job_id

    def _shard_of(self, job_id: str) -> Shard:
        name, _, _ = job_id.partition("/")
        shard = self.shards.get(name)
        if shard is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return shard

    def job(self, job_id: str):
        """The live :class:`~repro.service.jobs.Job` behind a public id."""
        current = self.resolve(job_id)
        shard = self._shard_of(current)
        with shard.lock:
            return shard.service.job(current)

    def describe(self, job_id: str) -> dict:
        """JSON-safe job status, stamped with its (current) shard."""
        current = self.resolve(job_id)
        shard = self._shard_of(current)
        with shard.lock:
            info = shard.service.job(current).describe()
        info["shard"] = shard.name
        if current != job_id:
            info["resubmitted_as"] = current
        return info

    def cancel(self, job_id: str):
        current = self.resolve(job_id)
        shard = self._shard_of(current)
        with shard.lock:
            try:
                return shard.service.cancel(current)
            except JobNotCancellable:
                raise
            except ServiceError:
                # "not queued" is ambiguous: distinguish a terminal job
                # (typed NOT_CANCELLABLE) from a truly unknown id
                job = shard.service.job(current)
                raise JobNotCancellable(
                    f"job {current!r} already ended "
                    f"{job.status.value}",
                    job_id=current,
                    status=job.status.value,
                ) from None

    # -- stepping ------------------------------------------------------------

    def step_all(self) -> int:
        """One dispatch round across the fleet; returns jobs finished.

        Checks failover first, so a shard found dead this round loses its
        queued backlog to surviving shards *before* its own step would
        terminal-fail that backlog.
        """
        self.check_failover()
        finished = 0
        for shard in self._live_shards():
            with shard.lock:
                depth = shard.service.queue.depth()
                inflight = bool(shard.service._inflight)
                if depth or inflight:
                    finished += shard.service.step()
        return finished

    def _busy(self) -> bool:
        for shard in self._live_shards():
            with shard.lock:
                if shard.service.queue.depth() or shard.service._inflight:
                    return True
        return False

    def drain(self, max_rounds: int | None = None) -> dict:
        """Step until every live shard is idle; returns :meth:`stats`."""
        rounds = 0
        while self._busy():
            if max_rounds is not None and rounds >= max_rounds:
                break
            self.step_all()
            rounds += 1
        return self.stats()

    def close(self, drain: bool = False) -> None:
        """Shut the fleet down; every job ends in one terminal state."""
        if self._closed:
            return
        if drain:
            self.drain()
        self._closed = True
        for shard in self.shards.values():
            with shard.lock:
                shard.service.close(drain=False)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- failover ------------------------------------------------------------

    def check_failover(self) -> int:
        """Rescue queued work off any shard whose pool just died.

        Returns the number of jobs moved.  The dead shard leaves the
        ring (so new placements avoid it), its queued jobs are cancelled
        there (accounted) and resubmitted on surviving shards with their
        exact amplitudes, attributes, and crash evidence; the old id
        aliases to the new one.  With no survivors the jobs stay
        cancelled — accounted, not lost — and the router raises nothing.
        """
        moved = 0
        for shard in list(self.shards.values()):
            if shard.dead:
                continue
            with shard.lock:
                if not shard_is_dead(shard.service):
                    continue
                shard.dead = True
                if shard.name in self.ring.nodes:
                    self.ring.remove(shard.name)
                rescued = rescue_queued(shard.service, shard.name)
            if not rescued:
                continue
            self._failovers += 1
            get_metrics().inc("gateway.shard_deaths")
            moved_here = 0
            if self._live_shards():
                for spec in rescued:
                    if self._resubmit(spec) is not None:
                        moved_here += 1
            with self._lock:
                self._rescued += moved_here
            moved += moved_here
        return moved

    def _resubmit(self, spec) -> Shard | None:
        """Place one rescued job on a surviving shard (None if refused)."""
        group_key = self.group_key_for(
            spec.circuit, spec.options, spec.fidelity
        )
        try:
            target = self._place(group_key)
            with target.lock:
                job = target.service.submit(
                    spec.circuit,
                    spec.batch,
                    priority=spec.priority,
                    deadline=spec.deadline,
                    timeout_s=spec.timeout_s,
                    max_deliveries=spec.max_deliveries,
                    options=spec.options,
                    fidelity=spec.fidelity,
                )
        except (AdmissionError, GatewayError):
            # the survivor is saturated: the rescued job stays cancelled
            # on its dead shard (accounted); the client sees CANCELLED
            return None
        job.evidence[:0] = spec.evidence
        with self._lock:
            self._aliases[spec.job_id] = job.job_id
            self._routed[target.name] += 1
        target.service.lifecycle.emit(
            "routed", job.job_id, t=self.clock(),
            shard=target.name, group_key=job.group_key[:12],
            routing=self.routing, failover_from=spec.job_id,
        )
        get_metrics().inc("gateway.rescued", shard=target.name)
        return target

    # -- merged observability ------------------------------------------------

    def lifecycle_events(self) -> list[dict]:
        """Every shard's lifecycle events, merged and time-ordered, each
        stamped with its ``shard``."""
        merged = []
        for shard in self.shards.values():
            for event in shard.service.lifecycle.events():
                merged.append({**event, "shard": shard.name})
        merged.sort(key=lambda e: e["t"])
        return merged

    def unaccounted(self) -> list[str]:
        """Submitted-but-unterminated jobs across the whole fleet (the
        zero-lost-jobs invariant; empty after any drain or close)."""
        missing: list[str] = []
        for shard in self.shards.values():
            missing.extend(shard.service.lifecycle.unaccounted())
        return sorted(missing)

    def write_lifecycle(self, path) -> int:
        """Write the merged lifecycle stream as JSONL; returns count."""
        import json
        from pathlib import Path

        events = self.lifecycle_events()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")
        return len(events)

    def merged_slo(self) -> SLOTracker:
        """One exact SLO aggregate over every shard (histogram merge)."""
        return SLOTracker.merged(
            [shard.service.slo for shard in self.shards.values()]
        )

    def stats(self) -> dict:
        """JSON-safe fleet summary: merged SLO + per-shard detail."""
        per_shard = {}
        totals = {"submitted": 0, "completed": 0, "failed": 0,
                  "quarantined": 0, "queue_depth": 0}
        for shard in self.shards.values():
            with shard.lock:
                stats = shard.service.stats()
            stats["dead"] = shard.dead
            per_shard[shard.name] = stats
            totals["submitted"] += stats["submitted"]
            totals["completed"] += stats["completed"]
            totals["failed"] += stats["failed"]
            totals["quarantined"] += stats["quarantined"]
            totals["queue_depth"] += stats["queue_depth"]
        slo = self.merged_slo().summary()
        slo["unaccounted_jobs"] = len(self.unaccounted())
        return {
            **totals,
            "routing": self.routing,
            "shards": per_shard,
            "routed": dict(self._routed),
            "failovers": self._failovers,
            "rescued": self._rescued,
            "dead_shards": sorted(
                s.name for s in self.shards.values() if s.dead
            ),
            "slo": slo,
            "quotas": self.quotas.stats() if self.quotas else {},
        }
