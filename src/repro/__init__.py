"""BQSim reproduction: batch quantum circuit simulation with decision
diagrams on a calibrated virtual GPU.

The most common entry points are re-exported here::

    from repro import BQSimSimulator, BatchSpec, Circuit, make_circuit

See README.md for a tour, DESIGN.md for the paper-to-module map, and
EXPERIMENTS.md for paper-vs-measured results.
"""

from .circuit import Circuit, InputBatch, generate_batches, load_qasm, parse_qasm
from .circuit.generators import make_circuit
from .sim import (
    BatchSpec,
    BQSimSimulator,
    CuQuantumSimulator,
    FlatDDSimulator,
    MultiGpuBQSimSimulator,
    QiskitAerSimulator,
    cross_validate,
)
from .service import BatchSimulationService, ServiceClient

__version__ = "1.0.0"

__all__ = [
    "BatchSimulationService",
    "BatchSpec",
    "BQSimSimulator",
    "Circuit",
    "cross_validate",
    "CuQuantumSimulator",
    "FlatDDSimulator",
    "generate_batches",
    "InputBatch",
    "load_qasm",
    "make_circuit",
    "MultiGpuBQSimSimulator",
    "parse_qasm",
    "QiskitAerSimulator",
    "ServiceClient",
]
