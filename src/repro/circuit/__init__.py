"""Quantum circuit substrate: gates, circuits, QASM I/O, inputs, generators."""

from .circuit import Circuit, gate_unitary
from .drawing import draw
from .gates import Gate, base_arity, base_matrix, known_gate_names
from .inputs import (
    InputBatch,
    basis_batch,
    generate_batches,
    perturbed_batch,
    random_batch,
    zero_state_batch,
)
from .measure import (
    fidelity,
    marginal_probability,
    pauli_expectation,
    probabilities,
    sample_counts,
)
from .qasm import load_qasm, parse_qasm, to_qasm

__all__ = [
    "base_arity",
    "base_matrix",
    "basis_batch",
    "Circuit",
    "draw",
    "fidelity",
    "Gate",
    "gate_unitary",
    "generate_batches",
    "InputBatch",
    "known_gate_names",
    "load_qasm",
    "marginal_probability",
    "parse_qasm",
    "pauli_expectation",
    "perturbed_batch",
    "probabilities",
    "random_batch",
    "sample_counts",
    "to_qasm",
    "zero_state_batch",
]
