"""The serving layer: an in-process batch simulation service.

The paper amortizes fusion, conversion, and launch overhead by batching
many inputs through one compiled circuit *within* a single ``run()``
call; this package moves that opportunity up a layer.  Independently
submitted jobs that share a circuit structure (the same
:func:`~repro.ell.persist.plan_fingerprint`) are coalesced into one BQCS
mega-batch and executed by a single simulator call — the inverse of the
one-process-per-input Qiskit Aer baseline the paper beats.

Five parts, one per module:

* :mod:`repro.service.jobs` — the job model and its strict
  ``PENDING → QUEUED → COALESCED → RUNNING →
  DONE/FAILED/CANCELLED/QUARANTINED`` lifecycle (including the
  ``RUNNING → QUEUED`` at-least-once redelivery edge), with durable
  content-addressed ids;
* :mod:`repro.service.queue` — bounded admission with typed
  :class:`~repro.errors.AdmissionError` backpressure;
* :mod:`repro.service.scheduler` — weighted-fair priority aging (no
  starvation) with a bounded earliest-deadline-first urgent lane;
* :mod:`repro.service.coalesce` — plan-fingerprint grouping, mega-batch
  packing under the device memory budget, bit-identical scatter;
* :mod:`repro.service.workers` — the worker pool (one simulator + plan
  cache per worker) and the service orchestrator, with per-mega-batch
  resilience and per-job-isolation degradation;
* :mod:`repro.service.pool` — the spawn-safe, *supervised* process
  worker pool behind ``parallelism="process"``: N OS processes executing
  mega-batches concurrently, shared-memory state shipping with a
  leak-audited segment set, one shared on-disk plan cache with
  compile-once file locking, and crash/hang supervision (dead workers
  reaped and respawned under a restart budget, overdue tasks killed);
* :mod:`repro.service.client` — the synchronous submit/result API and
  the scripted saturation workload behind ``repro serve``.
"""

from .coalesce import CoalescedGroup, Coalescer, column_budget
from .client import ServiceClient, saturation_workload
from .jobs import Job, JobStatus, TERMINAL_STATES, make_job
from .pool import (
    DEFAULT_MAX_RESTARTS,
    DEFAULT_SHM_THRESHOLD,
    ProcessWorkerPool,
)
from .queue import DEFAULT_MAX_DEPTH, JobQueue
from .scheduler import FairScheduler, SchedulerPolicy
from .workers import DEFAULT_MAX_DELIVERIES, BatchSimulationService, Worker

__all__ = [
    "BatchSimulationService",
    "CoalescedGroup",
    "Coalescer",
    "column_budget",
    "DEFAULT_MAX_DELIVERIES",
    "DEFAULT_MAX_DEPTH",
    "DEFAULT_MAX_RESTARTS",
    "DEFAULT_SHM_THRESHOLD",
    "FairScheduler",
    "Job",
    "JobQueue",
    "JobStatus",
    "make_job",
    "ProcessWorkerPool",
    "saturation_workload",
    "SchedulerPolicy",
    "ServiceClient",
    "TERMINAL_STATES",
    "Worker",
]
