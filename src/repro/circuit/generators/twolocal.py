"""Shared ansatz builders (TwoLocal / feature maps) used by the MQT-Bench
circuit families.

Gate counts of the paper's benchmark circuits decompose exactly into these
templates; see each family module for the specific instantiation.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

import numpy as np

from ...errors import CircuitError
from ..circuit import Circuit

Entanglement = Sequence[tuple[int, int]]


def linear_pairs(num_qubits: int) -> list[tuple[int, int]]:
    """Chain entanglement: (0,1), (1,2), ..."""
    return [(i, i + 1) for i in range(num_qubits - 1)]


def ring_pairs(num_qubits: int) -> list[tuple[int, int]]:
    """Ring entanglement: chain plus the closing (n-1, 0) edge."""
    pairs = linear_pairs(num_qubits)
    if num_qubits > 2:
        pairs.append((num_qubits - 1, 0))
    return pairs


def full_pairs(num_qubits: int) -> list[tuple[int, int]]:
    """All-to-all entanglement: every (i, j) with i < j."""
    return [
        (i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)
    ]


def resolve_entanglement(kind: str, num_qubits: int) -> list[tuple[int, int]]:
    makers: dict[str, Callable[[int], list[tuple[int, int]]]] = {
        "linear": linear_pairs,
        "ring": ring_pairs,
        "full": full_pairs,
    }
    try:
        return makers[kind](num_qubits)
    except KeyError:
        raise CircuitError(f"unknown entanglement kind {kind!r}") from None


def two_local(
    num_qubits: int,
    reps: int,
    rng: np.random.Generator,
    rotation: str = "ry",
    entangler: str = "cx",
    entanglement: str = "linear",
    name: str = "two_local",
) -> Circuit:
    """Qiskit-style ``TwoLocal``: ``reps`` blocks of rotations + entanglers,
    closed by one final rotation layer.

    Total gates: ``(reps + 1) * n`` rotations plus ``reps * |pairs|``
    entanglers — the counting identity used to match the paper's circuits.
    """
    circuit = Circuit(num_qubits, name=name)
    pairs = resolve_entanglement(entanglement, num_qubits)
    for _ in range(reps):
        for q in range(num_qubits):
            circuit.add(rotation, q, (float(rng.uniform(0, 4 * math.pi)),))
        for a, b in pairs:
            if entangler == "cx":
                circuit.cx(a, b)
            elif entangler == "cz":
                circuit.cz(a, b)
            elif entangler == "rzz":
                circuit.rzz(float(rng.uniform(0, 2 * math.pi)), a, b)
            else:
                raise CircuitError(f"unknown entangler {entangler!r}")
    for q in range(num_qubits):
        circuit.add(rotation, q, (float(rng.uniform(0, 4 * math.pi)),))
    return circuit


def zz_feature_map(
    num_qubits: int,
    reps: int,
    rng: np.random.Generator,
    entanglement: str = "full",
    name: str = "zz_feature_map",
) -> Circuit:
    """Qiskit ``ZZFeatureMap``: per rep, H + P on every qubit, then a
    CX / P / CX sandwich per entangled pair.

    Gates per rep: ``2n + 3 * |pairs|``.
    """
    circuit = Circuit(num_qubits, name=name)
    pairs = resolve_entanglement(entanglement, num_qubits)
    for _ in range(reps):
        for q in range(num_qubits):
            circuit.h(q)
            circuit.p(float(rng.uniform(0, 2 * math.pi)), q)
        for a, b in pairs:
            circuit.cx(a, b)
            circuit.p(float(rng.uniform(0, 2 * math.pi)), b)
            circuit.cx(a, b)
    return circuit


def real_amplitudes(
    num_qubits: int,
    reps: int,
    rng: np.random.Generator,
    entanglement: str = "linear",
    name: str = "real_amplitudes",
) -> Circuit:
    """Qiskit ``RealAmplitudes``: TwoLocal with RY rotations and CX."""
    return two_local(
        num_qubits,
        reps,
        rng,
        rotation="ry",
        entangler="cx",
        entanglement=entanglement,
        name=name,
    )


def compose(first: Circuit, *rest: Circuit, name: str | None = None) -> Circuit:
    """Concatenate circuits over the same register."""
    out = Circuit(first.num_qubits, list(first.gates), name=name or first.name)
    for circuit in rest:
        if circuit.num_qubits != first.num_qubits:
            raise CircuitError("cannot compose circuits of different widths")
        out.extend(circuit.gates)
    return out
