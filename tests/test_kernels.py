"""Tests for the swappable array-backend kernel engine and registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.kernels import (
    ENGINE_ENV,
    ENGINE_NAMES,
    ArrayEngine,
    EngineUnavailableError,
    FakeGpuEngine,
    NumpyEngine,
    available_engines,
    call,
    cpu,
    engine_available,
    get_engine,
    get_kernel,
    gpu,
    kernel,
    kernel_names,
    ops,
    set_default_engine,
    use_engine,
)
from repro.obs import get_metrics


@pytest.fixture(autouse=True)
def _restore_default_engine(monkeypatch):
    # engine-resolution units pin their own selection; neutralize any
    # ambient REPRO_ENGINE (the CI parity job exports fake-gpu)
    monkeypatch.delenv(ENGINE_ENV, raising=False)
    previous = set_default_engine(None)
    yield
    set_default_engine(previous)


# ---------------------------------------------------------------------------
# engine resolution
# ---------------------------------------------------------------------------

def test_default_engine_is_numpy():
    eng = get_engine(None)
    assert eng.name == "numpy"
    assert isinstance(eng, NumpyEngine)
    assert not eng.is_device
    assert eng.host_memory


def test_engine_instances_are_cached():
    assert get_engine("numpy") is get_engine("numpy")
    assert get_engine("fake-gpu") is get_engine("fake-gpu")


def test_engine_instance_passes_through():
    eng = get_engine("fake-gpu")
    assert get_engine(eng) is eng


def test_unknown_engine_raises():
    with pytest.raises(SimulationError, match="unknown array engine"):
        get_engine("tpu")


def test_env_var_selects_engine(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV, "fake-gpu")
    assert get_engine(None).name == "fake-gpu"


def test_explicit_argument_beats_env(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV, "fake-gpu")
    assert get_engine("numpy").name == "numpy"


def test_set_default_engine_beats_env(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV, "numpy")
    set_default_engine("fake-gpu")
    assert get_engine(None).name == "fake-gpu"


def test_use_engine_scopes_and_restores():
    assert get_engine(None).name == "numpy"
    with use_engine("fake-gpu") as eng:
        assert eng.name == "fake-gpu"
        assert get_engine(None).name == "fake-gpu"
    assert get_engine(None).name == "numpy"


def test_cpu_and_gpu_switches():
    eng = gpu(allow_fake=True)
    assert eng.is_device
    assert get_engine(None) is eng
    assert cpu().name == "numpy"
    assert get_engine(None).name == "numpy"


def test_gpu_without_cupy_requires_allow_fake():
    if engine_available("cupy"):
        pytest.skip("cupy installed; strict gpu() succeeds here")
    with pytest.raises(EngineUnavailableError):
        gpu(allow_fake=False)


def test_available_engines_lists_all_names():
    assert available_engines() == ENGINE_NAMES
    assert engine_available("numpy")
    assert engine_available("fake-gpu")
    assert not engine_available("tpu")


def test_cupy_engine_import_smoke():
    """CuPy engine: tiny round-trip when installed, typed error when not."""
    if not engine_available("cupy"):
        with pytest.raises(EngineUnavailableError, match="cupy"):
            get_engine("cupy")
        pytest.skip("cupy not installed")
    eng = get_engine("cupy")
    host = np.arange(8, dtype=np.complex128).reshape(4, 2)
    dev = eng.from_host(host)
    assert not eng.host_memory
    np.testing.assert_array_equal(eng.to_host(dev), host)


# ---------------------------------------------------------------------------
# the fake-gpu device stand-in
# ---------------------------------------------------------------------------

def test_fake_gpu_models_the_device_boundary():
    eng = get_engine("fake-gpu")
    assert eng.is_device
    assert eng.host_memory  # numpy-backed: scipy can still consume it
    host = np.ones((4, 2), dtype=np.complex128)
    dev = eng.from_host(host)
    dev[0, 0] = 5.0
    assert host[0, 0] == 1.0  # H2D copied
    back = eng.to_host_copy(dev)
    dev[1, 1] = 7.0
    assert back[1, 1] == 1.0  # D2H copied


def test_fake_gpu_reverses_slot_order():
    assert list(get_engine("numpy").slot_order(3)) == [0, 1, 2]
    assert list(get_engine("fake-gpu").slot_order(3)) == [2, 1, 0]


def test_poison_writes_nan():
    eng = get_engine("numpy")
    block = np.ones((2, 3), dtype=np.complex128)
    eng.poison(block, 4)
    assert np.isnan(block.flat[4])
    assert np.isfinite(block.flat[3])


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def test_registry_lists_all_named_kernels():
    names = kernel_names()
    for expected in (
        "ell.gather.width1",
        "ell.gather.spmm",
        "ell.gather.slots",
        "ell.gather.stacked",
        "dense.apply",
        "dense.apply.stacked",
        "batch.rotate.merge",
        "batch.rotate.copy",
        "state.init",
        "state.normalize",
    ):
        assert expected in names


def test_get_kernel_and_call_dispatch():
    fn = get_kernel("state.init")
    assert fn is ops.statevector_init
    states = call("state.init", "numpy", 3, 2)
    assert states.shape == (8, 2)
    assert states[0, 0] == 1.0


def test_unknown_kernel_raises():
    with pytest.raises(SimulationError, match="unknown kernel"):
        get_kernel("ell.gather.nope")


def test_duplicate_kernel_name_rejected():
    with pytest.raises(SimulationError, match="registered twice"):
        kernel("state.init")(lambda engine: None)


def test_kernel_calls_feed_per_backend_counters():
    get_metrics().reset()
    ops.statevector_init("numpy", 2)
    ops.statevector_init("numpy", 2)
    ops.statevector_init("fake-gpu", 2)
    counters = get_metrics().snapshot()["counters"]
    assert counters["kernel.state.init.numpy.calls"] == 2
    assert counters["kernel.state.init.fake-gpu.calls"] == 1


def test_kernel_resolves_default_engine():
    get_metrics().reset()
    with use_engine("fake-gpu"):
        ops.statevector_init(None, 2)
    counters = get_metrics().snapshot()["counters"]
    assert counters["kernel.state.init.fake-gpu.calls"] == 1


# ---------------------------------------------------------------------------
# kernel semantics
# ---------------------------------------------------------------------------

def _random_ell(rng, rows=16, width=3):
    values = rng.standard_normal((rows, width)) + 1j * rng.standard_normal(
        (rows, width)
    )
    cols = rng.integers(0, rows, size=(rows, width))
    return values, cols.astype(np.int64)


def test_gather_spmm_matches_slots_reference(rng):
    values, cols = _random_ell(rng)
    states = rng.standard_normal((16, 5)) + 1j * rng.standard_normal((16, 5))
    eng = get_engine("numpy")
    fast = ops.ell_gather_spmm(eng, values, cols, states)
    reference = ops.ell_gather_slots(
        eng, values, cols, states, np.zeros_like(states)
    )
    np.testing.assert_array_equal(fast, reference)


def test_gather_width1_is_a_permutation_multiply(rng):
    values = rng.standard_normal((8, 1)) + 1j * rng.standard_normal((8, 1))
    cols = rng.permutation(8).astype(np.int64).reshape(8, 1)
    states = rng.standard_normal((8, 3)) + 1j * rng.standard_normal((8, 3))
    eng = get_engine("numpy")
    out = ops.ell_gather_width1(eng, values, cols.ravel(), states)
    np.testing.assert_array_equal(out, values * states[cols.ravel(), :])


def test_gather_stacked_matches_per_set_loop(rng):
    K = 4
    values = rng.standard_normal((K, 16, 3)) + 1j * rng.standard_normal((K, 16, 3))
    _, cols = _random_ell(rng)
    states = rng.standard_normal((K, 16, 2)) + 1j * rng.standard_normal((K, 16, 2))
    eng = get_engine("numpy")
    stacked = ops.ell_gather_stacked(eng, values, cols, states)
    for p in range(K):
        reference = ops.ell_gather_slots(
            eng, values[p], cols, states[p], np.zeros_like(states[p])
        )
        np.testing.assert_array_equal(stacked[p], reference)


def test_gather_stacked_rejects_bad_shapes(rng):
    values, cols = _random_ell(rng)
    states = rng.standard_normal((16, 2)).astype(np.complex128)
    with pytest.raises(SimulationError, match="stacked spMM"):
        ops.ell_gather_stacked("numpy", values, cols, states)


def test_dense_apply_stacked_rejects_set_mismatch(rng):
    matrices = np.eye(2, dtype=np.complex128)[None].repeat(3, axis=0)
    states = np.zeros((2, 4, 1), dtype=np.complex128)
    idx = ops.gather_axes(2, (0,))
    with pytest.raises(SimulationError, match="set-count mismatch"):
        ops.dense_gate_apply_stacked("numpy", matrices, states, idx)


def test_batch_merge_single_part_identity():
    block = np.ones((4, 2), dtype=np.complex128)
    assert ops.batch_merge("numpy", [block]) is block


def test_batch_merge_hstacks_and_rejects_empty():
    a = np.ones((4, 2), dtype=np.complex128)
    b = 2 * np.ones((4, 3), dtype=np.complex128)
    merged = ops.batch_merge("numpy", [a, b])
    assert merged.shape == (4, 5)
    with pytest.raises(SimulationError, match="empty"):
        ops.batch_merge("numpy", [])


def test_copy_into_writes_buffer():
    out = np.zeros((3, 3), dtype=np.complex128)
    result = np.full((3, 3), 2.0, dtype=np.complex128)
    returned = ops.copy_into("numpy", out, result)
    assert returned is out
    np.testing.assert_array_equal(out, result)


def test_normalize_states_unit_columns(rng):
    states = rng.standard_normal((8, 4)) + 1j * rng.standard_normal((8, 4))
    states = states.astype(np.complex128)
    ops.normalize_states("numpy", states)
    norms = np.linalg.norm(states, axis=0)
    np.testing.assert_allclose(norms, 1.0, atol=1e-12)


def test_custom_engine_subclass_plugs_in(rng):
    """Any ArrayEngine subclass works as an explicit designator."""

    class Tagged(FakeGpuEngine):
        name = "fake-gpu"  # reuse the counter bucket

    eng = Tagged()
    assert isinstance(eng, ArrayEngine)
    states = ops.statevector_init(eng, 3, 2)
    assert states.shape == (8, 2)
