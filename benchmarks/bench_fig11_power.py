"""Figure 11 — average power of the four simulators."""

from conftest import run_once
from repro.bench.experiments import fig11


def test_fig11_power(benchmark, scale):
    rows = run_once(benchmark, fig11.run, scale)
    by_key = {(r["family"], r["simulator"]): r for r in rows}
    for family in {r["family"] for r in rows}:
        bq = by_key[(family, "bqsim")]
        assert bq["cpu_watts"] < by_key[(family, "qiskit-aer")]["cpu_watts"]
        assert by_key[(family, "flatdd")]["energy_j"] > bq["energy_j"]
        if scale in ("medium", "paper"):
            assert bq["gpu_watts"] < by_key[(family, "cuquantum")]["gpu_watts"]
