"""Dense reference state-vector simulation (NumPy).

This is the ground truth every other simulator in the package is validated
against, and also the numeric core reused by the baseline models.  It applies
gates by amplitude-index manipulation (Equations 2 and 3 of the paper)
without ever building a ``2^n x 2^n`` matrix.

States are stored column-wise: ``states[amplitude, input]``, so one call
updates a whole batch at once.
"""

from __future__ import annotations

import numpy as np

from ..circuit import Circuit, InputBatch
from ..circuit.gates import Gate
from ..errors import SimulationError


def _gather_axes(num_qubits: int, operands: tuple[int, ...]) -> np.ndarray:
    """Index table: rows = assignments of non-operand qubits, cols = local
    index over ``operands`` (operands[i] is local bit i)."""
    rest = [q for q in range(num_qubits) if q not in operands]
    k = len(operands)
    rest_values = np.zeros(1 << len(rest), dtype=np.int64)
    for i, q in enumerate(rest):
        bit = (np.arange(1 << len(rest)) >> i) & 1
        rest_values |= bit << q
    local_values = np.zeros(1 << k, dtype=np.int64)
    for i, q in enumerate(operands):
        bit = (np.arange(1 << k) >> i) & 1
        local_values |= bit << q
    return rest_values[:, None] + local_values[None, :]


def apply_gate(states: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Apply one gate in place to a ``(2^n, batch)`` array; returns it."""
    if states.shape[0] != (1 << num_qubits):
        raise SimulationError(
            f"state dim {states.shape[0]} does not match n={num_qubits}"
        )
    matrix = gate.matrix()
    idx = _gather_axes(num_qubits, gate.all_qubits)
    if gate.controls:
        # keep only rows where every control bit is 1: those are the local
        # indices whose control bits (high local bits) are all set
        k_t = len(gate.qubits)
        ctrl_mask = ((1 << len(gate.controls)) - 1) << k_t
        idx = idx[:, ctrl_mask : ctrl_mask + (1 << k_t)]
    # states[idx] has shape (groups, 2^k_t, batch); contract with the matrix
    gathered = states[idx, :]
    states[idx, :] = np.einsum("ij,gjb->gib", matrix, gathered)
    return states


def simulate_batch(
    circuit: Circuit, batch: InputBatch, copy: bool = True
) -> np.ndarray:
    """Run the whole circuit over a batch; returns the output amplitudes."""
    if batch.num_qubits != circuit.num_qubits:
        raise SimulationError(
            f"batch has {batch.num_qubits} qubits, circuit {circuit.num_qubits}"
        )
    states = batch.states.copy() if copy else batch.states
    for gate in circuit.gates:
        apply_gate(states, gate, circuit.num_qubits)
    return states


def simulate_state(circuit: Circuit, state: np.ndarray | None = None) -> np.ndarray:
    """Single-input convenience wrapper; defaults to ``|0...0>``."""
    dim = 1 << circuit.num_qubits
    if state is None:
        state = np.zeros(dim, dtype=np.complex128)
        state[0] = 1.0
    col = np.ascontiguousarray(state, dtype=np.complex128).reshape(dim, 1)
    return simulate_batch(circuit, InputBatch(col))[:, 0]
