"""Zero-noise extrapolation (ZNE) on top of trajectory simulation.

A simple error-mitigation layer: evaluate an observable at several *scaled*
noise strengths (the digital analog of pulse stretching) and Richardson-
extrapolate to zero noise.  Each scaled evaluation is one trajectory-batch
workload, so mitigation multiplies the BQCS demand — another reason batch
simulation throughput matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..circuit.circuit import Circuit
from ..circuit.inputs import InputBatch
from ..errors import SimulationError
from .channels import NoiseModel, depolarizing
from .trajectories import simulate_noisy_batch


@dataclass(frozen=True)
class ZNEResult:
    """Mitigated estimate plus the raw scaled measurements."""

    mitigated: float
    scales: tuple[float, ...]
    values: tuple[float, ...]

    @property
    def raw(self) -> float:
        """The unmitigated (scale-1) value."""
        return self.values[0]


def richardson_extrapolate(
    scales: Sequence[float], values: Sequence[float]
) -> float:
    """Polynomial extrapolation of ``values(scales)`` to scale 0.

    With k points this fits the unique degree-(k-1) polynomial and
    evaluates it at zero — the standard Richardson ZNE estimator.
    """
    scales = np.asarray(scales, dtype=float)
    values = np.asarray(values, dtype=float)
    if scales.shape != values.shape or scales.size < 2:
        raise SimulationError("need >= 2 matching scale/value points")
    if len(set(scales.tolist())) != scales.size:
        raise SimulationError("noise scales must be distinct")
    coeffs = np.polynomial.polynomial.polyfit(scales, values, scales.size - 1)
    return float(coeffs[0])  # the constant term is the value at scale 0


def zero_noise_extrapolation(
    circuit: Circuit,
    base_error: float,
    batch: InputBatch,
    observable: Callable[[np.ndarray], float],
    scales: Sequence[float] = (1.0, 2.0, 3.0),
    num_trajectories: int = 200,
    seed: int = 0,
) -> ZNEResult:
    """Mitigate a probability-level observable under depolarizing noise.

    ``observable`` maps the trajectory-averaged probability block
    ``(2^n, batch)`` to a scalar.  Noise scaling multiplies the depolarizing
    error probability (clamped to the valid range).
    """
    if not 0 < base_error < 1:
        raise SimulationError("base_error must be in (0, 1)")
    values = []
    for i, scale in enumerate(scales):
        scaled = min(base_error * scale, 1.0)
        noise = NoiseModel(depolarizing(scaled))
        result = simulate_noisy_batch(
            circuit, noise, batch, num_trajectories=num_trajectories,
            seed=seed + i,
        )
        values.append(float(observable(result.probabilities)))
    mitigated = richardson_extrapolate(scales, values)
    return ZNEResult(
        mitigated=mitigated, scales=tuple(scales), values=tuple(values)
    )
