"""Table 1 — average CV of NZR across the fusion gate matrices."""

import pytest

from conftest import run_once
from repro.bench.experiments import table1


def test_table1_nzr_cv(benchmark, scale):
    rows = run_once(benchmark, table1.run, scale)
    by_family = {r["family"]: r["cv"] for r in rows}
    # the ansatz families have perfectly uniform NZR; supremacy does not
    assert by_family["vqe"] == pytest.approx(0.0, abs=1e-12)
    assert by_family["supremacy"] > 0.0
