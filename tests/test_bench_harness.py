"""Tests for the bench harness plumbing: tables, workloads, runner."""

import math

import pytest

from repro.bench import (
    PAPER_SUITE,
    PAPER_TABLE2_MS,
    PAPER_TABLE3_COST,
    PAPER_TABLE4_MS,
    SMALL_SUITE,
    Workload,
    geomean,
    make_cuquantum_variants,
    make_simulators,
    render_table,
    run_suite,
)
from repro.bench.tables import fmt_ms, fmt_speedup
from repro.sim import BatchSpec


def test_geomean_matches_paper_definition():
    assert geomean([1.0, 100.0]) == pytest.approx(10.0)
    assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)
    assert math.isnan(geomean([]))
    # non-finite and non-positive entries are ignored
    assert geomean([4.0, float("inf"), -1.0]) == pytest.approx(4.0)


def test_format_helpers():
    assert fmt_ms(1.5) == "1500"
    assert fmt_ms(float("inf")) == "-"
    assert fmt_speedup(3.14159) == "3.14x"
    assert fmt_speedup(float("nan")) == "-"


def test_render_table_aligns_columns():
    text = render_table(["a", "bbb"], [[1, 2], [333, 4]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert len(set(len(line) for line in lines)) == 1


def test_paper_suite_matches_published_tables():
    keys = {w.key for w in PAPER_SUITE}
    assert keys == set(PAPER_TABLE2_MS)
    assert keys == set(PAPER_TABLE3_COST)
    assert keys == set(PAPER_TABLE4_MS)
    assert len(PAPER_SUITE) == 16


def test_workload_builds_named_circuit():
    workload = Workload("vqe", 12)
    circuit = workload.build()
    assert circuit.num_qubits == 12
    assert len(circuit) == 58  # Table 2
    assert "vqe" in workload.label


def test_run_suite_produces_record_grid():
    spec = BatchSpec(num_batches=1, batch_size=4)
    seen = []
    records = run_suite(
        SMALL_SUITE[:2],
        spec,
        make_simulators(),
        execute=False,
        progress=seen.append,
    )
    assert len(records) == 2
    for per_sim in records.values():
        assert set(per_sim) == {"cuquantum", "qiskit-aer", "flatdd", "bqsim"}
        for record in per_sim.values():
            assert record.modeled_ms > 0
    assert len(seen) == 8  # 2 workloads x 4 simulators


def test_cuquantum_variants_named():
    variants = make_cuquantum_variants()
    assert set(variants) == {"cuquantum+Q", "cuquantum+B"}
    assert variants["cuquantum+B"].name == "cuquantum+B"
