"""Tests for the ELL format, the three converters, and the spMM kernel."""

import numpy as np
import pytest

from repro.circuit.gates import Gate
from repro.circuit.generators import random_circuit
from repro.dd import (
    DDManager,
    circuit_matrix_dd,
    flatten_matrix_dd,
    gate_matrix_dd,
    matrix_to_dense,
    max_nzr,
)
from repro.ell import (
    ELLMatrix,
    ell_from_dd,
    ell_from_dd_cpu,
    ell_from_dense,
    ell_from_flat_gpu,
    ell_spmm,
    spmm_bytes,
    spmm_macs,
)
from repro.errors import ConversionError, SimulationError


@pytest.fixture
def circuit_dd(mgr4):
    circuit = random_circuit(4, 18, seed=11)
    return circuit_matrix_dd(mgr4, circuit.gates)


def test_ell_from_dense_roundtrip(rng):
    m = rng.standard_normal((8, 8)) * (rng.random((8, 8)) > 0.6)
    m = m.astype(np.complex128)
    if not m.any():
        m[0, 0] = 1.0
    ell = ell_from_dense(m)
    assert np.allclose(ell.to_dense(), m)
    assert ell.width == max((m != 0).sum(axis=1).max(), 1)


def test_ell_validation():
    with pytest.raises(ConversionError, match="square"):
        ell_from_dense(np.zeros((3, 3)))
    with pytest.raises(ConversionError, match="rows"):
        ELLMatrix(2, np.zeros((3, 1), dtype=complex), np.zeros((3, 1), dtype=np.int64))
    with pytest.raises(ConversionError, match="column index"):
        ELLMatrix(
            1,
            np.ones((2, 1), dtype=complex),
            np.array([[0], [5]], dtype=np.int64),
        )


def test_cpu_conversion_matches_dense(circuit_dd, mgr4):
    ell = ell_from_dd_cpu(circuit_dd, 4)
    assert np.allclose(ell.to_dense(), matrix_to_dense(circuit_dd, 4), atol=1e-10)
    assert ell.width == max_nzr(mgr4, circuit_dd)


def test_gpu_kernel_matches_cpu_bit_for_bit(circuit_dd, mgr4):
    width = max_nzr(mgr4, circuit_dd)
    cpu = ell_from_dd_cpu(circuit_dd, 4)
    flat = flatten_matrix_dd(circuit_dd, 4)
    gpu = ell_from_flat_gpu(flat, width, execute="faithful")
    assert np.array_equal(gpu.cols, cpu.cols)
    assert np.allclose(gpu.values, cpu.values, atol=1e-12)


def test_gpu_fast_path_matches_faithful(circuit_dd, mgr4):
    width = max_nzr(mgr4, circuit_dd)
    flat = flatten_matrix_dd(circuit_dd, 4)
    faithful = ell_from_flat_gpu(flat, width, execute="faithful")
    fast = ell_from_flat_gpu(flat, width, execute="fast")
    assert np.array_equal(fast.cols, faithful.cols)
    assert np.allclose(fast.values, faithful.values, atol=1e-12)


@pytest.mark.parametrize(
    "gate",
    [
        Gate.make("h", [2]),
        Gate.make("cx", [1, 3]),
        Gate.make("ccx", [0, 1, 2]),
        Gate.make("rz", [1], [0.6]),
        Gate.make("rzz", [0, 3], [1.2]),
        Gate.make("swap", [1, 2]),
        Gate.make("u3", [0], [0.4, 0.5, 0.6]),
    ],
    ids=str,
)
def test_per_gate_conversion_all_routes(gate, mgr4):
    edge = gate_matrix_dd(mgr4, gate)
    dense = matrix_to_dense(edge, 4)
    width = max_nzr(mgr4, edge)
    cpu = ell_from_dd_cpu(edge, 4)
    gpu = ell_from_flat_gpu(flatten_matrix_dd(edge, 4), width, execute="faithful")
    assert np.allclose(cpu.to_dense(), dense, atol=1e-12)
    assert np.allclose(gpu.to_dense(), dense, atol=1e-12)


def test_hybrid_routing(circuit_dd):
    low = ell_from_dd(circuit_dd, 4, tau=10**6)
    assert low.route == "gpu"
    high = ell_from_dd(circuit_dd, 4, tau=1)
    assert high.route == "cpu"
    assert np.allclose(low.ell.to_dense(), high.ell.to_dense(), atol=1e-10)
    forced = ell_from_dd(circuit_dd, 4, force="cpu")
    assert forced.route == "cpu"


def test_hybrid_rejects_bad_route(circuit_dd):
    with pytest.raises(ConversionError, match="route"):
        ell_from_dd(circuit_dd, 4, force="tpu")


def test_padding_to_declared_width(mgr4):
    edge = gate_matrix_dd(mgr4, Gate.make("x", [0]))  # width 1
    result = ell_from_dd(edge, 4, max_nzr=3)
    assert result.ell.width == 3
    assert np.allclose(result.ell.to_dense(), matrix_to_dense(edge, 4))


def test_padding_cannot_shrink(mgr4):
    edge = gate_matrix_dd(mgr4, Gate.make("h", [0]))  # width 2
    with pytest.raises(ConversionError, match="exceeds"):
        ell_from_dd(edge, 4, max_nzr=1)


def test_row_nnz_excludes_padding(mgr4):
    edge = gate_matrix_dd(mgr4, Gate.make("cx", [0, 1]))
    result = ell_from_dd(edge, 4, max_nzr=4)
    assert (result.ell.row_nnz() == 1).all()


def test_spmm_matches_dense(circuit_dd, rng):
    ell = ell_from_dd_cpu(circuit_dd, 4)
    states = rng.standard_normal((16, 5)) + 1j * rng.standard_normal((16, 5))
    out = ell_spmm(ell, states)
    assert np.allclose(out, matrix_to_dense(circuit_dd, 4) @ states, atol=1e-10)


def test_spmm_with_preallocated_output(circuit_dd, rng):
    ell = ell_from_dd_cpu(circuit_dd, 4)
    states = rng.standard_normal((16, 3)) + 0j
    out = np.empty_like(states)
    returned = ell_spmm(ell, states, out=out)
    assert returned is out
    assert np.allclose(out, matrix_to_dense(circuit_dd, 4) @ states, atol=1e-10)


def test_spmm_rejects_in_place(circuit_dd, rng):
    ell = ell_from_dd_cpu(circuit_dd, 4)
    states = rng.standard_normal((16, 2)) + 0j
    with pytest.raises(SimulationError, match="in place"):
        ell_spmm(ell, states, out=states)


def test_spmm_rejects_wrong_dim(circuit_dd):
    ell = ell_from_dd_cpu(circuit_dd, 4)
    with pytest.raises(SimulationError, match="state dim"):
        ell_spmm(ell, np.zeros((8, 2), dtype=complex))


def test_cost_helpers(circuit_dd):
    ell = ell_from_dd_cpu(circuit_dd, 4)
    assert spmm_macs(ell, 10) == ell.num_rows * ell.width * 10
    assert spmm_bytes(ell, 10) > ell.nbytes
