"""The :class:`DDManager`: unique tables, normalization, and the native DD
operations the paper builds on (DDAdd, DDMultiply, DDConcatenate).

All node construction goes through :meth:`DDManager.make_mnode` /
:meth:`make_vnode`, which normalize child weights (dividing by the first
non-zero child weight) and hash-cons through unique tables, so structurally
equal sub-matrices share one node — the property that makes DD-based gate
fusion and the NZRV algorithm cheap.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import DDError
from .node import Edge, MNode, ONE_EDGE, VNode, WEIGHT_TOL, ZERO_EDGE, weight_key


_TOL = WEIGHT_TOL
_ONE_LO, _ONE_HI = 1.0 - WEIGHT_TOL, 1.0 + WEIGHT_TOL


def _snap(x: float) -> float:
    """Snap a real within tolerance of 0 / +1 / -1 to the exact value."""
    if x > 0.0:
        if x < _TOL:
            return 0.0
        if _ONE_LO < x < _ONE_HI:
            return 1.0
        return x
    if x > -_TOL:
        return 0.0
    if -_ONE_HI < x < -_ONE_LO:
        return -1.0
    return x


def _canon_weight(w: complex) -> complex:
    """Snap weights within tolerance of 0 / +-1 / +-i to the exact value."""
    r = _snap(w.real)
    i = _snap(w.imag)
    if r == w.real and i == w.imag:
        return w
    return complex(r, i)


class DDManager:
    """Owns every node of a DD universe plus the operation caches.

    One manager corresponds to one qubit count; mixing edges from different
    managers is a :class:`DDError`.
    """

    def __init__(self, num_qubits: int):
        if num_qubits <= 0:
            raise DDError("DDManager needs at least one qubit")
        self.num_qubits = num_qubits
        self._unique_m: dict[tuple, MNode] = {}
        self._unique_v: dict[tuple, VNode] = {}
        self._next_id = 0
        self._cache_mm: dict[tuple, Edge] = {}
        self._cache_mv: dict[tuple, Edge] = {}
        self._cache_madd: dict[tuple, Edge] = {}
        self._cache_vadd: dict[tuple, Edge] = {}
        self._identity_cache: dict[int, Edge] = {}
        # analysis caches keyed by node id (nodes are hash-consed and live as
        # long as the manager, so nid keys are stable)
        self._cache_nzrv: dict[int, Edge] = {}
        self._cache_vmax: dict[int, float] = {}
        self._cache_vmoments: dict[int, tuple[float, float]] = {}

    # -- construction --------------------------------------------------------

    def make_mnode(self, level: int, children: Sequence[Edge]) -> Edge:
        """Normalized, hash-consed matrix node; returns the entering edge."""
        return self._make(level, tuple(children), self._unique_m, MNode)

    def make_vnode(self, level: int, children: Sequence[Edge]) -> Edge:
        """Normalized, hash-consed vector node; returns the entering edge."""
        return self._make(level, tuple(children), self._unique_v, VNode)

    def _make(self, level, children, table, node_cls) -> Edge:
        if not 0 <= level < self.num_qubits:
            raise DDError(f"level {level} out of range for n={self.num_qubits}")
        cleaned = []
        norm = None
        norm_mag = 0.0
        for child in children:
            w = _canon_weight(child.weight)
            if w == 0:
                cleaned.append(ZERO_EDGE)
                continue
            if child.node is not None and child.node.level != level - 1:
                raise DDError(
                    f"child at level {child.node.level} under node at {level}"
                )
            cleaned.append(Edge(child.node, w))
            # normalize by the maximum-magnitude child (first wins ties) so
            # every stored weight has |w| <= 1 and the absolute weight
            # tolerance stays numerically safe
            mag = abs(w)
            if mag > norm_mag * (1.0 + WEIGHT_TOL):
                norm, norm_mag = w, mag
        if norm is None:
            return ZERO_EDGE
        normalized = []
        key = [level]
        for child in cleaned:
            w = child.weight
            if w != 0:
                if w != norm:
                    w = _canon_weight(w / norm)
                else:
                    w = 1.0 + 0j
                child = Edge(child.node, w)
            normalized.append(child)
            key.append(id(child.node))
            key.append(round(w.real, 10) + 0.0)
            key.append(round(w.imag, 10) + 0.0)
        key = tuple(key)
        node = table.get(key)
        if node is None:
            node = node_cls(level, tuple(normalized), self._next_id)
            self._next_id += 1
            table[key] = node
        return Edge(node, norm)

    def terminal(self, weight: complex) -> Edge:
        w = _canon_weight(complex(weight))
        return ZERO_EDGE if w == 0 else Edge(None, w)

    @property
    def num_nodes(self) -> int:
        """Total unique nodes created (matrix + vector)."""
        return len(self._unique_m) + len(self._unique_v)

    def clear_caches(self) -> None:
        for cache in (
            self._cache_mm,
            self._cache_mv,
            self._cache_madd,
            self._cache_vadd,
            self._cache_nzrv,
            self._cache_vmax,
            self._cache_vmoments,
        ):
            cache.clear()

    # -- identity ------------------------------------------------------------

    def identity(self, up_to_level: int | None = None) -> Edge:
        """Matrix DD of the identity over levels ``0 .. up_to_level``."""
        top = self.num_qubits - 1 if up_to_level is None else up_to_level
        if top < -1:
            raise DDError("identity level below terminal")
        if top == -1:
            return ONE_EDGE
        if top not in self._identity_cache:
            below = self.identity(top - 1)
            self._identity_cache[top] = self.make_mnode(
                top, (below, ZERO_EDGE, ZERO_EDGE, below)
            )
        return self._identity_cache[top]

    # -- DDAdd ---------------------------------------------------------------

    def m_add(self, e1: Edge, e2: Edge) -> Edge:
        """Matrix DD addition."""
        return self._add(e1, e2, self._cache_madd, self.make_mnode, self.m_add, 4)

    def v_add(self, e1: Edge, e2: Edge) -> Edge:
        """Vector DD addition (the paper's DDAdd on NZRVs)."""
        return self._add(e1, e2, self._cache_vadd, self.make_vnode, self.v_add, 2)

    def _add(self, e1, e2, cache, make, recurse, fanout) -> Edge:
        if e1.weight == 0:
            return e2
        if e2.weight == 0:
            return e1
        if e1.node is None and e2.node is None:
            return self.terminal(e1.weight + e2.weight)
        if e1.node is None or e2.node is None or e1.node.level != e2.node.level:
            raise DDError("misaligned operands in DD addition")
        # factor the weights out so the cache key only involves one ratio
        ratio = e2.weight / e1.weight
        key = (e1.node.nid, e2.node.nid, weight_key(ratio))
        hit = cache.get(key)
        if hit is None:
            children = tuple(
                recurse(c1, c2.scaled(ratio))
                for c1, c2 in zip(e1.node.children, e2.node.children)
            )
            hit = make(e1.node.level, children)
            cache[key] = hit
        return hit.scaled(e1.weight)

    # -- DDMultiply ----------------------------------------------------------

    def mm_multiply(self, e1: Edge, e2: Edge) -> Edge:
        """Matrix-matrix DD multiplication (``e1 @ e2``)."""
        if e1.weight == 0 or e2.weight == 0:
            return ZERO_EDGE
        if e1.node is None and e2.node is None:
            return self.terminal(e1.weight * e2.weight)
        if e1.node is None or e2.node is None or e1.node.level != e2.node.level:
            raise DDError("misaligned operands in matrix multiplication")
        key = (e1.node.nid, e2.node.nid)
        hit = self._cache_mm.get(key)
        if hit is None:
            a, b = e1.node.children, e2.node.children
            children = []
            for i in (0, 1):
                for j in (0, 1):
                    children.append(
                        self.m_add(
                            self.mm_multiply(a[i * 2 + 0], b[0 * 2 + j]),
                            self.mm_multiply(a[i * 2 + 1], b[1 * 2 + j]),
                        )
                    )
            hit = self.make_mnode(e1.node.level, children)
            self._cache_mm[key] = hit
        return hit.scaled(e1.weight * e2.weight)

    def mv_multiply(self, m: Edge, v: Edge) -> Edge:
        """Matrix-vector DD multiplication (``m @ v``)."""
        if m.weight == 0 or v.weight == 0:
            return ZERO_EDGE
        if m.node is None and v.node is None:
            return self.terminal(m.weight * v.weight)
        if m.node is None or v.node is None or m.node.level != v.node.level:
            raise DDError("misaligned operands in matrix-vector multiplication")
        key = (m.node.nid, v.node.nid)
        hit = self._cache_mv.get(key)
        if hit is None:
            a, x = m.node.children, v.node.children
            children = tuple(
                self.v_add(
                    self.mv_multiply(a[i * 2 + 0], x[0]),
                    self.mv_multiply(a[i * 2 + 1], x[1]),
                )
                for i in (0, 1)
            )
            hit = self.make_vnode(m.node.level, children)
            self._cache_mv[key] = hit
        return hit.scaled(m.weight * v.weight)

    # -- DDConcatenate -------------------------------------------------------

    def v_concatenate(self, top: Edge, bottom: Edge, level: int) -> Edge:
        """Stack two vector DDs of size ``2^level`` into one of ``2^(level+1)``.

        This is the paper's native ``DDConcatenate`` used by the NZRV
        algorithm (Figure 3).
        """
        return self.make_vnode(level, (top, bottom))
