"""Tests for the equivalence-checking module."""

import pytest

from repro.circuit import Circuit
from repro.circuit.generators import ghz, random_circuit
from repro.errors import SimulationError
from repro.transpile import decompose_to_basis
from repro.verify import check, check_exact, check_simulative


@pytest.fixture
def pair():
    original = random_circuit(4, 20, seed=7)
    return original, decompose_to_basis(original)


def test_exact_accepts_equivalent(pair):
    a, b = pair
    result = check_exact(a, b)
    assert result
    assert result.method == "exact"
    assert abs(abs(result.phase) - 1.0) < 1e-9


def test_exact_rejects_tampered(pair):
    a, b = pair
    tampered = Circuit(b.num_qubits, list(b.gates))
    tampered.x(0)
    assert not check_exact(a, tampered)


def test_exact_rejects_width_mismatch():
    assert not check_exact(ghz(3), ghz(4))


def test_simulative_accepts_equivalent(pair):
    a, b = pair
    result = check_simulative(a, b)
    assert result
    assert result.max_deviation < 1e-8


def test_simulative_rejects_tampered(pair):
    a, b = pair
    tampered = Circuit(b.num_qubits, list(b.gates))
    tampered.rz(0.01, 2)
    result = check_simulative(a, tampered)
    assert not result
    assert result.max_deviation > 1e-6


def test_simulative_handles_pure_global_phase():
    a = Circuit(2)
    a.rz(0.8, 0)
    b = Circuit(2)
    b.p(0.8, 0)
    assert check_simulative(a, b)


def test_auto_dispatch(pair):
    a, b = pair
    result = check(a, b)
    assert result and result.method == "exact"  # narrow circuit -> exact
    with pytest.raises(SimulationError, match="unknown method"):
        check(a, b, prefer="quantum-telepathy")


def test_result_is_truthy_protocol(pair):
    a, b = pair
    assert bool(check_exact(a, b)) is True
    assert bool(check_exact(a, ghz(4))) is False
