"""Tests for timeline export and rendering."""

import json

import pytest

from repro.circuit.generators import vqe
from repro.gpu import render_gantt, summarize, to_chrome_trace
from repro.gpu.engine import Task, Timeline, schedule
from repro.errors import DeviceError
from repro.sim import BQSimSimulator, BatchSpec


@pytest.fixture
def timeline():
    result = BQSimSimulator().run(vqe(8), BatchSpec(4, 16), execute=False)
    return result.timeline


def test_chrome_trace_is_valid_json(timeline):
    doc = json.loads(to_chrome_trace(timeline))
    events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(events) == len(timeline.tasks)
    for event in events:
        assert event["dur"] >= 0
        assert event["cat"] in ("compute", "h2d", "d2h", "host")
    # lane metadata present
    assert any(e["ph"] == "M" for e in doc["traceEvents"])


def test_chrome_trace_rejects_unscheduled():
    tl = Timeline([Task(tid=0, name="x", engine="compute", duration=1.0)])
    with pytest.raises(DeviceError, match="not scheduled"):
        to_chrome_trace(tl)


def test_gantt_renders_all_busy_engines(timeline):
    art = render_gantt(timeline)
    assert "compute" in art and "h2d" in art and "d2h" in art
    assert "#" in art and "overlap" in art


def test_gantt_empty():
    assert "empty" in render_gantt(Timeline([]))


def test_summarize_fields(timeline):
    stats = summarize(timeline)
    assert stats["num_tasks"] == len(timeline.tasks)
    assert 0 <= stats["overlap_fraction"] <= 1
    assert stats["busy_s"]["compute"] > 0
    assert stats["makespan_s"] >= max(stats["busy_s"].values())


def test_trace_timestamps_match_schedule():
    tasks = [
        Task(tid=0, name="a", engine="h2d", duration=1e-3),
        Task(tid=1, name="b", engine="compute", duration=2e-3, deps=(0,)),
    ]
    tl = schedule(tasks)
    doc = json.loads(to_chrome_trace(tl))
    by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
    assert by_name["b"]["ts"] == pytest.approx(1000.0)  # microseconds
    assert by_name["b"]["dur"] == pytest.approx(2000.0)
