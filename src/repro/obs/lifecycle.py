"""Structured per-job lifecycle event log for the serving layer.

Every service job emits one JSON-safe event per lifecycle stage::

    submitted -> admitted -> scheduled -> coalesced -> executing
              -> done | failed | cancelled | quarantined
                 (requeued, rejected, cancel_requested, worker_restart)

Each event carries the job id, the emitting stage, a service-clock
timestamp, and stage-specific fields (queue age, worker id, wall and
modeled durations, deadline verdicts).  The log is the ground truth the
:class:`~repro.obs.slo.SLOTracker` folds into latency percentiles, and
the audit trail the CI ``slo-smoke`` job checks for *unaccounted* jobs —
every submitted job must reach a terminal event, or the service silently
lost work.

A :class:`JobLifecycleLog` is thread-safe and supports **listeners**:
callbacks invoked once per emitted event (outside the log's lock), which
is how an :class:`~repro.obs.slo.SLOTracker` folds events as they happen
instead of re-scanning the log.  The process-global default log
(:func:`get_lifecycle_log`) serves standalone component use; a
:class:`~repro.service.workers.BatchSimulationService` owns a private log
so concurrent services never mix their jobs.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

#: every lifecycle stage, in nominal order (rejected/requeued are
#: branches, ``routed`` is the gateway's shard-placement record,
#: ``worker_restart`` is a fleet event stamped with a pseudo
#: ``worker-<wid>`` id; the last four are terminal)
LIFECYCLE_STAGES = (
    "submitted",
    "rejected",
    "routed",
    "admitted",
    "scheduled",
    "coalesced",
    "requeued",
    "executing",
    "cancel_requested",
    "worker_restart",
    "done",
    "failed",
    "cancelled",
    "quarantined",
)

#: stages after which a job emits no further events
TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled", "quarantined"})


class JobLifecycleLog:
    """Thread-safe, append-only log of per-job lifecycle events.

    Example::

        log = JobLifecycleLog()
        log.emit("submitted", "job-0-abc", priority=1)
        log.emit("done", "job-0-abc", latency_s=0.01)
        assert [e["event"] for e in log.events("job-0-abc")] \\
            == ["submitted", "done"]
        assert log.unaccounted() == []
    """

    def __init__(self, clock=time.monotonic) -> None:
        self.clock = clock
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._listeners: list = []
        self._submitted: set[str] = set()
        self._terminal: set[str] = set()

    # -- emission ------------------------------------------------------------

    def subscribe(self, listener) -> None:
        """Register ``listener(event_dict)`` to run on every emit."""
        with self._lock:
            self._listeners.append(listener)

    def emit(self, stage: str, job_id: str, t: float | None = None,
             **fields) -> dict:
        """Append one event and notify listeners; returns the event dict.

        ``stage`` must be one of :data:`LIFECYCLE_STAGES`; extra keyword
        ``fields`` are stored verbatim (keep them JSON-safe).
        """
        if stage not in LIFECYCLE_STAGES:
            raise ValueError(
                f"unknown lifecycle stage {stage!r} "
                f"(expected one of {LIFECYCLE_STAGES})"
            )
        event = {
            "event": stage,
            "job": job_id,
            "t": self.clock() if t is None else t,
            **fields,
        }
        with self._lock:
            self._events.append(event)
            if stage == "submitted":
                self._submitted.add(job_id)
            elif stage in TERMINAL_EVENTS or stage == "rejected":
                # rejected jobs left the system at the edge: accounted for
                self._terminal.add(job_id)
            listeners = list(self._listeners)
        for listener in listeners:  # outside the lock: listeners may log
            listener(event)
        return event

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def events(self, job_id: str | None = None,
               stage: str | None = None) -> list[dict]:
        """Snapshot of events, optionally filtered by job and/or stage."""
        with self._lock:
            events = list(self._events)
        if job_id is not None:
            events = [e for e in events if e["job"] == job_id]
        if stage is not None:
            events = [e for e in events if e["event"] == stage]
        return events

    def unaccounted(self) -> list[str]:
        """Job ids that were submitted but never reached a terminal event.

        Non-empty after a drain means the service lost track of work —
        the exact condition the ``slo-smoke`` CI job asserts against.
        """
        with self._lock:
            return sorted(self._submitted - self._terminal)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._submitted.clear()
            self._terminal.clear()

    # -- export --------------------------------------------------------------

    def write_jsonl(self, path) -> int:
        """Write every event as one JSON object per line; returns count."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        events = self.events()
        with path.open("w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")
        return len(events)


# ---------------------------------------------------------------------------
# process-global default log
# ---------------------------------------------------------------------------

_global_lifecycle = JobLifecycleLog()


def get_lifecycle_log() -> JobLifecycleLog:
    """The process-global default lifecycle log (for standalone components;
    a service owns its own)."""
    return _global_lifecycle


def set_lifecycle_log(log: JobLifecycleLog) -> JobLifecycleLog:
    """Swap the global lifecycle log (returns the previous one)."""
    global _global_lifecycle
    previous = _global_lifecycle
    _global_lifecycle = log
    return previous
