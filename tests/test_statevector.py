"""Tests for the dense reference simulator."""

import numpy as np
import pytest

from repro.circuit import Circuit, InputBatch, random_batch
from repro.circuit.gates import Gate
from repro.sim.statevector import apply_gate, simulate_batch, simulate_state
from repro.errors import SimulationError


def test_apply_single_qubit_gate_matches_matrix(small_circuit, batch4):
    states = batch4.states.copy()
    for gate in small_circuit.gates:
        apply_gate(states, gate, 4)
    expected = small_circuit.to_matrix() @ batch4.states
    assert np.allclose(states, expected, atol=1e-10)


def test_apply_gate_checks_dimensions():
    states = np.zeros((8, 1), dtype=np.complex128)
    with pytest.raises(SimulationError, match="state dim"):
        apply_gate(states, Gate.make("h", [0]), 4)


def test_controlled_gate_only_touches_control_one_subspace():
    # |10> (q0=0, q1=1): control q0 is 0 -> CX(q0 -> q1) is identity
    states = np.zeros((4, 1), dtype=np.complex128)
    states[2, 0] = 1.0
    apply_gate(states, Gate.make("cx", [0, 1]), 2)
    assert states[2, 0] == 1.0
    # |01> (q0=1): target q1 flips -> |11>
    states = np.zeros((4, 1), dtype=np.complex128)
    states[1, 0] = 1.0
    apply_gate(states, Gate.make("cx", [0, 1]), 2)
    assert states[3, 0] == 1.0


def test_simulate_batch_does_not_mutate_input(small_circuit, batch4):
    before = batch4.states.copy()
    simulate_batch(small_circuit, batch4)
    assert np.array_equal(batch4.states, before)


def test_simulate_batch_copy_false_mutates(small_circuit, batch4):
    # in-place identity is a host-engine contract: device engines always
    # copy across the host/device boundary
    batch = InputBatch(batch4.states.copy())
    out = simulate_batch(small_circuit, batch, copy=False, engine="numpy")
    assert out is batch.states


def test_simulate_batch_rejects_width_mismatch(small_circuit):
    with pytest.raises(SimulationError, match="qubits"):
        simulate_batch(small_circuit, random_batch(3, 2, rng=0))


def test_simulate_state_default_zero():
    c = Circuit(2)
    c.h(0)
    state = simulate_state(c)
    assert state[0] == pytest.approx(2**-0.5)
    assert state[1] == pytest.approx(2**-0.5)


def test_norm_preservation(random_circuits):
    for c in random_circuits:
        batch = random_batch(4, 5, rng=1)
        out = simulate_batch(c, batch)
        assert np.allclose(np.linalg.norm(out, axis=0), 1.0, atol=1e-10)


def test_swap_gate_permutes_amplitudes():
    c = Circuit(2)
    c.swap(0, 1)
    state = np.array([0.0, 1.0, 0.0, 0.0], dtype=np.complex128)
    out = simulate_state(c, state)
    assert out[2] == 1.0
