"""Extension bench — ELL vs CSR vs COO kernel-format ablation."""

from conftest import run_once
from repro.bench.experiments import ablation_formats


def test_format_ablation(benchmark, scale):
    rows = run_once(benchmark, ablation_formats.run, scale)
    for row in rows:
        assert row["csr_vs_ell"] >= 1.0 - 1e-9
        assert row["coo_vs_ell"] > 1.0
