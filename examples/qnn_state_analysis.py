"""QNN state analysis over input batches (the paper's QuantumFlow-style use).

State analysis feeds hundreds of inputs through a quantum neural network to
characterize its behaviour — here, the robustness of the QNN's output
distribution to input perturbations.  The whole sweep is a single BQCS
workload: every perturbation level is one batch.

Run:  python examples/qnn_state_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.circuit import perturbed_batch
from repro.circuit.generators import qnn
from repro.sim import BQSimSimulator, BatchSpec


def readout_expectation(states: np.ndarray, qubit: int) -> np.ndarray:
    """Per-input probability that the readout qubit measures |1>."""
    dim = states.shape[0]
    mask = (np.arange(dim) >> qubit) & 1
    probs = np.abs(states) ** 2
    return probs[mask == 1, :].sum(axis=0)


def main() -> None:
    num_qubits, batch_size = 8, 64
    circuit = qnn(num_qubits, seed=5)
    readout = num_qubits - 1
    epsilons = [0.0, 0.01, 0.03, 0.1, 0.3]

    batches = [
        perturbed_batch(num_qubits, eps, batch_size, rng=42) for eps in epsilons
    ]
    spec = BatchSpec(num_batches=len(batches), batch_size=batch_size)
    result = BQSimSimulator().run(circuit, spec, batches=batches)

    plan = result.stats["plan"]
    print(f"{circuit.name}: {len(circuit)} gates fused into {len(plan)} "
          f"({plan.total_cost} MACs/amplitude); "
          f"{spec.num_inputs} inputs in {result.modeled_time_ms:.1f} modeled ms\n")

    clean = readout_expectation(result.outputs[0], readout)
    print(f"{'epsilon':>8}  {'mean P(1)':>10}  {'drift from clean':>17}")
    drifts = []
    for eps, out in zip(epsilons, result.outputs):
        p1 = readout_expectation(out, readout)
        drift = float(np.abs(p1 - clean).mean())
        drifts.append(drift)
        print(f"{eps:8.2f}  {p1.mean():10.4f}  {drift:17.5f}")

    assert drifts[0] == 0.0
    assert all(a <= b + 1e-9 for a, b in zip(drifts, drifts[1:])), (
        "readout drift should grow with perturbation strength"
    )
    print("\nreadout drift grows monotonically with input noise — the QNN's "
          "sensitivity profile, measured in one batched simulation")


if __name__ == "__main__":
    main()
