"""Minimal OpenQASM 2.0 reader/writer.

Supports the subset used by MQT-Bench exports: a single (or multiple) qreg,
creg declarations, the qelib1 gate set handled by
:mod:`repro.circuit.gates`, ``barrier`` and ``measure`` (both ignored), and
constant parameter expressions built from numbers, ``pi``, ``+ - * /``,
parentheses, and unary minus.

Custom ``gate`` definitions are supported by macro expansion (bodies may
reference the definition's formal parameters and qubits, and may call other
custom gates); ``if`` statements and ``opaque`` declarations are rejected
with a :class:`~repro.errors.QasmError` rather than silently mis-simulated.
"""

from __future__ import annotations

import ast
import math
import re
from typing import Iterable, Mapping

from ..errors import QasmError
from .circuit import Circuit
from .gates import Gate, known_gate_names

_TOKEN_COMMENT = re.compile(r"//[^\n]*")
_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _eval_param(expr: str, line: int, bindings: Mapping[str, float] | None = None) -> float:
    """Evaluate a constant QASM parameter expression safely.

    ``bindings`` supplies values for the formal parameters of a custom gate
    definition currently being expanded.
    """
    expr = expr.strip().replace("PI", "pi")
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError:
        raise QasmError(f"bad parameter expression {expr!r}", line) from None

    def walk(node: ast.AST) -> float:
        if isinstance(node, ast.Expression):
            return walk(node.body)
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return float(node.value)
        if isinstance(node, ast.Name) and node.id == "pi":
            return math.pi
        if isinstance(node, ast.Name) and bindings and node.id in bindings:
            return bindings[node.id]
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            v = walk(node.operand)
            return -v if isinstance(node.op, ast.USub) else v
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow)
        ):
            a, b = walk(node.left), walk(node.right)
            ops = {
                ast.Add: lambda: a + b,
                ast.Sub: lambda: a - b,
                ast.Mult: lambda: a * b,
                ast.Div: lambda: a / b,
                ast.Pow: lambda: a**b,
            }
            return ops[type(node.op)]()
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            fns = {"sin": math.sin, "cos": math.cos, "tan": math.tan,
                   "exp": math.exp, "ln": math.log, "sqrt": math.sqrt}
            if node.func.id in fns and len(node.args) == 1:
                return fns[node.func.id](walk(node.args[0]))
        raise QasmError(f"unsupported parameter expression {expr!r}", line)

    return walk(tree)


def _split_gate_call(stmt: str, line: int) -> tuple[str, str | None, str]:
    """Split ``name(params) operands`` with balanced-paren parameter lists.

    Returns (name, params-or-None, operand text).
    """
    m = re.match(r"^([A-Za-z_][A-Za-z0-9_]*)\s*", stmt)
    if not m:
        raise QasmError(f"cannot parse statement {stmt!r}", line)
    name = m.group(1)
    rest = stmt[m.end():]
    params = None
    if rest.startswith("("):
        depth = 0
        for i, ch in enumerate(rest):
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    params = rest[1:i]
                    rest = rest[i + 1:]
                    break
        else:
            raise QasmError(f"unbalanced parentheses in {stmt!r}", line)
    return name, params, rest.strip()


def _split_args(text: str) -> list[str]:
    """Split a parameter list on commas outside parentheses."""
    parts: list[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


class _Register:
    def __init__(self, name: str, size: int, offset: int):
        self.name = name
        self.size = size
        self.offset = offset


class _GateDef:
    """A custom ``gate`` definition awaiting macro expansion."""

    def __init__(self, name: str, params: list[str], qubits: list[str], body: str):
        self.name = name
        self.params = params
        self.qubits = qubits
        self.body = body


_GATE_DEF = re.compile(
    r"gate\s+([A-Za-z_][A-Za-z0-9_]*)\s*(\(([^)]*)\))?\s*([^{]*)\{([^}]*)\}",
    re.DOTALL,
)


def _extract_gate_defs(text: str) -> tuple[str, dict[str, _GateDef]]:
    """Pull ``gate ... { ... }`` blocks out of the source text."""
    defs: dict[str, _GateDef] = {}

    def grab(match: re.Match) -> str:
        name = match.group(1).lower()
        params = [p.strip() for p in (match.group(3) or "").split(",") if p.strip()]
        qubits = [q.strip() for q in match.group(4).split(",") if q.strip()]
        defs[name] = _GateDef(name, params, qubits, match.group(5))
        return ""

    return _GATE_DEF.sub(grab, text), defs


_MAX_EXPANSION_DEPTH = 32


def _expand_gate_def(
    definition: _GateDef,
    defs: dict[str, _GateDef],
    params: tuple[float, ...],
    operands: list[int],
    line: int,
    depth: int = 0,
) -> list[Gate]:
    """Expand one custom-gate call into concrete gates."""
    if depth > _MAX_EXPANSION_DEPTH:
        raise QasmError(f"gate '{definition.name}' expansion too deep (cycle?)", line)
    if len(params) != len(definition.params):
        raise QasmError(
            f"gate '{definition.name}' takes {len(definition.params)} "
            f"parameter(s), got {len(params)}", line,
        )
    if len(operands) != len(definition.qubits):
        raise QasmError(
            f"gate '{definition.name}' takes {len(definition.qubits)} "
            f"qubit(s), got {len(operands)}", line,
        )
    bindings = dict(zip(definition.params, params))
    qubit_map = dict(zip(definition.qubits, operands))
    known = known_gate_names()
    out: list[Gate] = []
    for chunk in definition.body.split(";"):
        stmt = " ".join(chunk.split())
        if not stmt or stmt.split()[0] in ("barrier",):
            continue
        gname, params_text, operand_text = _split_gate_call(stmt, line)
        gname = gname.lower()
        call_params = (
            tuple(
                _eval_param(p, line, bindings)
                for p in _split_args(params_text)
                if p.strip()
            )
            if params_text is not None
            else ()
        )
        names = [q.strip() for q in operand_text.split(",") if q.strip()]
        try:
            call_operands = [qubit_map[qn] for qn in names]
        except KeyError as exc:
            raise QasmError(
                f"unknown qubit {exc.args[0]!r} in gate '{definition.name}'", line
            ) from None
        if gname in defs:
            out.extend(
                _expand_gate_def(
                    defs[gname], defs, call_params, call_operands, line, depth + 1
                )
            )
        elif gname in known:
            out.append(Gate.make(gname, call_operands, call_params))
        else:
            raise QasmError(f"unknown gate '{gname}' in definition body", line)
    return out


def parse_qasm(text: str, name: str = "qasm") -> Circuit:
    """Parse OpenQASM 2.0 source text into a :class:`Circuit`.

    Supports the standard-library gates, custom ``gate`` definitions
    (macro-expanded with symbolic parameters), and multiple quantum
    registers (flattened in declaration order); ``barrier``, ``measure``
    and ``reset`` are ignored, and malformed statements raise a
    :class:`QasmError` that carries the offending line.  Example::

        circuit = parse_qasm(
            'OPENQASM 2.0; include "qelib1.inc"; '
            "qreg q[2]; h q[0]; cx q[0], q[1];"
        )
        assert circuit.num_qubits == 2 and len(circuit) == 2
    """
    text = _TOKEN_COMMENT.sub("", text)
    text, gate_defs = _extract_gate_defs(text)
    statements: list[tuple[int, str]] = []
    lineno = 1
    for chunk in text.split(";"):
        stmt = chunk.strip()
        lineno += chunk.count("\n")
        if stmt:
            statements.append((lineno, " ".join(stmt.split())))

    qregs: dict[str, _Register] = {}
    total_qubits = 0
    gates: list[Gate] = []
    known = known_gate_names()

    def resolve(operand: str, line: int) -> list[int]:
        """Map ``reg[i]`` or bare ``reg`` to global qubit indices."""
        operand = operand.strip()
        m = re.match(r"^([A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(\d+)\s*\]$", operand)
        if m:
            reg, idx = m.group(1), int(m.group(2))
            if reg not in qregs:
                raise QasmError(f"unknown qreg '{reg}'", line)
            if idx >= qregs[reg].size:
                raise QasmError(f"index {idx} out of range for qreg '{reg}'", line)
            return [qregs[reg].offset + idx]
        if operand in qregs:
            reg = qregs[operand]
            return list(range(reg.offset, reg.offset + reg.size))
        raise QasmError(f"bad operand {operand!r}", line)

    for line, stmt in statements:
        head = stmt.split(maxsplit=1)[0].lower()
        if head == "openqasm":
            continue
        if head == "include":
            continue
        if head == "qreg":
            m = re.match(r"^qreg\s+([A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(\d+)\s*\]$", stmt)
            if not m:
                raise QasmError(f"bad qreg declaration {stmt!r}", line)
            qregs[m.group(1)] = _Register(m.group(1), int(m.group(2)), total_qubits)
            total_qubits += int(m.group(2))
            continue
        if head == "creg":
            continue
        if head in ("barrier", "measure", "reset"):
            continue
        if head in ("opaque", "if"):
            raise QasmError(f"unsupported statement kind '{head}'", line)

        gname, params_text, operand_text = _split_gate_call(stmt, line)
        gname = gname.lower()
        if gname not in known and gname not in gate_defs:
            raise QasmError(f"unknown gate '{gname}'", line)
        params = (
            tuple(
                _eval_param(p, line)
                for p in _split_args(params_text)
                if p.strip()
            )
            if params_text is not None
            else ()
        )
        operand_lists = [resolve(op, line) for op in operand_text.split(",") if op.strip()]
        if not operand_lists:
            raise QasmError(f"gate '{gname}' missing operands", line)
        # broadcast whole-register operands (all must have equal lengths or 1)
        width = max(len(ops) for ops in operand_lists)
        for ops in operand_lists:
            if len(ops) not in (1, width):
                raise QasmError("mismatched register broadcast widths", line)
        for i in range(width):
            operands = [ops[i if len(ops) > 1 else 0] for ops in operand_lists]
            if gname in gate_defs:
                gates.extend(
                    _expand_gate_def(gate_defs[gname], gate_defs, params, operands, line)
                )
            else:
                gates.append(Gate.make(gname, operands, params))

    if total_qubits == 0:
        raise QasmError("no qreg declared")
    return Circuit(total_qubits, gates, name=name)


def load_qasm(path: str) -> Circuit:
    """Read a ``.qasm`` file from disk.

    Convenience wrapper over :func:`parse_qasm`: reads the file as
    UTF-8 and records its path as the circuit name, so errors and bench
    reports identify the source file.  Example::

        circuit = load_qasm("circuits/ghz4.qasm")
        assert circuit.name.endswith("ghz4.qasm")
    """
    with open(path, "r", encoding="utf-8") as fh:
        return parse_qasm(fh.read(), name=path)


def to_qasm(circuit: Circuit) -> str:
    """Serialize a circuit as OpenQASM 2.0 using register ``q``."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    for gate in circuit.gates:
        lines.append(_gate_to_qasm(gate))
    return "\n".join(lines) + "\n"


def _gate_to_qasm(gate: Gate) -> str:
    name = gate.name
    operands = list(gate.qubits)
    if gate.controls:
        prefix_names = {
            ("x", 1): "cx", ("x", 2): "ccx", ("y", 1): "cy", ("z", 1): "cz",
            ("z", 2): "ccz", ("h", 1): "ch", ("p", 1): "cp", ("rx", 1): "crx",
            ("ry", 1): "cry", ("rz", 1): "crz", ("u3", 1): "cu3",
            ("swap", 1): "cswap", ("s", 1): "cs", ("sx", 1): "csx",
        }
        key = (gate.name, len(gate.controls))
        if key not in prefix_names:
            raise QasmError(f"cannot serialize controlled gate {gate}")
        name = prefix_names[key]
        operands = list(gate.controls) + operands
    params = ",".join(repr(p) for p in gate.params)
    head = f"{name}({params})" if params else name
    args = ",".join(f"q[{q}]" for q in operands)
    return f"{head} {args};"
