"""Equivalence checking of quantum circuits (Burgholzer-Wille style).

Verification is the paper's first motivating BQCS application: deciding
whether a compiled/transpiled circuit still implements the original unitary.
This example shows both flavors the DD substrate supports:

1. *exact* checking — build the DD of ``G' . G^-1`` and compare it to the
   identity DD (hash-consing makes this a structural comparison);
2. *simulative* checking — run random input batches through both circuits
   with BQSim and compare amplitudes ("the power of simulation").

Run:  python examples/equivalence_checking.py
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit import Circuit
from repro.circuit.generators import ghz
from repro.dd import DDManager, circuit_matrix_dd
from repro.sim import BQSimSimulator, BatchSpec


def transpile_to_cz_basis(circuit: Circuit) -> Circuit:
    """Rewrite CX gates into H-CZ-H (a toy basis-translation pass)."""
    out = Circuit(circuit.num_qubits, name=f"{circuit.name}_cz")
    for gate in circuit.gates:
        if gate.name == "x" and len(gate.controls) == 1:
            control, target = gate.controls[0], gate.qubits[0]
            out.h(target)
            out.cz(control, target)
            out.h(target)
        else:
            out.append(gate)
    return out


def exact_equivalent(a: Circuit, b: Circuit, tol: float = 1e-9) -> bool:
    """DD-exact equivalence up to global phase: is ``b . a^-1 = c * I``?"""
    mgr = DDManager(a.num_qubits)
    product = mgr.mm_multiply(
        circuit_matrix_dd(mgr, b.gates),
        circuit_matrix_dd(mgr, a.inverse().gates),
    )
    identity = mgr.identity()
    if product.node is not identity.node:  # hash-consed: same node <=> same structure
        return False
    return abs(abs(product.weight) - 1.0) < tol


def simulative_equivalent(a: Circuit, b: Circuit, tol: float = 1e-8) -> bool:
    spec = BatchSpec(num_batches=4, batch_size=32, seed=11)
    sim = BQSimSimulator()
    ra, rb = sim.run(a, spec), sim.run(b, spec)
    return all(
        np.abs(x - y).max() < tol for x, y in zip(ra.outputs, rb.outputs)
    )


def main() -> None:
    original = ghz(9)
    compiled = transpile_to_cz_basis(original)
    print(f"original: {original.counts()}, compiled: {compiled.counts()}")

    print("exact DD check:       ", end="")
    assert exact_equivalent(original, compiled)
    print("equivalent (product collapses to the identity DD)")

    print("batch-simulation check: ", end="")
    assert simulative_equivalent(original, compiled)
    print("equivalent on all random input batches")

    # a miscompilation: the pass forgets one basis-change H
    broken = transpile_to_cz_basis(original)
    broken.gates.pop()  # drop the final H
    assert not exact_equivalent(original, broken)
    assert not simulative_equivalent(original, broken)
    print("miscompiled variant:    correctly rejected by both checks")


if __name__ == "__main__":
    main()
