"""Tests for timeline critical-path and slack analysis."""

import pytest

from repro.circuit.generators import vqe
from repro.gpu import critical_path, slack
from repro.gpu.engine import Task, schedule
from repro.sim import BQSimSimulator, BatchSpec


def chain(durations, engines=None, deps=None):
    engines = engines or ["compute"] * len(durations)
    tasks = []
    for i, (d, e) in enumerate(zip(durations, engines)):
        task_deps = deps[i] if deps else ((i - 1,) if i else ())
        tasks.append(Task(tid=i, name=f"t{i}", engine=e, duration=d, deps=tuple(task_deps)))
    return schedule(tasks)


def test_serial_chain_is_fully_critical():
    tl = chain([1.0, 2.0, 3.0])
    cp = critical_path(tl)
    assert cp.names == ("t0", "t1", "t2")
    assert cp.length == pytest.approx(6.0)
    assert cp.engine_share() == {"compute": pytest.approx(1.0)}


def test_parallel_branch_only_long_arm_critical():
    # t0 -> {t1 (short), t2 (long)} -> t3
    tasks = [
        Task(tid=0, name="t0", engine="h2d", duration=1.0),
        Task(tid=1, name="t1", engine="compute", duration=0.5, deps=(0,)),
        Task(tid=2, name="t2", engine="d2h", duration=2.0, deps=(0,)),
        Task(tid=3, name="t3", engine="compute", duration=1.0, deps=(1, 2)),
    ]
    tl = schedule(tasks)
    cp = critical_path(tl)
    assert cp.names == ("t0", "t2", "t3")
    assert cp.length == pytest.approx(4.0)
    # the short arm has slack equal to the long/short difference
    s = slack(tl)
    assert s[1] == pytest.approx(1.5)
    assert s[2] == pytest.approx(0.0)


def test_engine_fifo_counts_as_precedence():
    # two independent kernels on one engine: FIFO makes the pair critical
    tl = chain([2.0, 3.0], deps=[(), ()])
    cp = critical_path(tl)
    assert cp.names == ("t0", "t1")
    assert cp.length == pytest.approx(5.0)


def test_empty_timeline():
    from repro.gpu.engine import Timeline

    cp = critical_path(Timeline([]))
    assert cp.tasks == () and cp.length == 0.0


def test_bqsim_critical_path_is_compute_dominated():
    result = BQSimSimulator().run(vqe(10), BatchSpec(8, 64), execute=False)
    cp = critical_path(result.timeline)
    share = cp.engine_share()
    # a well-pipelined run is bound by kernels, not copies
    assert share.get("compute", 0.0) > 0.5
    assert cp.length <= result.timeline.makespan + 1e-12
    # every task on the chain is back-to-back
    for a, b in zip(cp.tasks, cp.tasks[1:]):
        assert b.start == pytest.approx(a.end)


def test_slack_never_negative():
    result = BQSimSimulator().run(vqe(8), BatchSpec(4, 16), execute=False)
    for value in slack(result.timeline).values():
        assert value >= 0.0
