"""Batch input generation for BQCS.

The paper feeds "hundreds to thousands of batches of inputs" (random state
vectors) into one circuit.  An :class:`InputBatch` is a dense complex matrix
of shape ``(2**num_qubits, batch_size)`` — one normalized state vector per
column — which is exactly the operand layout the ELL spMM kernel consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..errors import SimulationError
from ..kernels.engine import get_engine
from ..kernels.ops import normalize_states


@dataclass(frozen=True)
class InputBatch:
    """A batch of state vectors stored column-wise.

    The operand layout every kernel consumes: a ``(2**n, batch)``
    complex128 block whose column ``j`` is input state ``j`` — so a
    batched gate application is one matrix-matrix product, which is the
    whole point of BQCS.  Example::

        batch = zero_state_batch(num_qubits=3, batch_size=4)
        assert batch.states.shape == (8, 4) and batch.num_qubits == 3
    """

    states: np.ndarray  # complex128, shape (2**n, batch)

    def __post_init__(self) -> None:
        if self.states.ndim != 2:
            raise SimulationError("InputBatch expects a 2-D (dim, batch) array")
        dim = self.states.shape[0]
        if dim == 0 or dim & (dim - 1):
            raise SimulationError(f"state dimension {dim} is not a power of two")

    @property
    def num_qubits(self) -> int:
        return int(self.states.shape[0]).bit_length() - 1

    @property
    def batch_size(self) -> int:
        return int(self.states.shape[1])

    @property
    def nbytes(self) -> int:
        return int(self.states.nbytes)

    def norms(self) -> np.ndarray:
        return np.linalg.norm(self.states, axis=0)

    def column(self, i: int) -> np.ndarray:
        return self.states[:, i]


def random_batch(
    num_qubits: int, batch_size: int, rng: np.random.Generator | int | None = None
) -> InputBatch:
    """Haar-like random normalized states (complex Gaussian, normalized)."""
    rng = np.random.default_rng(rng)
    dim = 1 << num_qubits
    raw = rng.standard_normal((dim, batch_size)) + 1j * rng.standard_normal(
        (dim, batch_size)
    )
    raw = normalize_states(get_engine("numpy"), raw)
    return InputBatch(raw.astype(np.complex128))


def basis_batch(num_qubits: int, indices: Sequence[int]) -> InputBatch:
    """Batch of computational-basis states ``|indices[i]>``."""
    dim = 1 << num_qubits
    states = np.zeros((dim, len(indices)), dtype=np.complex128)
    for col, idx in enumerate(indices):
        if not 0 <= idx < dim:
            raise SimulationError(f"basis index {idx} out of range for n={num_qubits}")
        states[idx, col] = 1.0
    return InputBatch(states)


def zero_state_batch(num_qubits: int, batch_size: int) -> InputBatch:
    """Batch of ``|0...0>`` states (the usual single-input QCS start state)."""
    return basis_batch(num_qubits, [0] * batch_size)


def perturbed_batch(
    num_qubits: int,
    epsilon: float,
    batch_size: int,
    base: np.ndarray | int = 0,
    rng: np.random.Generator | int | None = None,
) -> InputBatch:
    """A batch of copies of a base state with Gaussian amplitude noise.

    The workload of robustness/state-analysis studies: each column is the
    base state (a basis index or a dense vector) plus ``epsilon`` times
    complex Gaussian noise, re-normalized.
    """
    rng = np.random.default_rng(rng)
    dim = 1 << num_qubits
    if isinstance(base, (int, np.integer)):
        column = np.zeros(dim, dtype=np.complex128)
        if not 0 <= int(base) < dim:
            raise SimulationError(f"basis index {base} out of range")
        column[int(base)] = 1.0
    else:
        column = np.asarray(base, dtype=np.complex128).reshape(-1)
        if column.shape[0] != dim:
            raise SimulationError("base state has wrong length")
    states = np.repeat(column[:, None], batch_size, axis=1)
    if epsilon:
        noise = rng.standard_normal(states.shape) + 1j * rng.standard_normal(
            states.shape
        )
        states = states + epsilon * noise
    states = normalize_states(get_engine("numpy"), states)
    return InputBatch(states)


def generate_batches(
    num_qubits: int,
    num_batches: int,
    batch_size: int,
    seed: int = 0,
) -> Iterator[InputBatch]:
    """Deterministic stream of random input batches (the paper's 200 x 256).

    Yields ``num_batches`` normalized Haar-ish random
    :class:`InputBatch` blocks of ``batch_size`` columns, reproducible
    from ``seed`` — the same stream a :class:`~repro.sim.BatchSpec` with
    equal numbers describes.  Example::

        batches = list(generate_batches(3, num_batches=2, batch_size=5))
        assert [b.states.shape for b in batches] == [(8, 5), (8, 5)]
    """
    rng = np.random.default_rng(seed)
    for _ in range(num_batches):
        yield random_batch(num_qubits, batch_size, rng)
