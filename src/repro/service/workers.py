"""The worker pool and the in-process batch simulation service.

:class:`BatchSimulationService` wires the four other service parts
together: jobs are admitted through the bounded
:class:`~repro.service.queue.JobQueue`, ordered by the
:class:`~repro.service.scheduler.FairScheduler`, merged by the
:class:`~repro.service.coalesce.Coalescer`, and executed by a pool of
:class:`Worker` instances — each owning its own
:class:`~repro.sim.bqsim.BQSimSimulator` (and therefore its own plan
cache), assigned round-robin.

Resilience composes per mega-batch: the simulator's own fault injection,
retries, OOM splitting, health guard, and checkpoints all apply to the
coalesced run exactly as to a solo one.  When a mega-batch still fails
(retries exhausted, health ``fail``, memory fault past the split limit),
the service **degrades to per-job isolation**: every member is re-run
alone on the same worker, so one poisoned job fails alone instead of
failing its cohort.

Every dispatch round appends one JSON-safe record to
:attr:`BatchSimulationService.events` (the queue-metrics stream ``repro
serve --queue-metrics`` writes as JSONL) and emits metrics — queue depth,
wait time, coalesce factor, batch occupancy — plus ``service.*`` tracer
spans, so Perfetto traces show request-level lanes above the modeled GPU
engine lanes.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..circuit import Circuit, InputBatch
from ..circuit.inputs import random_batch
from ..ell.persist import plan_fingerprint
from ..errors import ReproError, ServiceError
from ..gpu.spec import GpuSpec
from ..obs import get_metrics, get_tracer
from ..obs.lifecycle import JobLifecycleLog
from ..obs.slo import SLOTracker
from ..resilience import get_resilience_log
from ..sim.base import BatchSpec
from ..sim.bqsim import BQSimSimulator
from .coalesce import DEFAULT_MAX_COLUMNS, CoalescedGroup, Coalescer
from .jobs import Job, JobStatus, make_job
from .pool import DEFAULT_SHM_THRESHOLD, ProcessWorkerPool
from .queue import DEFAULT_MAX_DEPTH, JobQueue
from .scheduler import FairScheduler, SchedulerPolicy


class Worker:
    """One executor: a dedicated simulator plus its plan cache.

    The serial (``parallelism="none"``) execution unit: it runs
    mega-batches inline through its own :class:`BQSimSimulator` and
    tallies per-worker accounting (mega-batches run, solo-isolation
    retries, jobs finished) that ``service.stats()["workers"]``
    surfaces.  Example::

        worker = Worker(0, BQSimSimulator())
        assert worker.megabatches == 0 and worker.jobs_done == 0
    """

    def __init__(self, wid: int, simulator: BQSimSimulator) -> None:
        self.wid = wid
        self.simulator = simulator
        self.megabatches = 0
        self.solo_runs = 0
        self.jobs_done = 0

    def run_group(self, group: CoalescedGroup, spec, batches):
        """One coalesced simulator call for the whole cohort."""
        self.megabatches += 1
        return self.simulator.run(
            group.circuit, spec, batches=batches, execute=True
        )

    def run_solo(self, job: Job):
        """Isolated fallback run for one member of a failed cohort."""
        self.solo_runs += 1
        spec = BatchSpec(num_batches=1, batch_size=job.num_inputs, seed=0)
        return self.simulator.run(
            job.circuit, spec, batches=[job.batch], execute=True
        )


class BatchSimulationService:
    """In-process serving layer over :class:`BQSimSimulator`.

    Synchronous by design: :meth:`submit` admits jobs, :meth:`step` runs
    one dispatch round (schedule, coalesce, execute, scatter), and
    :meth:`drain` steps until the queue is empty.  Determinism: with an
    injected ``clock`` the whole schedule is a pure function of the
    submission sequence, which is what the fairness tests rely on.

    ``parallelism`` selects the execution backend:

    * ``"none"`` (default) — mega-batches run serially on in-process
      :class:`Worker` simulators, round-robin;
    * ``"process"`` — mega-batches are dispatched to an N-process
      :class:`~repro.service.pool.ProcessWorkerPool` whose workers share
      one on-disk plan cache; :meth:`step` fills every idle worker, then
      blocks for at least one completion.  Results are bit-identical to
      serial mode for any worker count.

    Example::

        service = BatchSimulationService(num_workers=2)
        job = service.submit(make_circuit("ghz", 4), num_inputs=8)
        service.drain()
        amplitudes = job.result  # (16, 8) complex matrix
    """

    def __init__(
        self,
        num_workers: int = 1,
        max_depth: int = DEFAULT_MAX_DEPTH,
        max_columns: int = DEFAULT_MAX_COLUMNS,
        max_jobs_per_batch: int | None = None,
        policy: SchedulerPolicy | None = None,
        clock=time.monotonic,
        gpu: GpuSpec | None = None,
        simulator_kwargs: dict | None = None,
        parallelism: str = "none",
        shm_threshold: int = DEFAULT_SHM_THRESHOLD,
    ) -> None:
        if num_workers < 1:
            raise ServiceError("service needs at least one worker")
        if parallelism not in ("none", "process"):
            raise ServiceError(
                f"unknown parallelism {parallelism!r}"
                " (expected 'none' or 'process')"
            )
        self.clock = clock
        self.gpu = gpu or GpuSpec()
        self.parallelism = parallelism
        self.num_workers = num_workers
        kwargs = dict(simulator_kwargs or {})
        kwargs.setdefault("gpu", self.gpu)
        self._simulator_kwargs = kwargs
        self._shm_threshold = shm_threshold
        self._pool: ProcessWorkerPool | None = None
        #: pool tasks dispatched but not yet collected:
        #: task_id -> (group, event record, dispatch perf_counter)
        self._inflight: dict[int, tuple] = {}
        if parallelism == "process":
            self.workers: list[Worker] = []
            self._template = BQSimSimulator(**kwargs)
        else:
            self.workers = [
                Worker(i, BQSimSimulator(**kwargs)) for i in range(num_workers)
            ]
            self._template = self.workers[0].simulator
        #: private per-service lifecycle log + SLO fold (concurrent services
        #: never mix their jobs); shared with queue/scheduler/coalescer
        self.lifecycle = JobLifecycleLog(clock=clock)
        self.slo = SLOTracker().attach(self.lifecycle)
        self.queue = JobQueue(
            max_depth=max_depth, clock=clock, lifecycle=self.lifecycle
        )
        self.scheduler = FairScheduler(policy, lifecycle=self.lifecycle)
        self.coalescer = Coalescer(
            self.gpu, max_columns=max_columns, max_jobs=max_jobs_per_batch,
            lifecycle=self.lifecycle,
        )
        #: every job ever admitted, by id (terminal jobs stay addressable)
        self.jobs: dict[str, Job] = {}
        #: JSON-safe queue-metrics records, one per dispatch round/rejection
        self.events: list[dict] = []
        self._seq = 0
        self._rr = 0
        self._completed = 0
        self._failed = 0
        self._degraded_groups = 0
        self._modeled_s = 0.0
        self._wall_s = 0.0
        self._inputs_done = 0

    # -- submission ----------------------------------------------------------

    def _group_key(self, circuit: Circuit, options: tuple) -> str:
        """Coalescing compatibility key: the worker simulators' plan
        fingerprint (identical across the pool) plus per-job options."""
        extra = self._template._cache_extra() + tuple(options)
        return plan_fingerprint(circuit, extra)

    def submit(
        self,
        circuit: Circuit,
        batch: InputBatch | None = None,
        *,
        num_inputs: int = 1,
        priority: int = 0,
        deadline: float | None = None,
        options: tuple = (),
    ) -> Job:
        """Admit one job; raises :class:`AdmissionError` on backpressure.

        ``batch`` defaults to ``num_inputs`` seeded random states (seeded
        by the submission sequence, so a replayed script submits identical
        jobs).  ``deadline`` is absolute service-clock time.
        """
        if batch is None:
            batch = random_batch(circuit.num_qubits, num_inputs, self._seq)
        job = make_job(
            self._seq, circuit, batch,
            priority=priority, deadline=deadline, options=options,
        )
        job.group_key = self._group_key(circuit, job.options)
        self.lifecycle.emit(
            "submitted", job.job_id, t=self.clock(),
            priority=priority, circuit=circuit.name,
            inputs=job.num_inputs, deadline=deadline,
        )
        with get_tracer().span(
            "service.submit",
            job=job.job_id,
            circuit=circuit.name,
            inputs=job.num_inputs,
            priority=priority,
        ):
            try:
                self.queue.admit(job)
            except Exception:
                self.events.append(
                    {
                        "event": "reject",
                        "t": self.clock(),
                        "job": job.job_id,
                        "queue_depth": self.queue.depth(),
                    }
                )
                raise
        self._seq += 1
        self.jobs[job.job_id] = job
        return job

    def cancel(self, job_id: str) -> Job:
        return self.queue.cancel(job_id)

    def job(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job id {job_id!r}") from None

    # -- dispatch ------------------------------------------------------------

    def step(self) -> int:
        """One dispatch round; returns the number of jobs finished (0 when
        idle).

        Serial mode executes one coalesced group inline.  Process mode
        collects any finished pool results, fills every idle worker with
        a freshly coalesced group, and — when nothing had finished but
        work is in flight — blocks for at least one completion so
        callers polling ``step() == 0`` still mean "service idle".
        """
        if self.parallelism == "process":
            return self._step_pool()
        now = self.clock()
        queued = self.queue.jobs()
        head = self.scheduler.select(queued, now)
        if head is None:
            return 0
        ranked = self.scheduler.rank(queued, now)
        group = self.coalescer.build_group(head, ranked)
        self.queue.take(list(group.jobs))
        worker = self.workers[self._rr % len(self.workers)]
        self._rr += 1
        return self._execute(worker, group)

    def drain(self, max_rounds: int | None = None) -> dict:
        """Step until the queue (and any in-flight pool work) is empty;
        returns :meth:`stats`."""
        rounds = 0
        while self.queue.depth() > 0 or self._inflight:
            if max_rounds is not None and rounds >= max_rounds:
                break
            self.step()
            rounds += 1
        return self.stats()

    def close(self) -> None:
        """Release execution resources (stops the process pool, if any)."""
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "BatchSimulationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution -----------------------------------------------------------

    def _emit_terminal(
        self,
        job: Job,
        *,
        worker: int | None = None,
        wall_s: float | None = None,
        modeled_s: float | None = None,
    ) -> None:
        """One ``done``/``failed`` lifecycle event carrying everything the
        :class:`~repro.obs.slo.SLOTracker` folds: latency, queue age,
        deadline verdict, degradation flag, and run durations."""
        stage = "done" if job.status is JobStatus.DONE else "failed"
        latency = (
            job.finished_at - job.submitted_at
            if job.finished_at is not None else None
        )
        missed = (
            job.deadline is not None
            and job.finished_at is not None
            and job.finished_at > job.deadline
        )
        self.lifecycle.emit(
            stage, job.job_id, t=job.finished_at,
            priority=job.priority,
            latency_s=latency,
            queue_age_s=job.wait_time(),
            deadline=job.deadline,
            deadline_miss=missed,
            solo_retry=job.solo_retry,
            attempts=job.attempts,
            worker=worker,
            wall_s=wall_s,
            modeled_s=modeled_s,
            error=job.error,
        )

    def _emit_executing(
        self, group: CoalescedGroup, now: float, worker: int
    ) -> None:
        for job in group.jobs:
            self.lifecycle.emit(
                "executing", job.job_id, t=now,
                priority=job.priority,
                worker=worker,
                queue_age_s=job.wait_time(),
                coalesce_factor=group.coalesce_factor,
            )

    def _execute(self, worker: Worker, group: CoalescedGroup) -> int:
        now = self.clock()
        metrics = get_metrics()
        waits = [job.wait_time(now) for job in group.jobs]
        for job in group.jobs:
            job.transition(JobStatus.RUNNING)
            job.started_at = now
            job.attempts += 1
            metrics.observe("service.wait_s", job.wait_time())
        self._emit_executing(group, now, worker.wid)
        spec, batches, pad = self.coalescer.mega_batches(group)
        record = {
            "event": "megabatch",
            "t": now,
            "worker": worker.wid,
            "group": group.key[:12],
            "circuit": group.circuit.name,
            "jobs": group.coalesce_factor,
            "columns": group.total_columns,
            "batches": spec.num_batches,
            "batch_size": spec.batch_size,
            "pad": pad,
            "coalesce_factor": group.coalesce_factor,
            "occupancy": group.total_columns / spec.num_inputs,
            "wait_mean_s": float(np.mean(waits)),
            "wait_max_s": float(np.max(waits)),
        }
        wall0 = time.perf_counter()
        finished = 0
        try:
            with get_tracer().span(
                "service.megabatch",
                group=group.key[:12],
                circuit=group.circuit.name,
                jobs=group.coalesce_factor,
                job_ids=[job.job_id for job in group.jobs],
                columns=group.total_columns,
                worker=worker.wid,
            ):
                result = worker.run_group(group, spec, batches)
        except ReproError as exc:
            record["degraded"] = True
            record["error"] = str(exc)
            finished = self._degrade(worker, group, exc)
        else:
            per_job = Coalescer.scatter(group, result.outputs)
            done_at = self.clock()
            wall_s = time.perf_counter() - wall0
            for job in group.jobs:
                job.finish(per_job[job.job_id], done_at)
                self._emit_terminal(
                    job, worker=worker.wid, wall_s=wall_s,
                    modeled_s=result.modeled_time,
                )
            finished = len(group.jobs)
            worker.jobs_done += finished
            self._completed += finished
            self._inputs_done += group.total_columns
            self._modeled_s += result.modeled_time
            record["degraded"] = False
            record["modeled_s"] = result.modeled_time
            metrics.inc("service.completed", finished)
        record["wall_s"] = time.perf_counter() - wall0
        record["queue_depth"] = self.queue.depth()
        self._wall_s += record["wall_s"]
        metrics.inc("service.megabatches")
        metrics.gauge("service.queue_depth", self.queue.depth())
        self.events.append(record)
        return finished

    def _degrade(
        self, worker: Worker, group: CoalescedGroup, cause: ReproError
    ) -> int:
        """Per-job isolation fallback after a failed mega-batch.

        Each member re-runs alone; members that fail even solo go FAILED
        with their own error, the rest complete normally — the poisoned
        job cannot take its cohort down.
        """
        self._degraded_groups += 1
        metrics = get_metrics()
        metrics.inc("service.degraded_groups")
        get_resilience_log().record(
            "degrade",
            site="service",
            group=group.key[:12],
            jobs=group.coalesce_factor,
            reason=str(cause),
        )
        finished = 0
        for job in group.jobs:
            solo0 = time.perf_counter()
            try:
                with get_tracer().span(
                    "service.solo_retry", job=job.job_id, worker=worker.wid
                ):
                    result = worker.run_solo(job)
            except ReproError as exc:
                job.fail(str(exc), self.clock())
                self._failed += 1
                metrics.inc("service.failed")
                self._emit_terminal(
                    job, worker=worker.wid,
                    wall_s=time.perf_counter() - solo0,
                )
            else:
                job.solo_retry = True
                job.finish(result.outputs[0], self.clock())
                worker.jobs_done += 1
                self._completed += 1
                self._inputs_done += job.num_inputs
                self._modeled_s += result.modeled_time
                metrics.inc("service.completed")
                self._emit_terminal(
                    job, worker=worker.wid,
                    wall_s=time.perf_counter() - solo0,
                    modeled_s=result.modeled_time,
                )
            finished += 1
        return finished

    # -- process-pool execution ----------------------------------------------

    def _ensure_pool(self) -> ProcessWorkerPool:
        if self._pool is None:
            self._pool = ProcessWorkerPool(
                self.num_workers,
                simulator_kwargs=self._simulator_kwargs,
                shm_threshold=self._shm_threshold,
            )
        return self._pool

    def _step_pool(self) -> int:
        pool = self._ensure_pool()
        finished = sum(self._finalize_pool(r) for r in pool.poll())
        while pool.idle_workers > 0:
            now = self.clock()
            queued = self.queue.jobs()
            head = self.scheduler.select(queued, now)
            if head is None:
                break
            ranked = self.scheduler.rank(queued, now)
            group = self.coalescer.build_group(head, ranked)
            self.queue.take(list(group.jobs))
            self._dispatch_pool(pool, group)
        if finished == 0 and self._inflight:
            finished = sum(
                self._finalize_pool(r) for r in pool.poll(block=True)
            )
        return finished

    def _dispatch_pool(
        self, pool: ProcessWorkerPool, group: CoalescedGroup
    ) -> int:
        """Hand one coalesced group to an idle pool worker (non-blocking)."""
        now = self.clock()
        metrics = get_metrics()
        waits = [job.wait_time(now) for job in group.jobs]
        for job in group.jobs:
            job.transition(JobStatus.RUNNING)
            job.started_at = now
            job.attempts += 1
            metrics.observe("service.wait_s", job.wait_time())
        spec, mega, pad = self.coalescer.mega_block(group)
        with get_tracer().span(
            "service.dispatch",
            group=group.key[:12],
            circuit=group.circuit.name,
            jobs=group.coalesce_factor,
            job_ids=[job.job_id for job in group.jobs],
            columns=group.total_columns,
        ):
            task_id, wid = pool.submit(
                group.circuit,
                spec,
                mega,
                group.total_columns,
                [job.num_inputs for job in group.jobs],
                job_ids=[job.job_id for job in group.jobs],
            )
        self._emit_executing(group, now, wid)
        record = {
            "event": "megabatch",
            "t": now,
            "worker": wid,
            "group": group.key[:12],
            "circuit": group.circuit.name,
            "jobs": group.coalesce_factor,
            "columns": group.total_columns,
            "batches": spec.num_batches,
            "batch_size": spec.batch_size,
            "pad": pad,
            "coalesce_factor": group.coalesce_factor,
            "occupancy": group.total_columns / spec.num_inputs,
            "wait_mean_s": float(np.mean(waits)),
            "wait_max_s": float(np.max(waits)),
        }
        self._inflight[task_id] = (group, record, time.perf_counter())
        return task_id

    def _finalize_pool(self, raw: dict) -> int:
        """Scatter one collected pool result back to its member jobs.

        The happy path mirrors serial ``_execute``; a degraded result
        carries per-job outcomes from the worker's own isolation retries
        (``per_job is None`` means the worker died — every member fails).
        """
        group, record, wall0 = self._inflight.pop(raw["task_id"])
        metrics = get_metrics()
        done_at = self.clock()
        merged = raw["outputs"]
        finished = 0
        wall_s = time.perf_counter() - wall0
        if not raw["degraded"]:
            for job, start, stop in group.offsets():
                job.finish(merged[:, start:stop], done_at)
                self._emit_terminal(
                    job, worker=raw["wid"], wall_s=wall_s,
                    modeled_s=raw["modeled_s"],
                )
            finished = len(group.jobs)
            self._completed += finished
            self._inputs_done += group.total_columns
            self._modeled_s += raw["modeled_s"]
            record["degraded"] = False
            record["modeled_s"] = raw["modeled_s"]
            metrics.inc("service.completed", finished)
        else:
            self._degraded_groups += 1
            metrics.inc("service.degraded_groups")
            get_resilience_log().record(
                "degrade",
                site="service",
                group=group.key[:12],
                jobs=group.coalesce_factor,
                reason=raw["cause"] or "",
            )
            record["degraded"] = True
            record["error"] = raw["cause"]
            outcomes = raw["per_job"]
            for idx, (job, start, stop) in enumerate(group.offsets()):
                outcome = (
                    outcomes[idx]
                    if outcomes and idx < len(outcomes)
                    else {"ok": False, "error": raw["cause"]}
                )
                if outcome["ok"] and merged is not None:
                    job.solo_retry = True
                    job.finish(merged[:, start:stop], done_at)
                    self._completed += 1
                    self._inputs_done += job.num_inputs
                    metrics.inc("service.completed")
                else:
                    job.fail(
                        outcome["error"] or raw["cause"] or "megabatch failed",
                        done_at,
                    )
                    self._failed += 1
                    metrics.inc("service.failed")
                self._emit_terminal(job, worker=raw["wid"], wall_s=wall_s)
                finished += 1
            self._modeled_s += raw["modeled_s"]
        record["wall_s"] = time.perf_counter() - wall0
        record["queue_depth"] = self.queue.depth()
        self._wall_s += record["wall_s"]
        metrics.inc("service.megabatches")
        metrics.gauge("service.queue_depth", self.queue.depth())
        self.events.append(record)
        return finished

    # -- reporting -----------------------------------------------------------

    def stats(self) -> dict:
        """JSON-safe service-level summary (the serve CLI prints this)."""
        mega = [e for e in self.events if e["event"] == "megabatch"]
        factors = [e["coalesce_factor"] for e in mega]
        occupancy = [e["occupancy"] for e in mega]
        waits = [e["wait_max_s"] for e in mega]
        if self._pool is not None:
            worker_summaries = self._pool.worker_summaries()
            plan_cache = self._pool.plan_cache_totals()
        else:
            worker_summaries = [
                {
                    "wid": w.wid,
                    "megabatches": w.megabatches,
                    "solo_runs": w.solo_runs,
                    "jobs_done": w.jobs_done,
                }
                for w in self.workers
            ]
            plan_caches = [
                w.simulator._plans.stats_dict() for w in self.workers
            ]
            plan_cache = {
                key: sum(pc[key] for pc in plan_caches)
                for key in ("hits", "disk_hits", "misses", "quarantined")
            }
        stats = {
            "submitted": self.queue.admitted,
            "rejected": self.queue.rejected,
            "completed": self._completed,
            "failed": self._failed,
            "cancelled": sum(
                1 for j in self.jobs.values()
                if j.status is JobStatus.CANCELLED
            ),
            "queue_depth": self.queue.depth(),
            "megabatches": len(mega),
            "degraded_groups": self._degraded_groups,
            "scheduler_rounds": self.scheduler.rounds,
            "coalesce_factor_mean": float(np.mean(factors)) if factors else 0.0,
            "coalesce_factor_max": max(factors, default=0),
            "occupancy_mean": float(np.mean(occupancy)) if occupancy else 0.0,
            "wait_max_s": max(waits, default=0.0),
            "inputs_done": self._inputs_done,
            "modeled_time_s": self._modeled_s,
            "wall_time_s": self._wall_s,
            "modeled_throughput_inputs_per_s": (
                self._inputs_done / self._modeled_s if self._modeled_s else 0.0
            ),
            "parallelism": self.parallelism,
            "workers": worker_summaries,
            "plan_cache": plan_cache,
        }
        slo = self.slo.summary()
        slo["unaccounted_jobs"] = len(self.lifecycle.unaccounted())
        stats["slo"] = slo
        if self._pool is not None:
            stats["pool"] = self._pool.stats()
        return stats

    def write_queue_metrics(self, path) -> int:
        """Write the per-round event stream as JSONL; returns the count."""
        import json

        with open(path, "w", encoding="utf-8") as fh:
            for event in self.events:
                fh.write(json.dumps(event) + "\n")
        return len(self.events)

    def write_lifecycle(self, path) -> int:
        """Write the per-job lifecycle event log as JSONL; returns count."""
        return self.lifecycle.write_jsonl(path)
