"""Discrete-event engines and timelines for the virtual GPU.

A device exposes three engines — ``compute``, ``h2d`` and ``d2h`` copy —
mirroring a real GPU's SM array and dual DMA engines.  Tasks bound to one
engine execute in submission order (CUDA stream/graph semantics); a task
starts when its engine is free *and* all of its dependencies have finished.
The resulting :class:`Timeline` is the basis for every runtime, overlap, and
power figure in the bench harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import DeviceError

ENGINES = ("compute", "h2d", "d2h", "host")


@dataclass
class Task:
    """One schedulable unit (kernel, memcpy, or host work)."""

    tid: int
    name: str
    engine: str
    duration: float
    deps: tuple[int, ...] = ()
    #: transient-fault retries absorbed by this task (the retry attempts and
    #: modeled backoff are already folded into ``duration``)
    retries: int = 0
    # filled by the scheduler
    start: float = -1.0
    end: float = -1.0

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise DeviceError(f"unknown engine {self.engine!r}")
        if self.duration < 0:
            raise DeviceError(f"negative duration for task {self.name!r}")


@dataclass
class Timeline:
    """Scheduled tasks with derived statistics."""

    tasks: list[Task]

    @property
    def makespan(self) -> float:
        return max((t.end for t in self.tasks), default=0.0)

    def busy_time(self, engine: str) -> float:
        """Total busy seconds of one engine (tasks on an engine never
        overlap, so the plain sum is exact)."""
        return sum(t.duration for t in self.tasks if t.engine == engine)

    def utilization(self, engine: str) -> float:
        span = self.makespan
        return self.busy_time(engine) / span if span > 0 else 0.0

    def engine_tasks(self, engine: str) -> list[Task]:
        return [t for t in self.tasks if t.engine == engine]

    def total_retries(self) -> int:
        """Transient-fault retries absorbed across all scheduled tasks."""
        return sum(t.retries for t in self.tasks)

    def overlap_fraction(self) -> float:
        """Fraction of the makespan during which at least two engines are
        simultaneously busy — the copy/compute overlap the task graph buys."""
        events: list[tuple[float, int]] = []
        for t in self.tasks:
            if t.duration > 0:
                events.append((t.start, 1))
                events.append((t.end, -1))
        events.sort()
        overlap = 0.0
        active = 0
        prev = 0.0
        for time, delta in events:
            if active >= 2:
                overlap += time - prev
            active += delta
            prev = time
        span = self.makespan
        return overlap / span if span > 0 else 0.0

    def validate(self) -> None:
        """Assert scheduling invariants (used by tests)."""
        by_engine: dict[str, list[Task]] = {}
        index = {t.tid: t for t in self.tasks}
        for t in self.tasks:
            if t.start < 0 or t.end < t.start:
                raise DeviceError(f"task {t.name!r} not scheduled")
            for dep in t.deps:
                if index[dep].end > t.start + 1e-12:
                    raise DeviceError(
                        f"task {t.name!r} started before dependency "
                        f"{index[dep].name!r} finished"
                    )
            by_engine.setdefault(t.engine, []).append(t)
        for engine, tasks in by_engine.items():
            tasks.sort(key=lambda t: t.start)
            for a, b in zip(tasks, tasks[1:]):
                if a.end > b.start + 1e-12:
                    raise DeviceError(
                        f"tasks {a.name!r} and {b.name!r} overlap on {engine}"
                    )


def schedule(tasks: Sequence[Task], serialize: bool = False) -> Timeline:
    """List-schedule tasks in submission order.

    ``serialize=True`` models the no-task-graph ablation: every task waits
    for *all* previously submitted tasks (synchronous launches, so copies
    never overlap kernels).
    """
    engine_free: dict[str, float] = {e: 0.0 for e in ENGINES}
    finished: dict[int, float] = {}
    last_end = 0.0
    for task in tasks:
        ready = 0.0
        for dep in task.deps:
            if dep not in finished:
                raise DeviceError(
                    f"task {task.name!r} depends on unsubmitted task {dep}"
                )
            ready = max(ready, finished[dep])
        if serialize:
            ready = max(ready, last_end)
        start = max(ready, engine_free[task.engine])
        task.start = start
        task.end = start + task.duration
        engine_free[task.engine] = task.end
        finished[task.tid] = task.end
        last_end = max(last_end, task.end)
    return Timeline(list(tasks))
