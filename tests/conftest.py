"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import Circuit, random_batch
from repro.circuit.generators import random_circuit
from repro.dd import DDManager


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def mgr4():
    return DDManager(4)


@pytest.fixture
def small_circuit() -> Circuit:
    """A 4-qubit mixed circuit with 1q/2q/controlled/diagonal gates."""
    c = Circuit(4, name="small")
    c.h(0).cx(0, 1).rz(0.3, 2).cz(1, 3).ry(1.1, 3).rzz(0.7, 0, 2)
    c.add("t", 1).swap(1, 2).cp(0.4, 0, 3).x(2)
    return c


@pytest.fixture
def random_circuits():
    """A few random 4-qubit circuits for semantic checks."""
    return [random_circuit(4, 20, seed=s) for s in range(3)]


@pytest.fixture
def batch4():
    return random_batch(4, 6, rng=7)
