"""Extension bench — compiled gather-plan spMM fast path + plan cache.

Two acceptance checks from the compiled-execution-plans work:

* the :class:`~repro.ell.spmm.GatherPlan` fast path is at least 2x faster
  than the seed per-slot loop on a 12-qubit, width-6, batch-256 workload;
* a warm (disk-cached) :class:`~repro.sim.bqsim.BQSimSimulator` run loads
  the compiled plan instead of re-running fusion + conversion, spending
  less prepare+convert wall time than the cold run that built it.
"""

import time

import numpy as np
from conftest import run_once

from repro.circuit.generators import make_circuit
from repro.ell import ELLMatrix, ell_spmm, ell_spmm_loop, gather_plan
from repro.sim import BQSimSimulator, BatchSpec

NUM_QUBITS = 12
WIDTH = 6
BATCH = 256


def structured_ell(num_qubits: int, width: int) -> ELLMatrix:
    """Butterfly-structured ELL matrix (XOR-offset columns), like fused gates."""
    rows = 1 << num_qubits
    offsets = np.array([0, 1, 2, 3, 8, 9][:width], dtype=np.int64)
    cols = np.arange(rows, dtype=np.int64)[:, None] ^ offsets[None, :]
    rng = np.random.default_rng(99)
    values = rng.standard_normal((rows, width)) + 1j * rng.standard_normal(
        (rows, width)
    )
    return ELLMatrix(num_qubits, values, cols)


def best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def fastpath_speedup() -> dict:
    ell = structured_ell(NUM_QUBITS, WIDTH)
    rng = np.random.default_rng(7)
    rows = 1 << NUM_QUBITS
    states = rng.standard_normal((rows, BATCH)) + 1j * rng.standard_normal(
        (rows, BATCH)
    )
    plan = gather_plan(ell)  # compiled once, outside the timed region
    reference = ell_spmm_loop(ell, states)
    assert np.allclose(ell_spmm(plan, states), reference, rtol=1e-10, atol=1e-10)
    t_loop = best_of(lambda: ell_spmm_loop(ell, states))
    t_plan = best_of(lambda: ell_spmm(plan, states))
    return {
        "loop_s": t_loop,
        "plan_s": t_plan,
        "speedup": t_loop / t_plan,
    }


def cold_warm_cache(cache_dir) -> dict:
    circuit = make_circuit("vqe", 10)
    spec = BatchSpec(num_batches=2, batch_size=32, seed=1)
    cold = BQSimSimulator(cache_dir=cache_dir).run(circuit, spec)
    warm = BQSimSimulator(cache_dir=cache_dir).run(circuit, spec)
    return {
        "cold_source": cold.stats["plan_source"],
        "warm_source": warm.stats["plan_source"],
        "cold_cache": cold.stats["plan_cache"],
        "warm_cache": warm.stats["plan_cache"],
        "cold_compile_s": cold.stats["wall_breakdown"]["fusion"]
        + cold.stats["wall_breakdown"]["convert"],
        "warm_compile_s": warm.stats["wall_breakdown"]["fusion"]
        + warm.stats["wall_breakdown"]["convert"],
        "outputs_equal": all(
            np.array_equal(a, b) for a, b in zip(cold.outputs, warm.outputs)
        ),
    }


def test_gather_plan_speedup(benchmark):
    row = run_once(benchmark, fastpath_speedup)
    # acceptance: >= 2x over the seed per-slot loop on 12q/width-6/batch-256
    assert row["speedup"] >= 2.0, row


def test_plan_cache_warm_start(benchmark, tmp_path):
    row = run_once(benchmark, cold_warm_cache, tmp_path / "plans")
    assert row["cold_source"] == "built"
    assert row["warm_source"] == "disk"
    # per-cache accounting distinguishes the cold (miss) from warm (disk hit)
    assert row["cold_cache"]["misses"] == 1 and row["cold_cache"]["disk_hits"] == 0
    assert row["warm_cache"]["disk_hits"] == 1 and row["warm_cache"]["misses"] == 0
    assert row["outputs_equal"]
    # the warm run loads the archive instead of fusing + converting
    assert row["warm_compile_s"] < row["cold_compile_s"], row
