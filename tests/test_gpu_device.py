"""Tests for the virtual GPU device and task graph."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.gpu import GpuSpec, TaskGraph, VirtualGPU


def test_alloc_and_free_accounting():
    gpu = VirtualGPU()
    buf = gpu.alloc("a", 1024)
    assert gpu.allocated_bytes == 1024
    gpu.free(buf)
    assert gpu.allocated_bytes == 0


def test_alloc_duplicate_name_rejected():
    gpu = VirtualGPU()
    gpu.alloc("a", 16)
    with pytest.raises(DeviceError, match="already"):
        gpu.alloc("a", 16)


def test_out_of_memory_rejected():
    gpu = VirtualGPU(GpuSpec(memory_bytes=100))
    with pytest.raises(DeviceError, match="out of memory"):
        gpu.alloc("big", 200)


def test_free_unknown_buffer_rejected():
    gpu = VirtualGPU()
    buf = gpu.alloc("a", 16)
    gpu.free(buf)
    with pytest.raises(DeviceError, match="not allocated"):
        gpu.free(buf)


def test_h2d_stores_private_copy():
    gpu = VirtualGPU()
    buf = gpu.alloc("a", 64)
    host = np.arange(4, dtype=np.complex128)
    gpu.h2d(buf, host)
    host[:] = 0
    assert np.array_equal(buf.array, np.arange(4))


def test_h2d_overflow_rejected():
    gpu = VirtualGPU()
    buf = gpu.alloc("a", 16)
    with pytest.raises(DeviceError, match="copy of"):
        gpu.h2d(buf, np.zeros(64, dtype=np.complex128))


def test_d2h_snapshots():
    gpu = VirtualGPU()
    buf = gpu.alloc("a", 64)
    gpu.h2d(buf, np.ones(4, dtype=np.complex128))
    _, snap = gpu.d2h(buf)
    buf.array[:] = 0
    assert np.array_equal(snap, np.ones(4))


def test_read_before_write_rejected():
    gpu = VirtualGPU()
    buf = gpu.alloc("a", 64)
    with pytest.raises(DeviceError, match="before any write"):
        gpu.d2h(buf)


def test_kernel_runs_eagerly_and_prices_roofline():
    spec = GpuSpec()
    gpu = VirtualGPU(spec)
    ran = []
    handle = gpu.kernel("k", lambda: ran.append(1), macs=1e9, bytes_moved=0)
    assert ran == [1]
    timeline = gpu.run()
    kernel_task = timeline.tasks[handle.tid]
    assert kernel_task.duration == pytest.approx(
        1e9 / spec.mac_rate + spec.graph_node_overhead
    )


def test_kernel_duration_override():
    gpu = VirtualGPU()
    handle = gpu.kernel("k", lambda: None, duration=0.5)
    timeline = gpu.run()
    assert timeline.tasks[handle.tid].duration == pytest.approx(
        0.5 + gpu.spec.graph_node_overhead
    )


def test_graph_mode_cheaper_than_stream_mode():
    def build(mode):
        gpu = VirtualGPU(mode=mode)
        prev = []
        for i in range(50):
            handle = gpu.raw_task(f"k{i}", "compute", 1e-6, prev)
            prev = [handle]
        return gpu.run().makespan

    assert build("graph") < build("stream")


def test_stream_mode_serializes_engines():
    gpu = VirtualGPU(mode="stream")
    gpu.raw_task("copy", "h2d", 1e-3)
    gpu.raw_task("kernel", "compute", 1e-3)
    timeline = gpu.run()
    assert timeline.overlap_fraction() == 0.0


def test_graph_mode_allows_overlap():
    gpu = VirtualGPU(mode="graph")
    gpu.raw_task("copy", "h2d", 1e-3)
    gpu.raw_task("kernel", "compute", 1e-3)
    timeline = gpu.run()
    assert timeline.overlap_fraction() > 0.9


def test_task_graph_rejects_bad_mode():
    with pytest.raises(DeviceError, match="mode"):
        TaskGraph(GpuSpec(), mode="warp")


def test_task_graph_rejects_future_dependency():
    graph = TaskGraph(GpuSpec())
    handle = graph.add("a", "compute", 1.0)
    handle.tid = 99
    with pytest.raises(DeviceError, match="dependency"):
        graph.add("b", "compute", 1.0, deps=[handle])


def test_spec_kernel_time_roofline():
    spec = GpuSpec()
    compute_bound = spec.kernel_time(macs=1e12, bytes_moved=1)
    memory_bound = spec.kernel_time(macs=1, bytes_moved=1e12)
    assert compute_bound == pytest.approx(1e12 / spec.mac_rate)
    assert memory_bound == pytest.approx(1e12 / spec.mem_bandwidth)


def test_conversion_time_grows_with_edges():
    spec = GpuSpec()
    few = spec.conversion_time(1024, 2, 10)
    many = spec.conversion_time(1024, 2, 10000)
    assert many > few
