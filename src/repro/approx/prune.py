"""Fidelity-budgeted DD approximation: edge pruning with renormalization.

Following Hillmich et al. ("As Accurate as Needed, as Efficient as
Possible"), a decision diagram can trade *bounded* fidelity for size by
dropping low-weight branches: child edges whose stored weight magnitude
falls below a threshold become zero edges, and the surviving diagram is
rebuilt through the manager so hash-consing and max-magnitude
normalization keep it canonical.  Because fused-gate weights are stored
normalized (every child weight has ``|w| <= 1`` relative to its
strongest sibling), a single threshold on stored weights is well-scaled
across the whole diagram.

The pass is *budgeted*, not best-effort: every pruned gate's fidelity is
measured **exactly** on the DDs (a Hilbert-Schmidt overlap, no dense
expansion), the per-gate fidelities compose multiplicatively into the
plan-level :class:`FidelityLedger`, and a gate is only accepted at a
threshold whose measured fidelity keeps the running product at or above
the end-to-end budget.  When no rung of the threshold ladder fits, the
gate is kept exact — so ``achieved >= budget`` holds by construction,
and a violation raises :class:`~repro.errors.ApproximationError` rather
than shipping a silently-degraded result.

Drift accounting reuses the resilience event log: every pruned gate
records a ``fidelity_drift`` event (site ``approx``), so approximation
shows up in ``stats["resilience"]`` next to retries and renormalizations
and is auditable per run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..dd.algebra import hilbert_schmidt
from ..dd.export import count_edges, count_nodes
from ..dd.manager import DDManager
from ..dd.node import Edge, ZERO_EDGE
from ..errors import ApproximationError
from ..fusion.cost import bqcs_cost, total_nonzeros
from ..fusion.plan import FusedGate, FusionPlan
from ..obs import get_metrics
from ..resilience.events import get_resilience_log

#: descending prune thresholds tried per gate (most aggressive first);
#: stored child weights are normalized to ``|w| <= 1``, so 0.5 prunes
#: everything weaker than half the strongest sibling
THRESHOLD_LADDER = (0.5, 0.25, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001)


def prune_edge(mgr: DDManager, edge: Edge, threshold: float) -> tuple[Edge, int]:
    """Drop child edges with stored ``|weight| < threshold`` and rebuild.

    Returns ``(pruned_edge, dropped_branches)``.  The rebuild goes through
    :meth:`DDManager.make_mnode`, so renormalization (max-magnitude child
    back to weight ~1) and hash-consing are free; a subtree whose children
    all vanish collapses to the zero edge and the drop propagates upward.

    Example::

        >>> from repro.circuit.generators import make_circuit
        >>> from repro.dd.build import gate_matrix_dd
        >>> from repro.dd.manager import DDManager
        >>> circuit = make_circuit("qft", 3)
        >>> mgr = DDManager(3)
        >>> dd = gate_matrix_dd(mgr, circuit.gates[0])
        >>> pruned, dropped = prune_edge(mgr, dd, 0.0)
        >>> (pruned, dropped) == (dd, 0)   # threshold 0 is the identity
        True
    """
    if edge.is_zero or edge.is_terminal or threshold <= 0.0:
        return edge, 0
    memo: dict[int, Edge] = {}
    dropped = 0

    def rec(e: Edge) -> Edge:
        nonlocal dropped
        if e.weight == 0:
            return ZERO_EDGE
        if e.node is None:
            return e
        hit = memo.get(e.node.nid)
        if hit is None:
            children = []
            for child in e.node.children:
                if child.weight != 0 and abs(child.weight) < threshold:
                    dropped += 1
                    children.append(ZERO_EDGE)
                else:
                    children.append(rec(child))
            hit = mgr.make_mnode(e.node.level, tuple(children))
            memo[e.node.nid] = hit
        return hit.scaled(e.weight)

    return rec(edge), dropped


def gate_fidelity(mgr: DDManager, exact: Edge, approx: Edge) -> float:
    """Scale-invariant gate fidelity ``|tr(a†b)|² / (tr(a†a)·tr(b†b))``.

    This is the squared Hilbert-Schmidt cosine between the two matrices:
    1.0 iff ``approx`` is proportional to ``exact`` (so renormalization
    never changes it), strictly below 1.0 once structure was lost.  For a
    unitary ``exact`` and ``approx == exact`` it reduces to the usual
    process fidelity.  Computed entirely on the DDs.

    Example::

        >>> from repro.circuit.generators import make_circuit
        >>> from repro.dd.build import gate_matrix_dd
        >>> from repro.dd.manager import DDManager
        >>> circuit = make_circuit("ghz", 2)
        >>> mgr = DDManager(2)
        >>> dd = gate_matrix_dd(mgr, circuit.gates[0])
        >>> round(gate_fidelity(mgr, dd, dd), 12)
        1.0
    """
    norm_a = hilbert_schmidt(mgr, exact, exact).real
    norm_b = hilbert_schmidt(mgr, approx, approx).real
    if norm_a <= 0.0 or norm_b <= 0.0:
        return 0.0
    overlap = abs(hilbert_schmidt(mgr, exact, approx)) ** 2
    return min(1.0, overlap / (norm_a * norm_b))


def renormalize(mgr: DDManager, exact: Edge, approx: Edge) -> Edge:
    """Rescale ``approx`` so its Hilbert-Schmidt norm matches ``exact``.

    Pruning only removes amplitude, so the raw pruned matrix is slightly
    sub-normalized; scaling the root weight by ``sqrt(tr(a†a)/tr(b†b))``
    restores the average amplitude norm a state picks up passing through
    the gate (the DD analogue of renormalizing a truncated state vector).
    """
    norm_a = hilbert_schmidt(mgr, exact, exact).real
    norm_b = hilbert_schmidt(mgr, approx, approx).real
    if norm_b <= 0.0:
        return approx
    return approx.scaled(math.sqrt(norm_a / norm_b))


@dataclass(frozen=True)
class GateApproximation:
    """The ledger line for one fused gate: what was pruned, at what cost."""

    gate_index: int
    threshold: float
    fidelity: float
    nodes_before: int
    nodes_after: int
    edges_before: int
    edges_after: int
    cost_before: int
    cost_after: int
    dropped_branches: int

    def to_dict(self) -> dict:
        return {
            "gate_index": self.gate_index,
            "threshold": self.threshold,
            "fidelity": self.fidelity,
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
            "edges_before": self.edges_before,
            "edges_after": self.edges_after,
            "cost_before": self.cost_before,
            "cost_after": self.cost_after,
            "dropped_branches": self.dropped_branches,
        }


@dataclass
class FidelityLedger:
    """Running account of how a plan's fidelity budget was spent.

    Per-gate fidelities compose multiplicatively: if gate ``i`` was
    replaced by an approximation with fidelity ``f_i``, the end-to-end
    guarantee is ``achieved = Π f_i >= budget``.  Gates left exact
    contribute ``f_i = 1`` and no ledger line.
    """

    budget: float
    num_gates: int = 0
    gates: list[GateApproximation] = field(default_factory=list)

    @property
    def achieved(self) -> float:
        product = 1.0
        for gate in self.gates:
            product *= gate.fidelity
        return product

    @property
    def pruned_gates(self) -> int:
        return len(self.gates)

    @property
    def dropped_branches(self) -> int:
        return sum(g.dropped_branches for g in self.gates)

    @property
    def nodes_removed(self) -> int:
        return sum(g.nodes_before - g.nodes_after for g in self.gates)

    @property
    def edges_removed(self) -> int:
        return sum(g.edges_before - g.edges_after for g in self.gates)

    def spend(self, gate: GateApproximation) -> None:
        """Append one pruned gate, guarding the budget invariant."""
        self.gates.append(gate)
        if self.achieved < self.budget:
            self.gates.pop()
            raise ApproximationError(
                f"pruning gate {gate.gate_index} at threshold "
                f"{gate.threshold} would drop plan fidelity below the "
                f"budget {self.budget}"
            )

    def to_dict(self) -> dict:
        """JSON-safe summary — the ``stats['approx']`` block."""
        return {
            "budget": self.budget,
            "achieved": self.achieved,
            "num_gates": self.num_gates,
            "pruned_gates": self.pruned_gates,
            "dropped_branches": self.dropped_branches,
            "nodes_removed": self.nodes_removed,
            "edges_removed": self.edges_removed,
            "gates": [g.to_dict() for g in self.gates],
        }


def prune_plan(
    mgr: DDManager,
    plan: FusionPlan,
    budget: float,
    thresholds: tuple[float, ...] = THRESHOLD_LADDER,
) -> tuple[FusionPlan, FidelityLedger]:
    """Approximate a fusion plan under an end-to-end fidelity budget.

    Walks the fused gates in order, allocating each gate a fidelity floor
    of ``(budget / achieved_so_far) ** (1 / gates_remaining)`` — slack
    left by gates that pruned cheaply (or not at all) rolls forward, so
    later gates may prune harder.  Each gate takes the most aggressive
    ladder rung whose *measured* fidelity stays at or above its floor and
    whose pruned matrix is non-zero; accepted gates are renormalized and
    re-costed (BQCS max NZR + nnz recomputed on the pruned DD), rejected
    gates stay exact.  ``budget >= 1.0`` is the exact path: the plan is
    returned untouched, bit-identical downstream.

    Returns the (possibly new) plan plus the :class:`FidelityLedger`;
    ``ledger.achieved >= budget`` always holds.
    """
    if not 0.0 < budget <= 1.0:
        raise ApproximationError(
            f"fidelity budget must be in (0, 1], got {budget}"
        )
    ledger = FidelityLedger(budget=budget, num_gates=len(plan.gates))
    if budget >= 1.0 or not plan.gates:
        return plan, ledger

    log = get_resilience_log()
    metrics = get_metrics()
    new_gates: list[FusedGate] = []
    changed = False
    total = len(plan.gates)
    for index, fused in enumerate(plan.gates):
        remaining = total - index
        floor = min(1.0, (budget / ledger.achieved) ** (1.0 / remaining))
        accepted: GateApproximation | None = None
        accepted_dd: Edge | None = None
        for threshold in thresholds:
            pruned_dd, dropped = prune_edge(mgr, fused.dd, threshold)
            if dropped == 0:
                break  # smaller thresholds prune strictly less: keep exact
            if pruned_dd.is_zero:
                continue
            fidelity = gate_fidelity(mgr, fused.dd, pruned_dd)
            if fidelity < floor:
                continue
            pruned_dd = renormalize(mgr, fused.dd, pruned_dd)
            accepted = GateApproximation(
                gate_index=index,
                threshold=threshold,
                fidelity=fidelity,
                nodes_before=count_nodes(fused.dd),
                nodes_after=count_nodes(pruned_dd),
                edges_before=count_edges(fused.dd),
                edges_after=count_edges(pruned_dd),
                cost_before=fused.cost,
                cost_after=bqcs_cost(mgr, pruned_dd),
                dropped_branches=dropped,
            )
            accepted_dd = pruned_dd
            break
        if accepted is None or accepted_dd is None:
            new_gates.append(fused)
            continue
        ledger.spend(accepted)
        changed = True
        new_gates.append(
            FusedGate(
                dd=accepted_dd,
                cost=accepted.cost_after,
                gate_indices=fused.gate_indices,
                nnz=total_nonzeros(mgr, accepted_dd),
            )
        )
        log.record(
            "fidelity_drift",
            site="approx",
            gate=index,
            threshold=accepted.threshold,
            fidelity=accepted.fidelity,
            budget=budget,
            dropped_branches=accepted.dropped_branches,
        )
        metrics.inc("approx.pruned_gates")
        metrics.inc("approx.dropped_branches", accepted.dropped_branches)

    if ledger.achieved < budget:  # unreachable by construction; keep the guard
        raise ApproximationError(
            f"approximation pass achieved fidelity {ledger.achieved} "
            f"below the budget {budget}"
        )
    if not changed:
        return plan, ledger
    return (
        FusionPlan(
            num_qubits=plan.num_qubits,
            gates=tuple(new_gates),
            algorithm=plan.algorithm,
            source_gate_count=plan.source_gate_count,
        ),
        ledger,
    )
