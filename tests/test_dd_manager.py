"""Tests for DD node construction, normalization, and arithmetic."""

import numpy as np
import pytest

from repro.dd import (
    DDManager,
    ZERO_EDGE,
    matrix_dd_from_dense,
    matrix_to_dense,
    vector_dd_from_dense,
    vector_to_dense,
)
from repro.dd.node import Edge
from repro.errors import DDError


def rand_unitary(n, rng):
    m = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    q, _ = np.linalg.qr(m)
    return q


def test_make_mnode_normalizes_by_max_magnitude(mgr4):
    t = mgr4.terminal(1.0)
    edge = mgr4.make_mnode(0, (t.scaled(0.5), ZERO_EDGE, ZERO_EDGE, t.scaled(0.5)))
    assert edge.weight == pytest.approx(0.5)
    assert edge.node.children[0].weight == pytest.approx(1.0)
    # normalization picks the max-magnitude child so |weights| <= 1
    edge = mgr4.make_mnode(0, (t.scaled(0.5), ZERO_EDGE, ZERO_EDGE, t.scaled(-2.0)))
    assert edge.weight == pytest.approx(-2.0)
    assert max(abs(c.weight) for c in edge.node.children) <= 1.0


def test_tiny_amplitudes_survive_roundtrip(mgr4):
    """Regression (found by hypothesis): a near-tolerance amplitude next to
    an O(1) amplitude must not corrupt the sibling during normalization."""
    import numpy as np
    from repro.dd import vector_dd_from_dense, vector_to_dense

    mgr = DDManager(3)
    v = np.array([1 + 2j, 0, 0, 0, 0, 0, 2.74331636e-10j, 1.0])
    out = vector_to_dense(vector_dd_from_dense(mgr, v), 3)
    assert np.abs(out - v).max() < 1e-9


def test_make_mnode_all_zero_collapses(mgr4):
    edge = mgr4.make_mnode(0, (ZERO_EDGE,) * 4)
    assert edge is ZERO_EDGE or edge.weight == 0


def test_unique_table_shares_nodes(mgr4):
    t = mgr4.terminal(1.0)
    a = mgr4.make_mnode(0, (t, ZERO_EDGE, ZERO_EDGE, t))
    b = mgr4.make_mnode(0, (t.scaled(2.0), ZERO_EDGE, ZERO_EDGE, t.scaled(2.0)))
    assert a.node is b.node  # same normalized structure
    assert b.weight == pytest.approx(2.0)


def test_weight_tolerance_snaps_noise(mgr4):
    t = mgr4.terminal(1.0)
    noisy = Edge(t.node, 1.0 + 1e-13)
    a = mgr4.make_mnode(0, (t, ZERO_EDGE, ZERO_EDGE, noisy))
    assert a.node.children[3].weight == 1.0


def test_make_node_level_bounds(mgr4):
    t = mgr4.terminal(1.0)
    with pytest.raises(DDError, match="level"):
        mgr4.make_mnode(4, (t, t, t, t))
    with pytest.raises(DDError, match="level"):
        mgr4.make_mnode(-1, (t, t, t, t))


def test_child_level_invariant(mgr4):
    t = mgr4.terminal(1.0)
    lvl0 = mgr4.make_mnode(0, (t, ZERO_EDGE, ZERO_EDGE, t))
    with pytest.raises(DDError, match="child at level"):
        mgr4.make_mnode(2, (lvl0, ZERO_EDGE, ZERO_EDGE, lvl0))


def test_identity_roundtrip(mgr4):
    ident = mgr4.identity()
    assert np.allclose(matrix_to_dense(ident, 4), np.eye(16))


def test_m_add_matches_dense(rng):
    mgr = DDManager(3)
    a = rand_unitary(8, rng)
    b = rand_unitary(8, rng)
    ea, eb = matrix_dd_from_dense(mgr, a), matrix_dd_from_dense(mgr, b)
    assert np.allclose(matrix_to_dense(mgr.m_add(ea, eb), 3), a + b, atol=1e-9)


def test_mm_multiply_matches_dense(rng):
    mgr = DDManager(3)
    a = rand_unitary(8, rng)
    b = rand_unitary(8, rng)
    ea, eb = matrix_dd_from_dense(mgr, a), matrix_dd_from_dense(mgr, b)
    assert np.allclose(matrix_to_dense(mgr.mm_multiply(ea, eb), 3), a @ b, atol=1e-9)


def test_mv_multiply_matches_dense(rng):
    mgr = DDManager(3)
    a = rand_unitary(8, rng)
    v = rng.standard_normal(8) + 1j * rng.standard_normal(8)
    ea, ev = matrix_dd_from_dense(mgr, a), vector_dd_from_dense(mgr, v)
    assert np.allclose(vector_to_dense(mgr.mv_multiply(ea, ev), 3), a @ v, atol=1e-9)


def test_v_add_matches_dense(rng):
    mgr = DDManager(3)
    u = rng.standard_normal(8) + 1j * rng.standard_normal(8)
    w = rng.standard_normal(8) + 1j * rng.standard_normal(8)
    eu, ew = vector_dd_from_dense(mgr, u), vector_dd_from_dense(mgr, w)
    assert np.allclose(vector_to_dense(mgr.v_add(eu, ew), 3), u + w, atol=1e-9)


def test_add_cancellation_collapses_to_zero(rng):
    mgr = DDManager(2)
    a = rand_unitary(4, rng)
    ea = matrix_dd_from_dense(mgr, a)
    minus = matrix_dd_from_dense(mgr, -a)
    total = mgr.m_add(ea, minus)
    assert total.weight == 0


def test_multiply_zero_edge_short_circuits(mgr4):
    ident = mgr4.identity()
    assert mgr4.mm_multiply(ZERO_EDGE, ident).weight == 0
    assert mgr4.mv_multiply(ident, ZERO_EDGE).weight == 0


def test_misaligned_add_raises(mgr4):
    t = mgr4.terminal(1.0)
    lvl0 = mgr4.make_mnode(0, (t, ZERO_EDGE, ZERO_EDGE, t))
    lvl1 = mgr4.make_mnode(1, (lvl0, ZERO_EDGE, ZERO_EDGE, lvl0))
    with pytest.raises(DDError, match="misaligned"):
        mgr4.m_add(lvl0, lvl1)


def test_concatenate_stacks_vectors(rng):
    mgr = DDManager(3)
    u = rng.standard_normal(4) + 0j
    w = rng.standard_normal(4) + 0j
    mgr3 = DDManager(3)

    def vec2(values):
        t0, t1 = mgr3.terminal(values[0]), mgr3.terminal(values[1])
        lo = mgr3.make_vnode(0, (t0, t1))
        t2, t3 = mgr3.terminal(values[2]), mgr3.terminal(values[3])
        hi = mgr3.make_vnode(0, (t2, t3))
        return mgr3.make_vnode(1, (lo, hi))

    top, bottom = vec2(u), vec2(w)
    stacked = mgr3.v_concatenate(top, bottom, 2)
    assert np.allclose(vector_to_dense(stacked, 3), np.concatenate([u, w]), atol=1e-9)


def test_caches_and_counters(mgr4):
    before = mgr4.num_nodes
    mgr4.identity()
    mgr4.identity()
    assert mgr4.num_nodes == before + 4  # identity chain cached, built once
    mgr4.clear_caches()  # must not break anything
    mgr4.identity()
