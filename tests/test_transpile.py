"""Tests for the transpile passes and pass manager."""

import math

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.circuit.gates import Gate
from repro.circuit.generators import qft, random_circuit, vqe
from repro.errors import CircuitError
from repro.transpile import (
    PASSES,
    PassManager,
    cancel_inverse_pairs,
    circuits_equivalent,
    commute_diagonals_right,
    decompose_to_basis,
    merge_rotations,
    optimize,
    remove_identities,
)


def test_cancel_inverse_pairs_removes_cascades():
    c = Circuit(2)
    c.x(0).x(0).x(0).x(0).h(1).h(1)
    assert len(cancel_inverse_pairs(c)) == 0


def test_cancel_inverse_pairs_handles_s_sdg():
    c = Circuit(1)
    c.add("s", 0).add("sdg", 0).add("t", 0).add("tdg", 0)
    assert len(cancel_inverse_pairs(c)) == 0


def test_cancel_keeps_different_operands():
    c = Circuit(2)
    c.x(0).x(1)
    assert len(cancel_inverse_pairs(c)) == 2


def test_merge_rotations_sums_angles():
    c = Circuit(1)
    c.rz(0.3, 0).rz(0.4, 0)
    merged = merge_rotations(c)
    assert len(merged) == 1
    assert merged[0].params[0] == pytest.approx(0.7)


def test_merge_rotations_drops_zero_sum():
    c = Circuit(1)
    c.ry(1.2, 0).ry(-1.2, 0)
    assert len(merge_rotations(c)) == 0


def test_merge_respects_controls():
    c = Circuit(2)
    c.add("rz", 1, (0.3,), controls=(0,))
    c.rz(0.4, 1)  # different operands (no control) — must not merge
    assert len(merge_rotations(c)) == 2


def test_commute_diagonals_right_preserves_semantics():
    for seed in range(3):
        c = random_circuit(4, 25, seed=seed)
        moved = commute_diagonals_right(c)
        assert len(moved) == len(c)
        assert circuits_equivalent(c, moved)


@pytest.mark.parametrize("seed", range(4))
def test_decompose_to_basis_equivalence(seed):
    c = random_circuit(4, 25, seed=seed)
    basis = decompose_to_basis(c)
    assert circuits_equivalent(c, basis)
    for gate in basis.gates:
        assert gate.name in {"h", "rz", "x", "p"}, gate


def test_decompose_handles_u_gates():
    c = Circuit(1)
    c.add("u3", 0, (0.7, 0.3, 1.1)).add("u2", 0, (0.5, -0.2))
    assert circuits_equivalent(c, decompose_to_basis(c))


def test_decompose_handles_two_qubit_gates():
    c = Circuit(3)
    c.swap(0, 2).rzz(0.8, 1, 2).cz(0, 1).ccx(0, 1, 2)
    assert circuits_equivalent(c, decompose_to_basis(c))


def test_remove_identities():
    c = Circuit(2)
    c.add("id", 0).rz(0.0, 1).h(0)
    assert [g.name for g in remove_identities(c)] == ["h"]


def test_optimize_shrinks_redundant_circuits():
    c = Circuit(3)
    c.h(0).h(0).rz(0.2, 1).rz(0.3, 1).cx(0, 2).cx(0, 2).x(1)
    out = optimize(c, verify=True)
    assert len(out) == 2  # merged rz + the x
    assert circuits_equivalent(c, out)


def test_pass_manager_records_and_verifies():
    pm = PassManager(passes=("cancel_inverse_pairs", "merge_rotations"), verify=True)
    c = Circuit(2)
    c.h(0).h(0).rz(0.1, 1).rz(0.2, 1)
    out = pm.run(c)
    assert len(out) == 1
    assert [r.name for r in pm.records] == ["cancel_inverse_pairs", "merge_rotations"]
    assert "->" in pm.summary()


def test_pass_manager_rejects_unknown_pass():
    with pytest.raises(CircuitError, match="unknown pass"):
        PassManager(passes=("frobnicate",)).run(Circuit(1, [Gate.make("h", [0])]))


def test_pass_manager_catches_broken_pass():
    def broken(circuit):
        out = Circuit(circuit.num_qubits, list(circuit.gates))
        out.x(0)  # changes semantics
        return out

    pm = PassManager(passes=(broken,), verify=True)
    c = Circuit(2)
    c.h(0).cx(0, 1)
    with pytest.raises(CircuitError, match="changed the circuit semantics"):
        pm.run(c)


def test_circuits_equivalent_detects_global_phase():
    a = Circuit(1)
    a.rz(0.5, 0)
    b = Circuit(1)
    b.p(0.5, 0)  # same up to global phase exp(-i*0.25)
    assert circuits_equivalent(a, b)
    c = Circuit(1)
    c.p(0.6, 0)
    assert not circuits_equivalent(a, c)


def test_pipeline_on_benchmark_circuits():
    for circuit in (vqe(8), qft(6)):
        basis = decompose_to_basis(circuit)
        out = optimize(basis)
        assert circuits_equivalent(circuit, out)
        assert len(out) <= len(basis)


def test_registry_contains_all_passes():
    assert set(PASSES) == {
        "cancel_inverse_pairs",
        "merge_rotations",
        "commute_diagonals_right",
        "decompose_to_basis",
        "remove_identities",
    }
