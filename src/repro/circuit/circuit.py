"""Quantum circuit intermediate representation.

A :class:`Circuit` is an ordered list of :class:`~repro.circuit.gates.Gate`
applications over ``num_qubits`` qubits.  Gates are applied left to right:
simulating the circuit computes ``M_{L-1} ... M_1 M_0 |psi>``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import CircuitError
from .gates import Gate


@dataclass
class Circuit:
    """An ordered sequence of gates on a fixed-width qubit register.

    The IR every stage consumes: build it with the fluent gate helpers,
    a generator family (:func:`~repro.circuit.generators.make_circuit`),
    or the OpenQASM 2 parser.  Qubit 0 is the least-significant
    state-index bit (Qiskit convention).  Example::

        circuit = Circuit(2).h(0).cx(0, 1)     # Bell pair
        assert len(circuit) == 2 and circuit.depth() == 2
    """

    num_qubits: int
    gates: list[Gate] = field(default_factory=list)
    name: str = "circuit"

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise CircuitError("circuit needs at least one qubit")
        for gate in self.gates:
            self._check(gate)

    def _check(self, gate: Gate) -> None:
        top = max(gate.all_qubits)
        if top >= self.num_qubits:
            raise CircuitError(
                f"gate {gate} touches qubit {top} but circuit has "
                f"{self.num_qubits} qubit(s)"
            )

    # -- construction -------------------------------------------------------

    def append(self, gate: Gate) -> "Circuit":
        """Append a prebuilt gate; returns ``self`` for chaining."""
        self._check(gate)
        self.gates.append(gate)
        return self

    def add(
        self,
        name: str,
        qubits: Sequence[int] | int,
        params: Sequence[float] = (),
        controls: Sequence[int] = (),
    ) -> "Circuit":
        """Append a gate by name; accepts controlled aliases (``cx``, ...)."""
        if isinstance(qubits, int):
            qubits = (qubits,)
        return self.append(Gate.make(name, qubits, params, controls))

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        for gate in gates:
            self.append(gate)
        return self

    # convenience one-liners used heavily by the generators
    def h(self, q: int) -> "Circuit":
        return self.add("h", q)

    def x(self, q: int) -> "Circuit":
        return self.add("x", q)

    def z(self, q: int) -> "Circuit":
        return self.add("z", q)

    def rx(self, theta: float, q: int) -> "Circuit":
        return self.add("rx", q, (theta,))

    def ry(self, theta: float, q: int) -> "Circuit":
        return self.add("ry", q, (theta,))

    def rz(self, theta: float, q: int) -> "Circuit":
        return self.add("rz", q, (theta,))

    def p(self, lam: float, q: int) -> "Circuit":
        return self.add("p", q, (lam,))

    def cx(self, control: int, target: int) -> "Circuit":
        return self.add("x", target, controls=(control,))

    def cz(self, control: int, target: int) -> "Circuit":
        return self.add("z", target, controls=(control,))

    def cp(self, lam: float, control: int, target: int) -> "Circuit":
        return self.add("p", target, (lam,), controls=(control,))

    def swap(self, a: int, b: int) -> "Circuit":
        return self.add("swap", (a, b))

    def rzz(self, theta: float, a: int, b: int) -> "Circuit":
        return self.add("rzz", (a, b), (theta,))

    def ccx(self, c0: int, c1: int, target: int) -> "Circuit":
        return self.add("x", target, controls=(c0, c1))

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __getitem__(self, index: int) -> Gate:
        return self.gates[index]

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def depth(self) -> int:
        """Number of layers when gates on disjoint qubits run concurrently."""
        frontier = [0] * self.num_qubits
        for gate in self.gates:
            level = 1 + max(frontier[q] for q in gate.all_qubits)
            for q in gate.all_qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def counts(self) -> dict[str, int]:
        """Histogram of gate names (controls folded into the base name)."""
        out: dict[str, int] = {}
        for gate in self.gates:
            key = "c" * len(gate.controls) + gate.name
            out[key] = out.get(key, 0) + 1
        return out

    def fingerprint(self) -> str:
        """Stable structural hash of the circuit (hex digest).

        Covers the qubit count and every gate's name, targets, controls,
        and exact parameter bits (``float.hex``) — but *not* the circuit's
        display name or object identity.  Two structurally identical
        circuits fingerprint equally across processes, which is what lets
        compiled execution plans be cached on disk and shared between
        runs (see :class:`~repro.sim.base.PlanCache`).
        """
        hasher = hashlib.sha256()
        hasher.update(f"repro-circuit-v1:{self.num_qubits}\n".encode())
        for gate in self.gates:
            params = ",".join(float(p).hex() for p in gate.params)
            hasher.update(
                f"{gate.name}|{gate.qubits}|{params}|{gate.controls}\n".encode()
            )
        return hasher.hexdigest()

    def inverse(self) -> "Circuit":
        """Circuit implementing the inverse unitary."""
        inv = Circuit(self.num_qubits, name=f"{self.name}_dg")
        for gate in reversed(self.gates):
            inv.append(gate.dagger())
        return inv

    def to_matrix(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` unitary of the whole circuit (small ``n`` only).

        Intended for validation; refuses to build matrices above 2^12.
        """
        if self.num_qubits > 12:
            raise CircuitError("to_matrix() is limited to 12 qubits")
        dim = 1 << self.num_qubits
        out = np.eye(dim, dtype=np.complex128)
        for gate in self.gates:
            out = gate_unitary(gate, self.num_qubits) @ out
        return out

    def __str__(self) -> str:
        body = "; ".join(str(g) for g in self.gates[:8])
        more = f"; ... +{len(self.gates) - 8} gates" if len(self.gates) > 8 else ""
        return f"<Circuit {self.name!r} n={self.num_qubits} [{body}{more}]>"


def gate_unitary(gate: Gate, num_qubits: int) -> np.ndarray:
    """Dense ``2^n x 2^n`` unitary for one gate embedded in ``num_qubits``.

    Used by the reference simulator and by tests.  Exponential in ``n``;
    callers keep ``n`` small.
    """
    dim = 1 << num_qubits
    local = gate.full_matrix()
    operands = gate.all_qubits
    k = len(operands)
    out = np.zeros((dim, dim), dtype=np.complex128)
    rest = [q for q in range(num_qubits) if q not in operands]
    for other in range(1 << len(rest)):
        base = 0
        for i, q in enumerate(rest):
            if (other >> i) & 1:
                base |= 1 << q
        idx = np.empty(1 << k, dtype=np.int64)
        for local_i in range(1 << k):
            v = base
            for i, q in enumerate(operands):
                if (local_i >> i) & 1:
                    v |= 1 << q
            idx[local_i] = v
        out[np.ix_(idx, idx)] = local
    return out
