"""Service-level-objective tracking over job lifecycle events.

An :class:`SLOTracker` subscribes to a
:class:`~repro.obs.lifecycle.JobLifecycleLog` and folds the event stream
into the numbers an operator alarms on:

* **per-priority latency and queue-age percentiles** — p50/p95/p99 from
  :class:`~repro.obs.metrics.Histogram` quantile buckets, one pair of
  histograms per priority class plus an overall pair;
* **deadline-miss rate** — terminal events whose job finished after its
  absolute deadline, over all deadline-carrying jobs;
* **degradation rate** — jobs that completed only via the per-job
  isolation fallback (``solo_retry``), over all terminal jobs;
* **fidelity attainment** — approximate-tier jobs (requested fidelity
  budget below 1.0) whose run's measured ``achieved_fidelity`` met the
  budget, over all completed approximate jobs, per priority class;
* **flow counters** — submitted / rejected / done / failed / cancelled /
  requeued / quarantined (quarantined jobs count in a dedicated failure
  bucket and never feed the latency histograms).

Every observation is mirrored into the process-global metrics registry as
labeled families (``service.job.latency_s{priority="2"}`` …), so the
Prometheus exporter (:mod:`repro.obs.prom`) scrapes the same data the
:meth:`SLOTracker.summary` block reports through ``stats["slo"]``.
"""

from __future__ import annotations

import threading

from .lifecycle import JobLifecycleLog
from .metrics import Histogram, get_metrics


def _percentile_dict(hist: Histogram) -> dict:
    """JSON-safe percentile summary of one histogram."""
    return {
        "count": hist.count,
        "mean": hist.mean,
        "p50": hist.p50,
        "p95": hist.p95,
        "p99": hist.p99,
        "max": hist.max if hist.count else 0.0,
    }


class _PriorityClass:
    """Per-priority accumulation: two histograms plus outcome counters.

    Quarantined jobs land only in the ``quarantined`` counter — they are
    a *fleet-safety* outcome (the job kept crashing workers), so their
    wall time never feeds the latency/queue-age histograms and cannot
    skew the p99 an operator alarms on.
    """

    __slots__ = (
        "latency", "queue_age", "done", "failed", "quarantined",
        "deadline_jobs", "deadline_misses", "solo_retries",
        "approx_jobs", "fidelity_attained",
    )

    def __init__(self) -> None:
        self.latency = Histogram()
        self.queue_age = Histogram()
        self.done = 0
        self.failed = 0
        self.quarantined = 0
        self.deadline_jobs = 0
        self.deadline_misses = 0
        self.solo_retries = 0
        self.approx_jobs = 0
        self.fidelity_attained = 0

    def merge(self, other: "_PriorityClass") -> "_PriorityClass":
        """Fold ``other``'s accumulation into this class (exact — the
        histograms share one bucket grid)."""
        self.latency.merge(other.latency)
        self.queue_age.merge(other.queue_age)
        self.done += other.done
        self.failed += other.failed
        self.quarantined += other.quarantined
        self.deadline_jobs += other.deadline_jobs
        self.deadline_misses += other.deadline_misses
        self.solo_retries += other.solo_retries
        self.approx_jobs += other.approx_jobs
        self.fidelity_attained += other.fidelity_attained
        return self

    def to_dict(self) -> dict:
        terminal = self.done + self.failed
        return {
            "jobs": terminal,
            "done": self.done,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "latency_s": _percentile_dict(self.latency),
            "queue_age_s": _percentile_dict(self.queue_age),
            "deadline_jobs": self.deadline_jobs,
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": (
                self.deadline_misses / self.deadline_jobs
                if self.deadline_jobs else 0.0
            ),
            "solo_retries": self.solo_retries,
            "degraded_rate": (
                self.solo_retries / terminal if terminal else 0.0
            ),
            "approx_jobs": self.approx_jobs,
            "fidelity_attained": self.fidelity_attained,
            # vacuously 1.0 for all-exact traffic: there is no budget
            # to miss, so the attainment SLO is trivially met
            "fidelity_attainment_rate": (
                self.fidelity_attained / self.approx_jobs
                if self.approx_jobs else 1.0
            ),
        }


class SLOTracker:
    """Folds lifecycle events into per-priority SLO aggregates.

    Attach to a log with :meth:`attach` (or feed events directly through
    :meth:`ingest`); read the result with :meth:`summary` — the
    ``stats["slo"]`` block of
    :meth:`~repro.service.workers.BatchSimulationService.stats`.
    Example::

        log = JobLifecycleLog()
        slo = SLOTracker().attach(log)
        log.emit("submitted", "job-0-a", priority=1)
        log.emit("done", "job-0-a", priority=1,
                 latency_s=0.2, queue_age_s=0.1)
        assert slo.summary()["priorities"]["1"]["jobs"] == 1
    """

    def __init__(
        self,
        metric_prefix: str = "service.job",
        labels: dict | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._prefix = metric_prefix
        #: extra labels stamped on every mirrored metric family — the
        #: gateway sets ``{"shard": "s0"}`` per shard, so one process-wide
        #: Prometheus scrape carries every shard as a labeled series
        self.labels = dict(labels or {})
        self._classes: dict[str, _PriorityClass] = {}
        self._overall = _PriorityClass()
        self.submitted = 0
        self.rejected = 0
        self.cancelled = 0
        self.requeued = 0

    def attach(self, log: JobLifecycleLog) -> "SLOTracker":
        """Subscribe to ``log`` (chainable)."""
        log.subscribe(self.ingest)
        return self

    # -- folding -------------------------------------------------------------

    def _class(self, priority) -> _PriorityClass:
        key = str(priority)
        cls = self._classes.get(key)
        if cls is None:
            cls = self._classes[key] = _PriorityClass()
        return cls

    def ingest(self, event: dict) -> None:
        """Fold one lifecycle event (unknown stages are ignored)."""
        stage = event.get("event")
        if stage == "submitted":
            with self._lock:
                self.submitted += 1
            return
        if stage == "rejected":
            with self._lock:
                self.rejected += 1
            return
        if stage == "cancelled":
            with self._lock:
                self.cancelled += 1
            return
        if stage == "requeued":
            with self._lock:
                self.requeued += 1
            get_metrics().inc("service.requeued", **self.labels)
            return
        if stage == "quarantined":
            # dedicated failure bucket: counted, never fed into the
            # latency histograms (a poison job's wall time is not a
            # latency sample — it is a fleet-safety event)
            priority = event.get("priority", 0)
            with self._lock:
                self._class(priority).quarantined += 1
                self._overall.quarantined += 1
            metrics = get_metrics()
            metrics.inc("service.quarantined", **self.labels)
            metrics.inc(
                f"{self._prefix}.terminal",
                priority=str(priority), outcome="quarantined",
                **self.labels,
            )
            return
        if stage not in ("done", "failed"):
            return
        priority = event.get("priority", 0)
        latency = event.get("latency_s")
        queue_age = event.get("queue_age_s")
        had_deadline = event.get("deadline") is not None
        missed = bool(event.get("deadline_miss"))
        solo = bool(event.get("solo_retry"))
        fidelity = event.get("fidelity")
        achieved = event.get("achieved_fidelity")
        approx = (
            stage == "done" and fidelity is not None and fidelity < 1.0
        )
        attained = approx and achieved is not None and achieved >= fidelity
        with self._lock:
            for cls in (self._class(priority), self._overall):
                if stage == "done":
                    cls.done += 1
                else:
                    cls.failed += 1
                if latency is not None:
                    cls.latency.observe(latency)
                if queue_age is not None:
                    cls.queue_age.observe(queue_age)
                if had_deadline:
                    cls.deadline_jobs += 1
                    cls.deadline_misses += missed
                cls.solo_retries += solo
                cls.approx_jobs += approx
                cls.fidelity_attained += attained
        # mirror into the global registry as labeled families so the
        # Prometheus exporter scrapes the same distributions
        metrics = get_metrics()
        label = str(priority)
        if latency is not None:
            metrics.observe(
                f"{self._prefix}.latency_s", latency, priority=label,
                **self.labels,
            )
        if queue_age is not None:
            metrics.observe(
                f"{self._prefix}.queue_age_s", queue_age, priority=label,
                **self.labels,
            )
        metrics.inc(
            f"{self._prefix}.terminal", priority=label, outcome=stage,
            **self.labels,
        )
        if missed:
            metrics.inc(
                f"{self._prefix}.deadline_miss", priority=label,
                **self.labels,
            )
        if approx:
            metrics.inc(
                f"{self._prefix}.fidelity_attained",
                priority=label,
                outcome="attained" if attained else "missed",
                **self.labels,
            )

    # -- aggregation ---------------------------------------------------------

    def merge_from(self, other: "SLOTracker") -> "SLOTracker":
        """Fold another tracker's accumulation into this one (exact).

        Histogram merging is element-wise on the shared bucket grid, so
        the merged percentiles are identical to what one tracker observing
        the union stream would have reported — no
        percentile-of-percentiles approximation.  Mirrored metrics are
        *not* re-emitted (the source trackers already fed the registry).
        """
        with other._lock:
            classes = {
                key: cls for key, cls in other._classes.items()
            }
            counters = (
                other.submitted, other.rejected, other.cancelled,
                other.requeued,
            )
            overall = other._overall
        with self._lock:
            for key, cls in classes.items():
                mine = self._classes.get(key)
                if mine is None:
                    mine = self._classes[key] = _PriorityClass()
                mine.merge(cls)
            self._overall.merge(overall)
            self.submitted += counters[0]
            self.rejected += counters[1]
            self.cancelled += counters[2]
            self.requeued += counters[3]
        return self

    @classmethod
    def merged(cls, trackers) -> "SLOTracker":
        """One aggregate view over several trackers (e.g. one per shard).

        Example::

            merged = SLOTracker.merged([shard_a.slo, shard_b.slo])
            total = merged.summary()["done"]
        """
        agg = cls()
        for tracker in trackers:
            agg.merge_from(tracker)
        return agg

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """The JSON-safe ``stats["slo"]`` block.

        Per-priority and overall latency/queue-age percentiles, deadline
        and degradation rates, and the submitted/rejected/terminal flow
        counts.
        """
        with self._lock:
            overall = self._overall.to_dict()
            priorities = {
                key: cls.to_dict()
                for key, cls in sorted(self._classes.items())
            }
            return {
                "submitted": self.submitted,
                "rejected": self.rejected,
                "cancelled": self.cancelled,
                "requeued": self.requeued,
                "done": self._overall.done,
                "failed": self._overall.failed,
                "quarantined": self._overall.quarantined,
                "latency_s": overall["latency_s"],
                "queue_age_s": overall["queue_age_s"],
                "deadline_jobs": overall["deadline_jobs"],
                "deadline_misses": overall["deadline_misses"],
                "deadline_miss_rate": overall["deadline_miss_rate"],
                "solo_retries": overall["solo_retries"],
                "degraded_rate": overall["degraded_rate"],
                "approx_jobs": overall["approx_jobs"],
                "fidelity_attained": overall["fidelity_attained"],
                "fidelity_attainment_rate": (
                    overall["fidelity_attainment_rate"]
                ),
                "priorities": priorities,
            }
