"""Quantum noise channels (Kraus representation).

The substrate for noisy batch simulation: a :class:`NoiseChannel` is a CPTP
map given by Kraus operators; :class:`NoiseModel` attaches channels to gate
applications.  Channels whose Kraus operators are (scaled) Paulis expose a
``pauli_probabilities`` decomposition, which is what the trajectory sampler
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SimulationError

_I = np.eye(2, dtype=np.complex128)
_X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
_Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
_Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
PAULIS = {"I": _I, "X": _X, "Y": _Y, "Z": _Z}


@dataclass(frozen=True)
class NoiseChannel:
    """A single-qubit CPTP channel in Kraus form."""

    name: str
    kraus: tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        total = sum(k.conj().T @ k for k in self.kraus)
        if not np.allclose(total, np.eye(2), atol=1e-9):
            raise SimulationError(
                f"channel {self.name!r} is not trace preserving"
            )

    def apply_to_density(self, rho: np.ndarray) -> np.ndarray:
        """Apply to a single-qubit density matrix (reference semantics)."""
        return sum(k @ rho @ k.conj().T for k in self.kraus)

    def pauli_probabilities(self) -> dict[str, float] | None:
        """If every Kraus operator is ``sqrt(p) * Pauli``, return the Pauli
        mixture ``{I: p0, X: p1, ...}``; otherwise ``None``."""
        probs: dict[str, float] = {"I": 0.0, "X": 0.0, "Y": 0.0, "Z": 0.0}
        for k in self.kraus:
            matched = False
            for label, pauli in PAULIS.items():
                # k = c * pauli for complex c?
                nz = np.abs(pauli) > 0.5
                if not np.allclose(k[~nz], 0, atol=1e-12):
                    continue
                values = k[nz] / pauli[nz]
                if np.allclose(values, values.flat[0], atol=1e-12):
                    probs[label] += float(abs(values.flat[0]) ** 2)
                    matched = True
                    break
            if not matched:
                return None
        if abs(sum(probs.values()) - 1.0) > 1e-9:
            return None
        return probs


def depolarizing(p: float) -> NoiseChannel:
    """Uniform Pauli noise with total error probability ``p``."""
    if not 0 <= p <= 1:
        raise SimulationError("depolarizing probability must be in [0, 1]")
    return NoiseChannel(
        name=f"depolarizing({p})",
        kraus=(
            np.sqrt(1 - p) * _I,
            np.sqrt(p / 3) * _X,
            np.sqrt(p / 3) * _Y,
            np.sqrt(p / 3) * _Z,
        ),
    )


def bit_flip(p: float) -> NoiseChannel:
    """X error with probability ``p``."""
    if not 0 <= p <= 1:
        raise SimulationError("bit-flip probability must be in [0, 1]")
    return NoiseChannel(
        name=f"bit_flip({p})",
        kraus=(np.sqrt(1 - p) * _I, np.sqrt(p) * _X),
    )


def phase_flip(p: float) -> NoiseChannel:
    """Z error with probability ``p``."""
    if not 0 <= p <= 1:
        raise SimulationError("phase-flip probability must be in [0, 1]")
    return NoiseChannel(
        name=f"phase_flip({p})",
        kraus=(np.sqrt(1 - p) * _I, np.sqrt(p) * _Z),
    )


def amplitude_damping(gamma: float) -> NoiseChannel:
    """T1 relaxation (not a Pauli channel; density-matrix path only)."""
    if not 0 <= gamma <= 1:
        raise SimulationError("damping rate must be in [0, 1]")
    k0 = np.array([[1, 0], [0, np.sqrt(1 - gamma)]], dtype=np.complex128)
    k1 = np.array([[0, np.sqrt(gamma)], [0, 0]], dtype=np.complex128)
    return NoiseChannel(name=f"amplitude_damping({gamma})", kraus=(k0, k1))


@dataclass(frozen=True)
class NoiseModel:
    """Per-gate noise: after every gate, apply ``gate_channel`` to each
    qubit the gate touched (a standard depolarizing-after-gate model)."""

    gate_channel: NoiseChannel

    def is_pauli(self) -> bool:
        return self.gate_channel.pauli_probabilities() is not None
