"""Batch simulators: BQSim and the cuQuantum / Qiskit Aer / FlatDD models."""

from .base import BatchSimulator, BatchSpec, SimulationResult
from .bqsim import BQSimSimulator, buffer_indices
from .cuquantum import CuQuantumSimulator
from .flatdd import FlatDDSimulator
from .incremental import IncrementalSession, IncrementalUpdate
from .multigpu import MultiGpuBQSimSimulator
from .qiskit_aer import QiskitAerSimulator
from .statevector import apply_gate, simulate_batch, simulate_state
from .validate import cross_validate

__all__ = [
    "apply_gate",
    "BatchSimulator",
    "BatchSpec",
    "BQSimSimulator",
    "buffer_indices",
    "cross_validate",
    "CuQuantumSimulator",
    "FlatDDSimulator",
    "IncrementalSession",
    "IncrementalUpdate",
    "MultiGpuBQSimSimulator",
    "QiskitAerSimulator",
    "simulate_batch",
    "simulate_state",
    "SimulationResult",
]
