"""Figure 9 — GPU-based vs CPU-based vs hybrid DD-to-ELL conversion.

For each circuit, sums the modeled conversion time of the whole fused-gate
list under three policies: always-GPU, always-CPU, and the hybrid threshold
rule (tau).  Values are normalized by the hybrid time, as in the paper: the
hybrid is never worse than either pure policy.
"""

from __future__ import annotations

from ...circuit.generators import make_circuit
from ...dd.export import count_edges
from ...dd.manager import DDManager
from ...ell.convert import DEFAULT_TAU
from ...fusion.bqcs import bqcs_fusion
from ...gpu.spec import CpuSpec, GpuSpec
from ..tables import print_table

CIRCUITS = {
    "small": (("qnn", 8), ("qnn", 9), ("qnn", 10), ("vqe", 10), ("tsp", 10)),
    "medium": (("qnn", 10), ("qnn", 12), ("qnn", 14), ("vqe", 16), ("tsp", 16)),
    # qnn 19/21 would need hours of pure-Python fusion; 14/17 show the same
    # hybrid-routing effect
    "paper": (("qnn", 14), ("qnn", 17), ("vqe", 16), ("tsp", 16)),
}


def run(scale: str = "small", tau: int = DEFAULT_TAU) -> list[dict]:
    gpu, cpu = GpuSpec(), CpuSpec()
    rows = []
    for family, n in CIRCUITS.get(scale, CIRCUITS["small"]):
        circuit = make_circuit(family, n)
        mgr = DDManager(n)
        plan = bqcs_fusion(mgr, circuit)
        dim = 1 << n
        t_gpu = t_cpu = t_hybrid = 0.0
        routes = {"gpu": 0, "cpu": 0}
        for fused in plan.gates:
            edges = count_edges(fused.dd)
            g = gpu.conversion_time(dim, fused.cost, edges)
            c = cpu.conversion_time(dim, fused.cost, edges)
            t_gpu += g
            t_cpu += c
            if edges > tau:
                t_hybrid += c
                routes["cpu"] += 1
            else:
                t_hybrid += g
                routes["gpu"] += 1
        rows.append(
            {
                "family": family,
                "num_qubits": n,
                "gpu_s": t_gpu,
                "cpu_s": t_cpu,
                "hybrid_s": t_hybrid,
                "norm_gpu": t_gpu / t_hybrid,
                "norm_cpu": t_cpu / t_hybrid,
                "routes": routes,
            }
        )
    return rows


def main(scale: str = "small") -> list[dict]:
    rows = run(scale)
    print_table(
        f"Figure 9: conversion time normalized by hybrid (scale={scale})",
        ["circuit", "n", "GPU-based", "CPU-based", "hybrid", "gpu/cpu routes"],
        [
            [
                r["family"],
                r["num_qubits"],
                f"{r['norm_gpu']:.2f}",
                f"{r['norm_cpu']:.2f}",
                "1.00",
                f"{r['routes']['gpu']}/{r['routes']['cpu']}",
            ]
            for r in rows
        ],
    )
    return rows


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
