"""Variational-algorithm driver: Hamiltonians, ansaetze, VQE loop."""

from .ansatz import Ansatz
from .hamiltonians import PauliSum, heisenberg_xxz, maxcut, transverse_field_ising
from .vqe import (
    VQEResult,
    energy_batch,
    energy_of,
    landscape,
    run_rotosolve,
    run_vqe,
)

__all__ = [
    "Ansatz",
    "energy_batch",
    "energy_of",
    "heisenberg_xxz",
    "landscape",
    "maxcut",
    "PauliSum",
    "run_rotosolve",
    "run_vqe",
    "transverse_field_ising",
    "VQEResult",
]
