"""Flat "GPU-based DD" layout (Figure 6 of the paper).

A matrix DD is serialized into two arrays:

* an **edge array** — per edge, a complex weight and the index of the node it
  points to (``-1`` means the constant-one terminal);
* a **node array** — per node, its qubit level and four outgoing edge indices
  (``-1`` means the constant-zero edge).

Edge 0 is the root edge.  Shared nodes stay shared, but each non-zero child
slot gets its own edge-array entry, exactly as in the paper's figure; the
resulting ``num_edges`` is the quantity compared against the hybrid
conversion threshold tau.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DDError
from .node import Edge, MNode


@dataclass(frozen=True)
class FlatDD:
    """Array-of-structs DD ready for (virtual-)GPU consumption."""

    num_qubits: int
    edge_weight: np.ndarray  # complex128[num_edges]
    edge_node: np.ndarray  # int64[num_edges]; -1 = terminal
    node_level: np.ndarray  # int32[num_nodes]
    node_edges: np.ndarray  # int64[num_nodes, 4]; -1 = zero edge

    @property
    def num_edges(self) -> int:
        return int(self.edge_weight.shape[0])

    @property
    def num_nodes(self) -> int:
        return int(self.node_level.shape[0])

    @property
    def nbytes(self) -> int:
        return int(
            self.edge_weight.nbytes
            + self.edge_node.nbytes
            + self.node_level.nbytes
            + self.node_edges.nbytes
        )

    def root(self) -> int:
        return 0


def flatten_matrix_dd(edge: Edge, num_qubits: int) -> FlatDD:
    """Serialize a matrix DD into the flat edge/node arrays."""
    if edge.weight == 0:
        raise DDError("cannot flatten the zero matrix")
    if edge.node is not None and edge.node.level != num_qubits - 1:
        raise DDError("root edge level does not match num_qubits")

    node_index: dict[int, int] = {}
    nodes: list[MNode] = []

    def visit(node: MNode | None) -> None:
        if node is None or node.nid in node_index:
            return
        node_index[node.nid] = len(nodes)
        nodes.append(node)
        for child in node.children:
            if child.weight != 0:
                visit(child.node)

    visit(edge.node)

    weights: list[complex] = [edge.weight]
    targets: list[int] = [node_index[edge.node.nid] if edge.node is not None else -1]
    node_edges = np.full((len(nodes), 4), -1, dtype=np.int64)
    for node in nodes:
        row = node_index[node.nid]
        for slot, child in enumerate(node.children):
            if child.weight == 0:
                continue
            node_edges[row, slot] = len(weights)
            weights.append(child.weight)
            targets.append(node_index[child.node.nid] if child.node is not None else -1)

    return FlatDD(
        num_qubits=num_qubits,
        edge_weight=np.array(weights, dtype=np.complex128),
        edge_node=np.array(targets, dtype=np.int64),
        node_level=np.array([node.level for node in nodes], dtype=np.int32),
        node_edges=node_edges,
    )


def flat_entry(flat: FlatDD, row: int, col: int) -> complex:
    """Matrix entry lookup by walking the flat DD (validation helper)."""
    value = 1.0 + 0j
    edge = flat.root()
    level = flat.num_qubits - 1
    while True:
        value *= flat.edge_weight[edge]
        node = flat.edge_node[edge]
        if node == -1:
            return value
        r = (row >> level) & 1
        c = (col >> level) & 1
        edge = flat.node_edges[node, r * 2 + c]
        if edge == -1:
            return 0.0 + 0j
        level -= 1
