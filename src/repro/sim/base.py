"""Common simulator API and result types.

Every simulator (BQSim and the three baselines) implements
:meth:`BatchSimulator.run` over one circuit and a stream of input batches.
Results carry both the *numeric outputs* (exact amplitudes, when
``execute=True``) and the *modeled runtime* from the calibrated device model
(see :mod:`repro.gpu.spec`), which is what the bench harness reports —
letting experiments run at the paper's full scale where pure-Python numerics
would be prohibitive.
"""

from __future__ import annotations

import abc
import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

try:  # POSIX advisory file locking for the shared disk tier
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

import numpy as np

from ..circuit import Circuit, InputBatch, generate_batches
from ..ell.persist import plan_fingerprint
from ..errors import SimulationError
from ..gpu.engine import Timeline
from ..gpu.power import PowerReport
from ..obs import get_metrics, get_tracer
from ..profile import StageTimer
from ..resilience.events import get_resilience_log

#: environment variable naming the default disk tier of every PlanCache;
#: unset means memory-only caching
PLAN_CACHE_ENV = "REPRO_PLAN_CACHE"


@dataclass
class BatchSpec:
    """Describes the input stream without materializing it.

    A run over ``num_batches`` batches of ``batch_size`` random input
    state vectors each, generated deterministically from ``seed`` — so
    two simulators given the same spec see bit-identical inputs, which
    is what makes cross-simulator validation exact.  Example::

        spec = BatchSpec(num_batches=200, batch_size=256)  # the paper's load
        assert spec.num_inputs == 51200
    """

    num_batches: int
    batch_size: int
    seed: int = 0

    @property
    def num_inputs(self) -> int:
        return self.num_batches * self.batch_size


@dataclass
class SimulationResult:
    """Outcome of one batch-simulation run."""

    simulator: str
    circuit_name: str
    num_qubits: int
    spec: BatchSpec
    modeled_time: float  # seconds, from the device model
    breakdown: dict[str, float] = field(default_factory=dict)
    power: PowerReport | None = None
    timeline: Timeline | None = None
    outputs: list[np.ndarray] | None = None
    wall_time: float = 0.0
    stats: dict = field(default_factory=dict)

    @property
    def modeled_time_ms(self) -> float:
        return self.modeled_time * 1e3

    def output_batch(self, index: int) -> np.ndarray:
        if self.outputs is None:
            raise SimulationError("run with execute=True to obtain amplitudes")
        return self.outputs[index]


class BatchSimulator(abc.ABC):
    """Interface implemented by BQSim and the baseline simulators."""

    name: str = "abstract"

    @abc.abstractmethod
    def run(
        self,
        circuit: Circuit,
        spec: BatchSpec,
        batches: Sequence[InputBatch] | None = None,
        execute: bool = True,
    ) -> SimulationResult:
        """Simulate ``circuit`` over the input stream described by ``spec``.

        ``batches`` overrides the generated stream; ``execute=False`` skips
        all numerics (and array materialization) and returns model-only
        timings, enabling paper-scale experiments.
        """

    def _resolve_batches(
        self,
        circuit: Circuit,
        spec: BatchSpec,
        batches: Sequence[InputBatch] | None,
        execute: bool,
    ) -> list[InputBatch] | None:
        if not execute:
            return None
        if batches is None:
            return list(
                generate_batches(
                    circuit.num_qubits, spec.num_batches, spec.batch_size, spec.seed
                )
            )
        batches = list(batches)
        if len(batches) != spec.num_batches:
            raise SimulationError(
                f"expected {spec.num_batches} batches, got {len(batches)}"
            )
        for batch in batches:
            if batch.num_qubits != circuit.num_qubits:
                raise SimulationError("batch width does not match circuit")
            if batch.batch_size != spec.batch_size:
                raise SimulationError("batch size does not match spec")
        return batches


class PlanCache:
    """Per-simulator cache of fusion artifacts keyed by circuit *structure*.

    Experiments sweep batch counts and ablation flags over one circuit;
    fusion is a deterministic function of the circuit and the fusion
    settings, so entries are keyed by :meth:`Circuit.fingerprint` plus a
    simulator-supplied ``extra`` tuple of settings.  Structural keying means
    two equal circuits share one plan regardless of object identity, an
    in-place edit of a circuit is correctly detected as a different key,
    and a recycled ``id()`` can never resurrect a stale plan — the three
    hazards of the previous ``id(circuit)`` scheme.

    ``cache_dir`` (or the ``REPRO_PLAN_CACHE`` environment variable) adds a
    disk tier: simulators that support it serialize compiled plans to
    ``<cache_dir>/<key>.npz`` so a *new process* skips stages 1-2 too.  The
    cache itself stays serialization-agnostic; it only hands out paths.
    """

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        self._entries: dict[str, object] = {}
        if cache_dir is None:
            cache_dir = os.environ.get(PLAN_CACHE_ENV) or None
        self.cache_dir = Path(cache_dir) if cache_dir else None
        #: lookup accounting: memory hits, disk-tier hits, full builds
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.quarantined = 0

    @staticmethod
    def key(circuit: Circuit, extra: tuple = ()) -> str:
        """Structural cache key: circuit fingerprint + hashed settings.

        Delegates to :func:`repro.ell.persist.plan_fingerprint`, the one
        canonical definition of a compiled plan's identity (shared with the
        serving layer's coalescer).
        """
        return plan_fingerprint(circuit, extra)

    def get(self, circuit: Circuit, build, extra: tuple = ()):
        """Memory-tier lookup; ``build()`` fills a miss."""
        key = self.key(circuit, extra)
        if key not in self._entries:
            self.note_lookup("built")
            self._entries[key] = build()
        else:
            self.note_lookup("memory")
        return self._entries[key]

    def note_lookup(self, source: str) -> None:
        """Record one lookup outcome: ``memory``, ``disk``, or ``built``.

        Simulators that bypass :meth:`get` (tiered peek/load/build, like
        BQSim's compiled-plan path) call this so hit/miss accounting stays
        accurate; the outcome is mirrored into the global metrics registry
        as ``plan_cache.{hits,disk_hits,misses}``.
        """
        if source == "memory":
            self.hits += 1
            metric = "plan_cache.hits"
        elif source == "disk":
            self.disk_hits += 1
            metric = "plan_cache.disk_hits"
        else:
            self.misses += 1
            metric = "plan_cache.misses"
        get_metrics().inc(metric)

    def stats_dict(self) -> dict[str, int]:
        """Lookup counters for ``SimulationResult.stats["plan_cache"]``."""
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "quarantined": self.quarantined,
        }

    def peek(self, key: str):
        return self._entries.get(key)

    def put(self, key: str, value) -> None:
        self._entries[key] = value

    # -- disk tier ----------------------------------------------------------

    def disk_path(self, key: str) -> Path | None:
        """Path of the disk entry for ``key`` (``None`` without a disk tier).

        Creates the cache directory on first use.
        """
        if self.cache_dir is None:
            return None
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        return self.cache_dir / f"{key}.npz"

    @contextmanager
    def build_lock(self, key: str):
        """Cross-process exclusive section for compiling plan ``key``.

        When several OS processes share one disk tier (the service's
        process worker pool points every worker at the same ``cache_dir``),
        each fingerprint must be compiled exactly once fleet-wide: the
        first worker to miss takes an advisory ``flock`` on
        ``<cache_dir>/<key>.lock``, builds, and writes the archive; the
        others block on the lock, re-check the disk tier, and load the
        winner's archive instead of re-fusing.  Without a disk tier (or on
        platforms without ``fcntl``) this is a no-op — in-process callers
        pay nothing.
        """
        path = self.disk_path(key)
        if path is None or fcntl is None:
            yield
            return
        lock_path = path.with_suffix(".lock")
        try:
            handle = open(lock_path, "a+")
        except OSError:
            yield  # unlockable (read-only dir): fall back to racy writes
            return
        try:
            fcntl.flock(handle, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(handle, fcntl.LOCK_UN)
            finally:
                handle.close()

    def disk_entries(self) -> list[Path]:
        """Every plan archive currently in the disk tier.

        The glob is non-recursive, so quarantined archives moved into the
        ``corrupt/`` subdirectory are invisible here.
        """
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return []
        return sorted(self.cache_dir.glob("*.npz"))

    def quarantine(self, path: Path, reason: str) -> Path | None:
        """Move an unreadable disk entry into ``<cache_dir>/corrupt/``.

        A corrupt archive must not be silently deleted (it is evidence of a
        writer bug or disk fault) nor left in place (every future process
        would retry and re-fail on it).  Quarantining removes it from the
        lookup path while preserving the bytes; the event is counted,
        mirrored to metrics (``plan_cache.corrupt``), recorded in the
        resilience log, and surfaced as a :class:`UserWarning`.
        """
        target: Path | None = None
        try:
            if path.is_file():
                quarantine_dir = path.parent / "corrupt"
                quarantine_dir.mkdir(parents=True, exist_ok=True)
                target = quarantine_dir / path.name
                path.replace(target)
        except OSError:
            # quarantine is best-effort: never turn cache cleanup into a
            # second failure
            target = None
        self.quarantined += 1
        get_metrics().inc("plan_cache.corrupt")
        get_resilience_log().record(
            "quarantine", site="cache", path=path.name, reason=reason
        )
        warnings.warn(
            f"quarantined corrupt plan archive {path.name!r}: {reason}",
            UserWarning,
            stacklevel=2,
        )
        return target

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier; ``disk=True`` also deletes the archives."""
        self._entries.clear()
        if disk:
            for path in self.disk_entries():
                path.unlink()


class RunObservation:
    """Scopes the process-global tracer and metrics to one simulator run.

    Construct at the top of ``run()`` (records marks), then
    :meth:`finalize` the stats dict at the bottom: it attaches the
    canonical ``wall_breakdown``, the plan-cache counters, the spans
    recorded during the run (``stats["trace"]``, empty while tracing is
    disabled), the metrics delta of the run (``stats["metrics"]``), and the
    resilience-event summary of the run (``stats["resilience"]``).
    """

    def __init__(self) -> None:
        self.tracer = get_tracer()
        self.metrics = get_metrics()
        self.resilience = get_resilience_log()
        self._span_mark = self.tracer.mark()
        self._metric_mark = self.metrics.mark()
        self._resilience_mark = self.resilience.mark()

    def spans(self) -> list:
        """Spans recorded since the run started (live objects)."""
        return self.tracer.spans_since(self._span_mark)

    def resilience_events(self) -> list[dict]:
        """Resilience events recorded since the run started."""
        return self.resilience.events_since(self._resilience_mark)

    def finalize(
        self,
        stats: dict,
        timer: StageTimer,
        plans: "PlanCache | None",
        resilience_extra: dict | None = None,
    ) -> dict:
        stats["wall_breakdown"] = timer.snapshot()
        if plans is not None:
            stats["plan_cache"] = plans.stats_dict()
        stats["trace"] = (
            [span.to_dict() for span in self.spans()]
            if self.tracer.enabled
            else []
        )
        stats["metrics"] = self.metrics.delta(self._metric_mark)
        summary = self.resilience.summary_since(self._resilience_mark)
        if resilience_extra:
            summary.update(resilience_extra)
        stats["resilience"] = summary
        return stats


#: kept under the old private name for backward compatibility
_StageTimer = StageTimer
