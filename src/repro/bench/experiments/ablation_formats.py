"""Design-choice ablation: ELL vs CSR vs COO as the BQCS kernel format.

Not a paper figure, but the measurement behind the paper's one-sentence
justification in Section 3.2: quantum gate matrices have near-uniform NZR
(Table 1), which makes ELL's padding free while CSR pays row-pointer
indirection and COO pays atomic scatter contention.  The experiment sums
modeled kernel time over the fused plan of each circuit and normalizes by
the ELL time.
"""

from __future__ import annotations

import numpy as np

from ...circuit.generators import make_circuit
from ...dd.manager import DDManager
from ...ell.alternatives import (
    coo_from_ell,
    coo_kernel_time,
    csr_from_ell,
    csr_kernel_time,
    ell_kernel_time,
)
from ...ell.convert import ell_from_dd_cpu
from ...fusion.bqcs import bqcs_fusion
from ...gpu.spec import GpuSpec
from ..tables import print_table

CIRCUITS = {
    "small": (("vqe", 8), ("supremacy", 8), ("graphstate", 8)),
    "medium": (("vqe", 14), ("supremacy", 12), ("graphstate", 14)),
    "paper": (("vqe", 16), ("supremacy", 12), ("graphstate", 16)),
}


def run(scale: str = "small", batch_size: int = 256) -> list[dict]:
    spec = GpuSpec()
    rows_out = []
    for family, n in CIRCUITS.get(scale, CIRCUITS["small"]):
        circuit = make_circuit(family, n)
        mgr = DDManager(n)
        plan = bqcs_fusion(mgr, circuit)
        t_ell = t_csr = t_coo = 0.0
        for fused in plan.gates:
            ell = ell_from_dd_cpu(fused.dd, n)
            csr = csr_from_ell(ell)
            coo = coo_from_ell(ell)
            t_ell += ell_kernel_time(spec, n, batch_size, ell.width)
            t_csr += csr_kernel_time(spec, n, batch_size, csr.row_nnz())
            t_coo += coo_kernel_time(spec, n, batch_size, coo.nnz)
        rows_out.append(
            {
                "family": family,
                "num_qubits": n,
                "ell_s": t_ell,
                "csr_s": t_csr,
                "coo_s": t_coo,
                "csr_vs_ell": t_csr / t_ell,
                "coo_vs_ell": t_coo / t_ell,
            }
        )
    return rows_out


def main(scale: str = "small") -> list[dict]:
    rows = run(scale)
    print_table(
        f"Format ablation: modeled kernel time normalized by ELL (scale={scale})",
        ["circuit", "n", "ELL", "CSR", "COO"],
        [
            [
                r["family"],
                r["num_qubits"],
                "1.00",
                f"{r['csr_vs_ell']:.2f}",
                f"{r['coo_vs_ell']:.2f}",
            ]
            for r in rows
        ],
    )
    return rows


if __name__ == "__main__":
    import sys

    main(sys.argv[1] if len(sys.argv) > 1 else "small")
