"""Tests for the textbook-algorithm generators."""

import numpy as np
import pytest

from repro.circuit import probabilities
from repro.circuit.generators import deutsch_jozsa, grover, qpe, wstate
from repro.errors import CircuitError
from repro.sim.statevector import simulate_state


def test_grover_amplifies_marked_element():
    circuit = grover(5, marked=13, iterations=4)
    p = probabilities(simulate_state(circuit))
    assert p[13] > 0.8
    assert np.argmax(p) == 13


def test_grover_random_mark_is_deterministic_by_seed():
    a = grover(4, seed=3)
    b = grover(4, seed=3)
    assert [g.name for g in a] == [g.name for g in b]


def test_grover_rejects_single_qubit():
    with pytest.raises(CircuitError):
        grover(1)


def test_deutsch_jozsa_constant_vs_balanced():
    n = 5
    input_mask = (1 << (n - 1)) - 1
    constant = deutsch_jozsa(n, balanced=False)
    p = probabilities(simulate_state(constant))
    zero_prob = sum(p[i] for i in range(1 << n) if (i & input_mask) == 0)
    assert zero_prob == pytest.approx(1.0)
    balanced = deutsch_jozsa(n, balanced=True, seed=1)
    p = probabilities(simulate_state(balanced))
    zero_prob = sum(p[i] for i in range(1 << n) if (i & input_mask) == 0)
    assert zero_prob == pytest.approx(0.0, abs=1e-9)


def test_wstate_is_uniform_one_hot():
    n = 5
    p = probabilities(simulate_state(wstate(n)))
    hot = [1 << k for k in range(n)]
    for h in hot:
        assert p[h] == pytest.approx(1.0 / n)
    assert sum(p[h] for h in hot) == pytest.approx(1.0)


def test_qpe_recovers_exact_phase():
    # 4 counting qubits, phase 5/16 -> counting register reads 5
    circuit = qpe(5, phase=5 / 16)
    p = probabilities(simulate_state(circuit))
    best = int(np.argmax(p)) & 0b1111
    assert best == 5
    assert p.max() > 0.95


def test_qpe_default_phase_is_representable():
    circuit = qpe(6, seed=4)
    p = probabilities(simulate_state(circuit))
    assert p.max() > 0.95  # exact-phase default peaks sharply


@pytest.mark.parametrize("maker", [deutsch_jozsa, wstate, qpe])
def test_minimum_width_validation(maker):
    with pytest.raises(CircuitError):
        maker(1)


def test_qaoa_maxcut_beats_random_guessing():
    from repro.circuit.generators import qaoa_maxcut
    from repro.vqa import maxcut

    n = 6
    edges = [(i, (i + 1) % n) for i in range(n)]
    circuit = qaoa_maxcut(n, edges=edges, p=2, seed=1)
    state = simulate_state(circuit)
    energy = maxcut(edges, n).expectation(state.reshape(-1, 1))[0]
    # uniform superposition scores -|E|/2 = -3; QAOA should do better
    assert energy < -3.0


def test_qaoa_structure():
    from repro.circuit.generators import qaoa_maxcut

    circuit = qaoa_maxcut(5, p=3)
    counts = circuit.counts()
    assert counts["h"] == 5
    assert counts["rzz"] == 3 * 5  # ring edges x layers
    assert counts["rx"] == 3 * 5
    with pytest.raises(CircuitError):
        qaoa_maxcut(1)
