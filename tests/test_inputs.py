"""Unit tests for batch input generation."""

import numpy as np
import pytest

from repro.circuit import (
    InputBatch,
    basis_batch,
    generate_batches,
    random_batch,
    zero_state_batch,
)
from repro.errors import SimulationError


def test_random_batch_shape_and_norms():
    batch = random_batch(5, 7, rng=0)
    assert batch.num_qubits == 5
    assert batch.batch_size == 7
    assert batch.states.shape == (32, 7)
    assert np.allclose(batch.norms(), 1.0)


def test_random_batch_deterministic_by_seed():
    a = random_batch(4, 3, rng=42)
    b = random_batch(4, 3, rng=42)
    assert np.array_equal(a.states, b.states)


def test_basis_batch_places_ones():
    batch = basis_batch(3, [0, 5, 7])
    assert batch.states[0, 0] == 1 and batch.states[5, 1] == 1
    assert batch.states.sum() == 3


def test_basis_batch_rejects_out_of_range():
    with pytest.raises(SimulationError, match="out of range"):
        basis_batch(2, [4])


def test_zero_state_batch():
    batch = zero_state_batch(3, 4)
    assert np.allclose(batch.states[0], 1.0)
    assert batch.states[1:].sum() == 0


def test_input_batch_validates_shape():
    with pytest.raises(SimulationError, match="2-D"):
        InputBatch(np.zeros(8, dtype=np.complex128))
    with pytest.raises(SimulationError, match="power of two"):
        InputBatch(np.zeros((6, 2), dtype=np.complex128))


def test_generate_batches_stream_is_deterministic():
    first = [b.states for b in generate_batches(3, 4, 2, seed=9)]
    second = [b.states for b in generate_batches(3, 4, 2, seed=9)]
    assert len(first) == 4
    for a, b in zip(first, second):
        assert np.array_equal(a, b)
    # consecutive batches differ
    assert not np.array_equal(first[0], first[1])


def test_nbytes_and_column():
    batch = random_batch(3, 2, rng=1)
    assert batch.nbytes == 8 * 2 * 16
    assert np.array_equal(batch.column(1), batch.states[:, 1])


def test_perturbed_batch_zero_epsilon_is_base():
    from repro.circuit import perturbed_batch

    batch = perturbed_batch(3, 0.0, 4, base=5)
    assert np.allclose(batch.states[5], 1.0)
    assert batch.states.sum() == 4


def test_perturbed_batch_normalized_and_seeded():
    from repro.circuit import perturbed_batch

    a = perturbed_batch(3, 0.1, 4, rng=7)
    b = perturbed_batch(3, 0.1, 4, rng=7)
    assert np.array_equal(a.states, b.states)
    assert np.allclose(a.norms(), 1.0)
    # perturbation actually moved the states
    assert not np.allclose(a.states[0], 1.0)


def test_perturbed_batch_dense_base():
    from repro.circuit import perturbed_batch

    base = np.zeros(8, dtype=np.complex128)
    base[3] = 1.0
    batch = perturbed_batch(3, 0.0, 2, base=base)
    assert np.allclose(batch.states[3], 1.0)


def test_perturbed_batch_validation():
    from repro.circuit import perturbed_batch

    with pytest.raises(SimulationError, match="out of range"):
        perturbed_batch(2, 0.1, 1, base=4)
    with pytest.raises(SimulationError, match="wrong length"):
        perturbed_batch(2, 0.1, 1, base=np.ones(3, dtype=np.complex128))
